#!/usr/bin/env bash
# Runs the snapshot-schema analyzer over the tree:
#   1. tools/fedmigr_schema --self-test  — seeded mutation fixtures proving
#                                          every check class still fires
#   2. tools/fedmigr_schema              — writer/reader symmetry, member
#                                          coverage, golden-manifest drift
#                                          (docs/snapshot_schema.json) and
#                                          version discipline
#
# Usage: scripts/schema.sh [--strict]
#
# Both steps only need python3; it is skipped with a notice when not
# installed, unless --strict is given (CI passes --strict so a missing
# interpreter fails loudly instead of silently passing).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

STRICT=0
for arg in "$@"; do
  case "$arg" in
    --strict) STRICT=1 ;;
    *) echo "usage: scripts/schema.sh [--strict]" >&2; exit 2 ;;
  esac
done

if ! command -v python3 >/dev/null 2>&1; then
  if [ "$STRICT" -eq 1 ]; then
    echo "FAILED: python3 is not installed (required in --strict mode)" >&2
    exit 1
  fi
  echo "== python3 not installed — schema analysis skipped (CI runs it)"
  exit 0
fi

FAILURES=0

echo "== fedmigr_schema --self-test"
python3 tools/fedmigr_schema --self-test || FAILURES=$((FAILURES + 1))

echo "== fedmigr_schema (src/ vs docs/snapshot_schema.json)"
if [ "$STRICT" -eq 1 ]; then
  python3 tools/fedmigr_schema --strict || FAILURES=$((FAILURES + 1))
else
  python3 tools/fedmigr_schema || FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "schema: $FAILURES step(s) failed" >&2
  exit 1
fi
echo "schema: OK"
