#!/usr/bin/env bash
# Runs the infrastructure-chaos bench (partition storms + server outages +
# fleet churn, with and without the round-progress watchdog) and records
# BENCH_chaos.json at the repo root, so graceful degradation is tracked
# PR over PR.
#
# Usage: scripts/bench_chaos.sh [build-dir] [extra flags...]
#
# The build dir defaults to ./build and must already contain a compiled
# bench/bench_chaos (cmake -B build -S . && cmake --build build -j).
# Extra flags are passed through, e.g.:
#   scripts/bench_chaos.sh build --epochs=40
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_chaos"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found; build it first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

"$bench_bin" \
  --json-out="$repo_root/BENCH_chaos.json" \
  "$@"

echo "wrote $repo_root/BENCH_chaos.json"
