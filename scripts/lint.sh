#!/usr/bin/env bash
# Runs the three analyzers over the tree:
#   1. tools/fedmigr_lint       — repo-specific invariants (determinism,
#                                 atomic writes, Status discipline)
#   2. clang-format --dry-run   — formatting, config in .clang-format
#   3. clang-tidy               — static analysis, config in .clang-tidy
#
# Usage: scripts/lint.sh [--strict] [--no-tidy]
#
# fedmigr_lint (and its --self-test) always runs — it only needs python3.
# clang-format / clang-tidy are skipped with a notice when the binary is
# not installed, unless --strict is given (CI passes --strict so a
# missing analyzer fails loudly instead of silently passing).
# clang-tidy needs a compile database; the script generates one into
# build-lint/ if no build directory has compile_commands.json yet.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

STRICT=0
RUN_TIDY=1
for arg in "$@"; do
  case "$arg" in
    --strict) STRICT=1 ;;
    --no-tidy) RUN_TIDY=0 ;;
    *) echo "usage: scripts/lint.sh [--strict] [--no-tidy]" >&2; exit 2 ;;
  esac
done

FAILURES=0

note() { echo "== $*"; }
fail() { echo "FAILED: $*" >&2; FAILURES=$((FAILURES + 1)); }

missing_tool() {
  local tool="$1"
  if [ "$STRICT" -eq 1 ]; then
    fail "$tool is not installed (required in --strict mode)"
  else
    note "$tool not installed — skipped (CI runs it; use --strict to require)"
  fi
}

# Tracked C++ sources; excludes lint_selftest fixtures, which are seeded
# violations by design.
cxx_sources() {
  git ls-files 'src/**' 'tests/**' 'bench/**' 'examples/**' \
    | grep -E '\.(cc|cpp|h|hpp)$' \
    | grep -v '^tools/lint_selftest/'
}

# ---- 1. fedmigr_lint ------------------------------------------------------

note "fedmigr_lint --self-test"
if python3 tools/fedmigr_lint --self-test; then :; else
  fail "fedmigr_lint --self-test"
fi

note "fedmigr_lint (src/ bench/ examples/)"
if python3 tools/fedmigr_lint; then :; else
  fail "fedmigr_lint"
fi

# ---- 2. clang-format ------------------------------------------------------

if command -v clang-format >/dev/null 2>&1; then
  note "clang-format --dry-run -Werror"
  if cxx_sources | xargs -r clang-format --dry-run -Werror; then :; else
    fail "clang-format (run: git ls-files '*.cc' '*.h' | xargs clang-format -i)"
  fi
else
  missing_tool clang-format
fi

# ---- 3. clang-tidy --------------------------------------------------------

if [ "$RUN_TIDY" -eq 1 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    COMPDB_DIR=""
    for dir in build build-lint build-sanitize build-tsan; do
      if [ -f "$dir/compile_commands.json" ]; then COMPDB_DIR="$dir"; break; fi
    done
    if [ -z "$COMPDB_DIR" ]; then
      note "generating compile database in build-lint/"
      if cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
               >/dev/null; then
        COMPDB_DIR="build-lint"
      else
        fail "cmake configure for compile database"
      fi
    fi
    if [ -n "$COMPDB_DIR" ]; then
      note "clang-tidy (-p $COMPDB_DIR)"
      # Headers are covered through the TUs that include them
      # (HeaderFilterRegex in .clang-tidy).
      if git ls-files 'src/**' 'tests/**' 'bench/**' 'examples/**' \
           | grep -E '\.(cc|cpp)$' \
           | xargs -r clang-tidy -p "$COMPDB_DIR" --quiet; then :; else
        fail "clang-tidy"
      fi
    fi
  else
    missing_tool clang-tidy
  fi
fi

# ---------------------------------------------------------------------------

if [ "$FAILURES" -gt 0 ]; then
  echo "lint: $FAILURES analyzer(s) failed" >&2
  exit 1
fi
echo "lint: OK"
