#!/usr/bin/env bash
# Runs the fleet-scalability sweep (sharded CoW simulator) and records
# BENCH_scalability.json at the repo root, so the memory/latency trajectory
# of the million-client path is tracked PR over PR.
#
# Usage: scripts/bench_scalability.sh [build-dir] [extra flags...]
#
# The build dir defaults to ./build and must already contain a compiled
# bench/bench_fig6_scalability (cmake -B build -S . && cmake --build build -j).
# Extra flags are passed through, e.g.:
#   scripts/bench_scalability.sh build --clients 1000000 --cohort 100
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_fig6_scalability"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found; build it first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

"$bench_bin" \
  --json-out "$repo_root/BENCH_scalability.json" \
  "$@"

echo "wrote $repo_root/BENCH_scalability.json"
