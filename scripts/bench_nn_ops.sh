#!/usr/bin/env bash
# Runs the NN kernel microbenchmarks and records BENCH_nn_ops.json at the
# repo root, so the kernel perf trajectory is tracked PR over PR.
#
# Usage: scripts/bench_nn_ops.sh [build-dir] [extra benchmark flags...]
#
# The build dir defaults to ./build and must already contain a compiled
# bench/bench_nn_ops (cmake -B build -S . && cmake --build build -j).
# Environment knobs the binary honors:
#   FEDMIGR_GEMM_KERNEL=portable   force the scalar micro-kernel
#   FEDMIGR_INTRA_OP_THREADS=N     default intra-op width (benchmarks that
#                                  pin their own width override this)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_nn_ops"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found; build it first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$repo_root/BENCH_nn_ops.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $repo_root/BENCH_nn_ops.json"
