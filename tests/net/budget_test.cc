#include "net/budget.h"

#include <gtest/gtest.h>

namespace fedmigr::net {
namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget budget;
  budget.ConsumeCompute(1e12);
  budget.ConsumeBandwidth(1e12);
  budget.ConsumeTime(1e12);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.ComputeUsedFraction(), 0.0);
  EXPECT_EQ(budget.BandwidthUsedFraction(), 0.0);
}

TEST(BudgetTest, TracksConsumption) {
  Budget budget(100.0, 1000.0, 50.0);
  budget.ConsumeCompute(30.0);
  budget.ConsumeBandwidth(400.0);
  budget.ConsumeTime(10.0);
  EXPECT_DOUBLE_EQ(budget.compute_remaining(), 70.0);
  EXPECT_DOUBLE_EQ(budget.bandwidth_remaining(), 600.0);
  EXPECT_DOUBLE_EQ(budget.time_remaining(), 40.0);
  EXPECT_FALSE(budget.Exhausted());
}

TEST(BudgetTest, ExhaustionOnAnyDimension) {
  {
    Budget budget(10.0, 1000.0);
    budget.ConsumeCompute(10.0);
    EXPECT_TRUE(budget.Exhausted());
  }
  {
    Budget budget(1000.0, 10.0);
    budget.ConsumeBandwidth(11.0);
    EXPECT_TRUE(budget.Exhausted());
  }
  {
    Budget budget(1000.0, 1000.0, 5.0);
    budget.ConsumeTime(6.0);
    EXPECT_TRUE(budget.Exhausted());
  }
}

TEST(BudgetTest, UsedFractions) {
  Budget budget(200.0, 400.0);
  budget.ConsumeCompute(50.0);
  budget.ConsumeBandwidth(100.0);
  EXPECT_DOUBLE_EQ(budget.ComputeUsedFraction(), 0.25);
  EXPECT_DOUBLE_EQ(budget.BandwidthUsedFraction(), 0.25);
}

TEST(BudgetTest, FractionsClampToOne) {
  Budget budget(10.0, 10.0);
  budget.ConsumeCompute(100.0);
  EXPECT_DOUBLE_EQ(budget.ComputeUsedFraction(), 1.0);
}

TEST(BudgetTest, AccumulatesAcrossCalls) {
  Budget budget(100.0, 100.0);
  for (int i = 0; i < 10; ++i) budget.ConsumeCompute(5.0);
  EXPECT_DOUBLE_EQ(budget.compute_used(), 50.0);
}

}  // namespace
}  // namespace fedmigr::net
