#include "net/traffic.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace fedmigr::net {
namespace {

TEST(TrafficTest, EmptyAccountant) {
  TrafficAccountant traffic;
  EXPECT_EQ(traffic.total_bytes(), 0);
  EXPECT_EQ(traffic.num_transfers(), 0);
  EXPECT_EQ(traffic.LinkCount(0, 1), 0);
}

TEST(TrafficTest, SplitsC2sAndC2c) {
  TrafficAccountant traffic;
  traffic.Record(0, kServerId, 100);
  traffic.Record(kServerId, 1, 200);
  traffic.Record(0, 1, 50);
  EXPECT_EQ(traffic.c2s_bytes(), 300);
  EXPECT_EQ(traffic.c2c_bytes(), 50);
  EXPECT_EQ(traffic.total_bytes(), 350);
  EXPECT_EQ(traffic.num_transfers(), 3);
}

TEST(TrafficTest, GbConversion) {
  TrafficAccountant traffic;
  traffic.Record(0, 1, 2500000000LL);
  EXPECT_DOUBLE_EQ(traffic.total_gb(), 2.5);
  EXPECT_DOUBLE_EQ(traffic.c2c_gb(), 2.5);
  EXPECT_DOUBLE_EQ(traffic.c2s_gb(), 0.0);
}

TEST(TrafficTest, LinkCountsAreUndirected) {
  TrafficAccountant traffic;
  traffic.Record(2, 7, 10);
  traffic.Record(7, 2, 30);
  EXPECT_EQ(traffic.LinkCount(2, 7), 2);
  EXPECT_EQ(traffic.LinkCount(7, 2), 2);
  EXPECT_EQ(traffic.LinkBytes(2, 7), 40);
}

TEST(TrafficTest, ServerLinksTrackedPerClient) {
  TrafficAccountant traffic;
  traffic.Record(0, kServerId, 10);
  traffic.Record(1, kServerId, 20);
  EXPECT_EQ(traffic.LinkCount(0, kServerId), 1);
  EXPECT_EQ(traffic.LinkCount(1, kServerId), 1);
  EXPECT_EQ(traffic.LinkBytes(1, kServerId), 20);
}

TEST(TrafficTest, ResetClearsEverything) {
  TrafficAccountant traffic;
  traffic.Record(0, 1, 100);
  traffic.Record(0, kServerId, 100);
  traffic.Reset();
  EXPECT_EQ(traffic.total_bytes(), 0);
  EXPECT_EQ(traffic.num_transfers(), 0);
  EXPECT_EQ(traffic.LinkCount(0, 1), 0);
}

TEST(TrafficTest, ZeroByteTransferCounts) {
  TrafficAccountant traffic;
  traffic.Record(0, 1, 0);
  EXPECT_EQ(traffic.num_transfers(), 1);
  EXPECT_EQ(traffic.total_bytes(), 0);
}

}  // namespace
}  // namespace fedmigr::net
