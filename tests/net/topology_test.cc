#include "net/topology.h"

#include <gtest/gtest.h>

namespace fedmigr::net {
namespace {

TEST(EvenLanAssignmentTest, Balanced) {
  EXPECT_EQ(EvenLanAssignment(10, 3),
            (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
  EXPECT_EQ(EvenLanAssignment(4, 2), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(EvenLanAssignment(3, 3), (std::vector<int>{0, 1, 2}));
}

TEST(TopologyTest, LanMembership) {
  const Topology t = MakeC10SimTopology();
  EXPECT_EQ(t.num_clients(), 10);
  EXPECT_EQ(t.num_lans(), 3);
  EXPECT_TRUE(t.SameLan(0, 3));
  EXPECT_FALSE(t.SameLan(3, 4));
  EXPECT_EQ(t.lan_of(9), 2);
}

TEST(TopologyTest, C100SimTopology) {
  const Topology t = MakeC100SimTopology();
  EXPECT_EQ(t.num_clients(), 20);
  EXPECT_EQ(t.num_lans(), 5);
}

TEST(TopologyTest, BandwidthTiers) {
  const Topology t = MakeC10SimTopology();
  const double intra = t.BandwidthMbps(0, 1);   // same LAN
  const double cross = t.BandwidthMbps(0, 5);   // cross LAN
  const double wan = t.BandwidthMbps(0, kServerId);
  EXPECT_GT(intra, cross);
  EXPECT_GT(cross, wan);
}

TEST(TopologyTest, TransferTimeScalesWithBytes) {
  const Topology t = MakeC10SimTopology();
  const double small = t.TransferSeconds(0, 1, 1000);
  const double large = t.TransferSeconds(0, 1, 1000000);
  EXPECT_GT(large, small);
  // Latency floor: even 0 bytes cost the fixed latency.
  EXPECT_GE(t.TransferSeconds(0, 1, 0), t.config().link_latency_s);
}

TEST(TopologyTest, TransferTimeKnownValue) {
  TopologyConfig config;
  config.lan_of = {0, 0};
  config.intra_lan_mbps = 8.0;  // 1 MB/s
  config.link_latency_s = 0.0;
  const Topology t(std::move(config));
  EXPECT_NEAR(t.TransferSeconds(0, 1, 1000000), 1.0, 1e-9);
}

TEST(TopologyTest, WanSlowerThanC2C) {
  const Topology t = MakeC10SimTopology();
  const int64_t bytes = 1 << 20;
  EXPECT_GT(t.TransferSeconds(0, kServerId, bytes),
            t.TransferSeconds(0, 5, bytes));
}

TEST(TopologyTest, LinkMultiplierSlowsLink) {
  Topology t = MakeC10SimTopology();
  const double before = t.TransferSeconds(0, 5, 1 << 20);
  t.SetLinkMultiplier(0, 5, 0.25);
  EXPECT_NEAR(t.BandwidthMbps(0, 5),
              0.25 * t.config().cross_lan_mbps, 1e-9);
  EXPECT_GT(t.TransferSeconds(0, 5, 1 << 20), before);
  // Symmetric.
  EXPECT_EQ(t.LinkMultiplier(5, 0), 0.25);
}

TEST(TopologyTest, MultiplierDoesNotAffectOtherLinks) {
  Topology t = MakeC10SimTopology();
  t.SetLinkMultiplier(0, 5, 0.1);
  EXPECT_EQ(t.LinkMultiplier(0, 6), 1.0);
  EXPECT_NEAR(t.BandwidthMbps(1, 5), t.config().cross_lan_mbps, 1e-9);
}

TEST(TopologyTest, DefaultConstructedIsSingleClient) {
  const Topology t;
  EXPECT_EQ(t.num_clients(), 1);
  EXPECT_EQ(t.num_lans(), 1);
}

}  // namespace
}  // namespace fedmigr::net
