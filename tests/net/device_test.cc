#include "net/device.h"

#include <gtest/gtest.h>

namespace fedmigr::net {
namespace {

TEST(DeviceTest, ProfileOrdering) {
  // Workstation > Xavier NX > Jetson TX2, as in the paper's testbed.
  EXPECT_GT(MakeProfile(DeviceType::kWorkstation).samples_per_second,
            MakeProfile(DeviceType::kXavierNx).samples_per_second);
  EXPECT_GT(MakeProfile(DeviceType::kXavierNx).samples_per_second,
            MakeProfile(DeviceType::kJetsonTx2).samples_per_second);
}

TEST(DeviceTest, ComputeSecondsScalesWithSamples) {
  const DeviceProfile device = MakeProfile(DeviceType::kJetsonTx2);
  const double t1 = ComputeSeconds(device, 100, 10000);
  const double t2 = ComputeSeconds(device, 200, 10000);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(DeviceTest, ComputeSecondsScalesWithModelSize) {
  const DeviceProfile device = MakeProfile(DeviceType::kXavierNx);
  const double small = ComputeSeconds(device, 100, 10000);
  const double large = ComputeSeconds(device, 100, 40000);
  EXPECT_NEAR(large, 4.0 * small, 1e-9);
}

TEST(DeviceTest, TinyModelCostFloor) {
  const DeviceProfile device = MakeProfile(DeviceType::kXavierNx);
  // Models much smaller than the reference are clamped to a 0.1x floor.
  const double tiny = ComputeSeconds(device, 100, 1);
  const double reference = ComputeSeconds(device, 100, 10000);
  EXPECT_NEAR(tiny, 0.1 * reference, 1e-9);
}

TEST(DeviceTest, TestbedFleetAlternates) {
  const auto fleet = MakeTestbedFleet(4);
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet[0].type, DeviceType::kJetsonTx2);
  EXPECT_EQ(fleet[1].type, DeviceType::kXavierNx);
  EXPECT_EQ(fleet[2].type, DeviceType::kJetsonTx2);
}

TEST(DeviceTest, UniformFleet) {
  const auto fleet = MakeUniformFleet(5, 123.0);
  ASSERT_EQ(fleet.size(), 5u);
  for (const auto& device : fleet) {
    EXPECT_EQ(device.samples_per_second, 123.0);
  }
}

TEST(DeviceTest, HeterogeneousFleetHasStraggler) {
  // The slowest device bounds the parallel phase; verify the fleet really
  // is heterogeneous so straggler effects exist in the simulation.
  const auto fleet = MakeTestbedFleet(10);
  double fastest = 0.0, slowest = 1e18;
  for (const auto& device : fleet) {
    fastest = std::max(fastest, device.samples_per_second);
    slowest = std::min(slowest, device.samples_per_second);
  }
  EXPECT_GT(fastest, slowest);
}

}  // namespace
}  // namespace fedmigr::net
