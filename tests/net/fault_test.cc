#include "net/fault.h"

#include <cmath>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic.h"

namespace fedmigr::net {
namespace {

TEST(FaultConfigTest, DefaultIsDisabled) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  FaultInjector injector(config);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectorTest, DisabledTransferMatchesDirectAccounting) {
  const Topology topology = MakeC10SimTopology();
  FaultInjector injector;
  TrafficAccountant traffic;
  const TransferResult res = injector.Transfer(0, 1, 1000, topology, &traffic);
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.bytes, 1000);
  EXPECT_FALSE(res.corrupted);
  // Byte-identical to the direct path: same seconds, one traffic record.
  EXPECT_EQ(res.seconds, topology.TransferSeconds(0, 1, 1000));
  EXPECT_EQ(traffic.c2c_bytes(), 1000);
  EXPECT_EQ(traffic.num_transfers(), 1);
  EXPECT_EQ(injector.counters().attempts, 0);  // no-op path skips counters
}

TEST(FaultInjectorTest, DisabledEpochRollIsFree) {
  FaultInjector injector;
  injector.BeginEpoch(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.IsCrashed(i));
    EXPECT_EQ(injector.SlowdownFactor(i), 1.0);
  }
}

TEST(FaultInjectorTest, CertainFailureExhaustsRetries) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.link_failure_prob = 0.999999;
  config.max_retries = 2;
  FaultInjector injector(config);
  TrafficAccountant traffic;
  const TransferResult res = injector.Transfer(0, 1, 1000, topology, &traffic);
  EXPECT_FALSE(res.status.ok());
  EXPECT_EQ(res.status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(res.attempts, 3);
  // Failed attempts are still charged: bytes and records accumulate.
  EXPECT_EQ(res.bytes, 3000);
  EXPECT_EQ(traffic.c2c_bytes(), 3000);
  EXPECT_EQ(injector.counters().failures, 3);
  EXPECT_EQ(injector.counters().retries, 2);
  EXPECT_EQ(injector.counters().aborted_transfers, 1);
}

TEST(FaultInjectorTest, BackoffExtendsFailedTransferTime) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.link_failure_prob = 0.999999;
  config.max_retries = 2;
  config.backoff_base_s = 1.0;
  FaultInjector injector(config);
  const TransferResult res = injector.Transfer(0, 1, 1000, topology, nullptr);
  // 3 attempts + backoffs of 1s and 2s.
  const double attempt = topology.TransferSeconds(0, 1, 1000);
  EXPECT_NEAR(res.seconds, 3 * attempt + 1.0 + 2.0, 1e-9);
}

TEST(FaultInjectorTest, DeadlineAbandonsSlowTransfer) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.link_failure_prob = 0.999999;
  config.max_retries = 10;
  config.backoff_base_s = 1.0;
  config.transfer_deadline_s = 2.5;
  FaultInjector injector(config);
  const TransferResult res = injector.Transfer(0, 1, 1000, topology, nullptr);
  EXPECT_FALSE(res.status.ok());
  EXPECT_EQ(res.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(res.seconds, 2.5);  // the sender waits out the deadline
  EXPECT_GT(injector.counters().deadline_aborts, 0);
}

TEST(FaultInjectorTest, ReliableLinkDeliversFirstTry) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.crash_prob = 0.5;  // enabled, but links themselves are clean
  FaultInjector injector(config);
  TrafficAccountant traffic;
  const TransferResult res =
      injector.Transfer(0, net::kServerId, 500, topology, &traffic);
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.bytes, 500);
  EXPECT_EQ(traffic.c2s_bytes(), 500);
}

TEST(FaultInjectorTest, CorruptionFlagsDeliveries) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.corruption_prob = 1.0;
  FaultInjector injector(config);
  const TransferResult res = injector.Transfer(0, 1, 100, topology, nullptr);
  EXPECT_TRUE(res.status.ok());
  EXPECT_TRUE(res.corrupted);
  EXPECT_EQ(injector.counters().corrupted, 1);
}

TEST(FaultInjectorTest, CrashWindowsLastSampledEpochs) {
  FaultConfig config;
  config.crash_prob = 0.999999;
  config.crash_min_epochs = 2;
  config.crash_max_epochs = 2;
  FaultInjector injector(config);
  injector.BeginEpoch(1);
  EXPECT_TRUE(injector.IsCrashed(0));
  injector.BeginEpoch(1);  // still down (2-epoch window)...
  injector.BeginEpoch(1);  // ...but crash_prob re-fires immediately
  EXPECT_TRUE(injector.IsCrashed(0));
  EXPECT_GE(injector.counters().crashes, 1);
  EXPECT_GE(injector.counters().crash_epochs, 2);
}

TEST(FaultInjectorTest, CrashRecoveryWithZeroReCrashProb) {
  // One deterministic crash, then force recovery by observing the window.
  FaultConfig config;
  config.crash_prob = 0.999999;
  config.crash_min_epochs = 1;
  config.crash_max_epochs = 1;
  FaultInjector injector(config);
  injector.BeginEpoch(3);
  EXPECT_TRUE(injector.IsCrashed(1));
  // The server id is never crashed.
  EXPECT_FALSE(injector.IsCrashed(kServerId));
}

TEST(FaultInjectorTest, StragglersSlowDown) {
  FaultConfig config;
  config.straggler_prob = 1.0;
  config.straggler_slowdown = 3.0;
  FaultInjector injector(config);
  injector.BeginEpoch(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.SlowdownFactor(i), 3.0);
  }
  EXPECT_EQ(injector.SlowdownFactor(kServerId), 1.0);
}

TEST(FaultInjectorTest, StragglerSlowsTransfers) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.straggler_prob = 1.0;
  config.straggler_slowdown = 2.0;
  FaultInjector injector(config);
  injector.BeginEpoch(10);
  const TransferResult res = injector.Transfer(0, 1, 1000, topology, nullptr);
  EXPECT_NEAR(res.seconds, 2.0 * topology.TransferSeconds(0, 1, 1000), 1e-12);
}

TEST(FaultInjectorTest, JitterDegradesBandwidthWithinBounds) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.bandwidth_jitter = 0.5;
  FaultInjector injector(config);
  const double nominal = topology.TransferSeconds(0, 1, 1 << 20);
  for (int trial = 0; trial < 50; ++trial) {
    const TransferResult res =
        injector.Transfer(0, 1, 1 << 20, topology, nullptr);
    EXPECT_GE(res.seconds, nominal);
    EXPECT_LE(res.seconds, nominal * 1.5 + 1e-12);
  }
}

TEST(FaultInjectorTest, DeterministicAcrossInstances) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.link_failure_prob = 0.3;
  config.corruption_prob = 0.1;
  config.bandwidth_jitter = 0.2;
  config.seed = 11;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int t = 0; t < 40; ++t) {
    const TransferResult ra = a.Transfer(0, 5, 1000, topology, nullptr);
    const TransferResult rb = b.Transfer(0, 5, 1000, topology, nullptr);
    EXPECT_EQ(ra.status.ok(), rb.status.ok());
    EXPECT_EQ(ra.seconds, rb.seconds);
    EXPECT_EQ(ra.attempts, rb.attempts);
    EXPECT_EQ(ra.corrupted, rb.corrupted);
  }
  EXPECT_EQ(a.counters().failures, b.counters().failures);
}

TEST(FaultInjectorStateTest, SaveLoadContinuesIdenticalTrajectory) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.link_failure_prob = 0.25;
  config.corruption_prob = 0.1;
  config.bandwidth_jitter = 0.3;
  config.crash_prob = 0.1;
  config.straggler_prob = 0.2;
  config.seed = 31;

  // Drive one injector through a mixed workload, snapshot it mid-stream.
  FaultInjector reference(config);
  for (int epoch = 0; epoch < 5; ++epoch) {
    reference.BeginEpoch(10);
    for (int i = 0; i < 6; ++i) {
      reference.Transfer(i, (i + 3) % 10, 5000, topology, nullptr);
    }
  }
  util::ByteWriter writer;
  reference.SaveState(&writer);
  FaultInjector restored(config);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored.counters().attempts, reference.counters().attempts);
  EXPECT_EQ(restored.counters().failures, reference.counters().failures);
  EXPECT_EQ(restored.counters().crashes, reference.counters().crashes);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(restored.IsCrashed(i), reference.IsCrashed(i));
    EXPECT_EQ(restored.SlowdownFactor(i), reference.SlowdownFactor(i));
  }
  // Both continue producing the exact same fault trajectory.
  for (int epoch = 0; epoch < 5; ++epoch) {
    reference.BeginEpoch(10);
    restored.BeginEpoch(10);
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(restored.IsCrashed(i), reference.IsCrashed(i));
      ASSERT_EQ(restored.SlowdownFactor(i), reference.SlowdownFactor(i));
    }
    for (int i = 0; i < 6; ++i) {
      const TransferResult ra =
          reference.Transfer(i, (i + 3) % 10, 5000, topology, nullptr);
      const TransferResult rb =
          restored.Transfer(i, (i + 3) % 10, 5000, topology, nullptr);
      ASSERT_EQ(ra.status.ok(), rb.status.ok());
      ASSERT_EQ(ra.seconds, rb.seconds);
      ASSERT_EQ(ra.bytes, rb.bytes);
      ASSERT_EQ(ra.attempts, rb.attempts);
      ASSERT_EQ(ra.corrupted, rb.corrupted);
    }
  }
  EXPECT_EQ(restored.counters().attempts, reference.counters().attempts);
  EXPECT_EQ(restored.counters().corrupted, reference.counters().corrupted);
}

TEST(ChaosConfigTest, ZeroedChaosKeepsInjectorDisabled) {
  FaultConfig config;
  EXPECT_FALSE(config.chaos.enabled());
  EXPECT_FALSE(config.enabled());
  // A chaos-only config enables the injector without touching any RNG knob.
  config.chaos.churn_rate = 0.1;
  EXPECT_TRUE(config.chaos.enabled());
  EXPECT_TRUE(config.enabled());
}

TEST(ChaosScheduleTest, PartitionSealsCrossLanAndServerHops) {
  const Topology topology = MakeC10SimTopology();  // LANs {0..3},{4..6},{7..9}
  FaultConfig config;
  config.chaos.partitions.push_back({/*lan=*/1, /*start_epoch=*/2,
                                     /*duration_epochs=*/3});
  FaultInjector injector(config);
  TrafficAccountant traffic;

  injector.BeginEpoch(10);  // epoch 1: window not yet open
  EXPECT_FALSE(injector.LanSealed(1, injector.epoch()));
  EXPECT_TRUE(injector.Transfer(4, 0, 100, topology, &traffic).status.ok());

  injector.BeginEpoch(10);  // epoch 2: LAN 1 sealed
  EXPECT_TRUE(injector.LanSealed(1, injector.epoch()));
  EXPECT_FALSE(injector.LanSealed(0, injector.epoch()));
  const int64_t bytes_before = traffic.total_bytes();
  // Cross-boundary C2C, both directions, and the server hop all fail fast
  // with connection-setup latency, zero bytes, no traffic record.
  const TransferResult out = injector.Transfer(4, 0, 100, topology, &traffic);
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(out.bytes, 0);
  EXPECT_EQ(out.seconds, topology.config().link_latency_s);
  EXPECT_FALSE(injector.Transfer(0, 5, 100, topology, &traffic).status.ok());
  EXPECT_FALSE(
      injector.Transfer(4, kServerId, 100, topology, &traffic).status.ok());
  EXPECT_FALSE(
      injector.Transfer(kServerId, 6, 100, topology, &traffic).status.ok());
  EXPECT_EQ(traffic.total_bytes(), bytes_before);
  // Intra-LAN traffic inside the sealed LAN continues, as does traffic
  // that never touches it.
  EXPECT_TRUE(injector.Transfer(4, 5, 100, topology, &traffic).status.ok());
  EXPECT_TRUE(injector.Transfer(0, 1, 100, topology, &traffic).status.ok());
  EXPECT_TRUE(
      injector.Transfer(0, kServerId, 100, topology, &traffic).status.ok());
  EXPECT_EQ(injector.counters().partitioned_transfers, 4);

  injector.BeginEpoch(10);  // epochs 3, 4: still sealed
  injector.BeginEpoch(10);
  EXPECT_TRUE(injector.LanSealed(1, injector.epoch()));
  injector.BeginEpoch(10);  // epoch 5: window closed
  EXPECT_FALSE(injector.LanSealed(1, injector.epoch()));
  EXPECT_TRUE(injector.Transfer(4, 0, 100, topology, &traffic).status.ok());
}

TEST(ChaosScheduleTest, RecurringPartitionGenerator) {
  FaultConfig config;
  config.chaos.partition_period = 5;
  config.chaos.partition_phase = 2;
  config.chaos.partition_lan = 0;
  config.chaos.partition_epochs = 2;
  FaultInjector injector(config);
  // Sealed at epochs 2,3, 7,8, 12,13, ...
  for (int epoch = 1; epoch <= 14; ++epoch) {
    const bool sealed = (epoch - 2) >= 0 && (epoch - 2) % 5 < 2;
    EXPECT_EQ(injector.LanSealed(0, epoch), sealed) << "epoch " << epoch;
    EXPECT_FALSE(injector.LanSealed(1, epoch));
  }
  EXPECT_EQ(injector.ActivePartitions(2), 1);
  EXPECT_EQ(injector.ActivePartitions(4), 0);
}

TEST(ChaosScheduleTest, OutageBlocksOnlyServerHops) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.chaos.outages.push_back({/*start_epoch=*/1, /*duration_epochs=*/2});
  FaultInjector injector(config);
  TrafficAccountant traffic;
  injector.BeginEpoch(10);
  EXPECT_TRUE(injector.ServerDown(injector.epoch()));
  EXPECT_FALSE(
      injector.Transfer(0, kServerId, 100, topology, &traffic).status.ok());
  EXPECT_FALSE(
      injector.Transfer(kServerId, 9, 100, topology, &traffic).status.ok());
  // C2C is unaffected, including cross-LAN.
  EXPECT_TRUE(injector.Transfer(0, 9, 100, topology, &traffic).status.ok());
  EXPECT_EQ(injector.counters().outage_transfers, 2);
  injector.BeginEpoch(10);
  injector.BeginEpoch(10);  // epoch 3: outage over
  EXPECT_FALSE(injector.ServerDown(injector.epoch()));
  EXPECT_TRUE(
      injector.Transfer(0, kServerId, 100, topology, &traffic).status.ok());
}

TEST(ChaosScheduleTest, ChurnIsAPureHashAtTheConfiguredRate) {
  FaultConfig config;
  config.chaos.churn_rate = 0.2;
  FaultInjector a(config);
  FaultInjector b(config);
  int out = 0;
  const int clients = 500;
  const int rounds = 40;
  for (int r = 0; r < rounds; ++r) {
    for (int c = 0; c < clients; ++c) {
      ASSERT_EQ(a.ChurnedOut(c, r), b.ChurnedOut(c, r));
      if (a.ChurnedOut(c, r)) ++out;
    }
  }
  // Pure in (client, round): no draw above consumed injector RNG, so the
  // answer is stable across repeated queries and instances.
  EXPECT_EQ(a.ChurnedOut(3, 7), b.ChurnedOut(3, 7));
  const double rate = static_cast<double>(out) / (clients * rounds);
  EXPECT_NEAR(rate, 0.2, 0.02);
  // A different churn seed reshuffles membership.
  FaultConfig other = config;
  other.chaos.churn_seed = 999;
  FaultInjector c(other);
  int diff = 0;
  for (int i = 0; i < clients; ++i) {
    if (a.ChurnedOut(i, 0) != c.ChurnedOut(i, 0)) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(ChaosScheduleTest, ChaosDrawsNoRngFromTheFaultStreams) {
  // Two injectors with identical link-fault knobs, one with a partition
  // schedule on top: their transfer trajectories outside sealed windows
  // must be bit-identical (the chaos layer consumes no RNG).
  const Topology topology = MakeC10SimTopology();
  FaultConfig plain;
  plain.link_failure_prob = 0.3;
  plain.bandwidth_jitter = 0.2;
  plain.seed = 13;
  FaultConfig chaotic = plain;
  chaotic.chaos.partitions.push_back({/*lan=*/2, /*start_epoch=*/100,
                                      /*duration_epochs=*/1});
  chaotic.chaos.churn_rate = 0.3;
  FaultInjector a(plain);
  FaultInjector b(chaotic);
  for (int epoch = 0; epoch < 5; ++epoch) {
    a.BeginEpoch(10);
    b.BeginEpoch(10);
    for (int i = 0; i < 6; ++i) {
      const TransferResult ra = a.Transfer(i, (i + 2) % 10, 700, topology,
                                           nullptr);
      const TransferResult rb = b.Transfer(i, (i + 2) % 10, 700, topology,
                                           nullptr);
      ASSERT_EQ(ra.status.ok(), rb.status.ok());
      ASSERT_EQ(ra.seconds, rb.seconds);
      ASSERT_EQ(ra.attempts, rb.attempts);
    }
  }
}

TEST(FaultInjectorStateTest, ChaosEpochSurvivesSaveLoad) {
  const Topology topology = MakeC10SimTopology();
  FaultConfig config;
  config.chaos.partitions.push_back({/*lan=*/0, /*start_epoch=*/3,
                                     /*duration_epochs=*/2});
  FaultInjector reference(config);
  reference.BeginEpoch(10);
  reference.BeginEpoch(10);
  reference.Transfer(0, kServerId, 100, topology, nullptr);  // epoch 2: open

  util::ByteWriter writer;
  reference.SaveState(&writer);
  FaultInjector restored(config);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.epoch(), reference.epoch());

  // Both cross into the sealed window in lockstep.
  reference.BeginEpoch(10);
  restored.BeginEpoch(10);
  const TransferResult ra =
      reference.Transfer(0, kServerId, 100, topology, nullptr);
  const TransferResult rb =
      restored.Transfer(0, kServerId, 100, topology, nullptr);
  EXPECT_FALSE(ra.status.ok());
  EXPECT_FALSE(rb.status.ok());
  EXPECT_EQ(restored.counters().partitioned_transfers,
            reference.counters().partitioned_transfers);
}

TEST(FaultInjectorStateTest, TruncatedStateRejected) {
  FaultConfig config;
  config.crash_prob = 0.5;
  config.seed = 7;
  FaultInjector injector(config);
  injector.BeginEpoch(4);
  util::ByteWriter writer;
  injector.SaveState(&writer);
  for (size_t cut = 0; cut < writer.size(); cut += 3) {
    FaultInjector victim(config);
    util::ByteReader reader(writer.bytes().data(), cut);
    EXPECT_FALSE(victim.LoadState(&reader).ok()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace fedmigr::net
