#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedmigr::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogits) {
  Tensor logits({1, 4});  // all zeros -> uniform softmax
  const LossResult result = SoftmaxCrossEntropy(logits, {2});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionLowLoss) {
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  const LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(result.loss, 1e-3);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongPredictionHighLoss) {
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  const LossResult result = SoftmaxCrossEntropy(logits, {1});
  EXPECT_GT(result.loss, 5.0);
}

TEST(SoftmaxCrossEntropyTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits({1, 2});  // softmax = (0.5, 0.5)
  const LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_NEAR(result.grad_logits.At(0, 0), -0.5f, 1e-6f);
  EXPECT_NEAR(result.grad_logits.At(0, 1), 0.5f, 1e-6f);
}

TEST(SoftmaxCrossEntropyTest, GradientScaledByBatch) {
  Tensor logits({2, 2});
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 1});
  // Each row's gradient is divided by batch size 2.
  EXPECT_NEAR(result.grad_logits.At(0, 0), -0.25f, 1e-6f);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  Tensor logits({2, 3}, {0.5f, -1.0f, 2.0f, 0.0f, 1.0f, -0.5f});
  const std::vector<int> labels = {2, 0};
  const LossResult base = SoftmaxCrossEntropy(logits, labels);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor perturbed = logits;
    perturbed[i] += static_cast<float>(eps);
    const double plus = SoftmaxCrossEntropy(perturbed, labels).loss;
    perturbed[i] -= static_cast<float>(2 * eps);
    const double minus = SoftmaxCrossEntropy(perturbed, labels).loss;
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(numeric, base.grad_logits[i], 1e-3);
  }
}

TEST(SoftmaxCrossEntropyTest, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 999.0f});
  const LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_LT(result.loss, 1.0);
}

TEST(MeanSquaredErrorTest, ZeroForIdentical) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  const LossResult result = MeanSquaredError(a, a);
  EXPECT_EQ(result.loss, 0.0);
  EXPECT_EQ(result.grad_logits.Sum(), 0.0);
}

TEST(MeanSquaredErrorTest, KnownValue) {
  Tensor pred({1, 2}, {1.0f, 3.0f});
  Tensor target({1, 2}, {0.0f, 1.0f});
  const LossResult result = MeanSquaredError(pred, target);
  EXPECT_DOUBLE_EQ(result.loss, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(result.grad_logits[0], 1.0f);   // 2*(1-0)/2
  EXPECT_FLOAT_EQ(result.grad_logits[1], 2.0f);   // 2*(3-1)/2
}

TEST(AccuracyTest, PerfectAndZero) {
  Tensor logits({2, 3}, {5, 0, 0, 0, 0, 5});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {1, 1}), 0.0);
}

TEST(AccuracyTest, Partial) {
  Tensor logits({4, 2}, {1, 0, 0, 1, 1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1, 1}), 0.75);
}

}  // namespace
}  // namespace fedmigr::nn
