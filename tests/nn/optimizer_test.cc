#include "nn/optimizer.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/loss.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

// One-parameter quadratic: minimize (w - 3)^2 via a Dense(1,1) on input 1
// with MSE target 3 and zeroed bias — checks optimizer mechanics without a
// training loop.
Sequential ScalarModel(float w0) {
  util::Rng rng(1);
  auto dense = std::make_unique<Dense>(1, 1, &rng);
  (*dense->Params()[0])[0] = w0;
  (*dense->Params()[1])[0] = 0.0f;
  Sequential model;
  model.Add(std::move(dense));
  return model;
}

float Weight(Sequential& model) { return (*model.Params()[0])[0]; }

void StepOnce(Sequential* model, Optimizer* opt) {
  Tensor in({1, 1}, {1.0f});
  Tensor target({1, 1}, {3.0f});
  model->ZeroGrads();
  const Tensor out = model->Forward(in);
  const LossResult loss = MeanSquaredError(out, target);
  model->Backward(loss.grad_logits);
  opt->Step(model);
}

TEST(SgdTest, SingleStepMatchesHandComputation) {
  Sequential model = ScalarModel(0.0f);
  Sgd sgd(0.1);
  StepOnce(&model, &sgd);
  // grad = 2*(w - 3) = -6 on both weight and bias paths; w' = 0 + 0.1*6.
  EXPECT_NEAR(Weight(model), 0.6f, 1e-5f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sequential model = ScalarModel(0.0f);
  Sgd sgd(0.1);
  for (int i = 0; i < 100; ++i) StepOnce(&model, &sgd);
  // Weight + bias together fit the target (w + b -> 3).
  Tensor in({1, 1}, {1.0f});
  EXPECT_NEAR(model.Forward(in)[0], 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesFirstSteps) {
  Sequential plain_model = ScalarModel(0.0f);
  Sequential momentum_model = ScalarModel(0.0f);
  Sgd plain(0.01);
  Sgd with_momentum(0.01, 0.9);
  for (int i = 0; i < 10; ++i) {
    StepOnce(&plain_model, &plain);
    StepOnce(&momentum_model, &with_momentum);
  }
  EXPECT_GT(Weight(momentum_model), Weight(plain_model));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  util::Rng rng(2);
  Sequential model;
  model.Add(std::make_unique<Dense>(3, 3, &rng));
  const double norm_before = model.ParamNorm();
  Sgd sgd(0.1, 0.0, /*weight_decay=*/0.5);
  model.ZeroGrads();  // pure decay, no data gradient
  sgd.Step(&model);
  EXPECT_LT(model.ParamNorm(), norm_before);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Sequential model = ScalarModel(0.0f);
  Adam adam(0.1);
  for (int i = 0; i < 200; ++i) StepOnce(&model, &adam);
  Tensor in({1, 1}, {1.0f});
  EXPECT_NEAR(model.Forward(in)[0], 3.0f, 1e-2f);
}

TEST(AdamTest, FirstStepBoundedByLearningRate) {
  Sequential model = ScalarModel(0.0f);
  Adam adam(0.05);
  StepOnce(&model, &adam);
  // Adam's first update magnitude is ~lr regardless of gradient scale.
  EXPECT_NEAR(Weight(model), 0.05f, 0.01f);
}

TEST(AdamTest, HandlesZeroGradient) {
  Sequential model = ScalarModel(1.0f);
  Adam adam(0.1);
  model.ZeroGrads();
  adam.Step(&model);
  EXPECT_NEAR(Weight(model), 1.0f, 1e-6f);
}

TEST(OptimizerTest, SetLearningRate) {
  Sgd sgd(0.1);
  sgd.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
}

}  // namespace
}  // namespace fedmigr::nn
