#include "nn/sequential.h"

#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

Sequential TwoLayerMlp(uint64_t seed) {
  util::Rng rng(seed);
  Sequential model;
  model.Add(std::make_unique<Dense>(4, 8, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<Dense>(8, 3, &rng));
  return model;
}

TEST(SequentialTest, ForwardShape) {
  Sequential model = TwoLayerMlp(1);
  Tensor in({5, 4});
  EXPECT_EQ(model.Forward(in).shape(), (Shape{5, 3}));
}

TEST(SequentialTest, NumParamsAndByteSize) {
  Sequential model = TwoLayerMlp(2);
  // (4*8 + 8) + (8*3 + 3) = 67.
  EXPECT_EQ(model.NumParams(), 67);
  EXPECT_EQ(model.ByteSize(), 268);
}

TEST(SequentialTest, CopyIsDeep) {
  Sequential a = TwoLayerMlp(3);
  Sequential b = a;
  (*a.Params()[0])[0] += 5.0f;
  EXPECT_NE((*a.Params()[0])[0], (*b.Params()[0])[0]);
}

TEST(SequentialTest, CopyParamsFrom) {
  Sequential a = TwoLayerMlp(4);
  Sequential b = TwoLayerMlp(5);
  EXPECT_GT(Sequential::ParamDistance(a, b), 0.0);
  b.CopyParamsFrom(a);
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SequentialTest, LerpParamsHalfway) {
  Sequential a = TwoLayerMlp(6);
  Sequential b = TwoLayerMlp(7);
  Sequential mid = a;
  mid.LerpParamsFrom(b, 0.5f);
  const double da = Sequential::ParamDistance(mid, a);
  const double db = Sequential::ParamDistance(mid, b);
  EXPECT_NEAR(da, db, 1e-4);
}

TEST(SequentialTest, LerpZeroAndOneAreEndpoints) {
  Sequential a = TwoLayerMlp(8);
  Sequential b = TwoLayerMlp(9);
  Sequential x = a;
  x.LerpParamsFrom(b, 0.0f);
  EXPECT_NEAR(Sequential::ParamDistance(x, a), 0.0, 1e-5);
  x.LerpParamsFrom(b, 1.0f);
  EXPECT_NEAR(Sequential::ParamDistance(x, b), 0.0, 1e-5);
}

TEST(SequentialTest, ZeroGradsClearsAll) {
  Sequential model = TwoLayerMlp(10);
  Tensor in({2, 4});
  in.Fill(1.0f);
  (void)model.Forward(in);
  Tensor grad({2, 3});
  grad.Fill(1.0f);
  (void)model.Backward(grad);
  double grad_norm = 0.0;
  for (Tensor* g : model.Grads()) grad_norm += g->Norm();
  EXPECT_GT(grad_norm, 0.0);
  model.ZeroGrads();
  grad_norm = 0.0;
  for (Tensor* g : model.Grads()) grad_norm += g->Norm();
  EXPECT_EQ(grad_norm, 0.0);
}

TEST(SequentialTest, GradientsAccumulateAcrossBackwards) {
  Sequential model = TwoLayerMlp(11);
  Tensor in({1, 4});
  in.Fill(0.5f);
  Tensor grad({1, 3});
  grad.Fill(1.0f);
  (void)model.Forward(in);
  (void)model.Backward(grad);
  const double norm_once = model.Grads()[0]->Norm();
  (void)model.Forward(in);
  (void)model.Backward(grad);
  const double norm_twice = model.Grads()[0]->Norm();
  EXPECT_NEAR(norm_twice, 2.0 * norm_once, 1e-4);
}

TEST(SequentialTest, ParamDistanceIsMetricLike) {
  Sequential a = TwoLayerMlp(12);
  Sequential b = TwoLayerMlp(13);
  EXPECT_EQ(Sequential::ParamDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Sequential::ParamDistance(a, b),
                   Sequential::ParamDistance(b, a));
}

TEST(SequentialTest, ParamNormPositive) {
  Sequential model = TwoLayerMlp(14);
  EXPECT_GT(model.ParamNorm(), 0.0);
}

}  // namespace
}  // namespace fedmigr::nn
