// Property-style gradient sweeps: finite-difference checks across a grid
// of layer shapes and compositions, exercising interactions (conv into
// dense, pooling between convs, activations in every position) that the
// per-layer tests don't cover.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

using testing::CheckGradients;

Tensor RandomInput(Shape shape, uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// ---- Dense sweep over (in, out, batch). --------------------------------

class DenseGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseGradSweep, FiniteDifferences) {
  const auto [in, out, batch] = GetParam();
  util::Rng rng(static_cast<uint64_t>(in * 100 + out * 10 + batch));
  Sequential model;
  model.Add(std::make_unique<Dense>(in, out, &rng));
  const auto r = CheckGradients(
      &model, RandomInput({batch, in}, static_cast<uint64_t>(in + out)),
      &rng);
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseGradSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(7, 1, 2), std::make_tuple(5, 5, 4),
                      std::make_tuple(9, 3, 1)));

// ---- Conv sweep over (cin, cout, kernel, pad). -------------------------

class ConvGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvGradSweep, FiniteDifferences) {
  const auto [cin, cout, ksize, pad] = GetParam();
  util::Rng rng(static_cast<uint64_t>(cin * 37 + cout * 7 + ksize));
  Sequential model;
  model.Add(std::make_unique<Conv2D>(cin, cout, ksize, pad, &rng));
  const auto r = CheckGradients(
      &model, RandomInput({1, cin, 4, 4}, static_cast<uint64_t>(ksize)),
      &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradSweep,
    ::testing::Values(std::make_tuple(1, 1, 1, 0),
                      std::make_tuple(1, 2, 3, 1),
                      std::make_tuple(2, 1, 3, 0),
                      std::make_tuple(3, 3, 3, 1),
                      std::make_tuple(2, 2, 1, 0)));

// ---- Composed stacks. ---------------------------------------------------

TEST(ComposedGradCheck, ConvReluPoolDense) {
  util::Rng rng(71);
  Sequential model;
  model.Add(std::make_unique<Conv2D>(1, 2, 3, 1, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<MaxPool2x2>());
  model.Add(std::make_unique<Flatten>());
  model.Add(std::make_unique<Dense>(8, 3, &rng));
  const auto r = CheckGradients(&model, RandomInput({2, 1, 4, 4}, 72), &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

TEST(ComposedGradCheck, DoubleConvStack) {
  util::Rng rng(73);
  Sequential model;
  model.Add(std::make_unique<Conv2D>(2, 3, 3, 1, &rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Conv2D>(3, 2, 3, 1, &rng));
  const auto r = CheckGradients(&model, RandomInput({1, 2, 4, 4}, 74), &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

TEST(ComposedGradCheck, DeepMlpWithMixedActivations) {
  util::Rng rng(75);
  Sequential model;
  model.Add(std::make_unique<Dense>(5, 7, &rng));
  model.Add(std::make_unique<Sigmoid>());
  model.Add(std::make_unique<Dense>(7, 6, &rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Dense>(6, 4, &rng));
  model.Add(std::make_unique<Softmax>());
  const auto r = CheckGradients(&model, RandomInput({3, 5}, 76), &rng);
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(ComposedGradCheck, ResidualInsideStack) {
  util::Rng rng(77);
  Sequential model;
  model.Add(std::make_unique<Dense>(6, 8, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<ResidualDense>(8, 5, &rng));
  model.Add(std::make_unique<Dense>(8, 2, &rng));
  const auto r = CheckGradients(&model, RandomInput({2, 6}, 78), &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

}  // namespace
}  // namespace fedmigr::nn
