#include "nn/init.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace fedmigr::nn {
namespace {

TEST(InitTest, XavierUniformBoundsAndSpread) {
  util::Rng rng(1);
  Tensor weights({64, 64});
  const int fan_in = 64, fan_out = 64;
  XavierUniform(&weights, fan_in, fan_out, &rng);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  util::RunningStats stats;
  for (int64_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(weights[i], -bound);
    ASSERT_LE(weights[i], bound);
    stats.Add(weights[i]);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  // Uniform(-a, a) variance = a^2 / 3.
  EXPECT_NEAR(stats.variance(), bound * bound / 3.0, 0.002);
}

TEST(InitTest, HeNormalStatistics) {
  util::Rng rng(2);
  Tensor weights({128, 64});
  const int fan_in = 64;
  HeNormal(&weights, fan_in, &rng);
  util::RunningStats stats;
  for (int64_t i = 0; i < weights.size(); ++i) stats.Add(weights[i]);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(2.0 / fan_in), 0.02);
}

TEST(InitTest, DifferentRngStatesDiffer) {
  util::Rng a(3), b(4);
  Tensor wa({8, 8}), wb({8, 8});
  HeNormal(&wa, 8, &a);
  HeNormal(&wb, 8, &b);
  EXPECT_GT(MaxAbsDiff(wa, wb), 0.0f);
}

TEST(InitTest, SameRngStateReproduces) {
  Tensor wa({8, 8}), wb({8, 8});
  {
    util::Rng rng(5);
    HeNormal(&wa, 8, &rng);
  }
  {
    util::Rng rng(5);
    HeNormal(&wb, 8, &rng);
  }
  EXPECT_EQ(MaxAbsDiff(wa, wb), 0.0f);
}

}  // namespace
}  // namespace fedmigr::nn
