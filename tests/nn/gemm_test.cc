// Kernel-equivalence and determinism contract for the GEMM layer.
//
// Equivalence: the packed/blocked/vectorized paths (and the im2col conv
// lowering on top of them) must agree with the retained naive reference
// kernels over adversarial shapes — dimensions straddling the micro-tile
// (4) / row-panel (64) / column-panel (16) boundaries, pads 0–2, channel
// counts 1–9. Tolerances are loose enough for the AVX2+FMA path's fused
// multiply-adds, tight enough to catch any indexing mistake.
//
// Determinism: for a fixed configuration, outputs are bit-identical across
// intra-op thread counts 1, 2 and 8 — the contract that keeps seeded
// experiments reproducible no matter how the kernels are scheduled.

#include "nn/gemm.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedmigr::nn {
namespace {

Tensor RandomTensor(Shape shape, uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// Max |a-b| scaled by the largest magnitude involved, so the bound tracks
// the reduction depth rather than the raw values.
float RelativeDiff(const Tensor& a, const Tensor& b) {
  float max_mag = 1.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_mag = std::max({max_mag, std::fabs(a[i]), std::fabs(b[i])});
  }
  return MaxAbsDiff(a, b) / max_mag;
}

constexpr float kTol = 2e-5f;

// ------------------------------------------------------- MatMul vs naive --

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatMulMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const Tensor a = RandomTensor({m, k}, 1000 + static_cast<uint64_t>(m));
  const Tensor b = RandomTensor({k, n}, 2000 + static_cast<uint64_t>(n));
  EXPECT_LT(RelativeDiff(MatMul(a, b), MatMulNaive(a, b)), kTol);
}

TEST_P(GemmShapeTest, MatMulTransAMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const Tensor a = RandomTensor({k, m}, 3000 + static_cast<uint64_t>(m));
  const Tensor b = RandomTensor({k, n}, 4000 + static_cast<uint64_t>(n));
  EXPECT_LT(RelativeDiff(MatMulTransA(a, b), MatMulTransANaive(a, b)), kTol);
}

TEST_P(GemmShapeTest, MatMulTransBMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const Tensor a = RandomTensor({m, k}, 5000 + static_cast<uint64_t>(m));
  const Tensor b = RandomTensor({n, k}, 6000 + static_cast<uint64_t>(n));
  EXPECT_LT(RelativeDiff(MatMulTransB(a, b), MatMulTransBNaive(a, b)), kTol);
}

// Shapes chosen to straddle every blocking boundary: micro-tile rows (4),
// panel columns (16), parallel row-blocks (64), plus degenerate 1s.
INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(4, 16, 8), std::make_tuple(5, 17, 9),
                      std::make_tuple(63, 31, 33), std::make_tuple(64, 16, 64),
                      std::make_tuple(65, 15, 130), std::make_tuple(1, 129, 2),
                      std::make_tuple(129, 1, 65), std::make_tuple(70, 70, 70)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "n" +
             std::to_string(std::get<1>(info.param)) + "k" +
             std::to_string(std::get<2>(info.param));
    });

// --------------------------------------------------------- Conv vs naive --

class ConvLoweringTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvLoweringTest, ForwardAndBackwardMatchNaive) {
  const auto [cin, cout, size, ksize, pad] = GetParam();
  const uint64_t seed =
      static_cast<uint64_t>(cin * 1000 + cout * 100 + size * 10 + pad);
  const Tensor input = RandomTensor({3, cin, size, size}, seed);
  const Tensor kernel = RandomTensor({cout, cin, ksize, ksize}, seed + 1);
  const Tensor bias = RandomTensor({cout}, seed + 2);

  const Tensor out = Conv2dForward(input, kernel, bias, pad);
  const Tensor ref = Conv2dForwardNaive(input, kernel, bias, pad);
  ASSERT_TRUE(out.SameShape(ref));
  EXPECT_LT(RelativeDiff(out, ref), kTol);

  const Tensor grad_out = RandomTensor(out.shape(), seed + 3);
  Tensor gin, gker, gbias, gin_ref, gker_ref, gbias_ref;
  Conv2dBackward(input, kernel, pad, grad_out, &gin, &gker, &gbias);
  Conv2dBackwardNaive(input, kernel, pad, grad_out, &gin_ref, &gker_ref,
                      &gbias_ref);
  EXPECT_LT(RelativeDiff(gin, gin_ref), kTol);
  EXPECT_LT(RelativeDiff(gker, gker_ref), kTol);
  EXPECT_LT(RelativeDiff(gbias, gbias_ref), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, ConvLoweringTest,
    ::testing::Values(std::make_tuple(1, 1, 4, 3, 0),
                      std::make_tuple(1, 9, 5, 3, 1),
                      std::make_tuple(9, 1, 6, 3, 2),
                      std::make_tuple(3, 8, 8, 5, 2),
                      std::make_tuple(5, 7, 7, 5, 1),
                      std::make_tuple(2, 4, 9, 1, 0),
                      std::make_tuple(4, 6, 6, 5, 2),
                      std::make_tuple(7, 3, 10, 3, 1)),
    [](const auto& info) {
      return "cin" + std::to_string(std::get<0>(info.param)) + "cout" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param)) + "k" +
             std::to_string(std::get<3>(info.param)) + "p" +
             std::to_string(std::get<4>(info.param));
    });

// ----------------------------------------------------------- determinism --

// Every op must produce bit-identical results at 1, 2 and 8 intra-op
// threads: tile boundaries and per-tile reduction order are fixed, so the
// schedule cannot leak into the floats.
TEST(GemmDeterminismTest, ResultsBitIdenticalAcrossThreadCounts) {
  // Large enough that the row-panel loop actually splits (m > 2 * 64) and
  // the conv batch loop has more images than threads.
  const Tensor a = RandomTensor({200, 130}, 71);
  const Tensor b = RandomTensor({130, 90}, 72);
  const Tensor at = RandomTensor({130, 200}, 73);
  const Tensor bt = RandomTensor({90, 130}, 74);
  const Tensor input = RandomTensor({9, 3, 8, 8}, 75);
  const Tensor kernel = RandomTensor({8, 3, 5, 5}, 76);
  const Tensor bias = RandomTensor({8}, 77);

  struct Snapshot {
    Tensor mm, ta, tb, conv, gin, gker, gbias;
  };
  auto run = [&]() {
    Snapshot s;
    s.mm = MatMul(a, b);
    s.ta = MatMulTransA(at, b);
    s.tb = MatMulTransB(a, bt);
    s.conv = Conv2dForward(input, kernel, bias, 2);
    const Tensor grad_out = RandomTensor(s.conv.shape(), 78);
    Conv2dBackward(input, kernel, 2, grad_out, &s.gin, &s.gker, &s.gbias);
    return s;
  };

  const int original = GetIntraOpThreads();
  SetIntraOpThreads(1);
  const Snapshot base = run();
  for (int threads : {2, 8}) {
    SetIntraOpThreads(threads);
    const Snapshot got = run();
    EXPECT_EQ(MaxAbsDiff(got.mm, base.mm), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.ta, base.ta), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.tb, base.tb), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.conv, base.conv), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.gin, base.gin), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.gker, base.gker), 0.0f) << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(got.gbias, base.gbias), 0.0f) << threads
                                                       << " threads";
  }
  SetIntraOpThreads(original);
}

// The kernels must also be stable when invoked from inside a pool worker
// (the trainer's inter-client ParallelFor): the intra-op layer detects
// in-pool execution and runs inline with the same tile grid.
TEST(GemmDeterminismTest, InPoolExecutionMatchesTopLevel) {
  const Tensor a = RandomTensor({150, 64}, 81);
  const Tensor b = RandomTensor({64, 40}, 82);
  const int original = GetIntraOpThreads();
  SetIntraOpThreads(4);
  const Tensor top_level = MatMul(a, b);
  util::ThreadPool pool(2);
  std::vector<Tensor> from_workers(4);
  pool.ParallelFor(4, [&](int i) { from_workers[i] = MatMul(a, b); });
  for (const Tensor& got : from_workers) {
    EXPECT_EQ(MaxAbsDiff(got, top_level), 0.0f);
  }
  SetIntraOpThreads(original);
}

TEST(GemmConfigTest, KernelNameIsResolved) {
  const std::string name = GemmKernelName();
  EXPECT_TRUE(name == "avx2+fma" || name == "portable") << name;
}

}  // namespace
}  // namespace fedmigr::nn
