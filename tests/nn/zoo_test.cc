#include "nn/zoo.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::nn {
namespace {

TEST(ZooTest, C10NetShapes) {
  util::Rng rng(1);
  Sequential model = MakeC10Net(&rng);
  Tensor in({2, kImageChannels, kImageSize, kImageSize});
  const Tensor out = model.Forward(in, false);
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
}

TEST(ZooTest, C100NetShapes) {
  util::Rng rng(2);
  Sequential model = MakeC100Net(&rng);
  Tensor in({3, kImageChannels, kImageSize, kImageSize});
  EXPECT_EQ(model.Forward(in, false).shape(), (Shape{3, 100}));
}

TEST(ZooTest, ResMiniShapes) {
  util::Rng rng(3);
  Sequential model = MakeResMini(&rng);
  Tensor in({4, kResFeatureDim});
  EXPECT_EQ(model.Forward(in, false).shape(), (Shape{4, 100}));
}

TEST(ZooTest, ResMiniCustomClasses) {
  util::Rng rng(4);
  Sequential model = MakeResMini(&rng, 7);
  Tensor in({1, kResFeatureDim});
  EXPECT_EQ(model.Forward(in, false).shape(), (Shape{1, 7}));
}

TEST(ZooTest, SizeOrderingMatchesPaperRoles) {
  util::Rng rng(5);
  // ResNet-152 is the largest model in the paper; ResMini keeps that role,
  // and C100-CNN is bigger than C10-CNN (extra FC layer + wider head).
  const int64_t c10 = MakeC10Net(&rng).NumParams();
  const int64_t c100 = MakeC100Net(&rng).NumParams();
  const int64_t res = MakeResMini(&rng).NumParams();
  EXPECT_LT(c10, c100);
  EXPECT_LT(c100, res);
}

TEST(ZooTest, MakeMlpDims) {
  util::Rng rng(6);
  Sequential mlp = MakeMlp({5, 8, 3}, /*softmax_output=*/false, &rng);
  Tensor in({2, 5});
  EXPECT_EQ(mlp.Forward(in, false).shape(), (Shape{2, 3}));
}

TEST(ZooTest, MakeMlpSoftmaxRowsSumToOne) {
  util::Rng rng(7);
  Sequential mlp = MakeMlp({4, 6, 3}, /*softmax_output=*/true, &rng);
  Tensor in({2, 4});
  in.Fill(0.3f);
  const Tensor out = mlp.Forward(in, false);
  for (int n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += out.At(n, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(ZooTest, MakeModelByName) {
  util::Rng rng(8);
  EXPECT_EQ(MakeModelByName("c10", &rng).NumParams(),
            MakeC10Net(&rng).NumParams());
  EXPECT_EQ(MakeModelByName("c100", &rng).NumParams(),
            MakeC100Net(&rng).NumParams());
  EXPECT_EQ(MakeModelByName("resmini", &rng).NumParams(),
            MakeResMini(&rng).NumParams());
}

TEST(ZooTest, DifferentSeedsDifferentInit) {
  util::Rng rng_a(9), rng_b(10);
  Sequential a = MakeC10Net(&rng_a);
  Sequential b = MakeC10Net(&rng_b);
  EXPECT_GT(Sequential::ParamDistance(a, b), 0.0);
}

}  // namespace
}  // namespace fedmigr::nn
