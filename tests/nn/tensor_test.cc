#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace fedmigr::nn {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({5}), 5);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({0, 7}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, FourDAccessorRowMajor) {
  Tensor t({2, 2, 2, 2});
  t.At(1, 1, 1, 1) = 5.0f;
  EXPECT_EQ(t[15], 5.0f);
  t.At(0, 1, 0, 1) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(2, 1), 6.0f);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 3);
}

TEST(TensorTest, FillAndZero) {
  Tensor t({4});
  t.Fill(2.5f);
  EXPECT_EQ(t.Sum(), 10.0);
  t.Zero();
  EXPECT_EQ(t.Sum(), 0.0);
}

TEST(TensorTest, AddAndAxpy) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a[0], 11.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a[2], 48.0f);
}

TEST(TensorTest, Scale) {
  Tensor a({2}, {2, -4});
  a.Scale(0.5f);
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(a[1], -2.0f);
}

TEST(TensorTest, NormAndDot) {
  Tensor a({2}, {3, 4});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  Tensor b({2}, {1, 2});
  EXPECT_DOUBLE_EQ(Dot(a, b), 11.0);
}

TEST(TensorTest, FreeFunctions) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  const Tensor sum = Add(a, b);
  EXPECT_EQ(sum[1], 7.0f);
  const Tensor diff = Sub(b, a);
  EXPECT_EQ(diff[0], 2.0f);
  const Tensor scaled = Scale(a, 3.0f);
  EXPECT_EQ(scaled[1], 6.0f);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {1, 5, 2});
  EXPECT_EQ(MaxAbsDiff(a, b), 3.0f);
  EXPECT_EQ(MaxAbsDiff(a, a), 0.0f);
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).SameShape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({3, 2})));
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

}  // namespace
}  // namespace fedmigr::nn
