// Concurrency tests for the GEMM kernel layer: thread-local scratch arenas
// under simultaneous Sgemm calls, the shared intra-op pool driven from
// several external threads at once, and the bit-identical-across-thread-
// counts contract exercised while other GEMMs are in flight. Designed as a
// ThreadSanitizer workload for the `tsan` preset.

#include "nn/gemm.h"

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/scratch.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedmigr::nn {
namespace {

std::vector<float> RandomMatrix(int rows, int cols, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> m(static_cast<size_t>(rows) * cols);
  for (float& v : m) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return m;
}

std::vector<float> SerialGemm(int m, int n, int k,
                              const std::vector<float>& a,
                              const std::vector<float>& b) {
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  Sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n,
        GemmAcc::kOverwrite);
  return c;
}

class IntraOpThreadsGuard {
 public:
  IntraOpThreadsGuard() : saved_(GetIntraOpThreads()) {}
  ~IntraOpThreadsGuard() { SetIntraOpThreads(saved_); }

 private:
  int saved_;
};

TEST(GemmConcurrencyTest, ConcurrentCallsFromRawThreadsMatchSerial) {
  IntraOpThreadsGuard guard;
  SetIntraOpThreads(2);  // every caller contends for the shared intra-op pool
  constexpr int kThreads = 4;
  constexpr int kM = 96, kN = 80, kK = 64;

  std::vector<std::vector<float>> as, bs, expected;
  for (int t = 0; t < kThreads; ++t) {
    as.push_back(RandomMatrix(kM, kK, 100 + t));
    bs.push_back(RandomMatrix(kK, kN, 200 + t));
  }
  {
    // References computed serially (single intra-op thread) first.
    IntraOpThreadsGuard inner;
    SetIntraOpThreads(1);
    for (int t = 0; t < kThreads; ++t) {
      expected.push_back(SerialGemm(kM, kN, kK, as[t], bs[t]));
    }
  }

  std::vector<std::vector<float>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        results[t] = SerialGemm(kM, kN, kK, as[t], bs[t]);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), expected[t].size());
    for (size_t i = 0; i < expected[t].size(); ++i) {
      // Bit-identical: the reduction order is fixed by the micro-panel
      // grid, never by which thread computed which block.
      ASSERT_EQ(results[t][i], expected[t][i]) << "thread " << t << " i=" << i;
    }
  }
}

TEST(GemmConcurrencyTest, GemmInsideOuterPoolWorkersUsesInlineIntraOp) {
  // The trainer's shape: client updates run on inter-client pool workers,
  // so every GEMM inside must take the inline intra-op path while several
  // workers bump their thread-local arenas simultaneously.
  IntraOpThreadsGuard guard;
  SetIntraOpThreads(8);
  constexpr int kClients = 12;
  constexpr int kM = 64, kN = 48, kK = 32;

  std::vector<std::vector<float>> as, bs, expected(kClients);
  for (int t = 0; t < kClients; ++t) {
    as.push_back(RandomMatrix(kM, kK, 300 + t));
    bs.push_back(RandomMatrix(kK, kN, 400 + t));
    expected[t] = SerialGemm(kM, kN, kK, as[t], bs[t]);
  }

  std::vector<std::vector<float>> results(kClients);
  util::ThreadPool pool(4);
  pool.ParallelFor(kClients, [&](int t) {
    ScratchArena::Scope scope;  // nested scopes across concurrent workers
    results[t] = SerialGemm(kM, kN, kK, as[t], bs[t]);
  });

  for (int t = 0; t < kClients; ++t) {
    ASSERT_EQ(results[t], expected[t]) << "client " << t;
  }
}

TEST(GemmConcurrencyTest, ThreadCountSweepIsBitIdenticalUnderContention) {
  // The determinism contract, verified while a background thread keeps the
  // shared pool busy: outputs at 1, 2 and 8 intra-op threads are the same
  // bytes.
  IntraOpThreadsGuard guard;
  constexpr int kM = 150, kN = 70, kK = 90;  // ragged: partial tiles
  const std::vector<float> a = RandomMatrix(kM, kK, 7);
  const std::vector<float> b = RandomMatrix(kK, kN, 8);

  SetIntraOpThreads(1);
  const std::vector<float> reference = SerialGemm(kM, kN, kK, a, b);

  for (int threads : {2, 8}) {
    SetIntraOpThreads(threads);
    std::vector<std::thread> noise;
    noise.reserve(2);
    for (int t = 0; t < 2; ++t) {
      noise.emplace_back([&a, &b] {
        for (int round = 0; round < 4; ++round) {
          SerialGemm(kM, kN, kK, a, b);
        }
      });
    }
    const std::vector<float> got = SerialGemm(kM, kN, kK, a, b);
    for (auto& th : noise) th.join();
    ASSERT_EQ(got, reference) << "threads=" << threads;
  }
}

TEST(GemmConcurrencyTest, ScratchArenaScopesNestAcrossConcurrentWorkers) {
  // Pure arena stress: deep scope nesting with interleaved allocations on
  // many workers at once; every pointer must stay private to its thread.
  util::ThreadPool pool(6);
  constexpr int kTasks = 60;
  std::vector<int> ok(kTasks, 0);
  pool.ParallelFor(kTasks, [&](int t) {
    ScratchArena::Scope outer;
    float* base = ScratchArena::ThreadLocal().AllocFloats(256);
    for (int i = 0; i < 256; ++i) base[i] = static_cast<float>(t);
    for (int depth = 0; depth < 8; ++depth) {
      ScratchArena::Scope inner;
      float* scratch = ScratchArena::ThreadLocal().AllocFloats(512);
      for (int i = 0; i < 512; ++i) scratch[i] = -1.0f;
    }
    bool intact = true;
    for (int i = 0; i < 256; ++i) {
      intact = intact && base[i] == static_cast<float>(t);
    }
    ok[t] = intact ? 1 : 0;
  });
  for (int t = 0; t < kTasks; ++t) EXPECT_EQ(ok[t], 1) << "task " << t;
}

}  // namespace
}  // namespace fedmigr::nn
