// Finite-difference gradient checking for layers and models.
//
// Builds a scalar objective L = <output, direction> for a fixed random
// direction and compares the analytic backward pass against central
// differences on (a) the input and (b) every parameter.

#ifndef FEDMIGR_TESTS_NN_GRADCHECK_H_
#define FEDMIGR_TESTS_NN_GRADCHECK_H_

#include "nn/sequential.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace fedmigr::nn::testing {

struct GradCheckResult {
  double max_input_error = 0.0;
  double max_param_error = 0.0;
};

// Runs the check; errors are max |analytic - numeric| over all coordinates,
// with numeric gradients from central differences of step `epsilon`.
GradCheckResult CheckGradients(Sequential* model, const Tensor& input,
                               util::Rng* rng, double epsilon = 1e-3);

}  // namespace fedmigr::nn::testing

#endif  // FEDMIGR_TESTS_NN_GRADCHECK_H_
