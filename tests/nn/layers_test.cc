#include "nn/layers.h"

#include <memory>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

using testing::CheckGradients;

Tensor RandomInput(Shape shape, uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

TEST(DenseTest, ForwardShapeAndBias) {
  util::Rng rng(1);
  Dense layer(3, 2, &rng);
  // Zero the weights so output = bias.
  layer.Params()[0]->Zero();
  (*layer.Params()[1])[0] = 1.0f;
  (*layer.Params()[1])[1] = -2.0f;
  const Tensor out = layer.Forward(RandomInput({4, 3}, 2), true);
  EXPECT_EQ(out.shape(), (Shape{4, 2}));
  EXPECT_EQ(out.At(0, 0), 1.0f);
  EXPECT_EQ(out.At(3, 1), -2.0f);
}

TEST(DenseTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(3);
  Sequential model;
  model.Add(std::make_unique<Dense>(4, 3, &rng));
  const auto result =
      CheckGradients(&model, RandomInput({2, 4}, 4), &rng);
  EXPECT_LT(result.max_input_error, 1e-2);
  EXPECT_LT(result.max_param_error, 1e-2);
}

TEST(Conv2DTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(5);
  Sequential model;
  model.Add(std::make_unique<Conv2D>(2, 3, 3, 1, &rng));
  const auto result =
      CheckGradients(&model, RandomInput({2, 2, 4, 4}, 6), &rng);
  EXPECT_LT(result.max_input_error, 1e-2);
  EXPECT_LT(result.max_param_error, 1e-2);
}

TEST(ReluTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor in({1, 4}, {-1, 0, 2, -3});
  const Tensor out = relu.Forward(in, true);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor in({1, 3}, {-1, 2, 3});
  (void)relu.Forward(in, true);
  Tensor grad({1, 3}, {5, 5, 5});
  const Tensor out = relu.Backward(grad);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 5.0f);
}

TEST(TanhSigmoidTest, RangeAndGradients) {
  util::Rng rng(7);
  {
    Sequential model;
    model.Add(std::make_unique<Dense>(3, 3, &rng));
    model.Add(std::make_unique<Tanh>());
    const auto r = CheckGradients(&model, RandomInput({2, 3}, 8), &rng);
    EXPECT_LT(r.max_input_error, 1e-2);
    EXPECT_LT(r.max_param_error, 1e-2);
  }
  {
    Sequential model;
    model.Add(std::make_unique<Dense>(3, 3, &rng));
    model.Add(std::make_unique<Sigmoid>());
    const auto r = CheckGradients(&model, RandomInput({2, 3}, 9), &rng);
    EXPECT_LT(r.max_input_error, 1e-2);
    EXPECT_LT(r.max_param_error, 1e-2);
  }
}

TEST(SigmoidTest, KnownValues) {
  Sigmoid sigmoid;
  Tensor in({1, 1}, {0.0f});
  EXPECT_FLOAT_EQ(sigmoid.Forward(in, true)[0], 0.5f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Softmax softmax;
  const Tensor out = softmax.Forward(RandomInput({3, 5}, 10), true);
  for (int n = 0; n < 3; ++n) {
    float sum = 0.0f;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GT(out.At(n, c), 0.0f);
      sum += out.At(n, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Softmax softmax;
  Tensor in({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  const Tensor out = softmax.Forward(in, true);
  EXPECT_NEAR(out[0], 1.0f / 3.0f, 1e-5f);
}

TEST(SoftmaxTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(11);
  Sequential model;
  model.Add(std::make_unique<Dense>(4, 4, &rng));
  model.Add(std::make_unique<Softmax>());
  const auto r = CheckGradients(&model, RandomInput({2, 4}, 12), &rng);
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten flatten;
  Tensor in = RandomInput({2, 3, 4, 4}, 13);
  const Tensor out = flatten.Forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 48}));
  const Tensor back = flatten.Backward(out);
  EXPECT_EQ(back.shape(), in.shape());
  EXPECT_EQ(MaxAbsDiff(back, in), 0.0f);
}

TEST(MaxPoolLayerTest, GradCheckThroughPool) {
  util::Rng rng(14);
  Sequential model;
  model.Add(std::make_unique<Conv2D>(1, 2, 3, 1, &rng));
  model.Add(std::make_unique<MaxPool2x2>());
  // Distinct values avoid ties at the pooling argmax (finite differences
  // are undefined at ties).
  const auto r = CheckGradients(&model, RandomInput({1, 1, 4, 4}, 15), &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

TEST(ResidualDenseTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(16);
  Sequential model;
  model.Add(std::make_unique<ResidualDense>(4, 6, &rng));
  const auto r = CheckGradients(&model, RandomInput({2, 4}, 17), &rng);
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

TEST(ResidualDenseTest, ZeroBranchIsRelu) {
  util::Rng rng(18);
  ResidualDense block(3, 5, &rng);
  for (Tensor* p : block.Params()) p->Zero();
  Tensor in({1, 3}, {1.0f, -2.0f, 0.5f});
  const Tensor out = block.Forward(in, true);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 0.0f);  // ReLU of the pass-through
  EXPECT_EQ(out[2], 0.5f);
}

TEST(CloneTest, ClonesAreIndependentCopies) {
  util::Rng rng(19);
  Dense layer(2, 2, &rng);
  auto clone = layer.Clone();
  // Same parameters right after cloning.
  EXPECT_EQ(MaxAbsDiff(*layer.Params()[0], *clone->Params()[0]), 0.0f);
  // Mutating the original does not affect the clone.
  (*layer.Params()[0])[0] += 1.0f;
  EXPECT_EQ(MaxAbsDiff(*layer.Params()[0], *clone->Params()[0]), 1.0f);
}

TEST(CloneTest, AllLayerTypesClone) {
  util::Rng rng(20);
  Sequential model;
  model.Add(std::make_unique<Conv2D>(1, 2, 3, 1, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<MaxPool2x2>());
  model.Add(std::make_unique<Flatten>());
  model.Add(std::make_unique<Dense>(8, 4, &rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Sigmoid>());
  model.Add(std::make_unique<Softmax>());
  Sequential copy = model;  // copy = layer-wise Clone
  const Tensor in = RandomInput({1, 1, 4, 4}, 21);
  EXPECT_LT(MaxAbsDiff(model.Forward(in, false), copy.Forward(in, false)),
            1e-6f);
}

}  // namespace
}  // namespace fedmigr::nn
