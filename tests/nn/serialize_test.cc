#include "nn/serialize.h"

#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

Sequential SmallModel(uint64_t seed) {
  util::Rng rng(seed);
  Sequential model;
  model.Add(std::make_unique<Dense>(3, 4, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<Dense>(4, 2, &rng));
  return model;
}

TEST(SerializeTest, FlattenLengthMatchesNumParams) {
  Sequential model = SmallModel(1);
  EXPECT_EQ(static_cast<int64_t>(FlattenParams(model).size()),
            model.NumParams());
}

TEST(SerializeTest, FlattenUnflattenRoundTrip) {
  Sequential a = SmallModel(2);
  Sequential b = SmallModel(3);
  ASSERT_TRUE(UnflattenParams(FlattenParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, UnflattenRejectsWrongSize) {
  Sequential model = SmallModel(4);
  const std::vector<float> wrong(static_cast<size_t>(model.NumParams()) + 1);
  EXPECT_FALSE(UnflattenParams(wrong, &model).ok());
}

TEST(SerializeTest, ByteRoundTrip) {
  Sequential a = SmallModel(5);
  Sequential b = SmallModel(6);
  ASSERT_TRUE(DeserializeParams(SerializeParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, ByteSizeIsHeaderPlusFloats) {
  Sequential model = SmallModel(7);
  const auto bytes = SerializeParams(model);
  EXPECT_EQ(bytes.size(),
            sizeof(uint64_t) +
                static_cast<size_t>(model.NumParams()) * sizeof(float));
}

TEST(SerializeTest, DeserializeRejectsTruncatedBuffer) {
  Sequential model = SmallModel(8);
  auto bytes = SerializeParams(model);
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(DeserializeParams(bytes, &model).ok());
}

TEST(SerializeTest, DeserializeRejectsEmptyBuffer) {
  Sequential model = SmallModel(9);
  EXPECT_FALSE(DeserializeParams({}, &model).ok());
}

TEST(SerializeTest, DeserializeRejectsMismatchedArchitecture) {
  util::Rng rng(10);
  Sequential a = SmallModel(11);
  Sequential bigger;
  bigger.Add(std::make_unique<Dense>(10, 10, &rng));
  EXPECT_FALSE(DeserializeParams(SerializeParams(a), &bigger).ok());
}

TEST(SerializeTest, CheckpointRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fedmigr_ckpt.bin";
  Sequential a = SmallModel(13);
  Sequential b = SmallModel(14);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  Sequential model = SmallModel(15);
  const util::Status status =
      LoadCheckpoint("/nonexistent/dir/model.bin", &model);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(SerializeTest, LoadIntoWrongArchitectureFails) {
  const std::string path = ::testing::TempDir() + "/fedmigr_ckpt2.bin";
  Sequential a = SmallModel(16);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  util::Rng rng(17);
  Sequential other;
  other.Add(std::make_unique<Dense>(11, 11, &rng));
  EXPECT_FALSE(LoadCheckpoint(path, &other).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, ZooModelsRoundTrip) {
  util::Rng rng(12);
  Sequential a = MakeC10Net(&rng);
  Sequential b = MakeC10Net(&rng);
  ASSERT_TRUE(DeserializeParams(SerializeParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

}  // namespace
}  // namespace fedmigr::nn
