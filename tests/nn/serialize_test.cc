#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

Sequential SmallModel(uint64_t seed) {
  util::Rng rng(seed);
  Sequential model;
  model.Add(std::make_unique<Dense>(3, 4, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<Dense>(4, 2, &rng));
  return model;
}

TEST(SerializeTest, FlattenLengthMatchesNumParams) {
  Sequential model = SmallModel(1);
  EXPECT_EQ(static_cast<int64_t>(FlattenParams(model).size()),
            model.NumParams());
}

TEST(SerializeTest, FlattenUnflattenRoundTrip) {
  Sequential a = SmallModel(2);
  Sequential b = SmallModel(3);
  ASSERT_TRUE(UnflattenParams(FlattenParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, UnflattenRejectsWrongSize) {
  Sequential model = SmallModel(4);
  const std::vector<float> wrong(static_cast<size_t>(model.NumParams()) + 1);
  EXPECT_FALSE(UnflattenParams(wrong, &model).ok());
}

TEST(SerializeTest, ByteRoundTrip) {
  Sequential a = SmallModel(5);
  Sequential b = SmallModel(6);
  ASSERT_TRUE(DeserializeParams(SerializeParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, ByteSizeIsFramePlusFloats) {
  Sequential model = SmallModel(7);
  const auto bytes = SerializeParams(model);
  // v2 frame: magic + version + count + payload + crc32.
  EXPECT_EQ(bytes.size(),
            2 * sizeof(uint32_t) + sizeof(uint64_t) +
                static_cast<size_t>(model.NumParams()) * sizeof(float) +
                sizeof(uint32_t));
}

TEST(SerializeTest, DeserializeRejectsTruncatedBuffer) {
  Sequential model = SmallModel(8);
  auto bytes = SerializeParams(model);
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(DeserializeParams(bytes, &model).ok());
}

TEST(SerializeTest, DeserializeRejectsEmptyBuffer) {
  Sequential model = SmallModel(9);
  EXPECT_FALSE(DeserializeParams({}, &model).ok());
}

TEST(SerializeTest, DeserializeRejectsMismatchedArchitecture) {
  util::Rng rng(10);
  Sequential a = SmallModel(11);
  Sequential bigger;
  bigger.Add(std::make_unique<Dense>(10, 10, &rng));
  EXPECT_FALSE(DeserializeParams(SerializeParams(a), &bigger).ok());
}

TEST(SerializeTest, CheckpointRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fedmigr_ckpt.bin";
  Sequential a = SmallModel(13);
  Sequential b = SmallModel(14);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  Sequential model = SmallModel(15);
  const util::Status status =
      LoadCheckpoint("/nonexistent/dir/model.bin", &model);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(SerializeTest, LoadIntoWrongArchitectureFails) {
  const std::string path = ::testing::TempDir() + "/fedmigr_ckpt2.bin";
  Sequential a = SmallModel(16);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  util::Rng rng(17);
  Sequential other;
  other.Add(std::make_unique<Dense>(11, 11, &rng));
  EXPECT_FALSE(LoadCheckpoint(path, &other).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, BitFlipInPayloadIsRejectedAsDataLoss) {
  Sequential a = SmallModel(20);
  Sequential b = SmallModel(21);
  auto bytes = SerializeParams(a);
  bytes[bytes.size() / 2] ^= 0x01;  // single bit flip mid-payload
  const util::Status status = DeserializeParams(bytes, &b);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
  // The receiver's model is architecture-compatible but must not have
  // absorbed the corrupted payload silently.
  Sequential c = SmallModel(21);
  EXPECT_EQ(Sequential::ParamDistance(b, c), 0.0);
}

TEST(SerializeTest, NonFinitePayloadIsRejectedAsDataLoss) {
  // A NaN parameter survives CRC (it is a faithful encoding of a broken
  // model, not a transport error), so the wire gate must catch it before
  // it can brick the receiver's weights.
  Sequential a = SmallModel(26);
  a.Params()[0]->data()[0] = std::numeric_limits<float>::quiet_NaN();
  Sequential b = SmallModel(27);
  const util::Status status = DeserializeParams(SerializeParams(a), &b);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
  Sequential c = SmallModel(27);
  EXPECT_EQ(Sequential::ParamDistance(b, c), 0.0);

  // Same gate on the legacy v1 frame path, with an Inf.
  Sequential d = SmallModel(28);
  d.Params()[0]->data()[0] = std::numeric_limits<float>::infinity();
  const std::vector<float> flat = FlattenParams(d);
  const uint64_t count = flat.size();
  std::vector<uint8_t> bytes(sizeof(uint64_t) + flat.size() * sizeof(float));
  std::memcpy(bytes.data(), &count, sizeof(uint64_t));
  std::memcpy(bytes.data() + sizeof(uint64_t), flat.data(),
              flat.size() * sizeof(float));
  const util::Status legacy = DeserializeParams(bytes, &d);
  EXPECT_FALSE(legacy.ok());
  EXPECT_EQ(legacy.code(), util::StatusCode::kDataLoss);
}

TEST(SerializeTest, BitFlipInHeaderIsRejected) {
  Sequential a = SmallModel(22);
  auto bytes = SerializeParams(a);
  bytes[9] ^= 0x40;  // inside the count field
  EXPECT_FALSE(DeserializeParams(bytes, &a).ok());
}

TEST(SerializeTest, TruncatedV2FrameIsRejected) {
  Sequential a = SmallModel(23);
  auto bytes = SerializeParams(a);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(DeserializeParams(bytes, &a).ok());
}

TEST(SerializeTest, UnsupportedVersionIsRejected) {
  Sequential a = SmallModel(24);
  auto bytes = SerializeParams(a);
  bytes[4] = 99;  // version field
  const util::Status status = DeserializeParams(bytes, &a);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, LegacyV1FrameStillLoads) {
  // Hand-build the legacy [uint64 count][payload] encoding.
  Sequential a = SmallModel(25);
  const std::vector<float> flat = FlattenParams(a);
  const uint64_t count = flat.size();
  std::vector<uint8_t> bytes(sizeof(uint64_t) + flat.size() * sizeof(float));
  std::memcpy(bytes.data(), &count, sizeof(uint64_t));
  std::memcpy(bytes.data() + sizeof(uint64_t), flat.data(),
              flat.size() * sizeof(float));
  Sequential b = SmallModel(26);
  ASSERT_TRUE(DeserializeParams(bytes, &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, LegacyFrameWithOverflowingCountIsRejected) {
  std::vector<uint8_t> bytes(sizeof(uint64_t) + 4);
  const uint64_t huge = ~0ULL / 2;  // would overflow count * sizeof(float)
  std::memcpy(bytes.data(), &huge, sizeof(uint64_t));
  Sequential model = SmallModel(27);
  EXPECT_FALSE(DeserializeParams(bytes, &model).ok());
}

TEST(SerializeTest, LoadEmptyCheckpointFails) {
  const std::string path = ::testing::TempDir() + "/fedmigr_empty.bin";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  Sequential model = SmallModel(28);
  const util::Status status = LoadCheckpoint(path, &model);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedCheckpointFails) {
  const std::string path = ::testing::TempDir() + "/fedmigr_trunc.bin";
  Sequential a = SmallModel(29);
  const auto bytes = SerializeParams(a);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadCheckpoint(path, &a).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveCheckpointLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "/fedmigr_atomic.bin";
  Sequential a = SmallModel(30);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveCheckpointIntoMissingDirectoryFails) {
  Sequential a = SmallModel(31);
  EXPECT_FALSE(SaveCheckpoint(a, "/nonexistent/dir/model.bin").ok());
}

TEST(SerializeTest, SaveCheckpointOverwritesWholeFile) {
  // An interrupted naive overwrite could leave a long stale tail; the
  // atomic rename replaces the inode, so the new (shorter) payload must
  // load cleanly after overwriting a longer one.
  const std::string path = ::testing::TempDir() + "/fedmigr_overwrite.bin";
  util::Rng rng(32);
  Sequential big;
  big.Add(std::make_unique<Dense>(20, 20, &rng));
  ASSERT_TRUE(SaveCheckpoint(big, path).ok());
  Sequential small = SmallModel(33);
  ASSERT_TRUE(SaveCheckpoint(small, path).ok());
  Sequential loaded = SmallModel(34);
  ASSERT_TRUE(LoadCheckpoint(path, &loaded).ok());
  EXPECT_EQ(Sequential::ParamDistance(small, loaded), 0.0);
  std::remove(path.c_str());
}

TEST(SerializeTest, CheckpointBitFlipSweepNeverLoadsSilently) {
  // Flip one bit at a spread of positions across the file; every corrupted
  // variant must be rejected (frame checks or CRC), never absorbed.
  const std::string path = ::testing::TempDir() + "/fedmigr_flip.bin";
  Sequential a = SmallModel(35);
  const auto bytes = SerializeParams(a);
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x10;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(corrupt.data()),
                static_cast<std::streamsize>(corrupt.size()));
    }
    Sequential victim = SmallModel(36);
    EXPECT_FALSE(LoadCheckpoint(path, &victim).ok()) << "flip at " << pos;
    Sequential pristine = SmallModel(36);
    EXPECT_EQ(Sequential::ParamDistance(victim, pristine), 0.0)
        << "partial load at " << pos;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, WriteReadTensorRoundTrip) {
  Tensor t({2, 3});
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(i) * 0.5f - 1.0f;
  }
  util::ByteWriter writer;
  WriteTensor(&writer, t);
  util::ByteReader reader(writer.bytes());
  Tensor out;
  ASSERT_TRUE(ReadTensor(&reader, &out).ok());
  EXPECT_TRUE(reader.AtEnd());
  ASSERT_EQ(out.shape(), t.shape());
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(out[i], t[i]);
}

TEST(SerializeTest, WriteReadDefaultTensorRoundTrip) {
  util::ByteWriter writer;
  WriteTensor(&writer, Tensor());
  util::ByteReader reader(writer.bytes());
  Tensor out({4});
  ASSERT_TRUE(ReadTensor(&reader, &out).ok());
  EXPECT_TRUE(out.shape().empty());
  EXPECT_EQ(out.size(), 0);
}

TEST(SerializeTest, ReadTensorSurvivesTruncationFuzz) {
  Tensor t({3, 2, 2});
  util::ByteWriter writer;
  WriteTensor(&writer, t);
  const std::vector<uint8_t>& full = writer.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    util::ByteReader reader(full.data(), cut);
    Tensor out;
    EXPECT_FALSE(ReadTensor(&reader, &out).ok()) << "cut " << cut;
  }
}

TEST(SerializeTest, ReadTensorSurvivesBitFlipFuzz) {
  // Bit flips in the shape/count header can encode huge or negative
  // element counts; every variant must produce an error or a consistent
  // tensor — never a crash or over-allocation.
  Tensor t({2, 2});
  util::ByteWriter writer;
  WriteTensor(&writer, t);
  const std::vector<uint8_t> full = writer.bytes();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = full;
      corrupt[pos] ^= static_cast<uint8_t>(1u << bit);
      util::ByteReader reader(corrupt);
      Tensor out;
      const util::Status status = ReadTensor(&reader, &out);
      if (status.ok()) {
        // Accepted streams must at least be self-consistent.
        int64_t elements = out.shape().empty() ? 0 : 1;
        for (int d : out.shape()) elements *= d;
        EXPECT_EQ(out.size(), elements);
      }
    }
  }
}

TEST(SerializeTest, WriteReadParamsRoundTrip) {
  Sequential a = SmallModel(37);
  Sequential b = SmallModel(38);
  util::ByteWriter writer;
  WriteParams(&writer, a);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(ReadParams(&reader, &b).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

TEST(SerializeTest, ReadParamsRejectsWrongArchitecture) {
  Sequential a = SmallModel(39);
  util::ByteWriter writer;
  WriteParams(&writer, a);
  util::Rng rng(40);
  Sequential other;
  other.Add(std::make_unique<Dense>(9, 9, &rng));
  util::ByteReader reader(writer.bytes());
  EXPECT_FALSE(ReadParams(&reader, &other).ok());
}

TEST(SerializeTest, ZooModelsRoundTrip) {
  util::Rng rng(12);
  Sequential a = MakeC10Net(&rng);
  Sequential b = MakeC10Net(&rng);
  ASSERT_TRUE(DeserializeParams(SerializeParams(a), &b).ok());
  EXPECT_EQ(Sequential::ParamDistance(a, b), 0.0);
}

}  // namespace
}  // namespace fedmigr::nn
