// End-to-end learning tests: the NN substrate must actually fit data, since
// every FL result in the benches rests on it.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedmigr::nn {
namespace {

// XOR: not linearly separable, so the hidden layer must do real work.
TEST(TrainingTest, MlpLearnsXor) {
  util::Rng rng(42);
  Sequential model;
  model.Add(std::make_unique<Dense>(2, 8, &rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Dense>(8, 2, &rng));

  Tensor inputs({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<int> labels = {0, 1, 1, 0};

  Sgd sgd(0.5, 0.9);
  double final_loss = 1e9;
  for (int step = 0; step < 500; ++step) {
    model.ZeroGrads();
    const Tensor logits = model.Forward(inputs);
    const LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model.Backward(loss.grad_logits);
    sgd.Step(&model);
    final_loss = loss.loss;
  }
  EXPECT_LT(final_loss, 0.05);
  EXPECT_EQ(Accuracy(model.Forward(inputs, false), labels), 1.0);
}

// Small Gaussian-blob classification with the conv stack.
TEST(TrainingTest, ConvNetLearnsBlobClasses) {
  util::Rng rng(7);
  const int classes = 3, per_class = 20;
  const int n = classes * per_class;
  Tensor inputs({n, 1, 4, 4});
  std::vector<int> labels(static_cast<size_t>(n));
  std::vector<std::vector<float>> prototypes(classes,
                                             std::vector<float>(16));
  for (auto& proto : prototypes) {
    for (auto& x : proto) x = static_cast<float>(rng.Normal());
  }
  for (int i = 0; i < n; ++i) {
    const int c = i % classes;
    labels[static_cast<size_t>(i)] = c;
    for (int j = 0; j < 16; ++j) {
      inputs[i * 16 + j] =
          prototypes[static_cast<size_t>(c)][static_cast<size_t>(j)] +
          static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }

  Sequential model;
  model.Add(std::make_unique<Conv2D>(1, 4, 3, 1, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<MaxPool2x2>());
  model.Add(std::make_unique<Flatten>());
  model.Add(std::make_unique<Dense>(16, classes, &rng));

  Sgd sgd(0.1);
  for (int step = 0; step < 150; ++step) {
    model.ZeroGrads();
    const Tensor logits = model.Forward(inputs);
    const LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model.Backward(loss.grad_logits);
    sgd.Step(&model);
  }
  EXPECT_GT(Accuracy(model.Forward(inputs, false), labels), 0.95);
}

// The residual model must also train (checks skip-connection gradients in
// an end-to-end loop, not just gradcheck).
TEST(TrainingTest, ResidualModelLearns) {
  util::Rng rng(11);
  const int n = 40;
  Tensor inputs({n, 8});
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int c = i % 2;
    labels[static_cast<size_t>(i)] = c;
    for (int j = 0; j < 8; ++j) {
      inputs.At(i, j) = static_cast<float>(
          rng.Normal(c == 0 ? -1.0 : 1.0, 0.5));
    }
  }
  Sequential model;
  model.Add(std::make_unique<Dense>(8, 12, &rng));
  model.Add(std::make_unique<ReLU>());
  model.Add(std::make_unique<ResidualDense>(12, 12, &rng));
  model.Add(std::make_unique<Dense>(12, 2, &rng));

  Sgd sgd(0.05);
  for (int step = 0; step < 200; ++step) {
    model.ZeroGrads();
    const Tensor logits = model.Forward(inputs);
    const LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model.Backward(loss.grad_logits);
    sgd.Step(&model);
  }
  EXPECT_GT(Accuracy(model.Forward(inputs, false), labels), 0.95);
}

}  // namespace
}  // namespace fedmigr::nn
