#include "nn/ops.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::nn {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.At(0, 0), 58.0f);
  EXPECT_EQ(c.At(0, 1), 64.0f);
  EXPECT_EQ(c.At(1, 0), 139.0f);
  EXPECT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityLeavesUnchanged) {
  Tensor eye({2, 2}, {1, 0, 0, 1});
  Tensor m({2, 2}, {3, 4, 5, 6});
  EXPECT_EQ(MaxAbsDiff(MatMul(eye, m), m), 0.0f);
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  util::Rng rng(1);
  Tensor a({4, 3});  // interpreted as A^T: K=4, M=3
  Tensor b({4, 5});
  for (int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.Normal());
  for (int64_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.Normal());
  // Explicit transpose of a -> [3, 4].
  Tensor at({3, 4});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(at, b)), 1e-5f);
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  util::Rng rng(2);
  Tensor a({3, 4});
  Tensor b({5, 4});  // interpreted as B^T: N=5, K=4
  for (int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.Normal());
  for (int64_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.Normal());
  Tensor bt({4, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) bt.At(j, i) = b.At(i, j);
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, b), MatMul(a, bt)), 1e-5f);
}

// Reference convolution: the obvious quadruple loop, kept separate from the
// optimized production kernel.
Tensor ReferenceConv(const Tensor& input, const Tensor& kernel,
                     const Tensor& bias, int pad) {
  const int batch = input.dim(0), cin = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  const int cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  const int oh = h + 2 * pad - kh + 1, ow = w + 2 * pad - kw + 1;
  Tensor out({batch, cout, oh, ow});
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < cout; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float sum = bias[oc];
          for (int ic = 0; ic < cin; ++ic) {
            for (int ky = 0; ky < kh; ++ky) {
              for (int kx = 0; kx < kw; ++kx) {
                const int iy = oy + ky - pad, ix = ox + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                sum += input.At(n, ic, iy, ix) * kernel.At(oc, ic, ky, kx);
              }
            }
          }
          out.At(n, oc, oy, ox) = sum;
        }
      }
    }
  }
  return out;
}

class ConvParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvParamTest, MatchesReferenceImplementation) {
  const auto [cin, cout, size, ksize, pad] = GetParam();
  util::Rng rng(static_cast<uint64_t>(cin * 100 + cout * 10 + pad));
  Tensor input({2, cin, size, size});
  Tensor kernel({cout, cin, ksize, ksize});
  Tensor bias({cout});
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(rng.Normal());
  }
  for (int64_t i = 0; i < kernel.size(); ++i) {
    kernel[i] = static_cast<float>(rng.Normal());
  }
  for (int64_t i = 0; i < bias.size(); ++i) {
    bias[i] = static_cast<float>(rng.Normal());
  }
  const Tensor fast = Conv2dForward(input, kernel, bias, pad);
  const Tensor ref = ReferenceConv(input, kernel, bias, pad);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParamTest,
    ::testing::Values(std::make_tuple(1, 1, 4, 3, 1),
                      std::make_tuple(3, 8, 8, 5, 2),
                      std::make_tuple(2, 4, 6, 3, 0),
                      std::make_tuple(4, 2, 5, 1, 0),
                      std::make_tuple(2, 3, 8, 5, 2)));

TEST(Conv2dTest, OutputShape) {
  Tensor input({1, 3, 8, 8});
  Tensor kernel({16, 3, 5, 5});
  Tensor bias({16});
  const Tensor out = Conv2dForward(input, kernel, bias, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 16, 8, 8}));
}

TEST(Conv2dTest, BiasOnlyWhenKernelZero) {
  Tensor input({1, 1, 4, 4});
  input.Fill(3.0f);
  Tensor kernel({2, 1, 3, 3});  // zeros
  Tensor bias({2}, {1.5f, -2.0f});
  const Tensor out = Conv2dForward(input, kernel, bias, 1);
  EXPECT_EQ(out.At(0, 0, 2, 2), 1.5f);
  EXPECT_EQ(out.At(0, 1, 0, 0), -2.0f);
}

TEST(MaxPoolTest, SelectsMaxima) {
  Tensor input({1, 1, 2, 2}, {1, 4, 3, 2});
  Tensor argmax;
  const Tensor out = MaxPool2x2Forward(input, &argmax);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(out[0], 4.0f);
  EXPECT_EQ(argmax[0], 1.0f);  // flat index of the max
}

TEST(MaxPoolTest, BackwardRoutesGradientToArgmax) {
  Tensor input({1, 1, 2, 2}, {1, 4, 3, 2});
  Tensor argmax;
  (void)MaxPool2x2Forward(input, &argmax);
  Tensor grad_out({1, 1, 1, 1}, {2.5f});
  const Tensor grad_in = MaxPool2x2Backward(grad_out, argmax, input.shape());
  EXPECT_EQ(grad_in[0], 0.0f);
  EXPECT_EQ(grad_in[1], 2.5f);
  EXPECT_EQ(grad_in[2], 0.0f);
}

TEST(MaxPoolTest, MultiChannelShapes) {
  Tensor input({2, 3, 4, 4});
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i % 7);
  }
  Tensor argmax;
  const Tensor out = MaxPool2x2Forward(input, &argmax);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 2, 2}));
  EXPECT_TRUE(argmax.SameShape(out));
}

}  // namespace
}  // namespace fedmigr::nn
