#include "nn/scratch.h"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::nn {
namespace {

TEST(ScratchArenaTest, AllocationsAreDisjointAndWritable) {
  ScratchArena::Scope scope;
  ScratchArena& arena = ScratchArena::ThreadLocal();
  float* a = arena.AllocFloats(100);
  float* b = arena.AllocFloats(200);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 100; ++i) a[i] = 1.0f;
  for (int i = 0; i < 200; ++i) b[i] = 2.0f;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 1.0f);
}

TEST(ScratchArenaTest, ScopeRewindReusesMemoryWithoutGrowth) {
  // Warm up: one large allocation establishes the chunk.
  {
    ScratchArena::Scope scope;
    ScratchArena::ThreadLocal().AllocFloats(1 << 12);
  }
  const int64_t warm = ScratchArena::ThreadLocal().capacity();
  for (int round = 0; round < 100; ++round) {
    ScratchArena::Scope scope;
    float* p = ScratchArena::ThreadLocal().AllocFloats(1 << 12);
    p[0] = static_cast<float>(round);
  }
  // Steady-state reuse: the hot loop must not have grown the arena.
  EXPECT_EQ(ScratchArena::ThreadLocal().capacity(), warm);
}

TEST(ScratchArenaTest, NestedScopesKeepOuterPointersValid) {
  ScratchArena::Scope outer;
  ScratchArena& arena = ScratchArena::ThreadLocal();
  float* a = arena.AllocFloats(64);
  std::memset(a, 0, 64 * sizeof(float));
  a[63] = 7.0f;
  {
    ScratchArena::Scope inner;
    // Force growth past the current chunk while `a` is live.
    float* big = arena.AllocFloats(1 << 20);
    big[0] = 1.0f;
  }
  // Growth appends chunks; it never moves prior allocations.
  EXPECT_EQ(a[63], 7.0f);
  float* b = arena.AllocFloats(64);
  EXPECT_NE(a, b);
}

TEST(ScratchArenaTest, ArenasAreThreadLocal) {
  ScratchArena::Scope scope;
  float* mine = ScratchArena::ThreadLocal().AllocFloats(16);
  float* theirs = nullptr;
  std::thread other([&theirs] {
    ScratchArena::Scope s;
    theirs = ScratchArena::ThreadLocal().AllocFloats(16);
    theirs[0] = 3.0f;
  });
  other.join();
  EXPECT_NE(mine, theirs);
}

}  // namespace
}  // namespace fedmigr::nn
