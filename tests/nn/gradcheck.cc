#include "gradcheck.h"

#include <cmath>
#include <vector>

namespace fedmigr::nn::testing {

namespace {

double Objective(Sequential* model, const Tensor& input,
                 const std::vector<float>& direction) {
  const Tensor out = model->Forward(input, /*training=*/true);
  double sum = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    sum += static_cast<double>(out[i]) * direction[static_cast<size_t>(i)];
  }
  return sum;
}

}  // namespace

GradCheckResult CheckGradients(Sequential* model, const Tensor& input,
                               util::Rng* rng, double epsilon) {
  // Fixed random direction defines L = <f(x; w), d>.
  const Tensor probe = model->Forward(input, /*training=*/true);
  std::vector<float> direction(static_cast<size_t>(probe.size()));
  for (auto& d : direction) {
    d = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }

  // Analytic gradients.
  model->ZeroGrads();
  (void)model->Forward(input, /*training=*/true);
  Tensor grad_out(probe.shape());
  for (int64_t i = 0; i < grad_out.size(); ++i) {
    grad_out[i] = direction[static_cast<size_t>(i)];
  }
  const Tensor grad_input = model->Backward(grad_out);

  GradCheckResult result;

  // Input gradient vs central differences.
  Tensor x = input;
  for (int64_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(epsilon);
    const double plus = Objective(model, x, direction);
    x[i] = saved - static_cast<float>(epsilon);
    const double minus = Objective(model, x, direction);
    x[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    result.max_input_error = std::max(
        result.max_input_error, std::fabs(numeric - grad_input[i]));
  }

  // Parameter gradients vs central differences.
  auto params = model->Params();
  auto grads = model->Grads();
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    const Tensor& g = *grads[p];
    for (int64_t i = 0; i < w.size(); ++i) {
      const float saved = w[i];
      w[i] = saved + static_cast<float>(epsilon);
      const double plus = Objective(model, input, direction);
      w[i] = saved - static_cast<float>(epsilon);
      const double minus = Objective(model, input, direction);
      w[i] = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      result.max_param_error =
          std::max(result.max_param_error, std::fabs(numeric - g[i]));
    }
  }
  return result;
}

}  // namespace fedmigr::nn::testing
