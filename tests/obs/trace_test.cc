#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace fedmigr::obs {
namespace {

// All "ts" values in emission order (metadata events carry no ts, so this
// sequence is exactly the B/E/i stream).
std::vector<double> ExtractTimestamps(const std::string& json) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  for (size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    out.push_back(std::stod(json.substr(pos + key.size())));
  }
  return out;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndRestartable) {
  Stopwatch watch;
  const double first = watch.ElapsedMs();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(watch.ElapsedMs(), first);
  watch.Restart();
  EXPECT_GE(watch.ElapsedMs(), 0.0);
  // Separate clock reads, so only the unit relation is checkable.
  const double ms = watch.ElapsedMs();
  const double s = watch.ElapsedSeconds();
  EXPECT_GE(s, ms * 1e-3);
  EXPECT_LT(s, ms * 1e-3 + 1.0);
}

TEST(TraceRecorderTest, OffByDefaultRecordsNothing) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.recording());
  recorder.RecordSimSpan("ignored", "track", 0.0, 1.0);
  recorder.RecordInstant("ignored");
  EXPECT_TRUE(recorder.ExportEvents().empty());
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(TraceRecorderTest, ExportSortsNestsAndClampsSpans) {
  TraceRecorder recorder;
  recorder.Start();
  // Recorded child-first: export must still put the enclosing span first.
  recorder.RecordSimSpan("inner", "phase", 2.0, 3.0);
  recorder.RecordSimSpan("outer", "phase", 1.0, 5.0);
  recorder.RecordSimSpan("inverted", "phase", 6.0, 5.5);  // clock quantization
  recorder.Stop();

  const std::vector<TraceEvent> events = recorder.ExportEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "inverted");
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.pid, 2);
    EXPECT_GE(e.end_us, e.start_us);  // inverted span was clamped
  }
  EXPECT_DOUBLE_EQ(events[2].start_us, events[2].end_us);
}

TEST(TraceRecorderTest, ChromeJsonHasMatchedPairsAndMonotoneTs) {
  TraceRecorder recorder;
  recorder.Start();
  // One track: nested, overlapping, and disjoint spans.
  recorder.RecordSimSpan("outer", "phase", 1.0, 5.0);
  recorder.RecordSimSpan("inner", "phase", 2.0, 3.0);
  recorder.RecordSimSpan("overlap", "phase", 4.0, 7.0);  // clamped to outer
  recorder.RecordSimSpan("later", "phase", 8.0, 9.0);
  recorder.Stop();

  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"simulated time\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);  // thread_name
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 4);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 4);

  // Single track, so the full ts stream must be non-decreasing.
  const std::vector<double> ts = ExtractTimestamps(json);
  ASSERT_EQ(ts.size(), 8u);
  for (size_t i = 1; i < ts.size(); ++i) {
    EXPECT_GE(ts[i], ts[i - 1]) << "event " << i;
  }
}

TEST(TraceRecorderTest, InstantsUseTheDedicatedTrack) {
  TraceRecorder recorder;
  recorder.Start();
  recorder.RecordInstant("target_reached");
  recorder.Stop();
  const std::vector<TraceEvent> events = recorder.ExportEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].pid, 1);
  EXPECT_EQ(events[0].tid, 0);
  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceRecorderTest, FullRingDropsNewestAndCounts) {
  TraceRecorder recorder;
  recorder.Start(/*capacity=*/2);
  recorder.RecordSimSpan("a", "t", 0.0, 1.0);
  recorder.RecordSimSpan("b", "t", 1.0, 2.0);
  recorder.RecordSimSpan("c", "t", 2.0, 3.0);  // dropped
  recorder.Stop();
  EXPECT_EQ(recorder.ExportEvents().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1);
  // Start() resets the ring and the drop counter.
  recorder.Start(/*capacity=*/2);
  recorder.Stop();
  EXPECT_TRUE(recorder.ExportEvents().empty());
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(TraceRecorderTest, WallSpansGetOneTidPerThread) {
  TraceRecorder recorder;
  recorder.Start();
  const int64_t base = MonotonicNowNs();
  recorder.RecordSpan("main_thread", base, base + 1000);
  std::thread other(
      [&] { recorder.RecordSpan("other_thread", base + 2000, base + 3000); });
  other.join();
  recorder.RecordSpan("main_again", base + 4000, base + 5000);
  recorder.Stop();

  const std::vector<TraceEvent> events = recorder.ExportEvents();
  ASSERT_EQ(events.size(), 3u);
  int main_tid = 0;
  int other_tid = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.pid, 1);
    if (e.name == "other_thread") {
      other_tid = e.tid;
    } else {
      if (main_tid != 0) {
        EXPECT_EQ(e.tid, main_tid);  // same thread, same tid
      }
      main_tid = e.tid;
    }
  }
  EXPECT_NE(main_tid, other_tid);
}

TEST(ScopedTraceTest, ObservesElapsedIntoHistogram) {
  if (!Telemetry::compiled_in()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Histogram histogram(HistogramOptions{});
  {
    ScopedTrace scope("scoped_trace_test", &histogram);
  }
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_GE(histogram.sum(), 0.0);
}

TEST(ScopedTraceTest, DisabledTelemetrySkipsAllWork) {
  Histogram histogram(HistogramOptions{});
  Telemetry::Disable();
  {
    ScopedTrace scope("scoped_trace_disabled", &histogram);
  }
  Telemetry::Enable();
  EXPECT_EQ(histogram.count(), 0);
}

TEST(ScopedTraceTest, RecordsSpanWhileDefaultRecorderRuns) {
  if (!Telemetry::compiled_in()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TraceRecorder& recorder = TraceRecorder::Default();
  recorder.Start();
  {
    FEDMIGR_TRACE_SCOPE("obs/trace_test_scope");
  }
  recorder.Stop();
  const std::vector<TraceEvent> events = recorder.ExportEvents();
  bool found = false;
  for (const TraceEvent& e : events) {
    found = found || e.name == "obs/trace_test_scope";
  }
  EXPECT_TRUE(found);
  recorder.Clear();
}

}  // namespace
}  // namespace fedmigr::obs
