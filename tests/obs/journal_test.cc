// Flight-recorder container and recorder semantics: FJRN framing, the
// recorder's buffer/commit/seal lifecycle, torn-tail tolerance, the
// Attach() resume-truncation contract, the deterministic client sampler,
// and the running summary's agreement with the event stream.

#include "obs/journal.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/file.h"
#include "util/status.h"

namespace fedmigr::obs {
namespace {

std::string TempPath(const std::string& name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + name;
}

JournalHeader TestHeader() {
  JournalHeader header;
  header.run_seed = 42;
  header.num_clients = 10;
  header.cohort_size = 4;
  header.scheme = "journal-test";
  return header;
}

// Drives the recorder through `epochs` committed epochs with a fixed event
// mix that touches every summary field at least once.
void RecordEpochs(Journal* journal, int first_epoch, int last_epoch) {
  for (int epoch = first_epoch; epoch <= last_epoch; ++epoch) {
    journal->RoundBegin(epoch, /*active=*/4, /*available=*/3,
                        /*lineage=*/epoch);
    journal->CohortSampled(epoch, /*cohort_size=*/4, /*carryover=*/1);
    journal->ClientDeparted(epoch, 9);
    journal->ClientCarriedOver(epoch, 8);
    journal->ChurnAbsence(epoch, 7);
    journal->ModelDistributed(epoch, 1, epoch);
    journal->ClientParticipated(epoch, 1, /*lan=*/0, epoch, /*loss=*/0.5);
    journal->ClientUploaded(epoch, 1, UploadStatus::kArrived, epoch);
    journal->ScreenVerdict(epoch, 1, /*flagged=*/false);
    journal->QuarantineTransition(epoch, 2, /*from_state=*/1,
                                  /*to_state=*/kJournalStateQuarantined);
    journal->QuorumCommit(epoch, /*arrivals=*/3, /*required=*/2);
    journal->QuorumMiss(epoch, /*arrivals=*/1, /*required=*/2);
    journal->ModelPublished(epoch, /*lineage=*/epoch + 1, /*parent=*/epoch);
    journal->MigrationHop(epoch, 1, 2, MigrationRoute::kC2C, epoch);
    journal->MigrationHop(epoch, 3, 4, MigrationRoute::kServerFallback,
                          epoch);
    journal->MigrationHop(epoch, 5, 6, MigrationRoute::kRolledBack, epoch);
    journal->ChaosLanSealed(epoch, 0);
    journal->ChaosLanOpened(epoch, 0);
    journal->RoundCommitted(epoch, /*participating=*/3, /*published=*/true,
                            /*lineage=*/epoch + 1, /*train_loss=*/0.25);
    ASSERT_TRUE(journal->CommitEpoch(epoch).ok());
  }
}

// One fully sealed in-memory journal image.
std::vector<uint8_t> SealedImage(int epochs) {
  Journal journal(Journal::Options{});
  EXPECT_TRUE(journal.Attach(0).ok());
  journal.BeginRun(TestHeader());
  RecordEpochs(&journal, 1, epochs);
  EXPECT_TRUE(journal.EndRun().ok());
  return journal.memory_image();
}

TEST(JournalFramingTest, FrameRoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> framed = FrameJournalChunk(payload);
  size_t consumed = 0;
  util::Result<std::vector<uint8_t>> back =
      UnframeJournalChunk(framed.data(), framed.size(), &consumed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(consumed, framed.size());
}

TEST(JournalFramingTest, EveryFlippedByteIsRejected) {
  const std::vector<uint8_t> framed = FrameJournalChunk({10, 20, 30});
  for (size_t i = 0; i < framed.size(); ++i) {
    std::vector<uint8_t> corrupt = framed;
    corrupt[i] ^= 0x01;
    size_t consumed = 0;
    const util::Result<std::vector<uint8_t>> back =
        UnframeJournalChunk(corrupt.data(), corrupt.size(), &consumed);
    EXPECT_FALSE(back.ok()) << "flip at byte " << i;
  }
}

TEST(JournalFramingTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> framed = FrameJournalChunk({10, 20, 30});
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    size_t consumed = 0;
    const util::Result<std::vector<uint8_t>> back =
        UnframeJournalChunk(framed.data(), cut, &consumed);
    EXPECT_FALSE(back.ok()) << "cut at " << cut;
  }
}

TEST(JournalRecorderTest, SealedImageParsesBackCompletely) {
  const std::vector<uint8_t> image = SealedImage(/*epochs=*/3);
  util::Result<JournalContents> contents = ParseJournal(image);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(contents->has_header);
  EXPECT_EQ(contents->header.run_seed, 42u);
  EXPECT_EQ(contents->header.num_clients, 10);
  EXPECT_EQ(contents->header.cohort_size, 4);
  EXPECT_EQ(contents->header.scheme, "journal-test");
  EXPECT_EQ(contents->committed_epochs, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(contents->torn_tail_bytes, 0u);

  ASSERT_TRUE(contents->has_summary);
  const JournalSummary& s = contents->summary;
  EXPECT_EQ(s.epochs_run, 3);
  EXPECT_EQ(s.migrations_planned, 9);
  EXPECT_EQ(s.migrations_completed, 3);
  EXPECT_EQ(s.migration_fallbacks, 3);
  EXPECT_EQ(s.migrations_rolled_back, 3);
  EXPECT_EQ(s.quorum_commits, 3);
  EXPECT_EQ(s.quorum_misses, 3);
  EXPECT_EQ(s.carryover_clients, 3);
  EXPECT_EQ(s.churn_absences, 3);
  EXPECT_EQ(s.churn_departures, 3);
  EXPECT_EQ(s.quarantines, 3);
  EXPECT_EQ(s.model_publishes, 3);
}

TEST(JournalRecorderTest, RunningSummaryMatchesEventDerivation) {
  Journal journal(Journal::Options{});
  ASSERT_TRUE(journal.Attach(0).ok());
  journal.BeginRun(TestHeader());
  RecordEpochs(&journal, 1, 2);
  const util::Result<JournalContents> contents =
      ParseJournal(journal.memory_image());
  ASSERT_TRUE(contents.ok());
  const JournalSummary derived = SummarizeJournalEvents(contents->events);
  const JournalSummary& running = journal.running_summary();
  EXPECT_EQ(running.epochs_run, derived.epochs_run);
  EXPECT_EQ(running.migrations_planned, derived.migrations_planned);
  EXPECT_EQ(running.migrations_completed, derived.migrations_completed);
  EXPECT_EQ(running.migration_fallbacks, derived.migration_fallbacks);
  EXPECT_EQ(running.migrations_rolled_back, derived.migrations_rolled_back);
  EXPECT_EQ(running.quorum_commits, derived.quorum_commits);
  EXPECT_EQ(running.quorum_misses, derived.quorum_misses);
  EXPECT_EQ(running.carryover_clients, derived.carryover_clients);
  EXPECT_EQ(running.churn_absences, derived.churn_absences);
  EXPECT_EQ(running.churn_departures, derived.churn_departures);
  EXPECT_EQ(running.quarantines, derived.quarantines);
  EXPECT_EQ(running.model_publishes, derived.model_publishes);
}

TEST(JournalRecorderTest, UncommittedEventsStayOutOfTheImage) {
  Journal journal(Journal::Options{});
  ASSERT_TRUE(journal.Attach(0).ok());
  journal.BeginRun(TestHeader());
  RecordEpochs(&journal, 1, 1);
  const size_t committed_size = journal.memory_image().size();
  journal.RoundBegin(2, 4, 3, 2);  // buffered, never committed
  EXPECT_EQ(journal.events_buffered(), 1u);
  EXPECT_EQ(journal.memory_image().size(), committed_size);
}

TEST(JournalTornTailTest, TruncationAnywhereKeepsACommittedPrefix) {
  const std::vector<uint8_t> image = SealedImage(/*epochs=*/4);
  const util::Result<JournalContents> full = ParseJournal(image);
  ASSERT_TRUE(full.ok());
  // A kill mid-append tears the file at an arbitrary byte: every prefix
  // must parse into a clean run prefix — whole committed epochs in order,
  // the remainder reported as torn, never an error or a crash.
  for (size_t cut = 0; cut <= image.size();
       cut += std::max<size_t>(1, image.size() / 211)) {
    const std::vector<uint8_t> torn(image.begin(),
                                    image.begin() + static_cast<long>(cut));
    const util::Result<JournalContents> contents = ParseJournal(torn);
    ASSERT_TRUE(contents.ok()) << "cut at " << cut;
    const size_t kept = contents->committed_epochs.size();
    ASSERT_LE(kept, full->committed_epochs.size());
    for (size_t i = 0; i < kept; ++i) {
      EXPECT_EQ(contents->committed_epochs[i], full->committed_epochs[i]);
    }
    EXPECT_LE(contents->torn_tail_bytes, torn.size());
  }
}

TEST(JournalTornTailTest, GarbageTailIsReportedNotFatal) {
  std::vector<uint8_t> image = SealedImage(/*epochs=*/2);
  const size_t clean_size = image.size();
  for (int i = 0; i < 37; ++i) {
    image.push_back(static_cast<uint8_t>(0xA0 + i));
  }
  const util::Result<JournalContents> contents = ParseJournal(image);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->committed_epochs, (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(contents->torn_tail_bytes, image.size() - clean_size);
}

TEST(JournalAttachTest, ResumeTruncatesPastTheResumeEpoch) {
  const std::string path = TempPath("fedmigr-journal-attach-test.fjrn");
  (void)util::RemoveFile(path);
  {
    Journal journal({path, 1.0});
    ASSERT_TRUE(journal.Attach(0).ok());
    journal.BeginRun(TestHeader());
    RecordEpochs(&journal, 1, 3);
    ASSERT_TRUE(journal.EndRun().ok());
  }
  // Resume after epoch 2: epoch 3's chunk and the summary are dropped; the
  // header and epochs {1, 2} survive, and the running summary is re-primed
  // from the kept events.
  {
    Journal journal({path, 1.0});
    ASSERT_TRUE(journal.Attach(2).ok());
    EXPECT_TRUE(journal.header_written());
    EXPECT_EQ(journal.running_summary().epochs_run, 2);
    EXPECT_EQ(journal.running_summary().migrations_planned, 6);
  }
  const util::Result<JournalContents> contents = ReadJournalFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->has_header);
  EXPECT_FALSE(contents->has_summary);
  EXPECT_EQ(contents->committed_epochs, (std::vector<int32_t>{1, 2}));

  // A fresh start (resume_epoch 0) truncates to empty.
  {
    Journal journal({path, 1.0});
    ASSERT_TRUE(journal.Attach(0).ok());
    EXPECT_FALSE(journal.header_written());
  }
  const util::Result<std::vector<uint8_t>> bytes = util::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(bytes->empty());
  (void)util::RemoveFile(path);
}

TEST(JournalAttachTest, ResumeAfterTornTailKeepsTheValidPrefix) {
  const std::string path = TempPath("fedmigr-journal-torn-attach-test.fjrn");
  (void)util::RemoveFile(path);
  {
    Journal journal({path, 1.0});
    ASSERT_TRUE(journal.Attach(0).ok());
    journal.BeginRun(TestHeader());
    RecordEpochs(&journal, 1, 2);
    ASSERT_TRUE(journal.Finish().ok());
  }
  // Simulate a crash mid-append: a torn half-frame after the last commit.
  util::Result<std::vector<uint8_t>> bytes = util::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> torn = *bytes;
  torn.insert(torn.end(), {0x46, 0x4A, 0x52, 0x4E, 0x01, 0x00});
  ASSERT_TRUE(util::AtomicWriteFile(path, torn).ok());

  Journal journal({path, 1.0});
  ASSERT_TRUE(journal.Attach(2).ok());
  EXPECT_TRUE(journal.header_written());
  EXPECT_EQ(journal.running_summary().epochs_run, 2);
  // The torn bytes are gone from disk; the file is the clean prefix again.
  const util::Result<std::vector<uint8_t>> after = util::ReadFileBytes(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *bytes);
  (void)util::RemoveFile(path);
}

TEST(JournalSamplingTest, VerdictIsPureInClientAndRate) {
  const Journal half(Journal::Options{"", 0.5});
  const Journal twin(Journal::Options{"", 0.5});
  int sampled = 0;
  for (int client = 0; client < 4096; ++client) {
    EXPECT_EQ(half.SampledClient(client), twin.SampledClient(client));
    if (half.SampledClient(client)) ++sampled;
  }
  // The splitmix64 hash keeps the hit rate near the target.
  EXPECT_GT(sampled, 4096 / 2 - 300);
  EXPECT_LT(sampled, 4096 / 2 + 300);

  const Journal all(Journal::Options{"", 1.0});
  const Journal none(Journal::Options{"", 0.0});
  for (int client : {0, 1, 17, 100000}) {
    EXPECT_TRUE(all.SampledClient(client));
    EXPECT_FALSE(none.SampledClient(client));
  }
}

TEST(JournalSamplingTest, ReconciliationKindsAreNeverSampled) {
  // sample_rate 0 thins the client-detail kinds to nothing, but the
  // summary-bearing kinds still record — totals stay exact.
  Journal journal(Journal::Options{"", 0.0});
  ASSERT_TRUE(journal.Attach(0).ok());
  journal.BeginRun(TestHeader());
  RecordEpochs(&journal, 1, 1);
  const util::Result<JournalContents> contents =
      ParseJournal(journal.memory_image());
  ASSERT_TRUE(contents.ok());
  int detail = 0;
  for (const JournalEvent& event : contents->events) {
    const auto kind = static_cast<JournalEventKind>(event.kind);
    if (kind == JournalEventKind::kModelDistributed ||
        kind == JournalEventKind::kClientParticipated ||
        kind == JournalEventKind::kClientUploaded ||
        kind == JournalEventKind::kScreenVerdict) {
      ++detail;
    }
  }
  EXPECT_EQ(detail, 0);
  const JournalSummary derived = SummarizeJournalEvents(contents->events);
  EXPECT_EQ(derived.migrations_planned, 3);
  EXPECT_EQ(derived.quorum_commits, 1);
  EXPECT_EQ(derived.quarantines, 1);
  EXPECT_EQ(derived.model_publishes, 1);
}

}  // namespace
}  // namespace fedmigr::obs
