#include "obs/metrics.h"

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace fedmigr::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
}

TEST(HistogramTest, BucketLayoutIsExponential) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram hist(options);
  ASSERT_EQ(hist.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[2], 4.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[3], 8.0);
  EXPECT_EQ(hist.num_buckets(), 5u);  // finite + overflow
}

TEST(HistogramTest, ObservePlacesIntoBuckets) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds 1, 2, 4 + overflow
  Histogram hist(options);
  hist.Observe(0.5);   // <= 1 -> bucket 0
  hist.Observe(1.0);   // == bound -> bucket 0 (bounds are inclusive)
  hist.Observe(1.5);   // bucket 1
  hist.Observe(4.0);   // bucket 2
  hist.Observe(100.0);  // overflow
  EXPECT_EQ(hist.count(), 5);
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 1);
  EXPECT_EQ(hist.bucket_count(2), 1);
  EXPECT_EQ(hist.bucket_count(3), 1);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramTest, NanGoesToOverflowBucket) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.num_buckets = 2;
  Histogram hist(options);
  hist.Observe(std::nan(""));
  EXPECT_EQ(hist.count(), 1);
  EXPECT_EQ(hist.bucket_count(0), 0);
  EXPECT_EQ(hist.bucket_count(2), 1);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("a");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(registry.GetCounter("a"), a);
  EXPECT_EQ(registry.GetGauge("g"), g);
  EXPECT_EQ(registry.GetHistogram("h"), h);
}

TEST(RegistryDeathTest, KindCollisionIsAProgrammingError) {
  Registry registry;
  registry.GetCounter("metric");
  EXPECT_DEATH({ registry.GetGauge("metric"); }, "already registered");
  EXPECT_DEATH({ registry.GetHistogram("metric"); }, "already registered");
}

TEST(RegistryTest, LabeledNameSortsKeys) {
  const std::string name = Registry::LabeledName(
      "nn/gemm_ms", {{"kernel", "avx2"}, {"dtype", "f32"}});
  EXPECT_EQ(name, "nn/gemm_ms{dtype=f32,kernel=avx2}");
  // Same label set in any order maps to the same series.
  EXPECT_EQ(Registry::LabeledName("m", {{"b", "2"}, {"a", "1"}}),
            Registry::LabeledName("m", {{"a", "1"}, {"b", "2"}}));
}

TEST(RegistryTest, ConcurrentUpdatesLoseNothing) {
  Registry registry;
  Counter* counter = registry.GetCounter("torture/counter");
  Histogram* hist = registry.GetHistogram("torture/hist");
  Gauge* gauge = registry.GetGauge("torture/gauge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  util::ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](int t) {
    // Mix creation (get-or-create races on the same names) with updates.
    Counter* mine = registry.GetCounter("torture/counter");
    for (int i = 0; i < kPerThread; ++i) {
      mine->Increment();
      gauge->Add(1.0);
      hist->Observe(static_cast<double>((t + i) % 7));
    }
  });
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->value(),
                   static_cast<double>(kThreads * kPerThread));
}

TEST(RegistryTest, SnapshotIsSortedAndDeterministic) {
  Registry registry;
  registry.GetCounter("z/last")->Add(3);
  registry.GetCounter("a/first")->Add(1);
  registry.GetGauge("m/gauge")->Set(0.25);
  registry.GetHistogram("h/hist")->Observe(0.01);

  const MetricsSnapshot snap1 = registry.Snapshot();
  const MetricsSnapshot snap2 = registry.Snapshot();

  ASSERT_EQ(snap1.counters.size(), 2u);
  EXPECT_EQ(snap1.counters[0].name, "a/first");
  EXPECT_EQ(snap1.counters[1].name, "z/last");
  EXPECT_EQ(snap1.CounterValue("z/last"), 3);
  EXPECT_EQ(snap1.CounterValue("missing"), 0);
  EXPECT_DOUBLE_EQ(snap1.GaugeValue("m/gauge"), 0.25);
  ASSERT_NE(snap1.FindHistogram("h/hist"), nullptr);
  EXPECT_EQ(snap1.FindHistogram("nope"), nullptr);

  // Idle registry -> byte-identical serializations.
  EXPECT_EQ(snap1.ToJson(), snap2.ToJson());
  EXPECT_EQ(snap1.ToCsv(), snap2.ToCsv());
}

TEST(MetricsSnapshotTest, PercentilesInterpolate) {
  Registry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram* hist = registry.GetHistogram("p/hist", options);
  for (int i = 0; i < 100; ++i) hist->Observe(1.5);  // all in (1, 2]
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricsSnapshot::HistogramSample* sample = snap.FindHistogram("p/hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 100);
  EXPECT_DOUBLE_EQ(sample->mean(), 1.5);
  // Every estimate stays inside the populated bucket's range.
  for (double p : {1.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double est = sample->Percentile(p);
    EXPECT_GE(est, 1.0) << "p=" << p;
    EXPECT_LE(est, 2.0) << "p=" << p;
  }
  // The snapshot columns are monotone by construction.
  EXPECT_LE(sample->Percentile(50.0), sample->Percentile(90.0));
  EXPECT_LE(sample->Percentile(90.0), sample->Percentile(95.0));
  EXPECT_LE(sample->Percentile(95.0), sample->Percentile(99.0));
  // Empty sample -> 0.
  MetricsSnapshot::HistogramSample empty;
  EXPECT_EQ(empty.Percentile(50.0), 0.0);
}

TEST(MetricsSnapshotTest, JsonAndCsvContainAllSeries) {
  Registry registry;
  registry.GetCounter("c/events")->Add(7);
  registry.GetGauge("g/loss")->Set(0.5);
  registry.GetHistogram("h/ms")->Observe(0.002);
  const MetricsSnapshot snap = registry.Snapshot();

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"c/events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"g/loss\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"h/ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string csv = snap.ToCsv();
  EXPECT_EQ(csv.rfind("kind,name,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,c/events,7\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g/loss,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram_count,h/ms,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram_p95,h/ms,"), std::string::npos);
}

TEST(TelemetryTest, RuntimeToggleRoundTrips) {
  if (!Telemetry::compiled_in()) {
    // Compiled out: enabled() must be a constant false the toggles cannot
    // resurrect.
    Telemetry::Enable();
    EXPECT_FALSE(Telemetry::enabled());
    return;
  }
  EXPECT_TRUE(Telemetry::enabled());
  Telemetry::Disable();
  EXPECT_FALSE(Telemetry::enabled());
  Telemetry::Enable();
  EXPECT_TRUE(Telemetry::enabled());
}

}  // namespace
}  // namespace fedmigr::obs
