#include "rl/policy.h"

#include <memory>

#include <gtest/gtest.h>

#include "net/budget.h"
#include "net/topology.h"
#include "rl/pretrain.h"

namespace fedmigr::rl {
namespace {

struct PolicyFixture {
  PolicyFixture() : topology(net::MakeC10SimTopology()), rng(17) {
    const int k = 10;
    client_dists.resize(k, std::vector<double>(k, 0.0));
    for (int i = 0; i < k; ++i) {
      client_dists[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
    }
    model_dists = client_dists;
    ctx.epoch = 1;
    ctx.topology = &topology;
    ctx.model_bytes = 50000;
    ctx.client_distributions = &client_dists;
    ctx.model_distributions = &model_dists;
    ctx.global_loss = 2.0;
    ctx.budget = &budget;
    ctx.rng = &rng;
  }

  std::shared_ptr<DdpgAgent> MakeAgent() {
    PretrainOptions options;
    options.episodes = 3;  // fast; tests only need a functioning agent
    auto agent = std::make_shared<DdpgAgent>(AgentConfig{});
    SurrogateConfig env;
    env.num_clients = 10;
    env.num_classes = 10;
    env.num_lans = 3;
    Pretrain(agent.get(), env, options);
    return agent;
  }

  net::Topology topology;
  net::Budget budget;
  util::Rng rng;
  std::vector<std::vector<double>> client_dists;
  std::vector<std::vector<double>> model_dists;
  fl::PolicyContext ctx;
};

TEST(DrlPolicyTest, PlanIsConflictFree) {
  PolicyFixture f;
  DrlMigrationPolicy policy(f.MakeAgent(), DrlPolicyOptions{});
  for (int trial = 0; trial < 3; ++trial) {
    const fl::MigrationPlan plan = policy.Plan(f.ctx);
    ASSERT_EQ(plan.incoming.size(), 10u);
    std::vector<int> sends(10, 0);
    for (size_t j = 0; j < plan.incoming.size(); ++j) {
      const int src = plan.incoming[j];
      ASSERT_GE(src, 0);
      ASSERT_LT(src, 10);
      if (src != static_cast<int>(j)) ++sends[static_cast<size_t>(src)];
    }
    for (int s : sends) EXPECT_LE(s, 1);
  }
}

TEST(DrlPolicyTest, RhoOneFollowsFlmm) {
  PolicyFixture f;
  DrlPolicyOptions options;
  options.rho = 1.0;
  DrlMigrationPolicy policy(f.MakeAgent(), options);
  const fl::MigrationPlan plan = policy.Plan(f.ctx);
  // All gains equal and positive: the FLMM plan migrates everyone.
  EXPECT_GT(plan.NumMoves(), 5);
}

TEST(DrlPolicyTest, OnlineLearningAccumulatesTransitions) {
  PolicyFixture f;
  DrlPolicyOptions options;
  options.online_learning = true;
  options.train_steps_per_feedback = 0;  // just exercise the bookkeeping
  DrlMigrationPolicy policy(f.MakeAgent(), options);

  (void)policy.Plan(f.ctx);
  fl::PolicyFeedback feedback;
  feedback.epoch = 1;
  feedback.loss_before = 2.0;
  feedback.loss_after = 1.8;
  policy.Feedback(feedback);
  // Next Plan attaches successor states and pushes to the buffer.
  (void)policy.Plan(f.ctx);
  SUCCEED();  // reaching here without CHECK failures is the assertion
}

TEST(DrlPolicyTest, OnlineTrainingStepsRun) {
  PolicyFixture f;
  DrlPolicyOptions options;
  options.online_learning = true;
  options.train_steps_per_feedback = 1;
  options.buffer_capacity = 64;
  DrlMigrationPolicy policy(f.MakeAgent(), options);
  // Drive enough plan/feedback cycles to fill a batch and take agent
  // gradient steps; the invariant is simply that nothing breaks and plans
  // stay valid throughout.
  for (int epoch = 1; epoch <= 8; ++epoch) {
    const fl::MigrationPlan plan = policy.Plan(f.ctx);
    ASSERT_EQ(plan.incoming.size(), 10u);
    fl::PolicyFeedback feedback;
    feedback.epoch = epoch;
    feedback.loss_before = 2.0 - 0.05 * epoch;
    feedback.loss_after = 2.0 - 0.05 * (epoch + 1);
    feedback.done = epoch == 8;
    feedback.success = true;
    policy.Feedback(feedback);
  }
  SUCCEED();
}

TEST(DrlPolicyTest, FeedbackWithoutLearningIsNoop) {
  PolicyFixture f;
  DrlMigrationPolicy policy(f.MakeAgent(), DrlPolicyOptions{});
  fl::PolicyFeedback feedback;
  policy.Feedback(feedback);  // must not crash or allocate state
  SUCCEED();
}

TEST(DrlPolicyTest, NameIsStable) {
  PolicyFixture f;
  DrlMigrationPolicy policy(f.MakeAgent(), DrlPolicyOptions{});
  EXPECT_EQ(policy.name(), "fedmigr-drl");
}

}  // namespace
}  // namespace fedmigr::rl
