#include "rl/pretrain.h"

#include <gtest/gtest.h>

namespace fedmigr::rl {
namespace {

SurrogateConfig SmallEnv() {
  SurrogateConfig config;
  config.num_clients = 6;
  config.num_classes = 6;
  config.num_lans = 2;
  config.episode_epochs = 12;
  config.agg_period = 6;
  return config;
}

TEST(PretrainTest, RunsRequestedEpisodes) {
  DdpgAgent agent(AgentConfig{});
  PretrainOptions options;
  options.episodes = 3;
  const PretrainReport report = Pretrain(&agent, SmallEnv(), options);
  EXPECT_EQ(report.episodes, 3);
  // Every source decides every epoch: 6 clients x 12 epochs x 3 episodes.
  EXPECT_EQ(report.transitions, 6 * 12 * 3);
}

TEST(PretrainTest, TrainedActorPrefersGainOverStaying) {
  // After pre-training, a high-gain cheap action must outscore staying
  // home — the minimal sanity property of the learned policy.
  DdpgAgent agent = MakePretrainedAgent(6, 6, 2);
  const std::vector<float> high_gain = {1.0f, 1.0f, 0.1f, 0.0f,
                                        0.5f, 0.5f, 0.1f, 0.1f};
  const std::vector<float> stay = {0.0f, 1.0f, 0.0f, 1.0f,
                                   0.5f, 0.5f, 0.1f, 0.1f};
  const auto scores = agent.Score({high_gain, stay});
  EXPECT_GT(scores[0], scores[1]);
}

TEST(PretrainTest, TrainedActorRanksGain) {
  DdpgAgent agent = MakePretrainedAgent(6, 6, 2);
  const std::vector<float> high = {1.0f, 0.0f, 0.3f, 0.0f,
                                   0.5f, 0.5f, 0.1f, 0.1f};
  const std::vector<float> low = {0.05f, 0.0f, 0.3f, 0.0f,
                                  0.5f, 0.5f, 0.1f, 0.1f};
  const auto scores = agent.Score({high, low});
  EXPECT_GT(scores[0], scores[1]);
}

TEST(PretrainTest, DeterministicGivenSeeds) {
  auto run = []() {
    DdpgAgent agent(AgentConfig{});
    PretrainOptions options;
    options.episodes = 2;
    return Pretrain(&agent, SmallEnv(), options);
  };
  const PretrainReport a = run();
  const PretrainReport b = run();
  EXPECT_DOUBLE_EQ(a.first_episode_return, b.first_episode_return);
  EXPECT_DOUBLE_EQ(a.last_episode_return, b.last_episode_return);
}

}  // namespace
}  // namespace fedmigr::rl
