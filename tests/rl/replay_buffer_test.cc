#include "rl/replay_buffer.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace fedmigr::rl {
namespace {

Transition MakeTransition(float reward) {
  Transition t;
  t.candidates = {{reward}};
  t.action_index = 0;
  t.reward = reward;
  return t;
}

TEST(SumTreeTest, TotalTracksUpdates) {
  SumTree tree(4);
  EXPECT_EQ(tree.Total(), 0.0);
  tree.Set(0, 1.0);
  tree.Set(2, 3.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 4.0);
  tree.Set(0, 0.5);
  EXPECT_DOUBLE_EQ(tree.Total(), 3.5);
  EXPECT_DOUBLE_EQ(tree.Get(2), 3.0);
}

TEST(SumTreeTest, FindLocatesInterval) {
  SumTree tree(4);
  tree.Set(0, 1.0);
  tree.Set(1, 2.0);
  tree.Set(2, 3.0);
  tree.Set(3, 4.0);
  EXPECT_EQ(tree.Find(0.5), 0u);
  EXPECT_EQ(tree.Find(1.5), 1u);
  EXPECT_EQ(tree.Find(3.5), 2u);
  EXPECT_EQ(tree.Find(9.9), 3u);
}

TEST(SumTreeTest, NonPowerOfTwoCapacity) {
  SumTree tree(5);
  for (size_t i = 0; i < 5; ++i) tree.Set(i, 1.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 5.0);
  EXPECT_EQ(tree.Find(4.5), 4u);
}

TEST(ReplayBufferTest, SizeGrowsToCapacity) {
  PrioritizedReplayBuffer buffer(3);
  EXPECT_TRUE(buffer.empty());
  for (int i = 0; i < 5; ++i) buffer.Add(MakeTransition(1.0f));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.capacity(), 3u);
}

TEST(ReplayBufferTest, OverwritesOldestEntries) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(1.0f));
  buffer.Add(MakeTransition(2.0f));
  buffer.Add(MakeTransition(3.0f));  // overwrites reward 1
  util::Rng rng(1);
  std::map<float, int> rewards;
  for (int i = 0; i < 100; ++i) {
    for (const auto& sample : buffer.Sample(1, &rng)) {
      rewards[sample.transition->reward]++;
    }
  }
  EXPECT_EQ(rewards.count(1.0f), 0u);
  EXPECT_GT(rewards[2.0f], 0);
  EXPECT_GT(rewards[3.0f], 0);
}

TEST(ReplayBufferTest, SampleReturnsValidPointers) {
  PrioritizedReplayBuffer buffer(8);
  for (int i = 0; i < 8; ++i) {
    buffer.Add(MakeTransition(static_cast<float>(i)));
  }
  util::Rng rng(2);
  const auto batch = buffer.Sample(4, &rng);
  EXPECT_EQ(batch.size(), 4u);
  for (const auto& sample : batch) {
    ASSERT_NE(sample.transition, nullptr);
    EXPECT_LT(sample.index, buffer.size());
    EXPECT_GT(sample.weight, 0.0);
    EXPECT_LE(sample.weight, 1.0 + 1e-9);
  }
}

TEST(ReplayBufferTest, HighPrioritySampledMoreOften) {
  PrioritizedReplayBuffer buffer(2, /*xi=*/1.0);
  buffer.Add(MakeTransition(0.0f));
  buffer.Add(MakeTransition(1.0f));
  buffer.UpdatePriority(0, 0.1);
  buffer.UpdatePriority(1, 10.0);
  util::Rng rng(3);
  int hits_high = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto batch = buffer.Sample(1, &rng);
    if (batch[0].index == 1) ++hits_high;
  }
  EXPECT_GT(static_cast<double>(hits_high) / n, 0.9);
}

TEST(ReplayBufferTest, XiZeroIsUniform) {
  PrioritizedReplayBuffer buffer(2, /*xi=*/0.0);
  buffer.Add(MakeTransition(0.0f));
  buffer.Add(MakeTransition(1.0f));
  buffer.UpdatePriority(0, 0.01);
  buffer.UpdatePriority(1, 100.0);
  util::Rng rng(4);
  int hits_high = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (buffer.Sample(1, &rng)[0].index == 1) ++hits_high;
  }
  EXPECT_NEAR(static_cast<double>(hits_high) / n, 0.5, 0.05);
}

TEST(ReplayBufferTest, ImportanceWeightsCounterPrioritization) {
  PrioritizedReplayBuffer buffer(2, /*xi=*/1.0, /*beta=*/1.0);
  buffer.Add(MakeTransition(0.0f));
  buffer.Add(MakeTransition(1.0f));
  buffer.UpdatePriority(0, 1.0);
  buffer.UpdatePriority(1, 9.0);
  // Compare within a batch that contains both transitions (weights are
  // normalized per batch, so cross-batch values are not comparable).
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto batch = buffer.Sample(2, &rng);
    double low_weight = -1.0, high_weight = -1.0;
    for (const auto& sample : batch) {
      if (sample.index == 0) {
        low_weight = sample.weight;
      } else {
        high_weight = sample.weight;
      }
    }
    if (low_weight < 0.0 || high_weight < 0.0) continue;
    // The frequently-sampled transition gets the smaller weight.
    EXPECT_LT(high_weight, low_weight);
    return;
  }
  FAIL() << "never sampled both transitions in one batch";
}

TEST(ReplayBufferTest, ZeroPriorityStaysReachable) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0.0f));
  buffer.Add(MakeTransition(1.0f));
  // Both clamped to the same small floor -> sampling stays well-defined
  // and roughly uniform.
  buffer.UpdatePriority(0, 0.0);
  buffer.UpdatePriority(1, 0.0);
  util::Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (buffer.Sample(1, &rng)[0].index == 0) ++hits;
  }
  EXPECT_GT(hits, 500);
  EXPECT_LT(hits, 1500);
}

Transition RichTransition(float base) {
  Transition t;
  t.candidates = {{base, base + 1.0f}, {base * 2.0f, -base}};
  t.action_index = 1;
  t.reward = base * 0.5f;
  t.done = false;
  t.next_candidates = {{base + 3.0f, base - 3.0f}};
  return t;
}

TEST(ReplayBufferStateTest, SaveLoadRoundTripsContentsAndPriorities) {
  PrioritizedReplayBuffer buffer(4, /*xi=*/0.7, /*beta=*/0.5);
  for (int i = 0; i < 6; ++i) {  // wraps: oldest two overwritten
    buffer.Add(RichTransition(static_cast<float>(i)));
  }
  buffer.UpdatePriority(1, 3.0);
  buffer.UpdatePriority(2, 0.25);

  util::ByteWriter writer;
  buffer.SaveState(&writer);
  PrioritizedReplayBuffer restored(4, /*xi=*/0.7, /*beta=*/0.5);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());

  ASSERT_EQ(restored.size(), buffer.size());
  // Identical sampling behavior from identical RNG streams is the property
  // the resume contract needs.
  util::Rng rng_a(77), rng_b(77);
  for (int trial = 0; trial < 200; ++trial) {
    const auto batch_a = buffer.Sample(2, &rng_a);
    const auto batch_b = restored.Sample(2, &rng_b);
    for (size_t j = 0; j < batch_a.size(); ++j) {
      ASSERT_EQ(batch_a[j].index, batch_b[j].index);
      ASSERT_EQ(batch_a[j].weight, batch_b[j].weight);
      ASSERT_EQ(batch_a[j].transition->reward,
                batch_b[j].transition->reward);
      ASSERT_EQ(batch_a[j].transition->candidates,
                batch_b[j].transition->candidates);
      ASSERT_EQ(batch_a[j].transition->next_candidates,
                batch_b[j].transition->next_candidates);
      ASSERT_EQ(batch_a[j].transition->action_index,
                batch_b[j].transition->action_index);
    }
  }
  // New additions continue identically too (same max_priority_, next_).
  buffer.Add(RichTransition(9.0f));
  restored.Add(RichTransition(9.0f));
  const auto a = buffer.Sample(4, &rng_a);
  const auto b = restored.Sample(4, &rng_b);
  for (size_t j = 0; j < a.size(); ++j) {
    ASSERT_EQ(a[j].index, b[j].index);
    ASSERT_EQ(a[j].weight, b[j].weight);
  }
}

TEST(ReplayBufferStateTest, PartiallyFilledBufferRoundTrips) {
  PrioritizedReplayBuffer buffer(8);
  buffer.Add(RichTransition(1.0f));
  buffer.Add(RichTransition(2.0f));
  util::ByteWriter writer;
  buffer.SaveState(&writer);
  PrioritizedReplayBuffer restored(8);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.size(), 2u);
}

TEST(ReplayBufferStateTest, EmptyBufferRoundTrips) {
  PrioritizedReplayBuffer buffer(3);
  util::ByteWriter writer;
  buffer.SaveState(&writer);
  PrioritizedReplayBuffer restored(3);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(ReplayBufferStateTest, CapacityMismatchRejected) {
  PrioritizedReplayBuffer buffer(4);
  buffer.Add(RichTransition(1.0f));
  util::ByteWriter writer;
  buffer.SaveState(&writer);
  PrioritizedReplayBuffer wrong(8);
  util::ByteReader reader(writer.bytes());
  EXPECT_FALSE(wrong.LoadState(&reader).ok());
}

TEST(ReplayBufferStateTest, TruncationFuzzNeverCrashes) {
  PrioritizedReplayBuffer buffer(4);
  for (int i = 0; i < 4; ++i) buffer.Add(RichTransition(1.0f + i));
  util::ByteWriter writer;
  buffer.SaveState(&writer);
  const std::vector<uint8_t>& full = writer.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    PrioritizedReplayBuffer victim(4);
    util::ByteReader reader(full.data(), cut);
    EXPECT_FALSE(victim.LoadState(&reader).ok()) << "cut " << cut;
  }
}

TEST(ReplayBufferStateTest, BitFlipFuzzNeverCrashes) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(RichTransition(1.0f));
  buffer.Add(RichTransition(2.0f));
  util::ByteWriter writer;
  buffer.SaveState(&writer);
  const std::vector<uint8_t> full = writer.bytes();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto corrupt = full;
      corrupt[pos] ^= static_cast<uint8_t>(1u << bit);
      PrioritizedReplayBuffer victim(2);
      util::ByteReader reader(corrupt);
      // Either a clean error or a structurally valid buffer; never a crash
      // or hang (ASan/UBSan enforce the rest).
      (void)victim.LoadState(&reader);
    }
  }
}

}  // namespace
}  // namespace fedmigr::rl
