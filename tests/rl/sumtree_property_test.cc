// Randomized consistency properties of the prioritized-replay sum-tree.

#include <gtest/gtest.h>

#include "rl/replay_buffer.h"
#include "util/rng.h"

namespace fedmigr::rl {
namespace {

class SumTreePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SumTreePropertyTest, TotalMatchesLeafSumUnderRandomUpdates) {
  const size_t capacity = GetParam();
  SumTree tree(capacity);
  util::Rng rng(capacity * 17);
  std::vector<double> reference(capacity, 0.0);
  for (int step = 0; step < 500; ++step) {
    const size_t index = static_cast<size_t>(
        rng.UniformInt(static_cast<int>(capacity)));
    const double priority = rng.Uniform(0.0, 10.0);
    tree.Set(index, priority);
    reference[index] = priority;
    double total = 0.0;
    for (double p : reference) total += p;
    ASSERT_NEAR(tree.Total(), total, 1e-9);
    ASSERT_NEAR(tree.Get(index), priority, 1e-12);
  }
}

TEST_P(SumTreePropertyTest, FindAgreesWithLinearScan) {
  const size_t capacity = GetParam();
  SumTree tree(capacity);
  util::Rng rng(capacity * 19 + 1);
  std::vector<double> reference(capacity, 0.0);
  for (size_t i = 0; i < capacity; ++i) {
    reference[i] = rng.Uniform(0.0, 5.0);
    tree.Set(i, reference[i]);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const double mass = rng.Uniform() * tree.Total();
    const size_t found = tree.Find(mass);
    // Linear-scan ground truth.
    double cumulative = 0.0;
    size_t expected = capacity - 1;
    for (size_t i = 0; i < capacity; ++i) {
      cumulative += reference[i];
      if (mass < cumulative) {
        expected = i;
        break;
      }
    }
    ASSERT_EQ(found, expected) << "mass " << mass;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SumTreePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 64, 100));

}  // namespace
}  // namespace fedmigr::rl
