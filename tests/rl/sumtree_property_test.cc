// Randomized consistency properties of the prioritized-replay sum-tree.

#include <gtest/gtest.h>

#include "rl/replay_buffer.h"
#include "util/rng.h"

namespace fedmigr::rl {
namespace {

class SumTreePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SumTreePropertyTest, TotalMatchesLeafSumUnderRandomUpdates) {
  const size_t capacity = GetParam();
  SumTree tree(capacity);
  util::Rng rng(capacity * 17);
  std::vector<double> reference(capacity, 0.0);
  for (int step = 0; step < 500; ++step) {
    const size_t index = static_cast<size_t>(
        rng.UniformInt(static_cast<int>(capacity)));
    const double priority = rng.Uniform(0.0, 10.0);
    tree.Set(index, priority);
    reference[index] = priority;
    double total = 0.0;
    for (double p : reference) total += p;
    ASSERT_NEAR(tree.Total(), total, 1e-9);
    ASSERT_NEAR(tree.Get(index), priority, 1e-12);
  }
}

TEST_P(SumTreePropertyTest, FindAgreesWithLinearScan) {
  const size_t capacity = GetParam();
  SumTree tree(capacity);
  util::Rng rng(capacity * 19 + 1);
  std::vector<double> reference(capacity, 0.0);
  for (size_t i = 0; i < capacity; ++i) {
    reference[i] = rng.Uniform(0.0, 5.0);
    tree.Set(i, reference[i]);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const double mass = rng.Uniform() * tree.Total();
    const size_t found = tree.Find(mass);
    // Linear-scan ground truth.
    double cumulative = 0.0;
    size_t expected = capacity - 1;
    for (size_t i = 0; i < capacity; ++i) {
      cumulative += reference[i];
      if (mass < cumulative) {
        expected = i;
        break;
      }
    }
    ASSERT_EQ(found, expected) << "mass " << mass;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SumTreePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 64, 100));

// Boundary behavior at and beyond the total mass: a [0, 1) draw scaled by
// Total() can round up to exactly Total() in floating point, and Find must
// then land on the LAST leaf that carries priority — never a zero-priority
// padding leaf past it.
TEST_P(SumTreePropertyTest, FindAtTotalMassReturnsLastPositiveLeaf) {
  const size_t capacity = GetParam();
  SumTree tree(capacity);
  util::Rng rng(capacity * 23 + 5);
  for (size_t i = 0; i < capacity; ++i) {
    tree.Set(i, rng.Uniform(0.1, 5.0));
  }
  EXPECT_EQ(tree.Find(tree.Total()), capacity - 1);
  EXPECT_EQ(tree.Find(tree.Total() * 2.0), capacity - 1);
}

TEST_P(SumTreePropertyTest, FindSkipsZeroPriorityTail) {
  const size_t capacity = GetParam();
  if (capacity < 2) return;
  SumTree tree(capacity);
  // Only the first half carries priority; the tail (and the power-of-two
  // padding beyond capacity) is zero.
  const size_t filled = capacity / 2;
  for (size_t i = 0; i < filled; ++i) tree.Set(i, 1.0);
  for (double mass : {tree.Total() - 1e-12, tree.Total(),
                      tree.Total() + 1.0}) {
    const size_t found = tree.Find(mass);
    EXPECT_LT(found, filled) << "mass " << mass
                             << " landed on a zero-priority leaf";
  }
}

TEST(SumTreeBoundaryTest, AllZeroPrioritiesFindStaysInRange) {
  for (size_t capacity : {1u, 2u, 5u, 8u}) {
    SumTree tree(capacity);
    for (double mass : {0.0, 0.5, 1.0}) {
      EXPECT_LT(tree.Find(mass), capacity);
    }
  }
}

TEST(SumTreeBoundaryTest, CapacityOneAlwaysFindsLeafZero) {
  SumTree tree(1);
  EXPECT_EQ(tree.Find(0.0), 0u);
  tree.Set(0, 2.5);
  EXPECT_EQ(tree.Find(0.0), 0u);
  EXPECT_EQ(tree.Find(2.4), 0u);
  EXPECT_EQ(tree.Find(2.5), 0u);   // mass == Total()
  EXPECT_EQ(tree.Find(99.0), 0u);  // mass > Total()
}

TEST(SumTreeBoundaryTest, SinglePositiveLeafAbsorbsAllMass) {
  SumTree tree(7);
  tree.Set(3, 4.0);
  for (double mass : {0.0, 2.0, 3.999, 4.0, 100.0}) {
    EXPECT_EQ(tree.Find(mass), 3u) << "mass " << mass;
  }
}

}  // namespace
}  // namespace fedmigr::rl
