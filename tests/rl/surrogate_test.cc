#include "rl/surrogate.h"

#include <gtest/gtest.h>

#include "rl/state.h"

namespace fedmigr::rl {
namespace {

SurrogateConfig SmallConfig() {
  SurrogateConfig config;
  config.num_clients = 6;
  config.num_classes = 6;
  config.num_lans = 2;
  config.episode_epochs = 10;
  config.agg_period = 5;
  return config;
}

TEST(SurrogateTest, ResetInitializesState) {
  SurrogateEnv env(SmallConfig(), 1);
  EXPECT_EQ(env.epoch(), 0);
  EXPECT_GT(env.loss(), 0.0);
  EXPECT_EQ(env.num_clients(), 6);
}

TEST(SurrogateTest, CandidatesHaveCorrectShape) {
  SurrogateEnv env(SmallConfig(), 2);
  const auto rows = env.Candidates(0);
  EXPECT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_EQ(static_cast<int>(row.size()), kActionFeatureDim);
  }
}

TEST(SurrogateTest, MaskBlocksClaimedDestinations) {
  SurrogateEnv env(SmallConfig(), 3);
  env.Choose(0, 3);
  const auto mask = env.Mask(1);
  EXPECT_FALSE(mask[3]);
  EXPECT_TRUE(mask[1]);  // own slot always allowed
}

TEST(SurrogateTest, EpochAdvancesAndLossEvolves) {
  SurrogateEnv env(SmallConfig(), 4);
  const double initial_loss = env.loss();
  for (int src = 0; src < env.num_clients(); ++src) env.Choose(src, src);
  const auto step = env.EndEpoch();
  EXPECT_EQ(env.epoch(), 1);
  EXPECT_FALSE(step.done);
  // Local updating alone already mixes in some data -> loss moves.
  EXPECT_NE(env.loss(), initial_loss);
}

TEST(SurrogateTest, EpisodeTerminates) {
  SurrogateEnv env(SmallConfig(), 5);
  bool done = false;
  int steps = 0;
  while (!done && steps < 100) {
    for (int src = 0; src < env.num_clients(); ++src) env.Choose(src, src);
    done = env.EndEpoch().done;
    ++steps;
  }
  EXPECT_TRUE(done);
  EXPECT_LE(steps, SmallConfig().episode_epochs);
}

TEST(SurrogateTest, MigrationLowersLossFasterThanStaying) {
  // Two identical environments: one always stays, one migrates across LANs
  // every epoch. Migration mixes distributions and must reach a lower loss.
  SurrogateConfig config = SmallConfig();
  config.episode_epochs = 8;
  config.agg_period = 100;  // never reset within the episode
  SurrogateEnv stay_env(config, 6);
  SurrogateEnv move_env(config, 6);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int src = 0; src < config.num_clients; ++src) {
      stay_env.Choose(src, src);
      // Cyclic shift by half the ring: guaranteed cross-LAN under the even
      // LAN split.
      move_env.Choose(src, (src + 3) % config.num_clients);
    }
    (void)stay_env.EndEpoch();
    (void)move_env.EndEpoch();
  }
  EXPECT_LT(move_env.loss(), stay_env.loss());
}

TEST(SurrogateTest, ShapedRewardsFavorGainfulMoves) {
  SurrogateConfig config = SmallConfig();
  // Two classes per client produce graded (not just 0-or-2) gains, so the
  // best/worst comparison below is almost surely strict.
  config.classes_per_client = 2;
  SurrogateEnv env(config, 7);
  // Warm up one epoch so model distributions are non-degenerate.
  for (int src = 0; src < config.num_clients; ++src) env.Choose(src, src);
  (void)env.EndEpoch();

  const auto gain = env.GainMatrix();
  // Source 0 takes its best destination; source 1 takes its own worst
  // (distinct from 0's pick). The shaped rewards must reflect the gap.
  int best0 = -1;
  for (int j = 0; j < config.num_clients; ++j) {
    if (j == 0) continue;
    if (best0 < 0 || gain[0][static_cast<size_t>(j)] >
                         gain[0][static_cast<size_t>(best0)]) {
      best0 = j;
    }
  }
  int worst1 = -1;
  for (int j = 0; j < config.num_clients; ++j) {
    if (j == 1 || j == best0) continue;
    if (worst1 < 0 || gain[1][static_cast<size_t>(j)] <
                          gain[1][static_cast<size_t>(worst1)]) {
      worst1 = j;
    }
  }
  ASSERT_GE(best0, 0);
  ASSERT_GE(worst1, 0);
  if (gain[0][static_cast<size_t>(best0)] <=
      gain[1][static_cast<size_t>(worst1)] + 1e-9) {
    GTEST_SKIP() << "degenerate gain matrix for this seed";
  }
  env.Choose(0, best0);
  env.Choose(1, worst1);
  const auto step = env.EndEpoch();
  EXPECT_GT(step.shaped_rewards[0], step.shaped_rewards[1]);
}

TEST(SurrogateTest, GainMatrixZeroDiagonal) {
  SurrogateEnv env(SmallConfig(), 8);
  const auto gain = env.GainMatrix();
  for (size_t i = 0; i < gain.size(); ++i) EXPECT_EQ(gain[i][i], 0.0);
}

TEST(SurrogateTest, BudgetExhaustionEndsEpisode) {
  SurrogateConfig config = SmallConfig();
  config.bandwidth_budget_bytes = 1.0;  // any migration exhausts it
  SurrogateEnv env(config, 9);
  for (int src = 0; src < config.num_clients; ++src) {
    env.Choose(src, (src + 1) % config.num_clients);
  }
  const auto step = env.EndEpoch();
  EXPECT_TRUE(step.done);
  EXPECT_FALSE(step.success);
}

TEST(SurrogateTest, ResetRestartsEpisode) {
  SurrogateEnv env(SmallConfig(), 10);
  for (int src = 0; src < env.num_clients(); ++src) env.Choose(src, src);
  (void)env.EndEpoch();
  env.Reset();
  EXPECT_EQ(env.epoch(), 0);
}

}  // namespace
}  // namespace fedmigr::rl
