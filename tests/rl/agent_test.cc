#include "rl/agent.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedmigr::rl {
namespace {

std::vector<std::vector<float>> ThreeCandidates() {
  // gain, same_lan, time, stay, epoch, loss, compute, bandwidth
  return {
      {1.0f, 0.0f, 0.5f, 0.0f, 0.5f, 0.5f, 0.1f, 0.1f},
      {0.1f, 1.0f, 0.1f, 0.0f, 0.5f, 0.5f, 0.1f, 0.1f},
      {0.0f, 1.0f, 0.0f, 1.0f, 0.5f, 0.5f, 0.1f, 0.1f},
  };
}

TEST(AgentTest, PolicyIsDistribution) {
  DdpgAgent agent(AgentConfig{});
  const auto candidates = ThreeCandidates();
  const std::vector<bool> mask(3, true);
  const auto probs = agent.Policy(candidates, mask);
  double sum = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AgentTest, MaskZeroesProbability) {
  DdpgAgent agent(AgentConfig{});
  const auto candidates = ThreeCandidates();
  const std::vector<bool> mask = {true, false, true};
  const auto probs = agent.Policy(candidates, mask);
  EXPECT_EQ(probs[1], 0.0);
  EXPECT_NEAR(probs[0] + probs[2], 1.0, 1e-9);
}

TEST(AgentTest, SelectActionRespectsMask) {
  DdpgAgent agent(AgentConfig{});
  util::Rng rng(1);
  const auto candidates = ThreeCandidates();
  const std::vector<bool> mask = {false, false, true};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.SelectAction(candidates, mask, /*explore=*/true, &rng), 2);
    EXPECT_EQ(agent.SelectAction(candidates, mask, /*explore=*/false, &rng),
              2);
  }
}

TEST(AgentTest, GreedySelectionIsArgmax) {
  DdpgAgent agent(AgentConfig{});
  util::Rng rng(2);
  const auto candidates = ThreeCandidates();
  const std::vector<bool> mask(3, true);
  const auto probs = agent.Policy(candidates, mask);
  int argmax = 0;
  for (size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[static_cast<size_t>(argmax)]) {
      argmax = static_cast<int>(i);
    }
  }
  EXPECT_EQ(agent.SelectAction(candidates, mask, /*explore=*/false, &rng),
            argmax);
}

TEST(AgentTest, TargetNetworksStartIdentical) {
  DdpgAgent agent(AgentConfig{});
  const auto candidates = ThreeCandidates();
  const auto live = agent.Score(candidates, /*use_target=*/false);
  const auto target = agent.Score(candidates, /*use_target=*/true);
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(live[i], target[i], 1e-6);
  }
}

TEST(AgentTest, TrainNoopOnSmallBuffer) {
  DdpgAgent agent(AgentConfig{});
  PrioritizedReplayBuffer buffer(64);
  util::Rng rng(3);
  const TrainStats stats = agent.Train(&buffer, &rng);
  EXPECT_EQ(stats.critic_loss, 0.0);
}

TEST(AgentTest, TrainingReducesCriticError) {
  // Single repeated transition with known return: critic should fit it.
  AgentConfig config;
  config.batch_size = 8;
  config.gamma = 0.0;  // pure regression to the reward
  DdpgAgent agent(config);
  PrioritizedReplayBuffer buffer(64);
  Transition t;
  t.candidates = ThreeCandidates();
  t.action_index = 0;
  t.reward = 1.5f;
  t.done = true;
  for (int i = 0; i < 32; ++i) buffer.Add(t);

  util::Rng rng(4);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 200; ++step) {
    const TrainStats stats = agent.Train(&buffer, &rng);
    if (step == 0) first_loss = stats.critic_loss;
    last_loss = stats.critic_loss;
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_NEAR(agent.Q(t.candidates[0]), 1.5, 0.5);
}

TEST(AgentTest, ActorShiftsTowardRewardedAction) {
  AgentConfig config;
  config.batch_size = 8;
  config.gamma = 0.0;
  DdpgAgent agent(config);
  PrioritizedReplayBuffer buffer(128);
  // Action 0 earns +2, action 2 earns -2, in the same state.
  Transition good;
  good.candidates = ThreeCandidates();
  good.action_index = 0;
  good.reward = 2.0f;
  good.done = true;
  Transition bad = good;
  bad.action_index = 2;
  bad.reward = -2.0f;
  for (int i = 0; i < 32; ++i) {
    buffer.Add(good);
    buffer.Add(bad);
  }
  util::Rng rng(5);
  for (int step = 0; step < 300; ++step) agent.Train(&buffer, &rng);
  const std::vector<bool> mask(3, true);
  const auto probs = agent.Policy(good.candidates, mask);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(RewardTest, StepRewardShape) {
  // Loss decreased: exponent negative, reward close to -Υ^(-something).
  const double improved = StepReward(2.0, 1.0, 0.0, 0.0);
  const double worsened = StepReward(1.0, 2.0, 0.0, 0.0);
  EXPECT_GT(improved, worsened);
  // Resource costs always reduce the reward.
  EXPECT_GT(improved, StepReward(2.0, 1.0, 0.3, 0.4));
}

TEST(RewardTest, StepRewardBoundedByClamp) {
  // Even an enormous loss spike is clamped to exponent 1.
  const double reward = StepReward(0.1, 100.0, 0.0, 0.0, 8.0);
  EXPECT_NEAR(reward, -8.0, 1e-9);
}

TEST(RewardTest, TerminalBonusAndPenalty) {
  EXPECT_DOUBLE_EQ(TerminalReward(-1.0, true, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(TerminalReward(-1.0, false, 2.0), -3.0);
}

TEST(RewardTest, ShapedDecisionReward) {
  const double base = -1.0;
  // More gain -> more credit; more time -> less credit.
  EXPECT_GT(ShapedDecisionReward(base, 2.0, 0.0),
            ShapedDecisionReward(base, 0.5, 0.0));
  EXPECT_GT(ShapedDecisionReward(base, 1.0, 0.0),
            ShapedDecisionReward(base, 1.0, 1.0));
  // Staying (no gain, no time) keeps the bare epoch reward.
  EXPECT_DOUBLE_EQ(ShapedDecisionReward(base, 0.0, 0.0), base);
}

}  // namespace
}  // namespace fedmigr::rl
