#include "rl/state.h"

#include <gtest/gtest.h>

#include "net/budget.h"
#include "net/topology.h"

namespace fedmigr::rl {
namespace {

struct StateFixture {
  StateFixture() : topology(net::MakeC10SimTopology()) {
    const int k = 10;
    client_dists.resize(k, std::vector<double>(k, 0.0));
    for (int i = 0; i < k; ++i) {
      client_dists[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
    }
    model_dists = client_dists;
    ctx.epoch = 10;
    ctx.topology = &topology;
    ctx.model_bytes = 100000;
    ctx.client_distributions = &client_dists;
    ctx.model_distributions = &model_dists;
    ctx.global_loss = 2.0;
    ctx.budget = &budget;
    gain = fl::MigrationGainMatrix(ctx);
  }

  net::Topology topology;
  net::Budget budget;
  std::vector<std::vector<double>> client_dists;
  std::vector<std::vector<double>> model_dists;
  fl::PolicyContext ctx;
  std::vector<std::vector<double>> gain;
};

TEST(StateTest, CandidateRowDimensions) {
  StateFixture f;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  EXPECT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_EQ(static_cast<int>(row.size()), kActionFeatureDim);
  }
}

TEST(StateTest, StayRowIsMarked) {
  StateFixture f;
  const auto rows = CandidateRows(f.ctx, f.gain, 3);
  EXPECT_EQ(rows[3][3], 1.0f);  // stay flag
  EXPECT_EQ(rows[3][0], 0.0f);  // no gain
  EXPECT_EQ(rows[3][2], 0.0f);  // no transfer time
  EXPECT_EQ(rows[4][3], 0.0f);
}

TEST(StateTest, GainFeatureNormalizedToUnit) {
  StateFixture f;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  // Disjoint singletons: EMD 2.0 -> normalized to 1.0.
  EXPECT_FLOAT_EQ(rows[1][0], 1.0f);
}

TEST(StateTest, SameLanFlagMatchesTopology) {
  StateFixture f;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  EXPECT_EQ(rows[1][1], 1.0f);  // 0 and 1 share LAN 0
  EXPECT_EQ(rows[5][1], 0.0f);  // 5 is in LAN 1
}

TEST(StateTest, TransferTimeNormalizedToSlowestPair) {
  StateFixture f;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  float max_time = 0.0f;
  for (size_t j = 0; j < rows.size(); ++j) {
    EXPECT_GE(rows[j][2], 0.0f);
    EXPECT_LE(rows[j][2], 1.0f);
    max_time = std::max(max_time, rows[j][2]);
  }
  // Cross-LAN from 0 is the slowest reachable pair -> exactly 1.0.
  EXPECT_FLOAT_EQ(max_time, 1.0f);
  // Intra-LAN is strictly cheaper.
  EXPECT_LT(rows[1][2], rows[5][2]);
}

TEST(StateTest, GlobalFeaturesPropagate) {
  StateFixture f;
  net::Budget budget(100.0, 1000.0);
  budget.ConsumeCompute(50.0);
  budget.ConsumeBandwidth(250.0);
  f.ctx.budget = &budget;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  EXPECT_NEAR(rows[0][6], 0.5f, 1e-6f);   // compute fraction
  EXPECT_NEAR(rows[0][7], 0.25f, 1e-6f);  // bandwidth fraction
}

TEST(StateTest, LossSquashedToUnitRange) {
  StateFixture f;
  f.ctx.global_loss = 1000.0;
  const auto rows = CandidateRows(f.ctx, f.gain, 0);
  EXPECT_LE(rows[0][5], 1.0f);
  EXPECT_GE(rows[0][5], 0.0f);
}

TEST(StateTest, MaxTransferSecondsPositive) {
  StateFixture f;
  EXPECT_GT(MaxTransferSeconds(f.ctx), 0.0);
}

}  // namespace
}  // namespace fedmigr::rl
