#include "util/status.h"

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad tensor shape");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad tensor shape");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("key").ToString(), "NotFound: key");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
  EXPECT_EQ(Status::ResourceExhausted("budget").ToString(),
            "ResourceExhausted: budget");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
}

TEST(StatusTest, FaultToleranceCodes) {
  EXPECT_EQ(Status::Unavailable("link down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("too slow").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("bad checksum").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("link down").ToString(),
            "Unavailable: link down");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
  EXPECT_EQ(Status::DataLoss("bad checksum").ToString(),
            "DataLoss: bad checksum");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nothing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> result(std::string("abc"));
  result.value() += "def";
  EXPECT_EQ(*result, "abcdef");
  EXPECT_EQ(result->size(), 6u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  const std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::Ok(); }

Status UsesMacro(bool fail) {
  FEDMIGR_RETURN_IF_ERROR(Succeeds());
  if (fail) FEDMIGR_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesMacro(false).ok());
  const Status status = UsesMacro(true);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "boom");
}

}  // namespace
}  // namespace fedmigr::util
