// ThreadPool torture tests: nested parallel calls, cross-pool submission,
// concurrent external callers and exception storms under contention. These
// exist primarily as a ThreadSanitizer workload — the `tsan` preset runs
// them with every mutex/atomic interleaving instrumented — but they also
// assert full coverage (every index touched exactly once) so they are
// meaningful under the plain presets too.

#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(ThreadPoolStressTest, NestedParallelForRangeFromWorkersCoversAll) {
  ThreadPool pool(4);
  constexpr int kOuter = 16;
  constexpr int64_t kInner = 1000;
  std::vector<std::vector<int>> hits(kOuter,
                                     std::vector<int>(kInner, 0));
  pool.ParallelFor(kOuter, [&](int outer) {
    // Runs on a pool worker, so the nested call must execute inline and
    // must not touch the pool's queue (same-pool dispatch would deadlock).
    pool.ParallelForRange(kInner, 64, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) ++hits[outer][i];
    });
  });
  for (const auto& row : hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolStressTest, TriplyNestedParallelCallsRunInline) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(6, [&](int) {
    pool.ParallelForRange(10, 3, [&](int64_t b0, int64_t e0) {
      pool.ParallelForRange(e0 - b0, 2, [&](int64_t b1, int64_t e1) {
        total.fetch_add(e1 - b1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 6 * 10);
}

TEST(ThreadPoolStressTest, SubmitFromWorkerOfSamePoolIsDrained) {
  ThreadPool pool(4);
  constexpr int kSeeds = 32;
  std::atomic<int> executed{0};
  for (int i = 0; i < kSeeds; ++i) {
    pool.Submit([&pool, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      // Re-submission from inside a task: Wait() must not return until the
      // transitively spawned work retires too.
      pool.Submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 2 * kSeeds);
}

TEST(ThreadPoolStressTest, WorkersOfOnePoolFanOutIntoAnother) {
  ThreadPool outer(3);
  ThreadPool inner(3);
  constexpr int kTasks = 24;
  std::atomic<int> inner_tasks{0};
  outer.ParallelFor(kTasks, [&](int) {
    // From an `outer` worker, `inner.ParallelForRange` detects it is on *a*
    // pool worker and runs inline — dispatching would oversubscribe.
    inner.ParallelForRange(8, 2, [&](int64_t begin, int64_t end) {
      inner_tasks.fetch_add(static_cast<int>(end - begin),
                            std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_tasks.load(), kTasks * 8);
}

TEST(ThreadPoolStressTest, ConcurrentExternalCallersShareOnePool) {
  // Two non-worker threads drive ParallelForRange on the same pool at the
  // same time — the intra-op pool sees exactly this when evaluation and a
  // benchmark harness overlap. Each caller's chunks must all execute, and
  // Wait() must hold both callers until the combined queue drains.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int64_t kN = 4096;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kN, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &hits, t] {
      pool.ParallelForRange(kN, 128, [&hits, t](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) ++hits[t][i];
      });
    });
  }
  for (auto& c : callers) c.join();
  for (const auto& row : hits) {
    EXPECT_EQ(std::accumulate(row.begin(), row.end(), int64_t{0}), kN);
  }
}

TEST(ThreadPoolStressTest, ExceptionStormStillRunsEveryTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> started{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&started, i] {
      started.fetch_add(1, std::memory_order_relaxed);
      if (i % 7 == 0) throw std::runtime_error("storm");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The first Wait() call rethrows only after the queue fully drained; no
  // task is abandoned because a sibling threw.
  EXPECT_EQ(started.load(), kTasks);
  pool.Wait();  // error already consumed
}

TEST(ThreadPoolStressTest, PoolChurnWithPendingWorkJoinsCleanly) {
  // Construction/destruction churn with tasks still queued: the destructor
  // must drain the queue and join without losing or double-running work.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      // No Wait(): destructor handles the drain.
    }
    EXPECT_EQ(ran.load(), 50);
  }
}

TEST(ThreadPoolStressTest, ParallelForUnderHighContentionCountsExactly) {
  ThreadPool pool(8);
  constexpr int kRounds = 25;
  constexpr int kN = 1000;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(kN, [&sum](int i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), int64_t{kN} * (kN - 1) / 2);
  }
}

}  // namespace
}  // namespace fedmigr::util
