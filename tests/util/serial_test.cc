#include "util/serial.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(SerialTest, PrimitivesRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(-1234567890123LL);
  writer.WriteF32(3.5f);
  writer.WriteF64(-2.25);
  writer.WriteBool(true);
  writer.WriteBool(false);

  ByteReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  bool b1 = false, b2 = true;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  ASSERT_TRUE(reader.ReadBool(&b1).ok());
  ASSERT_TRUE(reader.ReadBool(&b2).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
}

TEST(SerialTest, FloatBitPatternsSurviveExactly) {
  // NaN, infinities and denormals must round-trip bit-exactly — the resume
  // determinism contract is byte equality, not value equality.
  const std::vector<double> specials = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -0.0,
  };
  ByteWriter writer;
  for (double v : specials) writer.WriteF64(v);
  ByteReader reader(writer.bytes());
  for (double v : specials) {
    double out = 0.0;
    ASSERT_TRUE(reader.ReadF64(&out).ok());
    uint64_t expected_bits = 0, actual_bits = 0;
    std::memcpy(&expected_bits, &v, sizeof(v));
    std::memcpy(&actual_bits, &out, sizeof(out));
    EXPECT_EQ(actual_bits, expected_bits);
  }
}

TEST(SerialTest, SequencesRoundTrip) {
  ByteWriter writer;
  writer.WriteString("hello snapshot");
  writer.WriteBytes({0x00, 0xFF, 0x42});
  writer.WriteF32Vector({1.0f, -2.0f, 0.5f});
  writer.WriteF64Vector({});
  writer.WriteI32Vector({-1, 0, 1, 1 << 20});
  writer.WriteBoolVector({true, false, true, true});

  ByteReader reader(writer.bytes());
  std::string s;
  std::vector<uint8_t> bytes;
  std::vector<float> f32s;
  std::vector<double> f64s = {9.0};
  std::vector<int> i32s;
  std::vector<bool> bools;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadBytes(&bytes).ok());
  ASSERT_TRUE(reader.ReadF32Vector(&f32s).ok());
  ASSERT_TRUE(reader.ReadF64Vector(&f64s).ok());
  ASSERT_TRUE(reader.ReadI32Vector(&i32s).ok());
  ASSERT_TRUE(reader.ReadBoolVector(&bools).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(s, "hello snapshot");
  EXPECT_EQ(bytes, (std::vector<uint8_t>{0x00, 0xFF, 0x42}));
  EXPECT_EQ(f32s, (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_TRUE(f64s.empty());
  EXPECT_EQ(i32s, (std::vector<int>{-1, 0, 1, 1 << 20}));
  EXPECT_EQ(bools, (std::vector<bool>{true, false, true, true}));
}

TEST(SerialTest, ReadPastEndFailsAndLeavesCursor) {
  ByteWriter writer;
  writer.WriteU32(5);
  ByteReader reader(writer.bytes());
  uint64_t too_big = 0;
  EXPECT_FALSE(reader.ReadU64(&too_big).ok());
  // The failed read must not consume anything.
  uint32_t ok_value = 0;
  ASSERT_TRUE(reader.ReadU32(&ok_value).ok());
  EXPECT_EQ(ok_value, 5u);
}

TEST(SerialTest, EmptyBufferFailsEverything) {
  ByteReader reader(nullptr, 0);
  uint8_t u8;
  std::string s;
  std::vector<float> f;
  EXPECT_FALSE(reader.ReadU8(&u8).ok());
  EXPECT_FALSE(reader.ReadString(&s).ok());
  EXPECT_FALSE(reader.ReadF32Vector(&f).ok());
}

TEST(SerialTest, OversizedCountIsRejectedWithoutAllocating) {
  // A u64 count far beyond the bytes that follow must be rejected up front
  // (the fuzz-safety property: no multi-terabyte resize on corrupt input).
  ByteWriter writer;
  writer.WriteU64(std::numeric_limits<uint64_t>::max());
  writer.WriteF32(1.0f);
  ByteReader reader(writer.bytes());
  std::vector<float> values;
  EXPECT_FALSE(reader.ReadF32Vector(&values).ok());
  EXPECT_TRUE(values.empty());
}

TEST(SerialTest, InvalidBoolByteRejected) {
  const std::vector<uint8_t> bytes = {2};
  ByteReader reader(bytes);
  bool value = false;
  EXPECT_FALSE(reader.ReadBool(&value).ok());
}

TEST(SerialTest, TruncationAtEveryOffsetFailsCleanly) {
  ByteWriter writer;
  writer.WriteString("abcdef");
  writer.WriteI32Vector({1, 2, 3});
  writer.WriteF64(1.5);
  const std::vector<uint8_t>& full = writer.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader reader(full.data(), cut);
    std::string s;
    std::vector<int> v;
    double d;
    const bool all_ok = reader.ReadString(&s).ok() &&
                        reader.ReadI32Vector(&v).ok() &&
                        reader.ReadF64(&d).ok();
    EXPECT_FALSE(all_ok) << "cut " << cut;
  }
}

}  // namespace
}  // namespace fedmigr::util
