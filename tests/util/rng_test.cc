#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(
      rng.Categorical(weights))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(16);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(17);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(18);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(19);
  Rng b = a.Split();
  // The split stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngStateTest, RestoreReplaysIdenticalStream) {
  Rng rng(21);
  for (int i = 0; i < 17; ++i) rng.Next();
  const RngState state = rng.State();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(rng.Next());
  rng.Restore(state);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.Next(), expected[static_cast<size_t>(i)]) << "draw " << i;
  }
}

TEST(RngStateTest, RestoreIntoDifferentInstance) {
  Rng source(22);
  for (int i = 0; i < 9; ++i) source.Uniform();
  Rng clone(999);
  clone.Restore(source.State());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(source.Next(), clone.Next());
  }
}

TEST(RngStateTest, CachedNormalSpareRoundTrips) {
  // Box-Muller produces pairs; after one Normal() the spare is cached.
  // A snapshot taken between the two halves must preserve it bit-exactly.
  Rng rng(23);
  (void)rng.Normal();
  Rng restored(0);
  restored.Restore(rng.State());
  for (int i = 0; i < 20; ++i) {
    const double a = rng.Normal();
    const double b = restored.Normal();
    ASSERT_EQ(a, b) << "normal draw " << i;
  }
}

TEST(RngStateTest, SplitStreamsRoundTripIndependently) {
  Rng parent(24);
  Rng child = parent.Split();
  const RngState parent_state = parent.State();
  const RngState child_state = child.State();
  std::vector<uint64_t> parent_draws, child_draws;
  for (int i = 0; i < 32; ++i) {
    parent_draws.push_back(parent.Next());
    child_draws.push_back(child.Next());
  }
  parent.Restore(parent_state);
  child.Restore(child_state);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(parent.Next(), parent_draws[static_cast<size_t>(i)]);
    ASSERT_EQ(child.Next(), child_draws[static_cast<size_t>(i)]);
  }
}

TEST(RngStateTest, SerializedStateRoundTrips) {
  Rng rng(25);
  (void)rng.Normal();  // populate the cached spare
  for (int i = 0; i < 5; ++i) rng.Next();
  ByteWriter writer;
  SaveRngState(rng, &writer);
  Rng restored(0);
  ByteReader reader(writer.bytes());
  ASSERT_TRUE(LoadRngState(&reader, &restored).ok());
  EXPECT_TRUE(reader.AtEnd());
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(rng.Next(), restored.Next());
  }
  ASSERT_EQ(rng.Normal(), restored.Normal());
}

TEST(RngStateTest, TruncatedSerializedStateFails) {
  Rng rng(26);
  ByteWriter writer;
  SaveRngState(rng, &writer);
  for (size_t cut = 0; cut < writer.size(); ++cut) {
    Rng victim(3);
    ByteReader reader(writer.bytes().data(), cut);
    EXPECT_FALSE(LoadRngState(&reader, &victim).ok()) << "cut " << cut;
  }
}

// Property sweep: UniformInt is unbiased across a range of moduli.
class RngModuloTest : public ::testing::TestWithParam<int> {};

TEST_P(RngModuloTest, ApproximatelyUniform) {
  const int modulus = GetParam();
  Rng rng(static_cast<uint64_t>(modulus) * 31 + 1);
  std::vector<int> counts(static_cast<size_t>(modulus), 0);
  const int n = 4000 * modulus;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(modulus))];
  }
  const double expected = static_cast<double>(n) / modulus;
  for (int c : counts) {
    EXPECT_NEAR(c / expected, 1.0, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngModuloTest,
                         ::testing::Values(2, 3, 7, 10, 16, 33));

}  // namespace
}  // namespace fedmigr::util
