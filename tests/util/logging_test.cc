#include "util/logging.h"

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

TEST(LoggingTest, SuppressedMessageDoesNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  FEDMIGR_LOG(kDebug) << "this line is filtered " << 42;
  FEDMIGR_LOG(kInfo) << "so is this " << 3.14;
  SetLogLevel(before);
  SUCCEED();
}

TEST(LoggingTest, EmittedMessageDoesNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  FEDMIGR_LOG(kError) << "visible test message, ignore";
  SetLogLevel(before);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ FEDMIGR_CHECK(1 == 2) << "impossible"; }, "CHECK failed");
}

TEST(LoggingDeathTest, CheckComparisonsAbort) {
  EXPECT_DEATH({ FEDMIGR_CHECK_EQ(1, 2); }, "CHECK failed");
  EXPECT_DEATH({ FEDMIGR_CHECK_LT(5, 3); }, "CHECK failed");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  FEDMIGR_CHECK(true);
  FEDMIGR_CHECK_EQ(2, 2);
  FEDMIGR_CHECK_NE(1, 2);
  FEDMIGR_CHECK_LE(2, 2);
  FEDMIGR_CHECK_GE(3, 2);
  FEDMIGR_CHECK_GT(3, 2);
  FEDMIGR_CHECK_LT(2, 3);
  SUCCEED();
}

}  // namespace
}  // namespace fedmigr::util
