#include "util/logging.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

TEST(LoggingTest, SuppressedMessageDoesNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  FEDMIGR_LOG(kDebug) << "this line is filtered " << 42;
  FEDMIGR_LOG(kInfo) << "so is this " << 3.14;
  SetLogLevel(before);
  SUCCEED();
}

TEST(LoggingTest, EmittedMessageDoesNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  FEDMIGR_LOG(kError) << "visible test message, ignore";
  SetLogLevel(before);
  SUCCEED();
}

TEST(LoggingTest, SinkCapturesEmittedLines) {
  std::vector<std::string> lines;
  std::vector<LogLevel> levels;
  SetLogSink([&](LogLevel level, const std::string& line) {
    levels.push_back(level);
    lines.push_back(line);
  });
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  FEDMIGR_LOG(kWarning) << "captured " << 7;
  SetLogLevel(LogLevel::kError);
  FEDMIGR_LOG(kInfo) << "filtered, never reaches the sink";
  SetLogLevel(before);
  SetLogSink(nullptr);  // back to stderr

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(levels[0], LogLevel::kWarning);
  // Prefix carries tag and call site; body is the streamed message.
  EXPECT_NE(lines[0].find("WARN"), std::string::npos);
  EXPECT_NE(lines[0].find("logging_test.cc"), std::string::npos);
  EXPECT_NE(lines[0].find("captured 7"), std::string::npos);
}

TEST(LoggingTest, SinkSeesWholeLinesUnderConcurrency) {
  std::vector<std::string> lines;  // sink runs under the output mutex
  SetLogSink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        FEDMIGR_LOG(kInfo) << "thread " << t << " line " << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogLevel(before);
  SetLogSink(nullptr);

  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("thread "), std::string::npos);
    EXPECT_EQ(line.substr(line.size() - 4), " end");  // never torn
  }
}

TEST(ParseLogLevelTest, AcceptsKnownNamesCaseInsensitively) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, RejectsUnknownNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ FEDMIGR_CHECK(1 == 2) << "impossible"; }, "CHECK failed");
}

TEST(LoggingDeathTest, CheckComparisonsAbort) {
  EXPECT_DEATH({ FEDMIGR_CHECK_EQ(1, 2); }, "CHECK failed");
  EXPECT_DEATH({ FEDMIGR_CHECK_LT(5, 3); }, "CHECK failed");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  FEDMIGR_CHECK(true);
  FEDMIGR_CHECK_EQ(2, 2);
  FEDMIGR_CHECK_NE(1, 2);
  FEDMIGR_CHECK_LE(2, 2);
  FEDMIGR_CHECK_GE(3, 2);
  FEDMIGR_CHECK_GT(3, 2);
  FEDMIGR_CHECK_LT(2, 3);
  SUCCEED();
}

}  // namespace
}  // namespace fedmigr::util
