#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(TableWriterTest, PrintsHeaderAndRows) {
  TableWriter table({"name", "value"});
  table.AddRow();
  table.AddCell("alpha");
  table.AddCell(1);
  table.AddRow();
  table.AddCell("beta");
  table.AddCell(2.5, 1);

  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableWriterTest, ColumnsAreAligned) {
  TableWriter table({"a", "b"});
  table.AddRow();
  table.AddCell("looooooong");
  table.AddCell("x");

  std::ostringstream os;
  table.Print(os);
  // Header line must be padded to the widest cell + separator.
  std::istringstream lines(os.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_GE(header.size(), std::string("looooooong  b").size());
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter table({"k", "v"});
  table.AddRow();
  table.AddCell("x");
  table.AddCell(7);

  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "k,v\nx,7\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter table({"text"});
  table.AddRow();
  table.AddCell("hello, \"world\"");

  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "text\n\"hello, \"\"world\"\"\"\n");
}

TEST(TableWriterTest, ShortRowsPrintBlankCells) {
  TableWriter table({"a", "b", "c"});
  table.AddRow();
  table.AddCell("only");
  std::ostringstream os;
  table.Print(os);  // must not crash; remaining columns blank
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace fedmigr::util
