#include "util/crc32.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(Crc32Test, EmptyInputIsZero) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, KnownCheckValue) {
  // The CRC-32/ISO-HDLC check value: crc32("123456789") = 0xCBF43926.
  const std::string input = "123456789";
  EXPECT_EQ(Crc32(input.data(), input.size()), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32(input.data(), input.size());
  for (size_t split = 0; split <= input.size(); ++split) {
    const uint32_t partial = Crc32(input.data(), split);
    const uint32_t full =
        Crc32(input.data() + split, input.size() - split, partial);
    EXPECT_EQ(full, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t baseline = Crc32(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 17) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(data.data(), data.size()), baseline)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

TEST(Crc32Test, DistinguishesPermutations) {
  const std::string a = "abcd";
  const std::string b = "abdc";
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

}  // namespace
}  // namespace fedmigr::util
