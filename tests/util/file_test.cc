#include "util/file.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

// Unique-ish scratch directory per test under the build tree.
std::string ScratchDir(const std::string& tag) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr ? std::string(base) : "/tmp");
  dir += "/fedmigr_file_test_" + tag;
  EXPECT_TRUE(MakeDirectories(dir).ok());
  return dir;
}

TEST(FileTest, AtomicWriteThenReadRoundTrips) {
  const std::string dir = ScratchDir("roundtrip");
  const std::string path = dir + "/payload.bin";
  const std::vector<uint8_t> data = {1, 2, 3, 0, 255, 42};
  ASSERT_TRUE(AtomicWriteFile(path, data).ok());
  ASSERT_TRUE(FileExists(path));
  const Result<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(FileTest, AtomicWriteReplacesExistingFile) {
  const std::string dir = ScratchDir("replace");
  const std::string path = dir + "/payload.bin";
  ASSERT_TRUE(AtomicWriteFile(path, {9, 9, 9, 9, 9, 9, 9, 9}).ok());
  ASSERT_TRUE(AtomicWriteFile(path, {1}).ok());
  const Result<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<uint8_t>{1}));
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(FileTest, AtomicWriteLeavesNoTempFileBehind) {
  const std::string dir = ScratchDir("notemp");
  const std::string path = dir + "/payload.bin";
  ASSERT_TRUE(AtomicWriteFile(path, {4, 5, 6}).ok());
  const Result<std::vector<std::string>> names = ListDirectory(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(FileTest, EmptyPayloadRoundTrips) {
  const std::string dir = ScratchDir("empty");
  const std::string path = dir + "/empty.bin";
  ASSERT_TRUE(AtomicWriteFile(path, {}).ok());
  const Result<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(FileTest, ReadMissingFileIsError) {
  const Result<std::vector<uint8_t>> read =
      ReadFileBytes("/nonexistent/dir/nothing.bin");
  EXPECT_FALSE(read.ok());
}

TEST(FileTest, WriteIntoMissingDirectoryIsError) {
  EXPECT_FALSE(
      AtomicWriteFile("/nonexistent/dir/nothing.bin", {1, 2, 3}).ok());
}

TEST(FileTest, RemoveMissingFileIsOk) {
  const std::string dir = ScratchDir("removemissing");
  EXPECT_TRUE(RemoveFile(dir + "/never_created.bin").ok());
}

TEST(FileTest, MakeDirectoriesIsIdempotent) {
  const std::string dir = ScratchDir("mkdir") + "/a/b/c";
  EXPECT_TRUE(MakeDirectories(dir).ok());
  EXPECT_TRUE(MakeDirectories(dir).ok());
}

TEST(FileTest, ListDirectoryFindsRegularFiles) {
  const std::string dir = ScratchDir("list");
  ASSERT_TRUE(AtomicWriteFile(dir + "/a.bin", {1}).ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/b.bin", {2}).ok());
  ASSERT_TRUE(MakeDirectories(dir + "/subdir").ok());
  const Result<std::vector<std::string>> names = ListDirectory(dir);
  ASSERT_TRUE(names.ok());
  std::vector<std::string> sorted = *names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a.bin", "b.bin"}));
  EXPECT_TRUE(RemoveFile(dir + "/a.bin").ok());
  EXPECT_TRUE(RemoveFile(dir + "/b.bin").ok());
}

TEST(FileTest, ListMissingDirectoryIsError) {
  EXPECT_FALSE(ListDirectory("/nonexistent/dir/nowhere").ok());
}

}  // namespace
}  // namespace fedmigr::util
