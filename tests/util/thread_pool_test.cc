#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&hits](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(3);
  std::atomic<int> value{0};
  pool.ParallelFor(1, [&value](int i) { value = i + 41; });
  EXPECT_EQ(value.load(), 41);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(20, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(50, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order.size(), 50u);
  // With one worker, items arrive in submission order.
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorker) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The worker that ran the throwing task must still be alive and able to
  // execute follow-up work.
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionWithMessage) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("specific failure"); });
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "specific failure");
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   16,
                   [](int i) {
                     if (i == 7) throw std::logic_error("bad index");
                   }),
               std::logic_error);
  // A subsequent batch runs to completion on the same workers.
  std::atomic<int> total{0};
  pool.ParallelFor(16, [&total](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, ExceptionIsClearedAfterRethrow) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // no pending error: must return cleanly
  SUCCEED();
}

TEST(ThreadPoolTest, MixedThrowingAndHealthyTasksCompleteAll) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 12; ++i) {
    pool.Submit([&completed, i] {
      if (i % 4 == 0) throw std::runtime_error("flaky");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // All healthy tasks ran despite the interleaved failures.
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace fedmigr::util
