#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&hits](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(3);
  std::atomic<int> value{0};
  pool.ParallelFor(1, [&value](int i) { value = i + 41; });
  EXPECT_EQ(value.load(), 41);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(20, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(50, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order.size(), 50u);
  // With one worker, items arrive in submission order.
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorker) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The worker that ran the throwing task must still be alive and able to
  // execute follow-up work.
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionWithMessage) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("specific failure"); });
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "specific failure");
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   16,
                   [](int i) {
                     if (i == 7) throw std::logic_error("bad index");
                   }),
               std::logic_error);
  // A subsequent batch runs to completion on the same workers.
  std::atomic<int> total{0};
  pool.ParallelFor(16, [&total](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, ExceptionIsClearedAfterRethrow) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // no pending error: must return cleanly
  SUCCEED();
}

TEST(ThreadPoolTest, MixedThrowingAndHealthyTasksCompleteAll) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 12; ++i) {
    pool.Submit([&completed, i] {
      if (i % 4 == 0) throw std::runtime_error("flaky");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // All healthy tasks ran despite the interleaved failures.
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPoolTest, ParallelForRangeCoversAllChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(103);
  pool.ParallelForRange(103, 10, [&hits](int64_t begin, int64_t end) {
    // Chunk boundaries must follow the fixed grid regardless of which
    // thread claims the chunk.
    EXPECT_EQ(begin % 10, 0);
    EXPECT_TRUE(end == begin + 10 || end == 103);
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeHandlesDegenerateInputs) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelForRange(0, 4, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // grain below 1 is clamped; n smaller than grain is one inline chunk.
  pool.ParallelForRange(3, 0, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ThreadPoolTest, InWorkerThreadFlagTracksPoolMembership) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  std::atomic<int> in_worker{0};
  pool.Submit([&in_worker] {
    if (ThreadPool::InWorkerThread()) in_worker.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(in_worker.load(), 1);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, NestedParallelCallsFromWorkerRunInlineWithoutDeadlock) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  // Both same-pool and cross-pool nesting must complete (inline) instead
  // of blocking a worker on a pool Wait().
  outer.ParallelFor(4, [&](int) {
    outer.ParallelForRange(8, 2, [&total](int64_t begin, int64_t end) {
      total.fetch_add(static_cast<int>(end - begin));
    });
    inner.ParallelFor(3, [&total](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * (8 + 3));
}

TEST(ThreadPoolTest, ParallelForRangePropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForRange(
                   32, 1,
                   [](int64_t begin, int64_t) {
                     if (begin == 17) throw std::runtime_error("chunk 17");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace fedmigr::util
