#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedmigr::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.5);
  EXPECT_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats stats;
  for (double x : {-1.0, -2.0, -3.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), -2.0);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), -1.0);
}

TEST(EmaTest, FirstValueInitializes) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.Add(10.0);
  EXPECT_FALSE(ema.empty());
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(EmaTest, Smooths) {
  Ema ema(0.5);
  ema.Add(0.0);
  ema.Add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
  ema.Add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 7.5);
}

TEST(EmaTest, AlphaOneTracksExactly) {
  Ema ema(1.0);
  ema.Add(1.0);
  ema.Add(42.0);
  EXPECT_DOUBLE_EQ(ema.value(), 42.0);
}

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(PercentileTest, MedianOfOddList) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> values = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 9.0);
}

TEST(PercentileTest, Interpolates) {
  // Sorted: 1, 2, 3, 4. p=50 -> rank 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(Percentile({4.0, 3.0, 2.0, 1.0}, 50.0), 2.5);
}

TEST(SummarizeTest, EmptyIsAllZeros) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(SummarizeTest, MatchesComponentHelpers) {
  const std::vector<double> values = {5.0, 1.0, 9.0, 3.0, 7.0};
  const Summary s = Summarize(values);
  EXPECT_EQ(s.count, values.size());
  EXPECT_DOUBLE_EQ(s.mean, Mean(values));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p50, Percentile(values, 50.0));
  EXPECT_DOUBLE_EQ(s.p90, Percentile(values, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(values, 99.0));
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({4.25});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.25);
  EXPECT_DOUBLE_EQ(s.min, 4.25);
  EXPECT_DOUBLE_EQ(s.max, 4.25);
  EXPECT_DOUBLE_EQ(s.p50, 4.25);
  EXPECT_DOUBLE_EQ(s.p99, 4.25);
}

}  // namespace
}  // namespace fedmigr::util
