// Cross-thread interrupt vs. snapshot flush: the interrupt flag is set from
// another thread (modeling the signal handler's async store) while the run
// thread's epoch hook is flushing snapshots. Under the `tsan` preset this
// pins down the only sanctioned cross-thread communication in the snapshot
// subsystem — the lock-free atomic flag — and proves the flush itself stays
// confined to the run thread.

#include "core/snapshot.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "fl/schemes.h"
#include "util/file.h"

namespace fedmigr::core {
namespace {

WorkloadConfig TinyConfig(uint64_t seed) {
  WorkloadConfig config;
  config.train_per_class_override = 12;
  config.seed = seed;
  return config;
}

fl::SchemeSetup LongScheme() {
  fl::SchemeSetup setup = fl::MakeRandMigr(2);
  setup.config.max_epochs = 60;  // long enough to interrupt mid-run
  setup.config.eval_every = 20;
  setup.config.seed = 11;
  return setup;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "fedmigr_race_" + tag;
  EXPECT_TRUE(util::MakeDirectories(dir).ok());
  const util::Result<std::vector<std::string>> names =
      util::ListDirectory(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      EXPECT_TRUE(util::RemoveFile(dir + "/" + name).ok());
    }
  }
  return dir;
}

TEST(SnapshotRaceTest, InterruptFromAnotherThreadFlushesAndResumes) {
  const Workload w = MakeWorkload(TinyConfig(21));
  const std::string dir = FreshDir("interrupt");

  // Reference: the same run allowed to finish undisturbed.
  const fl::RunResult reference = RunScheme(w, LongScheme(), RunControl{});

  ClearInterrupt();
  RunControl control;
  control.snapshot.directory = dir;
  control.snapshot.every_epochs = 1;
  control.snapshot.keep = 3;
  control.handle_signals = true;

  // The interrupter waits until the run has published at least one
  // snapshot (so the flag lands mid-run, not before epoch 1), then stores
  // the flag from this thread — the same cross-thread store a SIGTERM
  // handler performs — while the run thread keeps flushing snapshots.
  std::atomic<bool> interrupter_done{false};
  std::thread interrupter([&dir, &interrupter_done] {
    SnapshotOptions opts;
    opts.directory = dir;
    const SnapshotManager watcher(opts);
    while (watcher.ListSnapshots().empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    RequestInterrupt();
    interrupter_done.store(true);
  });

  const fl::RunResult interrupted = RunScheme(w, LongScheme(), control);
  interrupter.join();
  ASSERT_TRUE(interrupter_done.load());
  ASSERT_TRUE(interrupted.interrupted);
  ASSERT_LT(interrupted.epochs_run, reference.epochs_run);

  {
    SnapshotOptions opts;
    opts.directory = dir;
    const SnapshotManager manager(opts);
    EXPECT_FALSE(manager.ListSnapshots().empty());
  }

  // Resume to completion and check the stitched run matches the reference
  // bit-for-bit — the interrupt flush lost nothing.
  ClearInterrupt();
  RunControl resume;
  resume.snapshot.directory = dir;
  resume.snapshot.every_epochs = 1;
  resume.snapshot.keep = 3;
  resume.resume = true;
  int resumed_from = 0;
  resume.resumed_from_epoch = &resumed_from;
  const fl::RunResult finished = RunScheme(w, LongScheme(), resume);

  EXPECT_GT(resumed_from, 0);
  EXPECT_FALSE(finished.interrupted);
  EXPECT_EQ(finished.final_accuracy, reference.final_accuracy);
  ASSERT_FALSE(finished.history.empty());
  const auto& got = finished.history.back();
  const auto& want = reference.history.back();
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.train_loss, want.train_loss);
  EXPECT_EQ(got.test_accuracy, want.test_accuracy);
}

TEST(SnapshotRaceTest, InterruptFlagIsSafeUnderConcurrentHammering) {
  // The flag is the entire cross-thread surface; hammer it from several
  // threads at once. TSan verifies the accesses are all atomic.
  ClearInterrupt();
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int64_t> observed_true{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &observed_true] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          RequestInterrupt();
        } else if (InterruptRequested()) {
          observed_true.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(InterruptRequested());
  ClearInterrupt();
  EXPECT_FALSE(InterruptRequested());
}

}  // namespace
}  // namespace fedmigr::core
