#include "core/fedmigr.h"

#include <gtest/gtest.h>

namespace fedmigr::core {
namespace {

FedMigrOptions FastOptions() {
  FedMigrOptions options;
  options.pretrain.episodes = 2;
  options.cache_agent = false;
  return options;
}

TEST(FedMigrTest, SchemeAssembly) {
  const net::Topology topology = net::MakeC10SimTopology();
  const fl::SchemeSetup setup = MakeFedMigr(topology, 10, FastOptions());
  EXPECT_EQ(setup.config.scheme_name, "fedmigr");
  EXPECT_EQ(setup.config.agg_period, 50);
  EXPECT_EQ(setup.policy->name(), "fedmigr-drl");
}

TEST(FedMigrTest, AggPeriodPropagates) {
  const net::Topology topology = net::MakeC10SimTopology();
  FedMigrOptions options = FastOptions();
  options.agg_period = 7;
  const fl::SchemeSetup setup = MakeFedMigr(topology, 10, options);
  EXPECT_EQ(setup.config.agg_period, 7);
}

TEST(FedMigrTest, AgentCacheReuses) {
  ClearAgentCache();
  const net::Topology topology = net::MakeC10SimTopology();
  FedMigrOptions options;
  options.pretrain.episodes = 2;
  options.cache_agent = true;
  const auto a = GetOrTrainAgent(topology, 10, options);
  const auto b = GetOrTrainAgent(topology, 10, options);
  EXPECT_EQ(a.get(), b.get());
  ClearAgentCache();
}

TEST(FedMigrTest, CacheKeyedByShape) {
  ClearAgentCache();
  FedMigrOptions options;
  options.pretrain.episodes = 2;
  options.cache_agent = true;
  const auto a = GetOrTrainAgent(net::MakeC10SimTopology(), 10, options);
  const auto b = GetOrTrainAgent(net::MakeC100SimTopology(), 100, options);
  EXPECT_NE(a.get(), b.get());
  ClearAgentCache();
}

TEST(FedMigrTest, NoCacheMakesFreshAgents) {
  const net::Topology topology = net::MakeC10SimTopology();
  const FedMigrOptions options = FastOptions();
  const auto a = GetOrTrainAgent(topology, 10, options);
  const auto b = GetOrTrainAgent(topology, 10, options);
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace fedmigr::core
