// Reproducibility guarantees: identical configuration (including seed)
// must reproduce workloads and runs bit-for-bit, and changing the seed
// must actually change them. Every number in EXPERIMENTS.md rests on this.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "nn/tensor.h"

namespace fedmigr::core {
namespace {

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.train_per_class_override = 12;
  config.seed = seed;
  return config;
}

TEST(DeterminismTest, WorkloadIsReproducible) {
  const Workload a = MakeWorkload(SmallConfig(5));
  const Workload b = MakeWorkload(SmallConfig(5));
  EXPECT_EQ(nn::MaxAbsDiff(a.data.train.features(), b.data.train.features()),
            0.0f);
  EXPECT_EQ(a.data.train.labels(), b.data.train.labels());
  EXPECT_EQ(a.partition, b.partition);
}

TEST(DeterminismTest, SeedChangesWorkload) {
  const Workload a = MakeWorkload(SmallConfig(5));
  const Workload b = MakeWorkload(SmallConfig(6));
  EXPECT_GT(nn::MaxAbsDiff(a.data.train.features(), b.data.train.features()),
            0.0f);
  EXPECT_NE(a.partition, b.partition);
}

TEST(DeterminismTest, RunIsReproducible) {
  const Workload w = MakeWorkload(SmallConfig(7));
  auto run = [&w]() {
    fl::SchemeSetup setup = fl::MakeRandMigr(2);
    setup.config.max_epochs = 4;
    setup.config.eval_every = 2;
    setup.config.seed = 99;
    return RunScheme(w, std::move(setup));
  };
  const fl::RunResult a = run();
  const fl::RunResult b = run();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss);
    EXPECT_DOUBLE_EQ(a.history[i].test_accuracy,
                     b.history[i].test_accuracy);
  }
}

TEST(DeterminismTest, RunSeedChangesTrajectory) {
  const Workload w = MakeWorkload(SmallConfig(7));
  auto run = [&w](uint64_t seed) {
    fl::SchemeSetup setup = fl::MakeRandMigr(2);
    setup.config.max_epochs = 4;
    setup.config.eval_every = 0;
    setup.config.seed = seed;
    return RunScheme(w, std::move(setup));
  };
  const fl::RunResult a = run(1);
  const fl::RunResult b = run(2);
  bool any_difference = false;
  for (size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].train_loss != b.history[i].train_loss) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace fedmigr::core
