// The kill-and-resume determinism harness and container-corruption fuzz for
// the run-snapshot subsystem.
//
// Headline property: run N epochs uninterrupted (reference); kill a second
// run at an epoch boundary (including via a simulated torn/truncated
// snapshot write); resume from the snapshot directory; the final serialized
// trainer state — server model bytes, every client model/optimizer/RNG, the
// DRL agent and its prioritized replay buffer, fault counters, accuracy
// trace — must be byte-identical to the reference.

#include "core/snapshot.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "util/file.h"
#include "util/serial.h"

namespace fedmigr::core {
namespace {

WorkloadConfig SmallWorkloadConfig() {
  WorkloadConfig config;
  config.train_per_class_override = 12;
  config.seed = 5;
  return config;
}

// FedMigr with the full DRL stack: online learning ON so the snapshot must
// carry the replay buffer, Adam moments and policy RNG, not just models.
// cache_agent = false so the reference and resumed runs never share (and
// mutate) one agent instance.
fl::SchemeSetup SmallFedMigr(const Workload& w) {
  FedMigrOptions options;
  options.agg_period = 2;
  options.cache_agent = false;
  options.pretrain.episodes = 3;
  options.policy.online_learning = true;
  fl::SchemeSetup setup =
      MakeFedMigr(w.topology, w.num_classes, options);
  setup.config.max_epochs = 6;
  setup.config.eval_every = 2;
  setup.config.seed = 42;
  setup.config.dropout_prob = 0.1;
  setup.config.fault.link_failure_prob = 0.05;
  setup.config.fault.corruption_prob = 0.02;
  setup.config.fault.seed = 19;
  ApplyWorkloadDefaults(w, &setup.config);
  setup.config.max_epochs = 6;
  setup.config.eval_every = 2;
  return setup;
}

fl::Trainer BuildTrainer(const Workload& w, fl::SchemeSetup setup) {
  return fl::Trainer(setup.config, &w.data.train, w.partition, &w.data.test,
                     w.topology, w.devices, w.model_factory,
                     std::move(setup.policy));
}

std::vector<uint8_t> StateBytes(const fl::Trainer& trainer) {
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

// Fresh per-test scratch directory (existing snapshots removed).
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "fedmigr_snap_" + tag;
  EXPECT_TRUE(util::MakeDirectories(dir).ok());
  const util::Result<std::vector<std::string>> names =
      util::ListDirectory(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      EXPECT_TRUE(util::RemoveFile(dir + "/" + name).ok());
    }
  }
  return dir;
}

// --- Container framing ----------------------------------------------------

TEST(SnapshotFrameTest, RoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 0, 255};
  const std::vector<uint8_t> framed = FrameSnapshot(payload);
  EXPECT_EQ(framed.size(), payload.size() + 20);  // 16B header + 4B crc
  const util::Result<std::vector<uint8_t>> back = UnframeSnapshot(framed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
}

TEST(SnapshotFrameTest, EmptyPayloadRoundTrips) {
  const util::Result<std::vector<uint8_t>> back =
      UnframeSnapshot(FrameSnapshot({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SnapshotFrameTest, TruncationAtEveryLengthRejected) {
  const std::vector<uint8_t> framed =
      FrameSnapshot({10, 20, 30, 40, 50, 60, 70, 80, 90});
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    const std::vector<uint8_t> torn(framed.begin(),
                                    framed.begin() + static_cast<long>(cut));
    EXPECT_FALSE(UnframeSnapshot(torn).ok()) << "cut " << cut;
  }
}

TEST(SnapshotFrameTest, EveryBitFlipRejected) {
  const std::vector<uint8_t> framed = FrameSnapshot({7, 7, 7, 42, 0, 9});
  for (size_t pos = 0; pos < framed.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = framed;
      corrupt[pos] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(UnframeSnapshot(corrupt).ok())
          << "flip at byte " << pos << " bit " << bit;
    }
  }
}

TEST(SnapshotFrameTest, TrailingGarbageRejected) {
  std::vector<uint8_t> framed = FrameSnapshot({1, 2, 3});
  framed.push_back(0xAB);
  EXPECT_FALSE(UnframeSnapshot(framed).ok());
}

TEST(SnapshotFrameTest, FileRoundTripAndTornFileRejected) {
  const std::string dir = FreshDir("frame_file");
  const std::string path = dir + "/snap-000001.fsnp";
  const std::vector<uint8_t> payload = {9, 8, 7, 6};
  ASSERT_TRUE(WriteSnapshotFile(path, payload).ok());
  const util::Result<std::vector<uint8_t>> back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);

  // Simulate a torn write published by a crashed filesystem: truncate the
  // file in place.
  const util::Result<std::vector<uint8_t>> full = util::ReadFileBytes(path);
  ASSERT_TRUE(full.ok());
  std::vector<uint8_t> torn(full->begin(), full->begin() + 10);
  ASSERT_TRUE(util::AtomicWriteFile(path, torn).ok());
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
  EXPECT_FALSE(ReadSnapshotFile(dir + "/missing.fsnp").ok());
}

// --- SnapshotManager cadence, rotation, fallback --------------------------

TEST(SnapshotManagerTest, SavesOnCadenceAndRotates) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  fl::SchemeSetup setup = fl::MakeRandMigr(2);
  setup.config.max_epochs = 6;
  setup.config.seed = 9;
  fl::Trainer trainer = BuildTrainer(w, std::move(setup));

  SnapshotOptions options;
  options.directory = FreshDir("rotate");
  options.every_epochs = 1;
  options.keep = 2;
  SnapshotManager manager(options);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(manager.Save(trainer, epoch).ok());
  }
  const std::vector<std::string> snapshots = manager.ListSnapshots();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_NE(snapshots[0].find("snap-000005.fsnp"), std::string::npos);
  EXPECT_NE(snapshots[1].find("snap-000004.fsnp"), std::string::npos);
}

TEST(SnapshotManagerTest, CadenceSkipsOffEpochs) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  fl::SchemeSetup setup = fl::MakeRandMigr(2);
  setup.config.max_epochs = 6;
  setup.config.seed = 9;
  fl::Trainer trainer = BuildTrainer(w, std::move(setup));

  SnapshotOptions options;
  options.directory = FreshDir("cadence");
  options.every_epochs = 3;
  options.keep = 10;
  SnapshotManager manager(options);
  for (int epoch = 1; epoch <= 6; ++epoch) {
    ASSERT_TRUE(manager.MaybeSave(trainer, epoch).ok());
  }
  EXPECT_EQ(manager.ListSnapshots().size(), 2u);  // epochs 3 and 6
}

TEST(SnapshotManagerTest, DisabledManagerIsANoOp) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  fl::SchemeSetup setup = fl::MakeRandMigr(2);
  setup.config.max_epochs = 2;
  fl::Trainer trainer = BuildTrainer(w, std::move(setup));
  SnapshotManager manager(SnapshotOptions{});
  EXPECT_FALSE(manager.enabled());
  EXPECT_TRUE(manager.Save(trainer, 1).ok());
  EXPECT_TRUE(manager.ListSnapshots().empty());
  util::Result<int> resumed = manager.Resume(&trainer);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(*resumed, 0);
}

// --- Kill-and-resume determinism (headline) -------------------------------

TEST(KillAndResumeTest, DrlRunResumesBitIdenticallyAtMultipleKillPoints) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());

  // Reference: uninterrupted.
  fl::Trainer reference = BuildTrainer(w, SmallFedMigr(w));
  const fl::RunResult ref_result = reference.Run();
  const std::vector<uint8_t> ref_bytes = StateBytes(reference);

  for (int kill_epoch : {2, 4}) {
    const std::string dir =
        FreshDir("kill" + std::to_string(kill_epoch));
    SnapshotOptions options;
    options.directory = dir;
    options.every_epochs = 1;
    options.keep = 2;

    // Killed run: snapshots every epoch, killed right after `kill_epoch`.
    {
      fl::Trainer killed = BuildTrainer(w, SmallFedMigr(w));
      SnapshotManager manager(options);
      killed.SetEpochHook(
          [&manager, kill_epoch](const fl::Trainer& t, int epoch) {
            EXPECT_TRUE(manager.MaybeSave(t, epoch).ok());
            return epoch < kill_epoch;
          });
      const fl::RunResult killed_result = killed.Run();
      EXPECT_TRUE(killed_result.interrupted);
      EXPECT_EQ(killed_result.epochs_run, kill_epoch);
    }

    // Restart: a fresh trainer resumes from the newest snapshot and runs
    // to completion.
    fl::Trainer resumed = BuildTrainer(w, SmallFedMigr(w));
    SnapshotManager manager(options);
    const util::Result<int> from = manager.Resume(&resumed);
    ASSERT_TRUE(from.ok());
    EXPECT_EQ(*from, kill_epoch);
    const fl::RunResult resumed_result = resumed.Run();
    EXPECT_FALSE(resumed_result.interrupted);

    // Byte-identical final state: models, optimizer moments, RNG streams,
    // replay buffer contents and priorities, fault counters, history.
    EXPECT_EQ(StateBytes(resumed), ref_bytes) << "kill at " << kill_epoch;
    ASSERT_EQ(resumed_result.history.size(), ref_result.history.size());
    for (size_t i = 0; i < ref_result.history.size(); ++i) {
      EXPECT_EQ(resumed_result.history[i].train_loss,
                ref_result.history[i].train_loss);
      EXPECT_EQ(resumed_result.history[i].test_accuracy,
                ref_result.history[i].test_accuracy);
      EXPECT_EQ(resumed_result.history[i].migrations,
                ref_result.history[i].migrations);
    }
    EXPECT_EQ(resumed_result.final_accuracy, ref_result.final_accuracy);
  }
}

TEST(KillAndResumeTest, TornNewestSnapshotFallsBackToLastGood) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());

  fl::Trainer reference = BuildTrainer(w, SmallFedMigr(w));
  reference.Run();
  const std::vector<uint8_t> ref_bytes = StateBytes(reference);

  const std::string dir = FreshDir("torn");
  SnapshotOptions options;
  options.directory = dir;
  options.every_epochs = 1;
  options.keep = 3;

  {
    fl::Trainer killed = BuildTrainer(w, SmallFedMigr(w));
    SnapshotManager manager(options);
    killed.SetEpochHook([&manager](const fl::Trainer& t, int epoch) {
      EXPECT_TRUE(manager.MaybeSave(t, epoch).ok());
      return epoch < 4;
    });
    killed.Run();
  }

  // Damage the newest snapshot three ways across scenarios: truncate it
  // (torn write), and drop a stray .tmp plus an unparseable file next to
  // it — the resume path must skip all of them and restore epoch 3.
  const std::string newest = dir + "/snap-000004.fsnp";
  const util::Result<std::vector<uint8_t>> full =
      util::ReadFileBytes(newest);
  ASSERT_TRUE(full.ok());
  const std::vector<uint8_t> torn(full->begin(),
                                  full->begin() + full->size() / 3);
  ASSERT_TRUE(util::AtomicWriteFile(newest, torn).ok());
  ASSERT_TRUE(util::AtomicWriteFile(dir + "/snap-000005.fsnp.tmp",
                                    {1, 2, 3}).ok());
  ASSERT_TRUE(util::AtomicWriteFile(dir + "/snap-000099.fsnp",
                                    {0xDE, 0xAD}).ok());

  fl::Trainer resumed = BuildTrainer(w, SmallFedMigr(w));
  SnapshotManager manager(options);
  const util::Result<int> from = manager.Resume(&resumed);
  ASSERT_TRUE(from.ok());
  EXPECT_EQ(*from, 3);  // fell back past the torn epoch-4 file
  resumed.Run();
  EXPECT_EQ(StateBytes(resumed), ref_bytes);
}

TEST(KillAndResumeTest, SparseCadenceReplaysKilledEpochs) {
  // Cadence 3, killed after epoch 5: resume restores epoch 3 and re-runs
  // epochs 4-6; the replayed epochs must land on the same trajectory.
  const Workload w = MakeWorkload(SmallWorkloadConfig());

  fl::Trainer reference = BuildTrainer(w, SmallFedMigr(w));
  reference.Run();
  const std::vector<uint8_t> ref_bytes = StateBytes(reference);

  const std::string dir = FreshDir("sparse");
  SnapshotOptions options;
  options.directory = dir;
  options.every_epochs = 3;
  options.keep = 2;

  {
    fl::Trainer killed = BuildTrainer(w, SmallFedMigr(w));
    SnapshotManager manager(options);
    killed.SetEpochHook([&manager](const fl::Trainer& t, int epoch) {
      EXPECT_TRUE(manager.MaybeSave(t, epoch).ok());
      return epoch < 5;
    });
    killed.Run();
  }

  fl::Trainer resumed = BuildTrainer(w, SmallFedMigr(w));
  SnapshotManager manager(options);
  const util::Result<int> from = manager.Resume(&resumed);
  ASSERT_TRUE(from.ok());
  EXPECT_EQ(*from, 3);
  resumed.Run();
  EXPECT_EQ(StateBytes(resumed), ref_bytes);
}

TEST(KillAndResumeTest, SnapshotPayloadCorruptionFuzzNeverCrashesResume) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  const std::string dir = FreshDir("fuzz");
  SnapshotOptions options;
  options.directory = dir;
  options.every_epochs = 2;
  options.keep = 1;
  auto cheap_setup = [&w]() {
    fl::SchemeSetup s = fl::MakeRandMigr(2);
    s.config.max_epochs = 6;
    s.config.seed = 55;
    return s;
  };

  {
    fl::Trainer killed = BuildTrainer(w, cheap_setup());
    SnapshotManager manager(options);
    killed.SetEpochHook([&manager](const fl::Trainer& t, int epoch) {
      EXPECT_TRUE(manager.MaybeSave(t, epoch).ok());
      return epoch < 2;
    });
    killed.Run();
  }
  const std::string path = dir + "/snap-000002.fsnp";
  const util::Result<std::vector<uint8_t>> full = util::ReadFileBytes(path);
  ASSERT_TRUE(full.ok());

  // Truncations and bit flips over the on-disk container: resume must skip
  // every damaged variant (falling back to a fresh start) without crashing,
  // hanging or loading silently. The victim trainer stays pristine, so one
  // instance serves every variant.
  fl::Trainer victim = BuildTrainer(w, cheap_setup());
  SnapshotManager manager(options);
  const size_t stride = std::max<size_t>(1, full->size() / 101);
  for (size_t cut = 0; cut < full->size(); cut += stride) {
    const std::vector<uint8_t> torn(full->begin(),
                                    full->begin() + static_cast<long>(cut));
    ASSERT_TRUE(util::AtomicWriteFile(path, torn).ok());
    const util::Result<int> from = manager.Resume(&victim);
    ASSERT_TRUE(from.ok());
    EXPECT_EQ(*from, 0) << "torn at " << cut << " resumed anyway";
  }
  for (size_t pos = 0; pos < full->size(); pos += stride) {
    std::vector<uint8_t> corrupt = *full;
    corrupt[pos] ^= 0x20;
    ASSERT_TRUE(util::AtomicWriteFile(path, corrupt).ok());
    const util::Result<int> from = manager.Resume(&victim);
    ASSERT_TRUE(from.ok());
    EXPECT_EQ(*from, 0) << "flip at " << pos << " resumed anyway";
  }
}

// --- RunScheme wiring -----------------------------------------------------

TEST(RunControlTest, DefaultControlMatchesPlainRunScheme) {
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  auto setup = [&w]() {
    fl::SchemeSetup s = fl::MakeRandMigr(2);
    s.config.max_epochs = 4;
    s.config.eval_every = 2;
    s.config.seed = 31;
    return s;
  };
  const fl::RunResult plain = RunScheme(w, setup());
  const fl::RunResult controlled = RunScheme(w, setup(), RunControl{});
  ASSERT_EQ(plain.history.size(), controlled.history.size());
  for (size_t i = 0; i < plain.history.size(); ++i) {
    EXPECT_EQ(plain.history[i].train_loss, controlled.history[i].train_loss);
    EXPECT_EQ(plain.history[i].test_accuracy,
              controlled.history[i].test_accuracy);
  }
  EXPECT_EQ(plain.final_accuracy, controlled.final_accuracy);
}

TEST(RunControlTest, InterruptedRunSchemeResumesToSameTrajectory) {
  ClearInterrupt();
  const Workload w = MakeWorkload(SmallWorkloadConfig());
  auto setup = [&w]() {
    fl::SchemeSetup s = fl::MakeRandMigr(2);
    s.config.max_epochs = 5;
    s.config.eval_every = 2;
    s.config.seed = 33;
    return s;
  };
  const fl::RunResult reference = RunScheme(w, setup());

  RunControl control;
  control.snapshot.directory = FreshDir("runscheme");
  control.snapshot.every_epochs = 1;
  control.handle_signals = true;
  control.resume = true;

  // "Kill" at the first epoch boundary: the interrupt flag is already set
  // when the run starts, so the hook stops it after epoch 1 with a final
  // snapshot flushed.
  RequestInterrupt();
  const fl::RunResult interrupted = RunScheme(w, setup(), control);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.epochs_run, 1);
  ClearInterrupt();

  int resumed_from = -1;
  control.resumed_from_epoch = &resumed_from;
  const fl::RunResult resumed = RunScheme(w, setup(), control);
  EXPECT_EQ(resumed_from, 1);
  EXPECT_FALSE(resumed.interrupted);
  ASSERT_EQ(resumed.history.size(), reference.history.size());
  for (size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].train_loss,
              reference.history[i].train_loss);
    EXPECT_EQ(resumed.history[i].test_accuracy,
              reference.history[i].test_accuracy);
  }
  EXPECT_EQ(resumed.final_accuracy, reference.final_accuracy);
  EXPECT_EQ(resumed.traffic_gb, reference.traffic_gb);
}

}  // namespace
}  // namespace fedmigr::core
