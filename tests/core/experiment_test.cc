#include "core/experiment.h"

#include <gtest/gtest.h>

#include "data/distribution.h"

namespace fedmigr::core {
namespace {

TEST(WorkloadTest, C10Defaults) {
  WorkloadConfig config;
  const Workload w = MakeWorkload(config);
  EXPECT_EQ(w.num_classes, 10);
  EXPECT_EQ(w.model_name, "c10");
  EXPECT_EQ(w.topology.num_clients(), 10);
  EXPECT_EQ(w.topology.num_lans(), 3);
  EXPECT_EQ(w.partition.size(), 10u);
  EXPECT_TRUE(data::IsExactCover(w.partition, w.data.train.size()));
  EXPECT_EQ(w.devices.size(), 10u);
}

TEST(WorkloadTest, C100UsesTwentyClients) {
  WorkloadConfig config;
  config.dataset = "c100";
  config.num_clients = 20;
  config.num_lans = 5;
  const Workload w = MakeWorkload(config);
  EXPECT_EQ(w.num_classes, 100);
  EXPECT_EQ(w.model_name, "c100");
  EXPECT_EQ(w.partition.size(), 20u);
}

TEST(WorkloadTest, ImageNetUsesResMini) {
  WorkloadConfig config;
  config.dataset = "imagenet100";
  config.num_clients = 20;
  const Workload w = MakeWorkload(config);
  EXPECT_EQ(w.model_name, "resmini");
  util::Rng rng(1);
  nn::Sequential model = w.model_factory(&rng);
  EXPECT_GT(model.NumParams(), 0);
}

TEST(WorkloadTest, ShardPartitionIsSkewed) {
  WorkloadConfig config;
  config.partition = PartitionKind::kShard;
  const Workload w = MakeWorkload(config);
  const auto population = data::PopulationDistribution(w.data.train);
  const auto dist = data::LabelDistribution(w.data.train, w.partition[0]);
  EXPECT_GT(data::EmdDistance(dist, population), 1.5);
}

TEST(WorkloadTest, IidPartitionIsBalanced) {
  WorkloadConfig config;
  config.partition = PartitionKind::kIid;
  const Workload w = MakeWorkload(config);
  const auto population = data::PopulationDistribution(w.data.train);
  for (const auto& part : w.partition) {
    EXPECT_LT(data::EmdDistance(data::LabelDistribution(w.data.train, part),
                                population),
              0.6);
  }
}

TEST(WorkloadTest, LanShardSharesDistributionWithinLan) {
  WorkloadConfig config;
  config.partition = PartitionKind::kLanShard;
  const Workload w = MakeWorkload(config);
  const auto d0 = data::LabelDistribution(w.data.train, w.partition[0]);
  const auto d1 = data::LabelDistribution(w.data.train, w.partition[1]);
  EXPECT_LT(data::EmdDistance(d0, d1), 0.2);
}

TEST(WorkloadTest, OverridesApply) {
  WorkloadConfig config;
  config.noise_override = 3.0;
  config.train_per_class_override = 7;
  const Workload w = MakeWorkload(config);
  EXPECT_EQ(w.data.train.size(), 70);
}

TEST(WorkloadTest, DefaultsSetLearningRate) {
  const Workload w = MakeWorkload(WorkloadConfig{});
  fl::TrainerConfig config;
  ApplyWorkloadDefaults(w, &config);
  EXPECT_GT(config.learning_rate, 0.0);
  EXPECT_GT(config.batch_size, 0);
}

TEST(RunSchemeTest, ExecutesEndToEnd) {
  WorkloadConfig wc;
  wc.train_per_class_override = 20;
  const Workload w = MakeWorkload(wc);
  fl::SchemeSetup setup = fl::MakeFedAvg();
  setup.config.max_epochs = 2;
  const fl::RunResult result = RunScheme(w, std::move(setup));
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_GT(result.traffic_gb, 0.0);
}

}  // namespace
}  // namespace fedmigr::core
