// Whole-system integration tests: the qualitative claims the paper's
// evaluation rests on must hold on a scaled-down workload.
//
// These are the slowest tests in the suite (a few seconds each); they use a
// reduced dataset so the full suite stays fast.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/fedmigr.h"

namespace fedmigr::core {
namespace {

Workload SmallWorkload(PartitionKind partition) {
  WorkloadConfig config;
  config.dataset = "c10";
  config.partition = partition;
  config.train_per_class_override = 50;
  config.signal_override = 0.35;
  return MakeWorkload(config);
}

void Configure(fl::TrainerConfig* config, const Workload& w, int epochs) {
  ApplyWorkloadDefaults(w, config);
  config->max_epochs = epochs;
  config->learning_rate = 0.05;
  config->batch_size = 16;
  config->eval_every = epochs;  // single final evaluation
}

TEST(IntegrationTest, MigrationBeatsFedAvgUnderNonIid) {
  const Workload w = SmallWorkload(PartitionKind::kLanShard);

  fl::SchemeSetup fedavg = fl::MakeFedAvg();
  Configure(&fedavg.config, w, 100);
  const fl::RunResult fedavg_result = RunScheme(w, std::move(fedavg));

  fl::SchemeSetup randmigr = fl::MakeRandMigr(/*agg_period=*/5);
  Configure(&randmigr.config, w, 100);
  const fl::RunResult randmigr_result = RunScheme(w, std::move(randmigr));

  // The headline non-IID claim: migration improves accuracy while using
  // less global (C2S) bandwidth. A small slack absorbs seed noise on this
  // reduced workload; the benches show the full-size gap.
  EXPECT_GT(randmigr_result.final_accuracy + 0.03,
            fedavg_result.final_accuracy);
  EXPECT_LT(randmigr_result.c2s_gb, fedavg_result.c2s_gb);
  EXPECT_LT(randmigr_result.traffic_gb, fedavg_result.traffic_gb);
}

TEST(IntegrationTest, FedMigrRunsAndLearns) {
  const Workload w = SmallWorkload(PartitionKind::kLanShard);
  FedMigrOptions options;
  options.agg_period = 5;
  options.pretrain.episodes = 4;
  options.cache_agent = false;
  options.policy.online_learning = true;
  fl::SchemeSetup fedmigr_scheme = MakeFedMigr(w.topology, w.num_classes,
                                               options);
  Configure(&fedmigr_scheme.config, w, 50);
  const fl::RunResult result = RunScheme(w, std::move(fedmigr_scheme));
  EXPECT_GT(result.final_accuracy, 0.2);  // chance is 0.1
  EXPECT_GT(result.c2c_gb, 0.0);          // migrations actually happened
  EXPECT_LT(result.c2s_gb, result.traffic_gb);
}

TEST(IntegrationTest, IidClosesTheGap) {
  // Under IID data all schemes should perform comparably (Table II's IID
  // columns): the FedAvg-vs-RandMigr accuracy gap shrinks vs the non-IID
  // case.
  const Workload iid = SmallWorkload(PartitionKind::kIid);

  fl::SchemeSetup fedavg = fl::MakeFedAvg();
  Configure(&fedavg.config, iid, 40);
  const double fedavg_acc = RunScheme(iid, std::move(fedavg)).final_accuracy;

  fl::SchemeSetup randmigr = fl::MakeRandMigr(5);
  Configure(&randmigr.config, iid, 40);
  const double randmigr_acc =
      RunScheme(iid, std::move(randmigr)).final_accuracy;

  EXPECT_GT(fedavg_acc, 0.3);  // IID is comfortable for FedAvg
  EXPECT_NEAR(fedavg_acc, randmigr_acc, 0.25);
}

TEST(IntegrationTest, BudgetedRunReportsExhaustion) {
  const Workload w = SmallWorkload(PartitionKind::kShard);
  fl::SchemeSetup fedavg = fl::MakeFedAvg();
  Configure(&fedavg.config, w, 100);
  fedavg.config.budget = net::Budget(1e12, 5e6);  // ~ a few epochs of WAN
  const fl::RunResult result = RunScheme(w, std::move(fedavg));
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LT(result.epochs_run, 100);
}

}  // namespace
}  // namespace fedmigr::core
