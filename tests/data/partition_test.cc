#include "data/partition.h"

#include <set>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/synthetic.h"
#include "net/topology.h"
#include "util/rng.h"

namespace fedmigr::data {
namespace {

Dataset MakeC10Train() {
  return GenerateSynthetic(C10Spec()).train;
}

TEST(PartitionIidTest, ExactCoverAndBalance) {
  const Dataset d = MakeC10Train();
  util::Rng rng(1);
  const Partition parts = PartitionIid(d, 10, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    EXPECT_EQ(static_cast<int>(part.size()), d.size() / 10);
  }
}

TEST(PartitionIidTest, ApproximatelyUniformLabels) {
  const Dataset d = MakeC10Train();
  util::Rng rng(2);
  const Partition parts = PartitionIid(d, 10, &rng);
  const auto population = PopulationDistribution(d);
  for (const auto& part : parts) {
    const auto dist = LabelDistribution(d, part);
    EXPECT_LT(EmdDistance(dist, population), 0.5);
  }
}

TEST(PartitionShardTest, OneClassPerClient) {
  const Dataset d = MakeC10Train();
  util::Rng rng(3);
  const Partition parts = PartitionByClassShards(d, 10, 1, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    std::set<int> classes;
    for (int idx : part) classes.insert(d.label(idx));
    EXPECT_EQ(classes.size(), 1u);
  }
}

TEST(PartitionShardTest, MaximallySkewedDistributions) {
  const Dataset d = MakeC10Train();
  util::Rng rng(4);
  const Partition parts = PartitionByClassShards(d, 10, 1, &rng);
  const auto population = PopulationDistribution(d);
  for (const auto& part : parts) {
    const auto dist = LabelDistribution(d, part);
    // Singleton vs uniform over 10: EMD = 2 * (1 - 1/10) = 1.8.
    EXPECT_NEAR(EmdDistance(dist, population), 1.8, 1e-9);
  }
}

TEST(PartitionShardTest, FiveClassesPerClientOnC100) {
  const Dataset d = GenerateSynthetic(C100Spec()).train;
  util::Rng rng(5);
  const Partition parts = PartitionByClassShards(d, 20, 5, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    std::set<int> classes;
    for (int idx : part) classes.insert(d.label(idx));
    EXPECT_EQ(classes.size(), 5u);
  }
}

TEST(PartitionLanShardTest, SameDistributionWithinLan) {
  const Dataset d = MakeC10Train();
  util::Rng rng(6);
  const std::vector<int> lan_of = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
  const Partition parts = PartitionByLanShards(d, lan_of, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  // Clients 0..3 (LAN 0) share a distribution; client 4 (LAN 1) differs.
  const auto d0 = LabelDistribution(d, parts[0]);
  const auto d1 = LabelDistribution(d, parts[1]);
  const auto d4 = LabelDistribution(d, parts[4]);
  EXPECT_LT(EmdDistance(d0, d1), 0.2);
  EXPECT_GT(EmdDistance(d0, d4), 1.5);
}

TEST(PartitionDominanceTest, IidSpecialCase) {
  const Dataset d = MakeC10Train();
  util::Rng rng(7);
  // p = 1/num_classes reproduces (approximately) uniform allocation.
  const Partition parts = PartitionDominance(d, 10, 0.1, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  const auto population = PopulationDistribution(d);
  double max_emd = 0.0;
  for (const auto& part : parts) {
    max_emd = std::max(max_emd,
                       EmdDistance(LabelDistribution(d, part), population));
  }
  EXPECT_LT(max_emd, 0.6);
}

TEST(PartitionDominanceTest, SkewGrowsWithP) {
  const Dataset d = MakeC10Train();
  const auto population = PopulationDistribution(d);
  double previous = 0.0;
  for (double p : {0.2, 0.4, 0.6, 0.8}) {
    util::Rng rng(static_cast<uint64_t>(p * 100));
    const Partition parts = PartitionDominance(d, 10, p, &rng);
    EXPECT_TRUE(IsExactCover(parts, d.size()));
    double mean_emd = 0.0;
    for (const auto& part : parts) {
      mean_emd += EmdDistance(LabelDistribution(d, part), population);
    }
    mean_emd /= static_cast<double>(parts.size());
    EXPECT_GT(mean_emd, previous);
    previous = mean_emd;
  }
}

TEST(PartitionDominanceTest, DominantClientOwnsItsClassShare) {
  const Dataset d = MakeC10Train();
  util::Rng rng(8);
  const Partition parts = PartitionDominance(d, 10, 0.8, &rng);
  // Client k dominates class k; 80% of class k's samples live on client k.
  const auto counts = d.ClassCounts();
  for (int k = 0; k < 10; ++k) {
    int own = 0;
    for (int idx : parts[static_cast<size_t>(k)]) {
      if (d.label(idx) == k) ++own;
    }
    EXPECT_NEAR(static_cast<double>(own) / counts[static_cast<size_t>(k)],
                0.8, 0.05);
  }
}

TEST(PartitionClassLackTest, ZeroLackIsFullCoverage) {
  const Dataset d = MakeC10Train();
  util::Rng rng(9);
  const Partition parts = PartitionClassLack(d, 10, 0, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    std::set<int> classes;
    for (int idx : part) classes.insert(d.label(idx));
    EXPECT_EQ(classes.size(), 10u);
  }
}

TEST(PartitionClassLackTest, EachClientLacksExactly) {
  const Dataset d = MakeC10Train();
  util::Rng rng(10);
  const int lack = 3;
  const Partition parts = PartitionClassLack(d, 10, lack, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    std::set<int> classes;
    for (int idx : part) classes.insert(d.label(idx));
    EXPECT_EQ(static_cast<int>(classes.size()), 10 - lack);
  }
}

// Property sweep: every partitioner yields an exact cover for any client
// count.
struct CoverCase {
  int num_clients;
  int kind;  // 0=iid, 1=shard, 2=dominance, 3=classlack
};

class PartitionCoverTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(PartitionCoverTest, ExactCover) {
  const auto [num_clients, kind] = GetParam();
  const Dataset d = MakeC10Train();
  util::Rng rng(static_cast<uint64_t>(num_clients * 10 + kind));
  Partition parts;
  switch (kind) {
    case 0:
      parts = PartitionIid(d, num_clients, &rng);
      break;
    case 1:
      parts = PartitionByClassShards(d, num_clients, 1, &rng);
      break;
    case 2:
      parts = PartitionDominance(d, num_clients, 0.5, &rng);
      break;
    default:
      parts = PartitionClassLack(d, num_clients, 2, &rng);
      break;
  }
  EXPECT_EQ(static_cast<int>(parts.size()), num_clients);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionCoverTest,
    ::testing::Values(CoverCase{2, 0}, CoverCase{5, 0}, CoverCase{13, 0},
                      CoverCase{5, 1}, CoverCase{10, 1}, CoverCase{20, 1},
                      CoverCase{4, 2}, CoverCase{10, 2}, CoverCase{16, 2},
                      CoverCase{5, 3}, CoverCase{10, 3}, CoverCase{20, 3}));

TEST(PartitionClassLackTest, FewSamplesManyHoldersLeavesNobodyEmpty) {
  // 100 classes x 8 samples over 20 clients, lack = 40: every class has
  // more holders than samples, which starves fixed-order dealing. The
  // shuffled dealing must leave every client with data.
  const Dataset d = GenerateSynthetic([] {
    SyntheticSpec spec = C100Spec();
    spec.train_per_class = 8;
    return spec;
  }()).train;
  util::Rng rng(11);
  const Partition parts = PartitionClassLack(d, 20, 40, &rng);
  EXPECT_TRUE(IsExactCover(parts, d.size()));
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
  }
}

TEST(IsExactCoverTest, DetectsDuplicatesAndGaps) {
  EXPECT_TRUE(IsExactCover({{0, 1}, {2}}, 3));
  EXPECT_FALSE(IsExactCover({{0, 1}, {1, 2}}, 3));   // duplicate
  EXPECT_FALSE(IsExactCover({{0}, {2}}, 3));          // gap
  EXPECT_FALSE(IsExactCover({{0, 5}}, 3));            // out of range
}

}  // namespace
}  // namespace fedmigr::data
