#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "nn/zoo.h"

namespace fedmigr::data {
namespace {

TEST(SyntheticTest, C10SpecShapes) {
  const TrainTest tt = GenerateSynthetic(C10Spec());
  EXPECT_EQ(tt.train.num_classes(), 10);
  EXPECT_EQ(tt.train.size(), 10 * C10Spec().train_per_class);
  EXPECT_EQ(tt.test.size(), 10 * C10Spec().test_per_class);
  EXPECT_EQ(tt.train.sample_shape(),
            (nn::Shape{nn::kImageChannels, nn::kImageSize, nn::kImageSize}));
}

TEST(SyntheticTest, ImageNetSpecIsFlat) {
  const TrainTest tt = GenerateSynthetic(ImageNet100Spec());
  EXPECT_EQ(tt.train.sample_shape(), (nn::Shape{nn::kResFeatureDim}));
  EXPECT_EQ(tt.train.num_classes(), 100);
}

TEST(SyntheticTest, BalancedClasses) {
  const TrainTest tt = GenerateSynthetic(C10Spec());
  const auto counts = tt.train.ClassCounts();
  for (int c : counts) EXPECT_EQ(c, C10Spec().train_per_class);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticSpec spec = C10Spec();
  const TrainTest a = GenerateSynthetic(spec);
  const TrainTest b = GenerateSynthetic(spec);
  EXPECT_EQ(nn::MaxAbsDiff(a.train.features(), b.train.features()), 0.0f);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec = C10Spec();
  const TrainTest a = GenerateSynthetic(spec);
  spec.seed += 1;
  const TrainTest b = GenerateSynthetic(spec);
  EXPECT_GT(nn::MaxAbsDiff(a.train.features(), b.train.features()), 0.0f);
}

TEST(SyntheticTest, TrainAndTestShareClassStructure) {
  // Nearest-prototype structure: a test sample's class mean (from train
  // data) should be closer than other class means most of the time. We
  // check the weaker property that per-class means of train and test are
  // close relative to noise.
  SyntheticSpec spec = C10Spec();
  spec.noise = 0.5;
  const TrainTest tt = GenerateSynthetic(spec);
  const int64_t dim = tt.train.sample_size();
  auto class_mean = [&](const Dataset& d, int cls) {
    std::vector<double> mean(static_cast<size_t>(dim), 0.0);
    int n = 0;
    for (int i = 0; i < d.size(); ++i) {
      if (d.label(i) != cls) continue;
      ++n;
      for (int64_t j = 0; j < dim; ++j) {
        mean[static_cast<size_t>(j)] += d.features()[i * dim + j];
      }
    }
    for (auto& m : mean) m /= n;
    return mean;
  };
  for (int cls = 0; cls < 3; ++cls) {
    const auto train_mean = class_mean(tt.train, cls);
    const auto test_mean = class_mean(tt.test, cls);
    double dist = 0.0, norm = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      const double d = train_mean[static_cast<size_t>(j)] -
                       test_mean[static_cast<size_t>(j)];
      dist += d * d;
      norm += train_mean[static_cast<size_t>(j)] *
              train_mean[static_cast<size_t>(j)];
    }
    EXPECT_LT(dist, norm);  // same prototypes, different noise draws
  }
}

TEST(SyntheticTest, DifficultyOrdering) {
  // C100 has 10x classes with less data per class than C10 — documented
  // expectation that specs preserve the paper's difficulty ordering.
  EXPECT_GT(C100Spec().num_classes, C10Spec().num_classes);
  EXPECT_LT(C100Spec().train_per_class, C10Spec().train_per_class);
}

}  // namespace
}  // namespace fedmigr::data
