// Tests of the Section II-C arithmetic — including the paper's central
// claim (Eqs. 13-15): migration strictly shrinks the distance between a
// client's effective distribution and the population distribution.

#include "data/distribution.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace fedmigr::data {
namespace {

TEST(LabelDistributionTest, NormalizedHistogram) {
  nn::Tensor features({4, 1});
  const Dataset d(std::move(features), {0, 0, 1, 2}, 3);
  const auto dist = LabelDistribution(d, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(dist[0], 0.5);
  EXPECT_DOUBLE_EQ(dist[1], 0.25);
  EXPECT_DOUBLE_EQ(dist[2], 0.25);
}

TEST(LabelDistributionTest, EmptyIndicesGiveZeros) {
  nn::Tensor features({2, 1});
  const Dataset d(std::move(features), {0, 1}, 2);
  const auto dist = LabelDistribution(d, {});
  EXPECT_EQ(dist, (std::vector<double>{0.0, 0.0}));
}

TEST(PopulationDistributionTest, MatchesFullIndexList) {
  const Dataset d = GenerateSynthetic(C10Spec()).train;
  std::vector<int> all(static_cast<size_t>(d.size()));
  for (int i = 0; i < d.size(); ++i) all[static_cast<size_t>(i)] = i;
  EXPECT_EQ(PopulationDistribution(d), LabelDistribution(d, all));
}

TEST(EmdTest, BasicProperties) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(EmdDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(EmdDistance(a, b), 2.0);       // max over the simplex
  EXPECT_DOUBLE_EQ(EmdDistance(a, b), EmdDistance(b, a));
}

TEST(EmdTest, TriangleInequality) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto random_dist = [&rng]() {
      std::vector<double> d(5);
      double total = 0.0;
      for (auto& x : d) {
        x = rng.Uniform();
        total += x;
      }
      for (auto& x : d) x /= total;
      return d;
    };
    const auto a = random_dist(), b = random_dist(), c = random_dist();
    EXPECT_LE(EmdDistance(a, c), EmdDistance(a, b) + EmdDistance(b, c) + 1e-12);
  }
}

TEST(DivergenceMatrixTest, SymmetricZeroDiagonal) {
  const std::vector<std::vector<double>> dists = {
      {1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}};
  const auto m = DivergenceMatrix(dists);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m[i][i], 0.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m[i][j], m[j][i]);
  }
  EXPECT_DOUBLE_EQ(m[0][1], 2.0);
  EXPECT_DOUBLE_EQ(m[0][2], 1.0);
}

TEST(MixDistributionsTest, WeightedAverage) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  const auto mix = MixDistributions(a, 1.0, b, 3.0);
  EXPECT_DOUBLE_EQ(mix[0], 0.25);
  EXPECT_DOUBLE_EQ(mix[1], 0.75);
}

TEST(MixDistributionsTest, ZeroWeightIsIdentity) {
  const std::vector<double> a = {0.3, 0.7};
  const std::vector<double> b = {0.9, 0.1};
  EXPECT_EQ(MixDistributions(a, 0.0, b, 2.0), b);
  EXPECT_EQ(MixDistributions(a, 2.0, b, 0.0), a);
}

// ---- The paper's Theorem (Eqs. 13-15). --------------------------------

TEST(MigratedDistributionTest, MatchesEq13ClosedForm) {
  // Client with n_k = 10 one-class samples out of N = 100 total, K = 10,
  // M = 4 migrations.
  const std::vector<double> own = {1.0, 0.0};
  const std::vector<double> population = {0.4, 0.6};
  const auto mixed = MigratedDistribution(own, 10.0, population, 100.0,
                                          /*num_clients=*/10,
                                          /*num_migrations=*/4);
  // Eq. 13: q' = (K n_k q_k + M N q) / (K n_k + M N).
  const double denom = 10 * 10 + 4 * 100;
  EXPECT_NEAR(mixed[0], (10 * 10 * 1.0 + 4 * 100 * 0.4) / denom, 1e-12);
  EXPECT_NEAR(mixed[1], (4 * 100 * 0.6) / denom, 1e-12);
}

TEST(MigratedDistributionTest, ZeroMigrationsIsIdentity) {
  const std::vector<double> own = {0.9, 0.1};
  const std::vector<double> population = {0.5, 0.5};
  EXPECT_EQ(MigratedDistribution(own, 5.0, population, 50.0, 10, 0), own);
}

TEST(MigratedDistributionTest, PaperTheoremDistanceShrinks) {
  // ||q'_k - q|| < ||q_k - q|| for any M >= 1 (Eq. 15).
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int classes = 2 + rng.UniformInt(8);
    std::vector<double> own(static_cast<size_t>(classes), 0.0);
    own[static_cast<size_t>(rng.UniformInt(classes))] = 1.0;
    std::vector<double> population(static_cast<size_t>(classes));
    double total = 0.0;
    for (auto& p : population) {
      p = 0.1 + rng.Uniform();
      total += p;
    }
    for (auto& p : population) p /= total;

    const double n_k = 10.0, n_total = 100.0;
    const int k = 10;
    const double before = EmdDistance(own, population);
    if (before < 1e-9) continue;  // already at the population
    for (int m : {1, 2, 5, 20}) {
      const auto mixed =
          MigratedDistribution(own, n_k, population, n_total, k, m);
      EXPECT_LT(EmdDistance(mixed, population), before);
    }
  }
}

TEST(MigratedDistributionTest, DistanceMonotoneInM) {
  // More migrations -> closer to the population distribution.
  const std::vector<double> own = {1.0, 0.0, 0.0};
  const std::vector<double> population = {0.3, 0.4, 0.3};
  double previous = EmdDistance(own, population);
  for (int m = 1; m <= 16; m *= 2) {
    const auto mixed = MigratedDistribution(own, 10.0, population, 100.0,
                                            10, m);
    const double distance = EmdDistance(mixed, population);
    EXPECT_LT(distance, previous);
    previous = distance;
  }
}

TEST(ClientDistributionsTest, OnePerPart) {
  const Dataset d = GenerateSynthetic(C10Spec()).train;
  const Partition parts = {{0, 1, 2}, {3, 4}};
  const auto dists = ClientDistributions(d, parts);
  EXPECT_EQ(dists.size(), 2u);
  EXPECT_EQ(dists[0], LabelDistribution(d, parts[0]));
}

}  // namespace
}  // namespace fedmigr::data
