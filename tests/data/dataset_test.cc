#include "data/dataset.h"

#include <numeric>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::data {
namespace {

Dataset TinyDataset() {
  // 6 samples, 2 features each, 3 classes.
  nn::Tensor features({6, 2}, {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5});
  return Dataset(std::move(features), {0, 1, 2, 0, 1, 2}, 3);
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 6);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.label(4), 1);
  EXPECT_EQ(d.sample_shape(), (nn::Shape{2}));
  EXPECT_EQ(d.sample_size(), 2);
}

TEST(DatasetTest, GatherCopiesRows) {
  const Dataset d = TinyDataset();
  nn::Tensor batch;
  std::vector<int> labels;
  d.Gather({1, 4}, &batch, &labels);
  EXPECT_EQ(batch.shape(), (nn::Shape{2, 2}));
  EXPECT_EQ(batch.At(0, 0), 1.0f);
  EXPECT_EQ(batch.At(1, 1), 4.0f);
  EXPECT_EQ(labels, (std::vector<int>{1, 1}));
}

TEST(DatasetTest, SubsetKeepsClassCount) {
  const Dataset d = TinyDataset();
  const Dataset sub = d.Subset({0, 3});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.num_classes(), 3);
  EXPECT_EQ(sub.label(1), 0);
}

TEST(DatasetTest, ClassCounts) {
  const Dataset d = TinyDataset();
  EXPECT_EQ(d.ClassCounts(), (std::vector<int>{2, 2, 2}));
  const Dataset sub = d.Subset({0, 3, 1});
  EXPECT_EQ(sub.ClassCounts(), (std::vector<int>{2, 1, 0}));
}

TEST(BatchIteratorTest, CoversEveryIndexOnce) {
  const Dataset d = TinyDataset();
  util::Rng rng(1);
  BatchIterator it(&d, {}, 4, &rng);
  EXPECT_EQ(it.num_samples(), 6);
  EXPECT_EQ(it.batches_per_epoch(), 2);

  nn::Tensor batch;
  std::vector<int> labels;
  int total = 0;
  std::vector<int> class_counts(3, 0);
  while (it.Next(&batch, &labels)) {
    total += static_cast<int>(labels.size());
    for (int l : labels) ++class_counts[static_cast<size_t>(l)];
  }
  EXPECT_EQ(total, 6);
  EXPECT_EQ(class_counts, (std::vector<int>{2, 2, 2}));
}

TEST(BatchIteratorTest, LastBatchMayBeSmall) {
  const Dataset d = TinyDataset();
  BatchIterator it(&d, {}, 4, nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  ASSERT_TRUE(it.Next(&batch, &labels));
  EXPECT_EQ(labels.size(), 4u);
  ASSERT_TRUE(it.Next(&batch, &labels));
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_FALSE(it.Next(&batch, &labels));
}

TEST(BatchIteratorTest, ResetStartsNewEpoch) {
  const Dataset d = TinyDataset();
  BatchIterator it(&d, {}, 6, nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  EXPECT_TRUE(it.Next(&batch, &labels));
  EXPECT_FALSE(it.Next(&batch, &labels));
  it.Reset();
  EXPECT_TRUE(it.Next(&batch, &labels));
}

TEST(BatchIteratorTest, RestrictedIndices) {
  const Dataset d = TinyDataset();
  BatchIterator it(&d, {2, 5}, 8, nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  ASSERT_TRUE(it.Next(&batch, &labels));
  EXPECT_EQ(labels, (std::vector<int>{2, 2}));
}

TEST(BatchIteratorTest, ShuffleChangesOrderAcrossEpochs) {
  // 32-sample dataset so identical shuffles are vanishingly unlikely.
  nn::Tensor features({32, 1});
  std::vector<int> labels(32, 0);
  for (int i = 0; i < 32; ++i) features[i] = static_cast<float>(i);
  const Dataset d(std::move(features), std::move(labels), 1);

  util::Rng rng(3);
  BatchIterator it(&d, {}, 32, &rng);
  nn::Tensor batch;
  std::vector<int> batch_labels;
  ASSERT_TRUE(it.Next(&batch, &batch_labels));
  std::vector<float> first(batch.data(), batch.data() + 32);
  it.Reset();
  ASSERT_TRUE(it.Next(&batch, &batch_labels));
  std::vector<float> second(batch.data(), batch.data() + 32);
  EXPECT_NE(first, second);
}

TEST(BatchIteratorTest, MultiEpochExactCoverage) {
  // Across E shuffled epochs every sample appears exactly E times.
  nn::Tensor features({13, 1});
  std::vector<int> labels(13, 0);
  for (int i = 0; i < 13; ++i) features[i] = static_cast<float>(i);
  const Dataset d(std::move(features), std::move(labels), 1);
  util::Rng rng(6);
  BatchIterator it(&d, {}, 5, &rng);
  std::vector<int> seen(13, 0);
  const int epochs = 7;
  nn::Tensor batch;
  std::vector<int> batch_labels;
  for (int e = 0; e < epochs; ++e) {
    if (e > 0) it.Reset();
    while (it.Next(&batch, &batch_labels)) {
      for (int64_t i = 0; i < batch.size(); ++i) {
        ++seen[static_cast<size_t>(batch[i])];
      }
    }
  }
  for (int count : seen) EXPECT_EQ(count, epochs);
}

TEST(BatchIteratorTest, NullRngMeansNoShuffle) {
  const Dataset d = TinyDataset();
  BatchIterator it(&d, {}, 6, nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  ASSERT_TRUE(it.Next(&batch, &labels));
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

}  // namespace
}  // namespace fedmigr::data
