#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "dp/accountant.h"
#include "dp/gaussian.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "util/rng.h"
#include "util/stats.h"

namespace fedmigr::dp {
namespace {

TEST(DpConfigTest, EnabledSemantics) {
  DpConfig config;
  EXPECT_FALSE(config.enabled());
  config.epsilon = 100.0;
  EXPECT_TRUE(config.enabled());
}

TEST(GaussianSigmaTest, ScalesInverselyWithEpsilon) {
  DpConfig strict;
  strict.epsilon = 10.0;
  strict.clip_norm = 1.0;
  DpConfig loose = strict;
  loose.epsilon = 100.0;
  EXPECT_GT(GaussianSigma(strict), GaussianSigma(loose));
  EXPECT_NEAR(GaussianSigma(strict) / GaussianSigma(loose), 10.0, 1e-9);
}

TEST(GaussianSigmaTest, KnownValue) {
  DpConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-5;
  config.clip_norm = 1.0;
  EXPECT_NEAR(GaussianSigma(config), std::sqrt(2.0 * std::log(1.25e5)),
              1e-9);
}

TEST(ClipL2Test, NoClippingBelowThreshold) {
  std::vector<float> v = {0.3f, 0.4f};  // norm 0.5
  EXPECT_DOUBLE_EQ(ClipL2(&v, 1.0), 1.0);
  EXPECT_FLOAT_EQ(v[0], 0.3f);
}

TEST(ClipL2Test, ClipsToThreshold) {
  std::vector<float> v = {3.0f, 4.0f};  // norm 5
  const double factor = ClipL2(&v, 1.0);
  EXPECT_NEAR(factor, 0.2, 1e-6);
  EXPECT_NEAR(std::hypot(v[0], v[1]), 1.0, 1e-5);
  // Direction preserved.
  EXPECT_NEAR(v[1] / v[0], 4.0 / 3.0, 1e-5);
}

TEST(AddGaussianNoiseTest, ZeroSigmaIsNoop) {
  util::Rng rng(1);
  std::vector<float> v = {1.0f, 2.0f};
  AddGaussianNoise(&v, 0.0, &rng);
  EXPECT_EQ(v[0], 1.0f);
}

TEST(AddGaussianNoiseTest, NoiseHasRequestedScale) {
  util::Rng rng(2);
  std::vector<float> v(20000, 0.0f);
  AddGaussianNoise(&v, 0.5, &rng);
  util::RunningStats stats;
  for (float x : v) stats.Add(x);
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(PrivatizeModelTest, DisabledLeavesModelUntouched) {
  util::Rng init(3), noise(4);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Dense>(4, 4, &init));
  const auto before = nn::FlattenParams(model);
  DpConfig config;  // disabled
  PrivatizeModel(config, &model, &noise);
  EXPECT_EQ(nn::FlattenParams(model), before);
}

TEST(PrivatizeModelTest, PerturbsAndBoundsNorm) {
  util::Rng init(5), noise(6);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Dense>(16, 16, &init));
  const auto before = nn::FlattenParams(model);
  DpConfig config;
  config.epsilon = 50.0;
  config.clip_norm = 1.0;
  PrivatizeModel(config, &model, &noise);
  const auto after = nn::FlattenParams(model);
  EXPECT_NE(before, after);
  // Norm is clip + noise: should be near clip_norm, not the original norm.
  double norm = 0.0;
  for (float x : after) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  EXPECT_LT(norm, 3.0 * config.clip_norm);
}

TEST(PrivatizeModelTest, SmallerEpsilonMoreDistortion) {
  auto distortion = [](double epsilon) {
    util::Rng init(7), noise(8);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Dense>(16, 16, &init));
    nn::Sequential original = model;
    DpConfig config;
    config.epsilon = epsilon;
    config.clip_norm = 100.0;  // no clipping, isolate the noise
    PrivatizeModel(config, &model, &noise);
    return nn::Sequential::ParamDistance(model, original);
  };
  EXPECT_GT(distortion(10.0), distortion(1000.0));
}

TEST(AccountantTest, TracksSpending) {
  PrivacyAccountant accountant(100.0, 1e-3);
  accountant.Spend(30.0, 1e-4);
  EXPECT_DOUBLE_EQ(accountant.epsilon_spent(), 30.0);
  EXPECT_DOUBLE_EQ(accountant.epsilon_remaining(), 70.0);
  EXPECT_FALSE(accountant.Exhausted());
  accountant.Spend(80.0, 1e-4);
  EXPECT_TRUE(accountant.Exhausted());
}

TEST(AccountantTest, DeltaExhaustion) {
  PrivacyAccountant accountant(1e9, 1e-5);
  accountant.Spend(0.0, 2e-5);
  EXPECT_TRUE(accountant.Exhausted());
}

TEST(AccountantTest, InfiniteBudget) {
  PrivacyAccountant accountant(0.0, 1.0);  // <= 0 means unlimited
  accountant.Spend(1e12, 0.0);
  EXPECT_FALSE(accountant.Exhausted());
}

TEST(AccountantTest, PerReleaseEpsilonSplitsEvenly) {
  EXPECT_DOUBLE_EQ(PrivacyAccountant::PerReleaseEpsilon(100.0, 50), 2.0);
  EXPECT_DOUBLE_EQ(PrivacyAccountant::PerReleaseEpsilon(0.0, 10), 0.0);
}

}  // namespace
}  // namespace fedmigr::dp
