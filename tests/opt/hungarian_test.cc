#include "opt/hungarian.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::opt {
namespace {

double BruteForceBest(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    best = std::min(best, AssignmentCost(cost, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, TrivialSingleCell) {
  const auto assignment = SolveAssignment({{3.0}});
  EXPECT_EQ(assignment, (std::vector<int>{0}));
}

TEST(HungarianTest, KnownTwoByTwo) {
  // Diagonal costs 1+1=2 beats anti-diagonal 5+5=10.
  const std::vector<std::vector<double>> cost = {{1, 5}, {5, 1}};
  const auto assignment = SolveAssignment(cost);
  EXPECT_EQ(assignment, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), 2.0);
}

TEST(HungarianTest, KnownThreeByThree) {
  const std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto assignment = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), 5.0);  // 1 + 2 + 2
}

TEST(HungarianTest, OutputIsAlwaysPermutation) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + rng.UniformInt(8);
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (auto& c : row) c = rng.Normal(0.0, 3.0);
    }
    const auto assignment = SolveAssignment(cost);
    std::set<int> seen(assignment.begin(), assignment.end());
    EXPECT_EQ(seen.size(), static_cast<size_t>(n));
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  const int n = GetParam();
  util::Rng rng(static_cast<uint64_t>(n) * 97);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (auto& c : row) c = rng.Uniform(-10.0, 10.0);
    }
    const auto assignment = SolveAssignment(cost);
    EXPECT_NEAR(AssignmentCost(cost, assignment), BruteForceBest(cost), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, HungarianRandomTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(HungarianTest, NegativeCosts) {
  const std::vector<std::vector<double>> cost = {{-5, 0}, {0, -5}};
  const auto assignment = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), -10.0);
}

TEST(HungarianTest, TiedCostsStillValid) {
  const std::vector<std::vector<double>> cost = {
      {1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
  const auto assignment = SolveAssignment(cost);
  std::set<int> seen(assignment.begin(), assignment.end());
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace fedmigr::opt
