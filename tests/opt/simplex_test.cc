#include "opt/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::opt {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(SimplexTest, AlreadyOnSimplexIsFixed) {
  std::vector<double> v = {0.2, 0.3, 0.5};
  const auto p = ProjectedToSimplex(v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(p[i], v[i], 1e-12);
}

TEST(SimplexTest, SingleElement) {
  EXPECT_EQ(ProjectedToSimplex({42.0}), (std::vector<double>{1.0}));
  EXPECT_EQ(ProjectedToSimplex({-3.0}), (std::vector<double>{1.0}));
}

TEST(SimplexTest, UniformForEqualEntries) {
  const auto p = ProjectedToSimplex({7.0, 7.0, 7.0, 7.0});
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(SimplexTest, LargeEntryDominates) {
  const auto p = ProjectedToSimplex({100.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(SimplexTest, ProjectionIsFeasible) {
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> v(1 + static_cast<size_t>(rng.UniformInt(10)));
    for (auto& x : v) x = rng.Normal(0.0, 5.0);
    const auto p = ProjectedToSimplex(v);
    EXPECT_NEAR(Sum(p), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(SimplexTest, ProjectionIsClosestPoint) {
  // Verify optimality against random feasible points.
  util::Rng rng(4);
  std::vector<double> v = {0.9, -0.4, 1.3, 0.1};
  const auto p = ProjectedToSimplex(v);
  auto dist_sq = [&v](const std::vector<double>& x) {
    double d = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      d += (x[i] - v[i]) * (x[i] - v[i]);
    }
    return d;
  };
  const double opt = dist_sq(p);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> candidate(v.size());
    double total = 0.0;
    for (auto& x : candidate) {
      x = rng.Uniform();
      total += x;
    }
    for (auto& x : candidate) x /= total;
    EXPECT_GE(dist_sq(candidate) + 1e-12, opt);
  }
}

TEST(SimplexTest, OrderPreserving) {
  // Projection preserves the ordering of coordinates.
  const auto p = ProjectedToSimplex({3.0, 1.0, 2.0});
  EXPECT_GE(p[0], p[2]);
  EXPECT_GE(p[2], p[1]);
}

}  // namespace
}  // namespace fedmigr::opt
