// Optimality-condition property tests for the projected-gradient QP solver:
// at a solution, each row satisfies the simplex KKT conditions — the
// gradient coordinate is constant over the support and no larger off it.

#include <gtest/gtest.h>

#include "opt/qp.h"
#include "util/rng.h"

namespace fedmigr::opt {
namespace {

class QpKktTest : public ::testing::TestWithParam<int> {};

TEST_P(QpKktTest, SolutionSatisfiesRowKkt) {
  const int k = GetParam();
  util::Rng rng(static_cast<uint64_t>(k) * 131);
  Matrix score(static_cast<size_t>(k), std::vector<double>(k));
  for (auto& row : score) {
    for (auto& s : row) s = rng.Normal(0.0, 1.0);
  }
  QpOptions options;
  options.max_iterations = 4000;
  options.step_size = 0.05;
  options.tolerance = 1e-12;
  const QpResult result = SolveRowStochasticQp(score, options);

  // Gradient of the (maximization) objective at the solution:
  // g_ij = score_ij - load_weight * colsum_j.
  std::vector<double> cols(static_cast<size_t>(k), 0.0);
  for (const auto& row : result.solution) {
    for (int j = 0; j < k; ++j) cols[static_cast<size_t>(j)] += row[j];
  }
  for (int i = 0; i < k; ++i) {
    double support_grad = 0.0;
    double support_mass = 0.0;
    double max_grad = -1e300;
    for (int j = 0; j < k; ++j) {
      const double g = score[static_cast<size_t>(i)][static_cast<size_t>(j)] -
                       options.load_weight * cols[static_cast<size_t>(j)];
      const double p = result.solution[static_cast<size_t>(i)]
                                      [static_cast<size_t>(j)];
      max_grad = std::max(max_grad, g);
      if (p > 1e-4) {
        support_grad += g * p;
        support_mass += p;
      }
    }
    ASSERT_GT(support_mass, 0.0);
    // The support's average gradient is within tolerance of the max:
    // nothing off-support is strictly better.
    EXPECT_NEAR(support_grad / support_mass, max_grad, 5e-2)
        << "row " << i << " violates KKT";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QpKktTest, ::testing::Values(2, 4, 8, 12));

}  // namespace
}  // namespace fedmigr::opt
