#include "opt/qp.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedmigr::opt {
namespace {

Matrix RandomScore(int k, uint64_t seed) {
  util::Rng rng(seed);
  Matrix score(static_cast<size_t>(k), std::vector<double>(k));
  for (auto& row : score) {
    for (auto& s : row) s = rng.Normal(0.0, 1.0);
  }
  return score;
}

bool IsRowStochastic(const Matrix& p) {
  for (const auto& row : p) {
    double sum = 0.0;
    for (double x : row) {
      if (x < -1e-9) return false;
      sum += x;
    }
    if (std::abs(sum - 1.0) > 1e-6) return false;
  }
  return true;
}

TEST(QpTest, SolutionIsFeasible) {
  const Matrix score = RandomScore(6, 1);
  const QpResult result = SolveRowStochasticQp(score, {});
  EXPECT_TRUE(IsRowStochastic(result.solution));
  EXPECT_GT(result.iterations, 0);
}

TEST(QpTest, ImprovesOverUniformStart) {
  const Matrix score = RandomScore(5, 2);
  QpOptions options;
  const QpResult result = SolveRowStochasticQp(score, options);
  Matrix uniform(5, std::vector<double>(5, 0.2));
  EXPECT_GE(result.objective,
            RowStochasticQpObjective(score, uniform, options.load_weight));
}

TEST(QpTest, NoLoadTermConcentratesOnRowMax) {
  // With load_weight 0 the optimum puts all mass on each row's max score.
  Matrix score = {{1.0, 5.0, 2.0}, {0.0, -1.0, 3.0}, {4.0, 0.0, 0.0}};
  QpOptions options;
  options.load_weight = 0.0;
  options.max_iterations = 2000;
  options.step_size = 0.2;
  const QpResult result = SolveRowStochasticQp(score, options);
  EXPECT_NEAR(result.solution[0][1], 1.0, 1e-3);
  EXPECT_NEAR(result.solution[1][2], 1.0, 1e-3);
  EXPECT_NEAR(result.solution[2][0], 1.0, 1e-3);
}

TEST(QpTest, LoadTermSpreadsColumns) {
  // Every row prefers column 0; the load penalty must spread the mass.
  const int k = 4;
  Matrix score(static_cast<size_t>(k), std::vector<double>(k, 0.0));
  for (auto& row : score) row[0] = 1.0;
  QpOptions options;
  options.load_weight = 5.0;
  const QpResult result = SolveRowStochasticQp(score, options);
  double col0 = 0.0;
  for (const auto& row : result.solution) col0 += row[0];
  EXPECT_LT(col0, 2.5);  // far from the un-penalized value of 4
}

TEST(QpTest, ObjectiveMatchesManualComputation) {
  const Matrix score = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix p = {{0.5, 0.5}, {0.0, 1.0}};
  // linear = 0.5 + 1 + 4 = 5.5; columns = (0.5, 1.5);
  // load = 0.25 + 2.25 = 2.5; objective = 5.5 - 0.5 * w * 2.5.
  EXPECT_DOUBLE_EQ(RowStochasticQpObjective(score, p, 2.0), 5.5 - 2.5);
}

TEST(QpTest, ConvergesWithinIterationBudget) {
  const Matrix score = RandomScore(8, 3);
  QpOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-9;
  const QpResult result = SolveRowStochasticQp(score, options);
  EXPECT_LE(result.iterations, 500);
  // Re-solving from the solver's own output changes little: check by
  // comparing objective against a longer run.
  QpOptions longer = options;
  longer.max_iterations = 2000;
  const QpResult better = SolveRowStochasticQp(score, longer);
  EXPECT_NEAR(result.objective, better.objective, 1e-2);
}

TEST(QpTest, SingleClientDegenerate) {
  const Matrix score = {{0.0}};
  const QpResult result = SolveRowStochasticQp(score, {});
  EXPECT_NEAR(result.solution[0][0], 1.0, 1e-9);
}

}  // namespace
}  // namespace fedmigr::opt
