#include "opt/flmm.h"

#include <set>

#include <gtest/gtest.h>

namespace fedmigr::opt {
namespace {

std::vector<std::vector<double>> UniformGain(int k, double value) {
  std::vector<std::vector<double>> gain(
      static_cast<size_t>(k), std::vector<double>(static_cast<size_t>(k), 0));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) gain[static_cast<size_t>(i)][static_cast<size_t>(j)] = value;
    }
  }
  return gain;
}

TEST(FlmmScoreTest, PenalizesSlowLinks) {
  const net::Topology topology = net::MakeC10SimTopology();
  const auto gain = UniformGain(10, 1.0);
  const Matrix score = BuildMigrationScore(gain, topology, 1 << 20, 0.5);
  // Same gain everywhere: the cheap intra-LAN link must outscore the WAN-
  // adjacent cross-LAN link.
  EXPECT_GT(score[0][1], score[0][5]);
  EXPECT_EQ(score[0][0], 0.0);
}

TEST(FlmmScoreTest, ZeroCommWeightIgnoresTopology) {
  const net::Topology topology = net::MakeC10SimTopology();
  const auto gain = UniformGain(10, 1.0);
  const Matrix score = BuildMigrationScore(gain, topology, 1 << 20, 0.0);
  EXPECT_DOUBLE_EQ(score[0][1], score[0][5]);
}

TEST(FlmmTest, PlanDestinationsAreConflictFree) {
  const net::Topology topology = net::MakeC10SimTopology();
  const auto gain = UniformGain(10, 1.5);
  const FlmmPlan plan = SolveFlmm(gain, topology, 100000, {});
  ASSERT_EQ(plan.destination.size(), 10u);
  std::set<int> destinations;
  for (size_t i = 0; i < plan.destination.size(); ++i) {
    const int j = plan.destination[i];
    if (j == static_cast<int>(i)) continue;  // stays don't conflict
    EXPECT_TRUE(destinations.insert(j).second)
        << "destination " << j << " used twice";
  }
}

TEST(FlmmTest, NoMigrationWhenGainsAreZero) {
  // Zero gains, positive comm cost -> every score is negative -> all stay.
  const net::Topology topology = net::MakeC10SimTopology();
  const auto gain = UniformGain(10, 0.0);
  const FlmmPlan plan = SolveFlmm(gain, topology, 1 << 22, {});
  for (size_t i = 0; i < plan.destination.size(); ++i) {
    EXPECT_EQ(plan.destination[i], static_cast<int>(i));
  }
}

TEST(FlmmTest, PrefersHighGainDestinations) {
  // Client 0's model gains hugely at client 1 and nothing elsewhere.
  const net::Topology topology = net::MakeC10SimTopology();
  auto gain = UniformGain(10, 0.3);
  gain[0][1] = 2.0;
  const FlmmPlan plan = SolveFlmm(gain, topology, 100000, {});
  EXPECT_EQ(plan.destination[0], 1);
}

TEST(FlmmTest, FractionalSolutionIsRowStochastic) {
  const net::Topology topology = net::MakeC10SimTopology();
  const auto gain = UniformGain(10, 1.0);
  const FlmmPlan plan = SolveFlmm(gain, topology, 100000, {});
  for (const auto& row : plan.fractional) {
    double sum = 0.0;
    for (double x : row) {
      EXPECT_GE(x, -1e-9);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(FlmmTest, SlowLinkAvoidedUnderCommWeight) {
  net::Topology topology = net::MakeC10SimTopology();
  // Make 0 -> 1 (the natural intra-LAN choice) pathologically slow.
  topology.SetLinkMultiplier(0, 1, 0.001);
  auto gain = UniformGain(10, 1.0);
  FlmmOptions options;
  options.comm_weight = 2.0;
  const FlmmPlan plan = SolveFlmm(gain, topology, 1 << 20, options);
  EXPECT_NE(plan.destination[0], 1);
}

}  // namespace
}  // namespace fedmigr::opt
