#include "fl/migration.h"

#include <gtest/gtest.h>

namespace fedmigr::fl {
namespace {

TEST(MigrationPlanTest, IdentityProperties) {
  const MigrationPlan plan = MigrationPlan::Identity(5);
  EXPECT_TRUE(plan.IsIdentity());
  EXPECT_EQ(plan.NumMoves(), 0);
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(MigrationPlanTest, NumMovesCountsNonFixedPoints) {
  MigrationPlan plan = MigrationPlan::Identity(4);
  plan.incoming = {1, 0, 2, 3};  // swap 0 <-> 1
  EXPECT_EQ(plan.NumMoves(), 2);
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(MigrationPlanTest, PermutationDetection) {
  MigrationPlan plan;
  plan.incoming = {0, 0, 2};  // client 0's model used twice
  EXPECT_FALSE(plan.IsPermutation());
  plan.incoming = {0, 3, 2};  // out of range
  EXPECT_FALSE(plan.IsPermutation());
}

TEST(PlanFromDestinationsTest, InvertsDestinationMap) {
  // Model 0 -> client 2, model 2 -> client 0, model 1 stays.
  const MigrationPlan plan = PlanFromDestinations({2, 1, 0});
  EXPECT_EQ(plan.incoming, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(plan.NumMoves(), 2);
}

TEST(PlanFromDestinationsTest, CycleOfThree) {
  const MigrationPlan plan = PlanFromDestinations({1, 2, 0});
  EXPECT_EQ(plan.incoming, (std::vector<int>{2, 0, 1}));
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(PlanFromDestinationsTest, NonPermutationSingleMove) {
  // Only client 0 sends (paper's one-pair-per-round case): destination 2
  // receives 0's model, everyone else keeps their own.
  const MigrationPlan plan = PlanFromDestinations({2, 1, 2});
  EXPECT_EQ(plan.incoming, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(plan.NumMoves(), 1);
  EXPECT_FALSE(plan.IsPermutation());
}

TEST(CostTest, IdentityCostsNothing) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  const MigrationCost cost = CostAndRecord(MigrationPlan::Identity(10),
                                           topology, 1 << 20, &traffic);
  EXPECT_EQ(cost.bytes, 0);
  EXPECT_EQ(cost.seconds, 0.0);
  EXPECT_EQ(traffic.total_bytes(), 0);
}

TEST(CostTest, C2cMoveChargesOneTransfer) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;  // 0 -> 1, intra-LAN
  const MigrationCost cost =
      CostAndRecord(plan, topology, 1000, &traffic);
  EXPECT_EQ(cost.bytes, 1000);
  EXPECT_EQ(cost.num_moves, 1);
  EXPECT_EQ(traffic.c2c_bytes(), 1000);
  EXPECT_EQ(traffic.c2s_bytes(), 0);
  EXPECT_NEAR(cost.seconds, topology.TransferSeconds(0, 1, 1000), 1e-12);
}

TEST(CostTest, ViaServerChargesTwoWanHops) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  plan.via_server = true;
  const MigrationCost cost = CostAndRecord(plan, topology, 1000, &traffic);
  EXPECT_EQ(cost.bytes, 2000);
  EXPECT_EQ(traffic.c2s_bytes(), 2000);
  EXPECT_EQ(traffic.c2c_bytes(), 0);
  EXPECT_GT(cost.seconds, topology.TransferSeconds(0, 1, 1000));
}

TEST(CostTest, ParallelMovesTakeMaxTime) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;  // intra-LAN (fast)
  plan.incoming[5] = 4;  // intra-LAN
  plan.incoming[8] = 2;  // cross-LAN (slower)
  const MigrationCost cost = CostAndRecord(plan, topology, 1 << 20, nullptr);
  EXPECT_EQ(cost.num_moves, 3);
  EXPECT_NEAR(cost.seconds, topology.TransferSeconds(2, 8, 1 << 20), 1e-12);
}

TEST(CostTest, NullTrafficAccountantAllowed) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[3] = 7;
  const MigrationCost cost = CostAndRecord(plan, topology, 500, nullptr);
  EXPECT_EQ(cost.bytes, 500);
}

}  // namespace
}  // namespace fedmigr::fl
