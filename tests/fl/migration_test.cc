#include "fl/migration.h"

#include <gtest/gtest.h>

namespace fedmigr::fl {
namespace {

TEST(MigrationPlanTest, IdentityProperties) {
  const MigrationPlan plan = MigrationPlan::Identity(5);
  EXPECT_TRUE(plan.IsIdentity());
  EXPECT_EQ(plan.NumMoves(), 0);
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(MigrationPlanTest, NumMovesCountsNonFixedPoints) {
  MigrationPlan plan = MigrationPlan::Identity(4);
  plan.incoming = {1, 0, 2, 3};  // swap 0 <-> 1
  EXPECT_EQ(plan.NumMoves(), 2);
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(MigrationPlanTest, PermutationDetection) {
  MigrationPlan plan;
  plan.incoming = {0, 0, 2};  // client 0's model used twice
  EXPECT_FALSE(plan.IsPermutation());
  plan.incoming = {0, 3, 2};  // out of range
  EXPECT_FALSE(plan.IsPermutation());
}

TEST(PlanFromDestinationsTest, InvertsDestinationMap) {
  // Model 0 -> client 2, model 2 -> client 0, model 1 stays.
  const MigrationPlan plan = PlanFromDestinations({2, 1, 0});
  EXPECT_EQ(plan.incoming, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(plan.NumMoves(), 2);
}

TEST(PlanFromDestinationsTest, CycleOfThree) {
  const MigrationPlan plan = PlanFromDestinations({1, 2, 0});
  EXPECT_EQ(plan.incoming, (std::vector<int>{2, 0, 1}));
  EXPECT_TRUE(plan.IsPermutation());
}

TEST(PlanFromDestinationsTest, NonPermutationSingleMove) {
  // Only client 0 sends (paper's one-pair-per-round case): destination 2
  // receives 0's model, everyone else keeps their own.
  const MigrationPlan plan = PlanFromDestinations({2, 1, 2});
  EXPECT_EQ(plan.incoming, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(plan.NumMoves(), 1);
  EXPECT_FALSE(plan.IsPermutation());
}

TEST(CostTest, IdentityCostsNothing) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  const MigrationCost cost = CostAndRecord(MigrationPlan::Identity(10),
                                           topology, 1 << 20, &traffic);
  EXPECT_EQ(cost.bytes, 0);
  EXPECT_EQ(cost.seconds, 0.0);
  EXPECT_EQ(traffic.total_bytes(), 0);
}

TEST(CostTest, C2cMoveChargesOneTransfer) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;  // 0 -> 1, intra-LAN
  const MigrationCost cost =
      CostAndRecord(plan, topology, 1000, &traffic);
  EXPECT_EQ(cost.bytes, 1000);
  EXPECT_EQ(cost.num_moves, 1);
  EXPECT_EQ(traffic.c2c_bytes(), 1000);
  EXPECT_EQ(traffic.c2s_bytes(), 0);
  EXPECT_NEAR(cost.seconds, topology.TransferSeconds(0, 1, 1000), 1e-12);
}

TEST(CostTest, ViaServerChargesTwoWanHops) {
  const net::Topology topology = net::MakeC10SimTopology();
  net::TrafficAccountant traffic;
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  plan.via_server = true;
  const MigrationCost cost = CostAndRecord(plan, topology, 1000, &traffic);
  EXPECT_EQ(cost.bytes, 2000);
  EXPECT_EQ(traffic.c2s_bytes(), 2000);
  EXPECT_EQ(traffic.c2c_bytes(), 0);
  EXPECT_GT(cost.seconds, topology.TransferSeconds(0, 1, 1000));
}

TEST(CostTest, ParallelMovesTakeMaxTime) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;  // intra-LAN (fast)
  plan.incoming[5] = 4;  // intra-LAN
  plan.incoming[8] = 2;  // cross-LAN (slower)
  const MigrationCost cost = CostAndRecord(plan, topology, 1 << 20, nullptr);
  EXPECT_EQ(cost.num_moves, 3);
  EXPECT_NEAR(cost.seconds, topology.TransferSeconds(2, 8, 1 << 20), 1e-12);
}

TEST(CostTest, NullTrafficAccountantAllowed) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[3] = 7;
  const MigrationCost cost = CostAndRecord(plan, topology, 500, nullptr);
  EXPECT_EQ(cost.bytes, 500);
}

TEST(MigrationPlanTest, NonPermutationFanOutCounting) {
  // One source replicated to several destinations is a legal plan (the DRL
  // policy never emits it, but execution must not assume a permutation).
  MigrationPlan plan = MigrationPlan::Identity(4);
  plan.incoming = {0, 0, 0, 3};
  EXPECT_FALSE(plan.IsPermutation());
  EXPECT_EQ(plan.NumMoves(), 2);  // destinations 1 and 2 receive 0's model
}

TEST(MigrationPlanTest, OutOfRangeSourceIsNotPermutation) {
  MigrationPlan plan;
  plan.incoming = {-1, 1, 2};
  EXPECT_FALSE(plan.IsPermutation());
}

TEST(ExecuteWithFaultsTest, NullInjectorMatchesCostAndRecord) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  plan.incoming[8] = 2;
  net::TrafficAccountant direct_traffic;
  const MigrationCost direct =
      CostAndRecord(plan, topology, 1 << 20, &direct_traffic);
  net::TrafficAccountant faulty_traffic;
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1 << 20, &faulty_traffic, nullptr);
  EXPECT_EQ(exec.cost.seconds, direct.seconds);
  EXPECT_EQ(exec.cost.bytes, direct.bytes);
  EXPECT_EQ(exec.cost.num_moves, direct.num_moves);
  EXPECT_EQ(faulty_traffic.c2c_bytes(), direct_traffic.c2c_bytes());
  EXPECT_EQ(exec.failed_moves, 0);
  EXPECT_EQ(exec.fallback_moves, 0);
  ASSERT_EQ(exec.delivered.size(), 10u);
  EXPECT_TRUE(exec.delivered[1]);
  EXPECT_TRUE(exec.delivered[8]);
  EXPECT_FALSE(exec.delivered[0]);  // no move planned for destination 0
}

TEST(ExecuteWithFaultsTest, DisabledInjectorDeliversEverything) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[3] = 7;
  net::FaultInjector faults;  // disabled
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1000, nullptr, &faults);
  EXPECT_TRUE(exec.delivered[3]);
  EXPECT_EQ(exec.failed_moves, 0);
  EXPECT_EQ(exec.cost.bytes, 1000);
}

TEST(ExecuteWithFaultsTest, FailedDirectMoveFallsBackViaServer) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  net::FaultConfig config;
  config.link_failure_prob = 0.999999;
  config.max_retries = 0;
  net::FaultInjector faults(config);
  net::TrafficAccountant traffic;
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1000, &traffic, &faults);
  // The direct C2C attempt failed; the fallback re-route would have been
  // attempted via the server (two C2S hops), but with a near-certain
  // failure probability those hops fail too. Either way the direct bytes
  // are charged as C2C and any fallback hops as C2S.
  EXPECT_GE(traffic.c2c_bytes(), 1000);
  if (exec.fallback_moves > 0) {
    EXPECT_GT(traffic.c2s_bytes(), 0);
    EXPECT_EQ(faults.counters().fallbacks, exec.fallback_moves);
  }
  if (!exec.delivered[1]) {
    EXPECT_EQ(exec.failed_moves, 1);
  }
}

TEST(ExecuteWithFaultsTest, FallbackDeliversWhenOnlyOneLinkIsBad) {
  // Retry exhaustion on the direct link, but a fallback with enough retries
  // eventually delivers with very high probability. Use a modest failure
  // rate so the server hops nearly always succeed within their retries.
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  net::FaultConfig config;
  config.link_failure_prob = 0.4;
  config.max_retries = 8;
  net::FaultInjector faults(config);
  net::TrafficAccountant traffic;
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1000, &traffic, &faults);
  // With 9 attempts per hop at p=0.4, delivery (direct or via fallback) is
  // effectively certain and deterministic for the fixed seed.
  EXPECT_TRUE(exec.delivered[1]);
  EXPECT_EQ(exec.failed_moves, 0);
}

TEST(ExecuteWithFaultsTest, CorruptionIsFlaggedPerDestination) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  plan.incoming[5] = 4;
  net::FaultConfig config;
  config.corruption_prob = 1.0;
  net::FaultInjector faults(config);
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1000, nullptr, &faults);
  EXPECT_TRUE(exec.delivered[1]);
  EXPECT_TRUE(exec.corrupted[1]);
  EXPECT_TRUE(exec.corrupted[5]);
  EXPECT_EQ(faults.counters().corrupted, 2);
}

TEST(ExecuteWithFaultsTest, ViaServerPlansHaveNoFurtherFallback) {
  const net::Topology topology = net::MakeC10SimTopology();
  MigrationPlan plan = MigrationPlan::Identity(10);
  plan.incoming[1] = 0;
  plan.via_server = true;
  net::FaultConfig config;
  config.link_failure_prob = 0.999999;
  config.max_retries = 0;
  net::FaultInjector faults(config);
  net::TrafficAccountant traffic;
  const MigrationExecution exec =
      ExecuteWithFaults(plan, topology, 1000, &traffic, &faults);
  EXPECT_FALSE(exec.delivered[1]);
  EXPECT_EQ(exec.failed_moves, 1);
  EXPECT_EQ(exec.fallback_moves, 0);
  EXPECT_EQ(traffic.c2c_bytes(), 0);  // via-server traffic is all C2S
  EXPECT_GE(traffic.c2s_bytes(), 1000);
}

}  // namespace
}  // namespace fedmigr::fl
