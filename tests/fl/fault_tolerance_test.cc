// End-to-end fault-tolerance behavior of the FL loop: the trainer must
// degrade gracefully under link failures, crashes, stragglers and payload
// corruption — and be bit-identical to the fault-free path when every
// fault probability is zero.

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  RunResult Run(SchemeSetup setup) {
    Trainer trainer(setup.config, &data.train, partition, &data.test,
                    topology, devices,
                    [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                    std::move(setup.policy));
    return trainer.Run();
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

TEST(FaultToleranceTest, DisabledInjectorIsBitIdenticalRegardlessOfSeed) {
  // With every fault probability at zero the injector must be a strict
  // no-op: changing its seed cannot perturb the trajectory, because the
  // fault-free path draws nothing from the injector's RNG stream.
  TinyWorkload w;
  auto run = [&w](uint64_t fault_seed) {
    SchemeSetup setup = MakeRandMigr(2);
    setup.config.max_epochs = 4;
    setup.config.seed = 7;
    setup.config.fault.seed = fault_seed;
    return w.Run(std::move(setup));
  };
  const RunResult a = run(97);
  const RunResult b = run(1234567);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss);
    EXPECT_DOUBLE_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy);
    EXPECT_EQ(a.history[i].migrations, b.history[i].migrations);
  }
  EXPECT_DOUBLE_EQ(a.traffic_gb, b.traffic_gb);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  // And the counters stay untouched.
  EXPECT_EQ(a.faults.attempts, 0);
  EXPECT_EQ(a.faults.failures, 0);
  EXPECT_EQ(a.faults.crashes, 0);
}

TEST(FaultToleranceTest, LinkFailuresDegradeGracefully) {
  TinyWorkload w;
  SchemeSetup clean_setup = MakeRandMigr(3);
  clean_setup.config.max_epochs = 6;
  const RunResult clean = w.Run(std::move(clean_setup));

  SchemeSetup faulty_setup = MakeRandMigr(3);
  faulty_setup.config.max_epochs = 6;
  faulty_setup.config.fault.link_failure_prob = 0.2;
  const RunResult faulty = w.Run(std::move(faulty_setup));

  // The run completes despite in-flight losses, with real retry traffic.
  EXPECT_EQ(faulty.epochs_run, 6);
  EXPECT_GT(faulty.faults.attempts, 0);
  EXPECT_GT(faulty.faults.failures, 0);
  EXPECT_GT(faulty.faults.retries, 0);
  // Retries and fallbacks push the failed bytes into the network on top of
  // the clean run's traffic.
  EXPECT_GT(faulty.traffic_gb, clean.traffic_gb);
  // Training still makes progress (above the 0.1 chance level is too
  // strict for 6 epochs; non-trivial accuracy is the graceful-degradation
  // bar here).
  EXPECT_GT(faulty.best_accuracy, 0.0);
}

TEST(FaultToleranceTest, FailedC2cMovesFallBackViaServer) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(2);
  setup.config.max_epochs = 6;
  setup.config.fault.link_failure_prob = 0.45;
  setup.config.fault.max_retries = 0;  // every in-flight loss falls back
  const RunResult result = w.Run(std::move(setup));
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_GT(result.faults.fallbacks, 0);
  // Fallback hops are charged as C2S traffic even on migration epochs.
  EXPECT_GT(result.c2s_gb, 0.0);
}

TEST(FaultToleranceTest, CorruptedUploadsAreRejectedFromAggregation) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 2;
  setup.config.eval_every = 0;
  setup.config.fault.corruption_prob = 1.0;
  const RunResult result = w.Run(std::move(setup));
  // Every delivery is corrupted; the CRC32 in the serialized frame catches
  // each one, the payload never enters the average, and the loop survives
  // rounds where nothing arrives at all.
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_GT(result.faults.corrupted, 0);
  EXPECT_EQ(result.faults.corrupt_rejected, result.faults.corrupted);
}

TEST(FaultToleranceTest, CrashedClientsAreMaskedOut) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(2);
  setup.config.max_epochs = 8;
  setup.config.fault.crash_prob = 0.3;
  setup.config.fault.crash_min_epochs = 1;
  setup.config.fault.crash_max_epochs = 2;
  const RunResult result = w.Run(std::move(setup));
  EXPECT_EQ(result.epochs_run, 8);
  EXPECT_GT(result.faults.crashes, 0);
  EXPECT_GT(result.faults.crash_epochs, 0);
}

TEST(FaultToleranceTest, UploadDeadlineDropsStragglers) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 2;
  setup.config.eval_every = 0;
  setup.config.wan_shared = true;
  // Enable the fault layer without perturbing anything else: every client
  // is a "straggler" with a 1x slowdown.
  setup.config.fault.straggler_prob = 1.0;
  setup.config.fault.straggler_slowdown = 1.0;
  setup.config.fault.upload_deadline_s = 1e-6;  // nobody makes it in time
  const RunResult result = w.Run(std::move(setup));
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_GT(result.faults.dropped_stragglers, 0);
  // All uploads missed the deadline, so no aggregation happened — but the
  // loop carried on with the standing global model.
}

TEST(FaultToleranceTest, StragglerSlowdownStretchesTheClock) {
  TinyWorkload w;
  auto run = [&w](double prob, double slowdown) {
    SchemeSetup setup = MakeFedAvg();
    setup.config.max_epochs = 2;
    setup.config.eval_every = 0;
    setup.config.fault.straggler_prob = prob;
    setup.config.fault.straggler_slowdown = slowdown;
    return w.Run(std::move(setup));
  };
  const RunResult clean = run(0.0, 4.0);
  const RunResult slowed = run(1.0, 4.0);
  EXPECT_EQ(slowed.traffic_gb, clean.traffic_gb);  // same bytes, slower
  EXPECT_GT(slowed.time_s, clean.time_s);
}

TEST(FaultToleranceTest, FedMigrSurvivesLinkFailures) {
  // The DRL scheme must keep planning when transfers fail and clients
  // crash: unavailable clients are masked out of the action space.
  TinyWorkload w;
  SchemeSetup setup = MakeFedMigrFlmm(2);
  setup.config.max_epochs = 6;
  setup.config.fault.link_failure_prob = 0.2;
  setup.config.fault.crash_prob = 0.2;
  const RunResult result = w.Run(std::move(setup));
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_GT(result.faults.attempts, 0);
}

}  // namespace
}  // namespace fedmigr::fl
