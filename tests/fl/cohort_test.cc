// Cohort sampler and sharded client container: determinism, distribution
// sanity and lazy materialization bookkeeping.

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/cohort.h"

namespace fedmigr::fl {
namespace {

TEST(CohortSamplerTest, SampleIsDeterministicInSeedAndRound) {
  const CohortSampler sampler(42, 10000, 100);
  for (int64_t round : {0, 1, 7, 1000}) {
    const std::vector<int> a = sampler.Sample(round);
    const std::vector<int> b = sampler.Sample(round);
    EXPECT_EQ(a, b) << "round " << round;
    // A second sampler with identical parameters agrees (no hidden state).
    const CohortSampler twin(42, 10000, 100);
    EXPECT_EQ(twin.Sample(round), a) << "round " << round;
  }
}

TEST(CohortSamplerTest, SampleIsSortedUniqueAndInRange) {
  const CohortSampler sampler(7, 5000, 64);
  for (int64_t round = 0; round < 50; ++round) {
    const std::vector<int> cohort = sampler.Sample(round);
    ASSERT_EQ(cohort.size(), 64u);
    std::set<int> unique(cohort.begin(), cohort.end());
    EXPECT_EQ(unique.size(), cohort.size()) << "round " << round;
    EXPECT_TRUE(std::is_sorted(cohort.begin(), cohort.end()));
    EXPECT_GE(cohort.front(), 0);
    EXPECT_LT(cohort.back(), 5000);
  }
}

TEST(CohortSamplerTest, RoundsAndSeedsDecorrelate) {
  const CohortSampler sampler(11, 1000, 50);
  EXPECT_NE(sampler.Sample(0), sampler.Sample(1));
  const CohortSampler other_seed(12, 1000, 50);
  EXPECT_NE(other_seed.Sample(0), sampler.Sample(0));
}

TEST(CohortSamplerTest, EveryClientIsEventuallySampled) {
  // With C = K/10 the expected wait for any given client is ~10 rounds; 400
  // rounds leaves the miss probability at ~(0.9)^400 per client.
  const int k = 200;
  const CohortSampler sampler(3, k, 20);
  std::set<int> seen;
  for (int64_t round = 0; round < 400 && static_cast<int>(seen.size()) < k;
       ++round) {
    for (int i : sampler.Sample(round)) seen.insert(i);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), k);
}

TEST(CohortSamplerTest, FullCohortIsIdentity) {
  const CohortSampler sampler(5, 17, 17);
  const std::vector<int> cohort = sampler.Sample(9);
  ASSERT_EQ(cohort.size(), 17u);
  for (int i = 0; i < 17; ++i) EXPECT_EQ(cohort[static_cast<size_t>(i)], i);
}

TEST(ShardedClientsTest, LazyUntilPutAndCountsMaterialized) {
  data::SyntheticSpec spec = data::C10Spec();
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  const data::TrainTest data = data::GenerateSynthetic(spec);

  // Cross a shard boundary (shards hold 1024 clients).
  ShardedClients clients(3000);
  EXPECT_EQ(clients.size(), 3000);
  EXPECT_EQ(clients.num_materialized(), 0);
  EXPECT_EQ(clients.Get(0), nullptr);
  EXPECT_EQ(clients.Get(2999), nullptr);

  for (int i : {0, 1023, 1024, 2999}) {
    Client* put = clients.Put(
        i, std::make_unique<Client>(i, &data.train, std::vector<int>{0, 1},
                                    0.05, 0.0, 100 + i));
    EXPECT_EQ(clients.Get(i), put);
    EXPECT_EQ(put->id(), i);
  }
  EXPECT_EQ(clients.num_materialized(), 4);
  EXPECT_EQ(clients.Get(512), nullptr);  // same shard as 0, still lazy

  clients.Evict(1024);
  EXPECT_EQ(clients.Get(1024), nullptr);
  EXPECT_EQ(clients.num_materialized(), 3);
  clients.Evict(1024);  // double-evict is a no-op
  EXPECT_EQ(clients.num_materialized(), 3);
}

}  // namespace
}  // namespace fedmigr::fl
