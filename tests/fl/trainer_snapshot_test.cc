// Trainer state save/restore: a run snapshotted at an epoch boundary and
// reloaded into a freshly built trainer must continue bit-identically.

#include <algorithm>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/zoo.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {
namespace {

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  Trainer MakeTrainer(SchemeSetup setup) {
    return Trainer(setup.config, &data.train, partition, &data.test,
                   topology, devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::move(setup.policy));
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

// A scheme exercising every snapshotted stream: migrations, dropout (trainer
// RNG), faults (injector RNG + counters) and FedProx references.
SchemeSetup StatefulScheme() {
  SchemeSetup setup = MakeRandMigr(/*agg_period=*/2);
  setup.config.max_epochs = 6;
  setup.config.eval_every = 2;
  setup.config.seed = 77;
  setup.config.dropout_prob = 0.1;
  setup.config.fedprox_mu = 0.01;
  setup.config.fault.link_failure_prob = 0.1;
  setup.config.fault.corruption_prob = 0.05;
  setup.config.fault.straggler_prob = 0.2;
  setup.config.fault.seed = 13;
  return setup;
}

std::vector<uint8_t> StateBytes(const Trainer& trainer) {
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

TEST(TrainerSnapshotTest, ResumedRunIsBitIdentical) {
  TinyWorkload w;
  for (int kill_epoch : {2, 3, 5}) {
    // Reference: the uninterrupted run.
    Trainer reference = w.MakeTrainer(StatefulScheme());
    const RunResult ref_result = reference.Run();
    EXPECT_FALSE(ref_result.interrupted);
    const std::vector<uint8_t> ref_bytes = StateBytes(reference);

    // Killed: same run, stopped by the hook after `kill_epoch`; the state
    // snapshot is taken there (what the snapshot file would hold).
    Trainer killed = w.MakeTrainer(StatefulScheme());
    killed.SetEpochHook([kill_epoch](const Trainer&, int epoch) {
      return epoch < kill_epoch;
    });
    const RunResult killed_result = killed.Run();
    EXPECT_TRUE(killed_result.interrupted);
    EXPECT_EQ(killed_result.epochs_run, kill_epoch);
    EXPECT_EQ(killed.next_epoch(), kill_epoch + 1);
    const std::vector<uint8_t> mid_bytes = StateBytes(killed);

    // Resumed: a freshly built trainer loads the mid-run state and runs to
    // completion.
    Trainer resumed = w.MakeTrainer(StatefulScheme());
    util::ByteReader reader(mid_bytes);
    ASSERT_TRUE(resumed.LoadState(&reader).ok());
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(resumed.next_epoch(), kill_epoch + 1);
    const RunResult resumed_result = resumed.Run();
    EXPECT_FALSE(resumed_result.interrupted);

    // The contract: final serialized state (models, RNGs, history, fault
    // counters, policy) is byte-identical to the uninterrupted run.
    EXPECT_EQ(StateBytes(resumed), ref_bytes) << "kill at " << kill_epoch;
    ASSERT_EQ(resumed_result.history.size(), ref_result.history.size());
    for (size_t i = 0; i < ref_result.history.size(); ++i) {
      EXPECT_EQ(resumed_result.history[i].train_loss,
                ref_result.history[i].train_loss);
      EXPECT_EQ(resumed_result.history[i].test_accuracy,
                ref_result.history[i].test_accuracy);
    }
    EXPECT_EQ(resumed_result.final_accuracy, ref_result.final_accuracy);
    EXPECT_EQ(resumed_result.traffic_gb, ref_result.traffic_gb);
    EXPECT_EQ(resumed_result.time_s, ref_result.time_s);
  }
}

TEST(TrainerSnapshotTest, ResumingACompletedRunReturnsTheSameResult) {
  TinyWorkload w;
  Trainer reference = w.MakeTrainer(StatefulScheme());
  const RunResult ref_result = reference.Run();
  const std::vector<uint8_t> final_bytes = StateBytes(reference);

  Trainer resumed = w.MakeTrainer(StatefulScheme());
  util::ByteReader reader(final_bytes);
  ASSERT_TRUE(resumed.LoadState(&reader).ok());
  EXPECT_TRUE(resumed.done());
  const RunResult resumed_result = resumed.Run();  // no epochs left
  EXPECT_EQ(resumed_result.epochs_run, ref_result.epochs_run);
  EXPECT_EQ(resumed_result.final_accuracy, ref_result.final_accuracy);
  EXPECT_EQ(StateBytes(resumed), final_bytes);
}

TEST(TrainerSnapshotTest, FingerprintMismatchIsRejected) {
  TinyWorkload w;
  Trainer source = w.MakeTrainer(StatefulScheme());
  source.SetEpochHook([](const Trainer&, int epoch) { return epoch < 2; });
  source.Run();
  const std::vector<uint8_t> bytes = StateBytes(source);

  {
    SchemeSetup other = StatefulScheme();
    other.config.seed = 78;  // different trainer seed
    Trainer victim = w.MakeTrainer(std::move(other));
    util::ByteReader reader(bytes);
    EXPECT_FALSE(victim.LoadState(&reader).ok());
  }
  {
    SchemeSetup other = StatefulScheme();
    other.config.agg_period = 3;  // different schedule
    Trainer victim = w.MakeTrainer(std::move(other));
    util::ByteReader reader(bytes);
    EXPECT_FALSE(victim.LoadState(&reader).ok());
  }
  {
    SchemeSetup other = MakeFedAvg();
    other.config.max_epochs = 6;
    other.config.seed = 77;
    Trainer victim = w.MakeTrainer(std::move(other));
    util::ByteReader reader(bytes);
    EXPECT_FALSE(victim.LoadState(&reader).ok());
  }
}

TEST(TrainerSnapshotTest, TruncatedStateIsRejected) {
  TinyWorkload w;
  Trainer source = w.MakeTrainer(StatefulScheme());
  source.SetEpochHook([](const Trainer&, int epoch) { return epoch < 2; });
  source.Run();
  const std::vector<uint8_t> bytes = StateBytes(source);
  // A sweep over many truncation points; every one must fail cleanly (the
  // snapshot container's CRC normally rejects these before LoadState, but
  // the parser itself must also hold the line).
  for (size_t cut = 0; cut < bytes.size();
       cut += std::max<size_t>(1, bytes.size() / 97)) {
    Trainer victim = w.MakeTrainer(StatefulScheme());
    util::ByteReader reader(bytes.data(), cut);
    EXPECT_FALSE(victim.LoadState(&reader).ok()) << "cut " << cut;
  }
}

TEST(TrainerSnapshotTest, EpochHookStopFlagsInterruption) {
  TinyWorkload w;
  SchemeSetup setup = StatefulScheme();
  setup.config.max_epochs = 3;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  trainer.SetEpochHook([](const Trainer&, int) { return false; });
  const RunResult result = trainer.Run();
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.epochs_run, 1);
}

TEST(TrainerSnapshotTest, HookStopOnFinalEpochIsNotAnInterruption) {
  TinyWorkload w;
  SchemeSetup setup = StatefulScheme();
  setup.config.max_epochs = 1;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  trainer.SetEpochHook([](const Trainer&, int) { return false; });
  const RunResult result = trainer.Run();
  EXPECT_FALSE(result.interrupted);
  EXPECT_TRUE(trainer.done());
}

}  // namespace
}  // namespace fedmigr::fl
