// Cohort-scheduled trainer: determinism (including across thread counts),
// lazy materialization, aggregate aliasing, and snapshot/resume in cohort
// mode (the kill-anywhere contract of PR 3 extended to the sharded
// simulator).

#include <set>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/policies.h"
#include "fl/trainer.h"
#include "net/topology.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {
namespace {

// A fleet big enough that cohorts matter (K = 60, C = 8) but small enough
// for seconds-scale tests.
struct CohortWorkload {
  CohortWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 30;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    util::Rng rng(3);
    partition = data::PartitionIid(data.train, kClients, &rng);
    devices = net::MakeUniformFleet(kClients);
  }

  TrainerConfig MakeConfig(int cohort_size) const {
    TrainerConfig config;
    config.scheme_name = "cohort-test";
    config.max_epochs = 6;
    config.agg_period = 2;  // one migration epoch per round
    config.cohort_size = cohort_size;
    config.eval_every = 2;
    config.batch_size = 8;
    config.fedprox_mu = 0.01;  // exercise the shared proximal reference
    config.seed = 99;
    return config;
  }

  Trainer MakeTrainer(TrainerConfig config) const {
    net::TopologyConfig tc;
    tc.lan_of = net::EvenLanAssignment(kClients, 4);
    return Trainer(std::move(config), &data.train, partition, &data.test,
                   net::Topology(std::move(tc)), devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::make_unique<RandomMigrationPolicy>());
  }

  static constexpr int kClients = 60;
  data::TrainTest data;
  data::Partition partition;
  std::vector<net::DeviceProfile> devices;
};

std::vector<uint8_t> StateBytes(const Trainer& trainer) {
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

TEST(TrainerCohortTest, RunIsReproducible) {
  CohortWorkload w;
  Trainer a = w.MakeTrainer(w.MakeConfig(8));
  Trainer b = w.MakeTrainer(w.MakeConfig(8));
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  EXPECT_EQ(StateBytes(a), StateBytes(b));
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].train_loss, rb.history[i].train_loss);
  }
}

TEST(TrainerCohortTest, ThreadCountDoesNotChangeTheTrajectory) {
  CohortWorkload w;
  TrainerConfig single = w.MakeConfig(8);
  single.num_threads = 1;
  TrainerConfig parallel = w.MakeConfig(8);
  parallel.num_threads = 4;

  Trainer a = w.MakeTrainer(std::move(single));
  Trainer b = w.MakeTrainer(std::move(parallel));
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  EXPECT_EQ(StateBytes(a), StateBytes(b));
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  EXPECT_EQ(ra.time_s, rb.time_s);
}

TEST(TrainerCohortTest, OnlyCohortMembersMaterialize) {
  CohortWorkload w;
  Trainer trainer = w.MakeTrainer(w.MakeConfig(8));
  EXPECT_EQ(trainer.num_materialized_clients(), 0);
  trainer.Run();

  // 6 epochs / agg_period 2 = rounds 0..2: at most 3 * 8 distinct members.
  EXPECT_GT(trainer.num_materialized_clients(), 0);
  EXPECT_LE(trainer.num_materialized_clients(), 24);
  EXPECT_LT(trainer.num_materialized_clients(), CohortWorkload::kClients);
}

TEST(TrainerCohortTest, CohortMembersAreTheActiveSet) {
  CohortWorkload w;
  TrainerConfig config = w.MakeConfig(8);
  config.max_epochs = 2;
  Trainer trainer = w.MakeTrainer(std::move(config));
  trainer.Run();
  const std::vector<int>& cohort = trainer.cohort();
  ASSERT_EQ(cohort.size(), 8u);
  std::set<int> unique(cohort.begin(), cohort.end());
  EXPECT_EQ(unique.size(), cohort.size());
  EXPECT_GE(cohort.front(), 0);
  EXPECT_LT(cohort.back(), CohortWorkload::kClients);
}

TEST(TrainerCohortTest, LegacyModeAliasesEveryIdleClientToTheAggregate) {
  CohortWorkload w;
  TrainerConfig config = w.MakeConfig(/*cohort_size=*/0);
  config.fedprox_mu = 0.0;
  config.max_epochs = 4;  // ends on an aggregation epoch (period 2)
  Trainer trainer = w.MakeTrainer(std::move(config));

  // Full participation: everyone is materialized up front, and after the
  // construction-time Model Distribution all K replicas alias the one
  // published block (store + K holders).
  EXPECT_EQ(trainer.num_materialized_clients(), CohortWorkload::kClients);
  EXPECT_EQ(trainer.aggregate_aliases(), CohortWorkload::kClients + 1);

  trainer.Run();
  // The run ends right after an aggregation round's distribution: all
  // replicas are back on the (new) shared block.
  EXPECT_EQ(trainer.aggregate_aliases(), CohortWorkload::kClients + 1);
}

TEST(TrainerCohortTest, ResumedCohortRunIsBitIdentical) {
  CohortWorkload w;
  for (int kill_epoch : {1, 2, 3, 5}) {
    Trainer reference = w.MakeTrainer(w.MakeConfig(8));
    const RunResult ref_result = reference.Run();
    EXPECT_FALSE(ref_result.interrupted);
    const std::vector<uint8_t> ref_bytes = StateBytes(reference);

    Trainer killed = w.MakeTrainer(w.MakeConfig(8));
    killed.SetEpochHook([kill_epoch](const Trainer&, int epoch) {
      return epoch < kill_epoch;
    });
    const RunResult killed_result = killed.Run();
    EXPECT_TRUE(killed_result.interrupted);
    const std::vector<uint8_t> mid_bytes = StateBytes(killed);

    Trainer resumed = w.MakeTrainer(w.MakeConfig(8));
    util::ByteReader reader(mid_bytes);
    ASSERT_TRUE(resumed.LoadState(&reader).ok()) << "kill at " << kill_epoch;
    EXPECT_TRUE(reader.AtEnd());
    const RunResult resumed_result = resumed.Run();
    EXPECT_FALSE(resumed_result.interrupted);

    EXPECT_EQ(StateBytes(resumed), ref_bytes) << "kill at " << kill_epoch;
    ASSERT_EQ(resumed_result.history.size(), ref_result.history.size());
    for (size_t i = 0; i < ref_result.history.size(); ++i) {
      EXPECT_EQ(resumed_result.history[i].train_loss,
                ref_result.history[i].train_loss);
    }
    EXPECT_EQ(resumed_result.final_accuracy, ref_result.final_accuracy);
    EXPECT_EQ(resumed_result.time_s, ref_result.time_s);
  }
}

TEST(TrainerCohortTest, SnapshotElidesAliasedModels) {
  // With every replica aliasing the published aggregate, the v3 snapshot
  // stores the model parameters once — not once per client. The bound: a
  // 60-client legacy snapshot (all aliased at construction, and again
  // after the final aggregation's distribution) stays under three model
  // payloads, where the pre-CoW layout paid K + 1 of them.
  CohortWorkload w;
  util::Rng model_rng(1);
  const size_t payload = nn::SerializeParams(nn::MakeC10Net(&model_rng)).size();

  TrainerConfig legacy_config = w.MakeConfig(0);
  legacy_config.fedprox_mu = 0.0;
  Trainer legacy = w.MakeTrainer(std::move(legacy_config));
  const size_t at_construction = StateBytes(legacy).size();
  EXPECT_LT(at_construction, 3 * payload)
      << "payload=" << payload << " snapshot=" << at_construction;

  legacy.Run();  // max_epochs 6 ends on an aggregation epoch (period 2)
  const size_t after_run = StateBytes(legacy).size();
  EXPECT_LT(after_run, 3 * payload)
      << "payload=" << payload << " snapshot=" << after_run;

  // Lazy clients cost one byte each: a cohort trainer's snapshot before any
  // round is the aggregate plus noise.
  Trainer cohort = w.MakeTrainer(w.MakeConfig(8));
  EXPECT_LT(StateBytes(cohort).size(), 2 * payload);
}

TEST(TrainerCohortTest, CohortSizeIsPartOfTheSnapshotFingerprint) {
  CohortWorkload w;
  Trainer a = w.MakeTrainer(w.MakeConfig(8));
  a.Run();
  const std::vector<uint8_t> bytes = StateBytes(a);

  Trainer other = w.MakeTrainer(w.MakeConfig(12));
  util::ByteReader reader(bytes);
  EXPECT_FALSE(other.LoadState(&reader).ok());
}

}  // namespace
}  // namespace fedmigr::fl
