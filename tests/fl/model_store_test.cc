// Copy-on-write model store semantics: aliasing, clone-on-first-write,
// share-demotes-ownership and refcount behavior. These invariants are what
// make a million idle clients cost one model block.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/model_store.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

nn::Sequential TinyModel(uint64_t seed) {
  util::Rng rng(seed);
  return nn::MakeC10Net(&rng);
}

data::TrainTest TinyData() {
  data::SyntheticSpec spec = data::C10Spec();
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  return data::GenerateSynthetic(spec);
}

std::vector<int> SomeIndices(int n) {
  std::vector<int> indices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  return indices;
}

TEST(ModelStoreTest, PublishCopiesAndFlattens) {
  ModelStore store;
  nn::Sequential model = TinyModel(1);
  const ModelRef& published = store.Publish(model);
  ASSERT_NE(published, nullptr);
  ASSERT_NE(store.aggregate_flat(), nullptr);
  EXPECT_EQ(nn::SerializeParams(*published), nn::SerializeParams(model));
  EXPECT_EQ(static_cast<int64_t>(store.aggregate_flat()->size()),
            model.NumParams());

  // Publish deep-copies: mutating the input afterwards must not reach the
  // published block.
  const std::vector<uint8_t> before = nn::SerializeParams(*store.aggregate());
  (*model.Params()[0])[0] += 1.0f;
  EXPECT_EQ(nn::SerializeParams(*store.aggregate()), before);
}

TEST(ModelStoreTest, AliasedClientsShareOneBlock) {
  const data::TrainTest data = TinyData();
  ModelStore store;
  store.Publish(TinyModel(2));

  Client a(0, &data.train, SomeIndices(8), 0.05, 0.0, 11);
  Client b(1, &data.train, SomeIndices(8), 0.05, 0.0, 12);
  a.SetModel(store.aggregate());
  b.SetModel(store.aggregate());
  EXPECT_FALSE(a.owns_model());
  EXPECT_FALSE(b.owns_model());
  EXPECT_EQ(a.model_ref(), b.model_ref());
  EXPECT_EQ(&a.model(), store.aggregate().get());
  // store + 2 aliases.
  EXPECT_EQ(store.aggregate_use_count(), 3);
}

TEST(ModelStoreTest, FirstWriteClonesAndNeverLeaks) {
  const data::TrainTest data = TinyData();
  ModelStore store;
  store.Publish(TinyModel(3));
  const std::vector<uint8_t> aggregate_bytes =
      nn::SerializeParams(*store.aggregate());

  Client a(0, &data.train, SomeIndices(8), 0.05, 0.0, 11);
  a.SetModel(store.aggregate());
  LocalUpdateOptions options;
  options.batch_size = 4;
  a.LocalUpdate(options);

  // The write went to a private clone...
  EXPECT_TRUE(a.owns_model());
  EXPECT_NE(a.model_ref(), store.aggregate());
  EXPECT_NE(nn::SerializeParams(a.model()), aggregate_bytes);
  // ...and the shared block is untouched.
  EXPECT_EQ(nn::SerializeParams(*store.aggregate()), aggregate_bytes);
  EXPECT_EQ(store.aggregate_use_count(), 1);
}

TEST(ModelStoreTest, WriteAfterShareDoesNotReachTheReceiver) {
  const data::TrainTest data = TinyData();
  ModelStore store;
  store.Publish(TinyModel(4));

  Client src(0, &data.train, SomeIndices(8), 0.05, 0.0, 21);
  Client dst(1, &data.train, SomeIndices(8), 0.05, 0.0, 22);
  src.SetModel(store.aggregate());
  LocalUpdateOptions options;
  options.batch_size = 4;
  src.LocalUpdate(options);  // src now owns a private block

  // Migration-style move: dst receives src's block without a copy.
  dst.SetModel(src.share_model());
  EXPECT_FALSE(src.owns_model());
  EXPECT_FALSE(dst.owns_model());
  EXPECT_EQ(src.model_ref(), dst.model_ref());
  const std::vector<uint8_t> migrated = nn::SerializeParams(dst.model());

  // The source trains on; the receiver's view must not change.
  src.LocalUpdate(options);
  EXPECT_NE(src.model_ref(), dst.model_ref());
  EXPECT_EQ(nn::SerializeParams(dst.model()), migrated);
}

TEST(ModelStoreTest, RepublishDropsOldAliasesNaturally) {
  const data::TrainTest data = TinyData();
  ModelStore store;
  store.Publish(TinyModel(5));

  Client a(0, &data.train, SomeIndices(8), 0.05, 0.0, 31);
  a.SetModel(store.aggregate());
  const ModelRef old_block = store.aggregate();
  EXPECT_EQ(old_block.use_count(), 3);  // store + a + old_block

  // A new aggregate round: the store points at a fresh block; re-aliasing
  // the client releases the old one.
  store.Publish(TinyModel(6));
  a.SetModel(store.aggregate());
  EXPECT_EQ(old_block.use_count(), 1);  // only this test's handle remains
  EXPECT_EQ(store.aggregate_use_count(), 2);
}

TEST(ModelStoreTest, ProximalReferenceAliasesTheFlattenedAggregate) {
  const data::TrainTest data = TinyData();
  ModelStore store;
  store.Publish(TinyModel(7));

  Client a(0, &data.train, SomeIndices(8), 0.05, 0.0, 41);
  a.SetProximalReference(store.aggregate_flat());
  EXPECT_EQ(a.proximal_reference(), store.aggregate_flat());

  // Legacy overload makes a private flatten, equal in value.
  Client b(1, &data.train, SomeIndices(8), 0.05, 0.0, 42);
  b.SetProximalReference(*store.aggregate());
  ASSERT_NE(b.proximal_reference(), nullptr);
  EXPECT_NE(b.proximal_reference(), store.aggregate_flat());
  EXPECT_EQ(*b.proximal_reference(), *store.aggregate_flat());
}

}  // namespace
}  // namespace fedmigr::fl
