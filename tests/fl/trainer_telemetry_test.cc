// Trainer-level telemetry: a short run populates the phase histograms and
// the fl/net counters, the registry mirror agrees with the per-run structs,
// and the byte-for-byte run outputs (history, traffic, faults) are identical
// with telemetry enabled and disabled.

#include <string>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/zoo.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  RunResult Run(const std::string& scheme, int epochs) {
    SchemeSetup setup =
        scheme == "randmigr" ? MakeRandMigr(/*agg_period=*/2) : MakeFedAvg();
    setup.config.max_epochs = epochs;
    setup.config.eval_every = 2;
    Trainer trainer(setup.config, &data.train, partition, &data.test,
                    topology, devices,
                    [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                    std::move(setup.policy));
    return trainer.Run();
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

TEST(TrainerTelemetryTest, RunPopulatesPhaseHistogramsAndCounters) {
  if (!obs::Telemetry::compiled_in()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TinyWorkload w;
  const obs::MetricsSnapshot before = obs::Registry::Default().Snapshot();
  const RunResult result = w.Run("randmigr", 4);

  // RunResult carries the snapshot taken as Run() returned.
  EXPECT_FALSE(result.metrics.counters.empty());
  EXPECT_EQ(result.metrics.CounterValue("fl/epochs_run") -
                before.CounterValue("fl/epochs_run"),
            4);
  EXPECT_GT(result.metrics.CounterValue("fl/aggregations"),
            before.CounterValue("fl/aggregations"));

  // Registry traffic mirror agrees with the per-run accountant (the registry
  // is process-cumulative, so compare deltas).
  EXPECT_EQ(result.metrics.CounterValue("net/c2s_bytes") -
                before.CounterValue("net/c2s_bytes"),
            result.traffic.c2s_bytes());
  EXPECT_EQ(result.metrics.CounterValue("net/c2c_bytes") -
                before.CounterValue("net/c2c_bytes"),
            result.traffic.c2c_bytes());

  // Every epoch passes through the traced phases.
  const obs::MetricsSnapshot::HistogramSample* epoch =
      result.metrics.FindHistogram("fl/epoch");
  const obs::MetricsSnapshot::HistogramSample* local =
      result.metrics.FindHistogram("fl/local_update");
  ASSERT_NE(epoch, nullptr);
  ASSERT_NE(local, nullptr);
  const obs::MetricsSnapshot::HistogramSample* epoch_before =
      before.FindHistogram("fl/epoch");
  EXPECT_EQ(epoch->count - (epoch_before != nullptr ? epoch_before->count : 0),
            4);
  EXPECT_GE(local->count, epoch->count);
  EXPECT_GT(epoch->sum, 0.0);

  // Loss/accuracy gauges hold the last epoch's values.
  EXPECT_DOUBLE_EQ(result.metrics.GaugeValue("fl/train_loss"),
                   result.history.back().train_loss);
}

TEST(TrainerTelemetryTest, DisabledTelemetryLeavesResultsIdentical) {
  TinyWorkload w;
  const RunResult enabled = w.Run("fedavg", 3);

  obs::Telemetry::Disable();
  const RunResult disabled = w.Run("fedavg", 3);
  obs::Telemetry::Enable();

  // Telemetry must be observation-only: identical learning trajectory,
  // traffic and simulated time either way.
  ASSERT_EQ(enabled.history.size(), disabled.history.size());
  for (size_t i = 0; i < enabled.history.size(); ++i) {
    EXPECT_EQ(enabled.history[i].train_loss, disabled.history[i].train_loss);
    EXPECT_EQ(enabled.history[i].test_accuracy,
              disabled.history[i].test_accuracy);
    EXPECT_EQ(enabled.history[i].cumulative_time_s,
              disabled.history[i].cumulative_time_s);
  }
  EXPECT_EQ(enabled.traffic.c2s_bytes(), disabled.traffic.c2s_bytes());
  EXPECT_EQ(enabled.traffic.c2c_bytes(), disabled.traffic.c2c_bytes());

  // And the disabled run reports no metrics at all.
  EXPECT_TRUE(disabled.metrics.counters.empty());
  EXPECT_TRUE(disabled.metrics.histograms.empty());
}

TEST(TrainerTelemetryTest, SimSpansLandOnSimulatedTimeTracks) {
  if (!obs::Telemetry::compiled_in()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  TinyWorkload w;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  recorder.Start();
  (void)w.Run("randmigr", 3);
  recorder.Stop();

  int sim_spans = 0;
  int wall_spans = 0;
  for (const obs::TraceEvent& e : recorder.ExportEvents()) {
    if (e.pid == 2) ++sim_spans;
    if (e.pid == 1 && !e.instant) ++wall_spans;
  }
  recorder.Clear();
  // One epoch span + phase spans per epoch on pid 2; the RAII scopes land
  // on pid 1.
  EXPECT_GE(sim_spans, 6);
  EXPECT_GE(wall_spans, 6);
}

}  // namespace
}  // namespace fedmigr::fl
