// Tests of partial participation (FedAvg's α fraction) and client dropout.

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 16;
    spec.test_per_class = 4;
    data = data::GenerateSynthetic(spec);
  }

  RunResult Run(SchemeSetup setup) {
    util::Rng rng(9);
    data::Partition partition =
        data::PartitionByClassShards(data.train, 10, 1, &rng);
    Trainer trainer(setup.config, &data.train, std::move(partition),
                    &data.test, net::MakeC10SimTopology(),
                    net::MakeUniformFleet(10),
                    [](util::Rng* r) { return nn::MakeC10Net(r); },
                    std::move(setup.policy));
    return trainer.Run();
  }

  data::TrainTest data;
};

TEST(ParticipationTest, HalfFractionHalvesUploadTraffic) {
  Fixture f;
  auto make = [](double fraction) {
    SchemeSetup setup = MakeFedAvg();
    setup.config.max_epochs = 4;
    setup.config.eval_every = 0;
    setup.config.client_fraction = fraction;
    return setup;
  };
  const RunResult full = f.Run(make(1.0));
  const RunResult half = f.Run(make(0.5));
  // Upload side halves; downloads still go to everyone. FedAvg traffic =
  // uploads + downloads, so half-participation sits strictly between 50%
  // and 100% of the full-participation traffic.
  EXPECT_LT(half.c2s_gb, full.c2s_gb);
  EXPECT_GT(half.c2s_gb, 0.5 * full.c2s_gb * 0.99);
}

TEST(ParticipationTest, FractionStillLearns) {
  Fixture f;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 20;
  setup.config.client_fraction = 0.5;
  setup.config.eval_every = 10;
  setup.config.learning_rate = 0.08;
  const RunResult result = f.Run(std::move(setup));
  EXPECT_GT(result.best_accuracy, 0.12);  // above the 0.1 chance level
}

TEST(ParticipationTest, TinyFractionSelectsAtLeastOne) {
  Fixture f;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 2;
  setup.config.client_fraction = 0.01;
  const RunResult result = f.Run(std::move(setup));
  // One upload + K downloads per epoch: traffic is positive and small.
  EXPECT_GT(result.c2s_gb, 0.0);
}

TEST(DropoutTest, DropoutReducesComputeAndKeepsRunning) {
  Fixture f;
  auto make = [](double dropout) {
    SchemeSetup setup = MakeRandMigr(2);
    setup.config.max_epochs = 8;
    setup.config.eval_every = 0;
    setup.config.dropout_prob = dropout;
    setup.config.seed = 33;
    return setup;
  };
  const RunResult stable = f.Run(make(0.0));
  const RunResult flaky = f.Run(make(0.4));
  EXPECT_EQ(flaky.epochs_run, 8);
  // Fewer client-epochs of work -> fewer samples processed.
  EXPECT_LT(flaky.compute_units, stable.compute_units);
  // Migrations involving dropped endpoints are cancelled.
  EXPECT_LT(flaky.c2c_gb, stable.c2c_gb);
}

TEST(DropoutTest, FullAvailabilityMatchesDefault) {
  Fixture f;
  auto run = [&f](double dropout) {
    SchemeSetup setup = MakeFedAvg();
    setup.config.max_epochs = 3;
    setup.config.dropout_prob = dropout;
    setup.config.seed = 44;
    return f.Run(std::move(setup));
  };
  const RunResult a = run(0.0);
  const RunResult b = run(0.0);
  EXPECT_DOUBLE_EQ(a.traffic_gb, b.traffic_gb);
}

TEST(ParticipationTest, MigrationSchemesRespectParticipation) {
  Fixture f;
  SchemeSetup setup = MakeRandMigr(3);
  setup.config.max_epochs = 6;
  setup.config.client_fraction = 0.5;
  const RunResult result = f.Run(std::move(setup));
  EXPECT_EQ(result.epochs_run, 6);
  // With 5 of 10 clients active, per-aggregation uploads drop to 5.
  // 2 aggregations x (5 up + 10 down) + migrations.
  EXPECT_GT(result.c2s_gb, 0.0);
}

}  // namespace
}  // namespace fedmigr::fl
