#include "fl/server.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/layers.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

nn::Sequential ConstantModel(float value) {
  util::Rng rng(1);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Dense>(2, 2, &rng));
  for (nn::Tensor* p : model.Params()) p->Fill(value);
  return model;
}

TEST(ServerTest, WeightedAverageExact) {
  const nn::Sequential a = ConstantModel(1.0f);
  const nn::Sequential b = ConstantModel(4.0f);
  nn::Sequential out = ConstantModel(0.0f);
  Server::WeightedAverage({&a, &b}, {3.0, 1.0}, &out);
  for (const nn::Tensor* p : out.Params()) {
    for (int64_t i = 0; i < p->size(); ++i) {
      EXPECT_NEAR((*p)[i], 1.75f, 1e-6f);
    }
  }
}

TEST(ServerTest, ZeroWeightModelIgnored) {
  const nn::Sequential a = ConstantModel(1.0f);
  const nn::Sequential b = ConstantModel(100.0f);
  nn::Sequential out = ConstantModel(0.0f);
  Server::WeightedAverage({&a, &b}, {1.0, 0.0}, &out);
  EXPECT_NEAR((*out.Params()[0])[0], 1.0f, 1e-6f);
}

TEST(ServerTest, AggregateOfIdenticalModelsIsIdentity) {
  util::Rng rng(2);
  const data::TrainTest data = data::GenerateSynthetic(data::C10Spec());
  nn::Sequential model = nn::MakeC10Net(&rng);
  Server server(model, &data.test);
  server.Aggregate({&model, &model, &model}, {1.0, 2.0, 3.0});
  EXPECT_NEAR(nn::Sequential::ParamDistance(server.global_model(), model),
              0.0, 1e-5);
}

TEST(ServerTest, EvaluationMetricsInRange) {
  util::Rng rng(3);
  const data::TrainTest data = data::GenerateSynthetic(data::C10Spec());
  Server server(nn::MakeC10Net(&rng), &data.test);
  const Evaluation eval = server.EvaluateGlobal();
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GT(eval.loss, 0.0);
}

TEST(ServerTest, UntrainedModelNearChance) {
  util::Rng rng(4);
  const data::TrainTest data = data::GenerateSynthetic(data::C10Spec());
  Server server(nn::MakeC10Net(&rng), &data.test);
  const Evaluation eval = server.EvaluateGlobal();
  EXPECT_LT(eval.accuracy, 0.35);  // chance is 0.1
}

TEST(ServerTest, EvaluateDoesNotMutateModel) {
  util::Rng rng(5);
  const data::TrainTest data = data::GenerateSynthetic(data::C10Spec());
  nn::Sequential model = nn::MakeC10Net(&rng);
  Server server(model, &data.test);
  (void)server.EvaluateGlobal();
  EXPECT_EQ(nn::Sequential::ParamDistance(server.global_model(), model), 0.0);
}

}  // namespace
}  // namespace fedmigr::fl
