#include "fl/schemes.h"

#include <gtest/gtest.h>

namespace fedmigr::fl {
namespace {

TEST(SchemesTest, FedAvgAggregatesEveryEpoch) {
  const SchemeSetup setup = MakeFedAvg();
  EXPECT_EQ(setup.config.scheme_name, "fedavg");
  EXPECT_EQ(setup.config.agg_period, 1);
  EXPECT_EQ(setup.config.fedprox_mu, 0.0);
  EXPECT_EQ(setup.policy->name(), "none");
}

TEST(SchemesTest, FedProxCarriesProximalTerm) {
  const SchemeSetup setup = MakeFedProx(0.05);
  EXPECT_EQ(setup.config.scheme_name, "fedprox");
  EXPECT_EQ(setup.config.fedprox_mu, 0.05);
  EXPECT_EQ(setup.policy->name(), "none");
}

TEST(SchemesTest, FedSwapUsesServerExchange) {
  const SchemeSetup setup = MakeFedSwap(25);
  EXPECT_EQ(setup.config.agg_period, 25);
  EXPECT_EQ(setup.policy->name(), "fedswap");
}

TEST(SchemesTest, RandMigrUsesRandomPolicy) {
  const SchemeSetup setup = MakeRandMigr(10);
  EXPECT_EQ(setup.config.agg_period, 10);
  EXPECT_EQ(setup.policy->name(), "random");
}

TEST(SchemesTest, FlmmVariant) {
  const SchemeSetup setup = MakeFedMigrFlmm(50);
  EXPECT_EQ(setup.config.scheme_name, "fedmigr-flmm");
  EXPECT_EQ(setup.policy->name(), "flmm");
}

TEST(SchemesTest, ByNameMatchesFactories) {
  for (const char* name :
       {"fedavg", "fedprox", "fedswap", "randmigr", "fedmigr-flmm",
        "maxemd"}) {
    const SchemeSetup setup = MakeSchemeByName(name, 20);
    EXPECT_FALSE(setup.config.scheme_name.empty());
    EXPECT_NE(setup.policy, nullptr);
  }
}

}  // namespace
}  // namespace fedmigr::fl
