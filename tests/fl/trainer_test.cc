// Integration tests of the FL experiment loop: traffic arithmetic, stopping
// rules, migration bookkeeping and learning progress on a tiny workload.

#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  Trainer MakeTrainer(SchemeSetup setup) {
    setup.config.max_epochs = setup.config.max_epochs == 200
                                  ? 6
                                  : setup.config.max_epochs;
    return Trainer(setup.config, &data.train, partition, &data.test,
                   topology, devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::move(setup.policy));
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

TEST(TrainerTest, FedAvgTrafficArithmetic) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 4;
  setup.config.eval_every = 2;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();

  // FedAvg: every epoch uploads + downloads all 10 models over the WAN.
  util::Rng rng(1);
  const int64_t model_bytes = nn::MakeC10Net(&rng).ByteSize();
  EXPECT_EQ(result.epochs_run, 4);
  EXPECT_DOUBLE_EQ(result.c2c_gb, 0.0);
  EXPECT_NEAR(result.traffic_gb,
              static_cast<double>(4 * 2 * 10 * model_bytes) / 1e9, 1e-9);
  EXPECT_GT(result.time_s, 0.0);
}

TEST(TrainerTest, MigrationSchemeUsesC2cTraffic) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(/*agg_period=*/3);
  setup.config.max_epochs = 6;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_GT(result.c2c_gb, 0.0);
  EXPECT_GT(result.c2s_gb, 0.0);
  // Aggregations at epochs 3 and 6; migrations elsewhere.
  int aggregations = 0, migration_epochs = 0;
  for (const auto& record : result.history) {
    if (record.aggregated) ++aggregations;
    if (record.migrations > 0) ++migration_epochs;
  }
  EXPECT_EQ(aggregations, 2);
  EXPECT_EQ(migration_epochs, 4);
}

TEST(TrainerTest, FedSwapTrafficIsAllC2s) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedSwap(/*agg_period=*/3);
  setup.config.max_epochs = 3;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_EQ(result.c2c_gb, 0.0);
  EXPECT_GT(result.c2s_gb, 0.0);
}

TEST(TrainerTest, HistoryIsMonotoneInTimeAndTraffic) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(2);
  setup.config.max_epochs = 6;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].cumulative_time_s,
              result.history[i - 1].cumulative_time_s);
    EXPECT_GE(result.history[i].cumulative_traffic_gb,
              result.history[i - 1].cumulative_traffic_gb);
    EXPECT_EQ(result.history[i].epoch, static_cast<int>(i) + 1);
  }
}

TEST(TrainerTest, BandwidthBudgetStopsTraining) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 50;
  util::Rng rng(1);
  const double model_bytes =
      static_cast<double>(nn::MakeC10Net(&rng).ByteSize());
  // Enough for ~2 epochs of 20 WAN transfers.
  setup.config.budget = net::Budget(1e12, 2.5 * 20 * model_bytes);
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LT(result.epochs_run, 10);
}

TEST(TrainerTest, TargetAccuracyStopsEarly) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 60;
  setup.config.eval_every = 2;
  setup.config.target_accuracy = 0.15;  // barely above chance
  setup.config.learning_rate = 0.08;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.epochs_to_target, 0);
  EXPECT_LE(result.epochs_to_target, 60);
  EXPECT_GT(result.traffic_to_target_gb, 0.0);
  EXPECT_LE(result.epochs_run, 60);
}

TEST(TrainerTest, AccuracyImprovesOverTraining) {
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 30;
  setup.config.eval_every = 5;
  setup.config.learning_rate = 0.08;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_GT(result.best_accuracy, 0.25);  // way above the 0.1 chance level
}

TEST(TrainerTest, DpNoiseStillRuns) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(2);
  setup.config.max_epochs = 4;
  setup.config.dp.epsilon = 100.0;
  setup.config.dp.clip_norm = 20.0;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_EQ(result.epochs_run, 4);
}

TEST(TrainerTest, LastEpochAlwaysAggregates) {
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(/*agg_period=*/4);
  setup.config.max_epochs = 6;  // not a multiple of agg_period
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_TRUE(result.history.back().aggregated);
}

TEST(TrainerTest, SharedWanSerializesUploads) {
  TinyWorkload w;
  auto run = [&w](bool shared) {
    SchemeSetup setup = MakeFedAvg();
    setup.config.max_epochs = 2;
    setup.config.eval_every = 0;
    setup.config.wan_shared = shared;
    Trainer trainer = w.MakeTrainer(std::move(setup));
    return trainer.Run();
  };
  const RunResult shared = run(true);
  const RunResult parallel = run(false);
  // Same traffic either way; the shared WAN takes longer because the
  // 2 x 10 transfers per epoch serialize (compute time is identical, so
  // the difference is pure link contention).
  EXPECT_DOUBLE_EQ(shared.traffic_gb, parallel.traffic_gb);
  EXPECT_GT(shared.time_s, parallel.time_s + 0.5);
}

TEST(TrainerTest, ToleratesEmptyClient) {
  TinyWorkload w;
  // Give client 0's data away to client 1.
  auto& from = w.partition[0];
  auto& to = w.partition[1];
  to.insert(to.end(), from.begin(), from.end());
  from.clear();
  SchemeSetup setup = MakeRandMigr(2);
  setup.config.max_epochs = 4;
  Trainer trainer = w.MakeTrainer(std::move(setup));
  const RunResult result = trainer.Run();
  EXPECT_EQ(result.epochs_run, 4);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  TinyWorkload w;
  auto run = [&w]() {
    SchemeSetup setup = MakeRandMigr(2);
    setup.config.max_epochs = 4;
    setup.config.seed = 77;
    Trainer trainer = w.MakeTrainer(std::move(setup));
    return trainer.Run();
  };
  const RunResult a = run();
  const RunResult b = run();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss);
  }
  EXPECT_DOUBLE_EQ(a.traffic_gb, b.traffic_gb);
}

}  // namespace
}  // namespace fedmigr::fl
