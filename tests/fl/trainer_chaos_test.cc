// Infrastructure chaos in the synchronous trainer: zero-chaos byte
// identity, atomic migration rollback under sealed partitions, the
// round-progress watchdog (quorum misses, carryover), fleet churn at small
// and large K, and the kill-anywhere resume contract under fire.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/policies.h"
#include "fl/trainer.h"
#include "net/topology.h"
#include "nn/zoo.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {
namespace {

// Same fleet as the cohort suite: K = 60 across 4 LANs, seconds-scale runs.
struct ChaosWorkload {
  ChaosWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 30;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    util::Rng rng(3);
    partition = data::PartitionIid(data.train, kClients, &rng);
    devices = net::MakeUniformFleet(kClients);
  }

  TrainerConfig MakeConfig(int cohort_size) const {
    TrainerConfig config;
    config.scheme_name = "chaos-test";
    config.max_epochs = 6;
    config.agg_period = 2;
    config.cohort_size = cohort_size;
    config.eval_every = 2;
    config.batch_size = 8;
    config.seed = 99;
    return config;
  }

  Trainer MakeTrainer(TrainerConfig config) const {
    net::TopologyConfig tc;
    tc.lan_of = net::EvenLanAssignment(kClients, 4);
    return Trainer(std::move(config), &data.train, partition, &data.test,
                   net::Topology(std::move(tc)), devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::make_unique<RandomMigrationPolicy>());
  }

  static constexpr int kClients = 60;
  data::TrainTest data;
  data::Partition partition;
  std::vector<net::DeviceProfile> devices;
};

std::vector<uint8_t> StateBytes(const Trainer& trainer) {
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

// A chaos script that exercises everything at once: a partition sealing
// LAN 1 across rounds 1-2, an aggregation-epoch outage, 25% churn, and the
// watchdog armed at half the cohort.
TrainerConfig WithChaos(TrainerConfig config) {
  config.fault.chaos.partitions.push_back({/*lan=*/1, /*start_epoch=*/2,
                                           /*duration_epochs=*/3});
  config.fault.chaos.outages.push_back({/*start_epoch=*/6,
                                        /*duration_epochs=*/1});
  config.fault.chaos.churn_rate = 0.25;
  config.quorum_fraction = 0.5;
  return config;
}

TEST(TrainerChaosTest, ZeroedChaosIsByteIdenticalToTheLegacyPath) {
  // A config whose ChaosConfig holds no windows and zero churn keeps the
  // injector disabled: the run is bit-for-bit the pre-chaos trajectory.
  ChaosWorkload w;
  TrainerConfig plain = w.MakeConfig(8);
  TrainerConfig zeroed = w.MakeConfig(8);
  zeroed.fault.chaos = net::ChaosConfig{};
  ASSERT_FALSE(zeroed.fault.enabled());

  Trainer a = w.MakeTrainer(std::move(plain));
  Trainer b = w.MakeTrainer(std::move(zeroed));
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  EXPECT_EQ(StateBytes(a), StateBytes(b));
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  // The ledger still covers fault-free migrations: everything planned is
  // delivered directly, nothing rolls back, and the watchdog never arms.
  EXPECT_EQ(ra.chaos.migrations_planned, ra.chaos.migrations_completed);
  EXPECT_EQ(ra.chaos.migrations_rolled_back, 0);
  EXPECT_EQ(ra.chaos.quorum_commits, 0);
  EXPECT_EQ(ra.chaos.quorum_misses, 0);
}

TEST(TrainerChaosTest, MigrationRollbackKeepsTheLedgerWhole) {
  // Seal one LAN for the whole run: every migration crossing its boundary
  // fails (the server fallback is sealed too), and each one must be rolled
  // back to its source. The trainer CHECK-fails on an orphaned lineage, so
  // a completed run plus a reconciled ledger is the atomicity proof.
  ChaosWorkload w;
  TrainerConfig config = w.MakeConfig(10);
  config.fault.chaos.partitions.push_back({/*lan=*/1, /*start_epoch=*/1,
                                           /*duration_epochs=*/100});
  Trainer trainer = w.MakeTrainer(std::move(config));
  const RunResult result = trainer.Run();

  EXPECT_GT(result.chaos.migrations_planned, 0);
  EXPECT_GT(result.chaos.migrations_rolled_back, 0);
  EXPECT_EQ(result.chaos.migrations_planned,
            result.chaos.migrations_completed +
                result.chaos.migration_fallbacks +
                result.chaos.migrations_rolled_back);
  EXPECT_GT(result.faults.partitioned_transfers, 0);
}

TEST(TrainerChaosTest, WatchdogSkipsRoundsWithoutQuorum) {
  // Seal three of the four LANs across the whole run with the watchdog at
  // 0.9: only ~a quarter of each cohort can reach the server, so every
  // aggregation misses quorum; the survivors are carried into the next
  // round.
  ChaosWorkload w;
  TrainerConfig config = w.MakeConfig(8);
  config.quorum_fraction = 0.9;
  for (int lan : {1, 2, 3}) {
    config.fault.chaos.partitions.push_back({lan, /*start_epoch=*/1,
                                             /*duration_epochs=*/100});
  }
  Trainer trainer = w.MakeTrainer(std::move(config));
  const RunResult result = trainer.Run();

  EXPECT_GT(result.chaos.quorum_misses, 0);
  EXPECT_EQ(result.chaos.quorum_commits, 0);
  EXPECT_GT(result.chaos.carryover_clients, 0);

  // The same storm with the watchdog disarmed commits every round and
  // carries nothing.
  TrainerConfig unguarded = w.MakeConfig(8);
  for (int lan : {1, 2, 3}) {
    unguarded.fault.chaos.partitions.push_back({lan, 1, 100});
  }
  Trainer baseline = w.MakeTrainer(std::move(unguarded));
  const RunResult base = baseline.Run();
  EXPECT_EQ(base.chaos.quorum_misses, 0);
  EXPECT_EQ(base.chaos.quorum_commits, 0);
  EXPECT_EQ(base.chaos.carryover_clients, 0);
}

TEST(TrainerChaosTest, ChurnIsDeterministicAndCounted) {
  ChaosWorkload w;
  TrainerConfig config = w.MakeConfig(10);
  config.fault.chaos.churn_rate = 0.3;
  Trainer a = w.MakeTrainer(config);
  Trainer b = w.MakeTrainer(config);
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  EXPECT_EQ(StateBytes(a), StateBytes(b));
  EXPECT_GT(ra.chaos.churn_absences, 0);
  EXPECT_EQ(ra.chaos.churn_absences, rb.chaos.churn_absences);
  EXPECT_EQ(ra.chaos.churn_departures, rb.chaos.churn_departures);
}

TEST(TrainerChaosTest, ChurnRequiresCohortMode) {
  ChaosWorkload w;
  TrainerConfig config = w.MakeConfig(/*cohort_size=*/0);
  config.fault.chaos.churn_rate = 0.1;
  EXPECT_DEATH(w.MakeTrainer(std::move(config)), "cohort");
}

TEST(TrainerChaosTest, FullChaosRunIsReproducible) {
  ChaosWorkload w;
  Trainer a = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
  Trainer b = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  EXPECT_EQ(StateBytes(a), StateBytes(b));
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].train_loss, rb.history[i].train_loss);
  }
}

TEST(TrainerChaosTest, ResumeUnderFireIsBitIdentical) {
  // Kill-anywhere, chaos edition: kills land inside the partition window
  // (epochs 2-4), on the outage epoch (6) and mid-churn; the resumed run
  // must replay the identical trajectory, including the chaos schedule
  // position and every chaos counter.
  ChaosWorkload w;
  for (int kill_epoch : {1, 2, 3, 5}) {
    Trainer reference = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
    const RunResult ref_result = reference.Run();
    EXPECT_FALSE(ref_result.interrupted);
    const std::vector<uint8_t> ref_bytes = StateBytes(reference);

    Trainer killed = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
    killed.SetEpochHook([kill_epoch](const Trainer&, int epoch) {
      return epoch < kill_epoch;
    });
    const RunResult killed_result = killed.Run();
    EXPECT_TRUE(killed_result.interrupted);
    const std::vector<uint8_t> mid_bytes = StateBytes(killed);

    Trainer resumed = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
    util::ByteReader reader(mid_bytes);
    ASSERT_TRUE(resumed.LoadState(&reader).ok()) << "kill at " << kill_epoch;
    EXPECT_TRUE(reader.AtEnd());
    const RunResult resumed_result = resumed.Run();
    EXPECT_FALSE(resumed_result.interrupted);

    EXPECT_EQ(StateBytes(resumed), ref_bytes) << "kill at " << kill_epoch;
    EXPECT_EQ(resumed_result.final_accuracy, ref_result.final_accuracy);
    EXPECT_EQ(resumed_result.time_s, ref_result.time_s);
    EXPECT_EQ(resumed_result.chaos.quorum_misses +
                  killed_result.chaos.quorum_misses,
              ref_result.chaos.quorum_misses);
  }
}

TEST(TrainerChaosTest, ChaosScheduleIsPartOfTheSnapshotFingerprint) {
  ChaosWorkload w;
  Trainer a = w.MakeTrainer(WithChaos(w.MakeConfig(8)));
  a.Run();
  const std::vector<uint8_t> bytes = StateBytes(a);

  // Same trainer shape, different chaos script: the snapshot must refuse.
  TrainerConfig other = WithChaos(w.MakeConfig(8));
  other.fault.chaos.churn_rate = 0.35;
  Trainer different_churn = w.MakeTrainer(std::move(other));
  util::ByteReader churn_reader(bytes);
  EXPECT_FALSE(different_churn.LoadState(&churn_reader).ok());

  TrainerConfig shifted = WithChaos(w.MakeConfig(8));
  shifted.fault.chaos.partitions[0].start_epoch = 3;
  Trainer different_window = w.MakeTrainer(std::move(shifted));
  util::ByteReader window_reader(bytes);
  EXPECT_FALSE(different_window.LoadState(&window_reader).ok());

  // Different quorum: also refused.
  TrainerConfig requorumed = WithChaos(w.MakeConfig(8));
  requorumed.quorum_fraction = 0.25;
  Trainer different_quorum = w.MakeTrainer(std::move(requorumed));
  util::ByteReader quorum_reader(bytes);
  EXPECT_FALSE(different_quorum.LoadState(&quorum_reader).ok());
}

// --- Fleet scale ------------------------------------------------------------

// bench_fig6-style synthetic fleet: one shared dataset, every client an
// 8-sample wrapped slice, K >= 1e5 with only the cohort materialized.
struct BigFleet {
  explicit BigFleet(int k) : clients(k) {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 30;
    spec.test_per_class = 2;
    data = data::GenerateSynthetic(spec);
    const int n = data.train.size();
    const int samples_per_client = 8;
    partition.resize(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      auto& slice = partition[static_cast<size_t>(i)];
      slice.reserve(samples_per_client);
      for (int j = 0; j < samples_per_client; ++j) {
        slice.push_back(static_cast<int>(
            (static_cast<int64_t>(i) * samples_per_client + j) % n));
      }
    }
  }

  Trainer MakeTrainer(TrainerConfig config) const {
    net::TopologyConfig tc;
    tc.lan_of = net::EvenLanAssignment(clients, std::max(1, clients / 1000));
    return Trainer(std::move(config), &data.train, partition, &data.test,
                   net::Topology(std::move(tc)),
                   net::MakeUniformFleet(clients),
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::make_unique<RandomMigrationPolicy>());
  }

  int clients;
  data::TrainTest data;
  data::Partition partition;
};

TEST(TrainerChaosScaleTest, ResumeUnderChurnAtFleetScale) {
  // K = 1e5, cohort 100: churned-out members that never materialized retire
  // in O(1) (no eviction work), joins mint from the aggregate, and a kill
  // mid-churn resumes bit-identically.
  constexpr int kFleet = 100000;
  BigFleet fleet(kFleet);

  TrainerConfig config;
  config.scheme_name = "chaos-scale-test";
  config.max_epochs = 4;
  config.agg_period = 2;
  config.cohort_size = 100;
  config.eval_every = 0;
  config.batch_size = 8;
  config.seed = 11;
  config.quorum_fraction = 0.5;
  config.fault.chaos.churn_rate = 0.2;
  config.fault.chaos.partitions.push_back({/*lan=*/0, /*start_epoch=*/2,
                                           /*duration_epochs=*/2});

  Trainer reference = fleet.MakeTrainer(config);
  const RunResult ref_result = reference.Run();
  EXPECT_FALSE(ref_result.interrupted);
  EXPECT_GT(ref_result.chaos.churn_absences, 0);
  // Only cohort members (plus carryover survivors) ever materialize.
  EXPECT_LE(reference.num_materialized_clients(), 3 * 100);
  const std::vector<uint8_t> ref_bytes = StateBytes(reference);

  Trainer killed = fleet.MakeTrainer(config);
  killed.SetEpochHook(
      [](const Trainer&, int epoch) { return epoch < 2; });
  const RunResult killed_result = killed.Run();
  EXPECT_TRUE(killed_result.interrupted);
  const std::vector<uint8_t> mid_bytes = StateBytes(killed);

  Trainer resumed = fleet.MakeTrainer(config);
  util::ByteReader reader(mid_bytes);
  ASSERT_TRUE(resumed.LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  const RunResult resumed_result = resumed.Run();
  EXPECT_FALSE(resumed_result.interrupted);
  EXPECT_EQ(StateBytes(resumed), ref_bytes);
  EXPECT_EQ(resumed_result.time_s, ref_result.time_s);
}

}  // namespace
}  // namespace fedmigr::fl
