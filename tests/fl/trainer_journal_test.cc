// Trainer-level flight-recorder contracts: the journal is byte-identical
// across FEDMIGR_INTRA_OP_THREADS settings and inter-client pool widths, a
// kill-anywhere resume replays to a byte-equal journal (including over a
// torn tail), the recorded lineage forms an acyclic DAG whose hops only
// reference minted blocks, a quarantined client's lineage terminates (no
// accepted uploads while quarantined), and client-level detail stays
// bounded by the cohort — not the fleet — at 100k clients.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/policies.h"
#include "fl/robust.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "net/topology.h"
#include "nn/gemm.h"
#include "nn/zoo.h"
#include "obs/journal.h"
#include "util/file.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {
namespace {

std::string TempPath(const std::string& name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + name;
}

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  Trainer MakeTrainer(SchemeSetup setup) {
    return Trainer(setup.config, &data.train, partition, &data.test,
                   topology, devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::move(setup.policy));
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

// A scheme exercising every journaled stream: migrations, dropout, faults
// (stragglers, corruption) and periodic aggregation.
SchemeSetup EventfulScheme() {
  SchemeSetup setup = MakeRandMigr(/*agg_period=*/2);
  setup.config.max_epochs = 6;
  setup.config.eval_every = 2;
  setup.config.seed = 77;
  setup.config.dropout_prob = 0.1;
  setup.config.fault.link_failure_prob = 0.1;
  setup.config.fault.corruption_prob = 0.05;
  setup.config.fault.straggler_prob = 0.2;
  setup.config.fault.seed = 13;
  return setup;
}

std::vector<uint8_t> StateBytes(const Trainer& trainer) {
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

// Full run with an in-memory journal; returns the sealed journal image.
std::vector<uint8_t> RunWithMemoryJournal(TinyWorkload* w, SchemeSetup setup) {
  obs::Journal journal(obs::Journal::Options{});
  EXPECT_TRUE(journal.Attach(0).ok());
  Trainer trainer = w->MakeTrainer(std::move(setup));
  trainer.SetJournal(&journal);
  const RunResult result = trainer.Run();
  EXPECT_FALSE(result.interrupted);
  return journal.memory_image();
}

class IntraOpThreadsGuard {
 public:
  IntraOpThreadsGuard() : saved_(nn::GetIntraOpThreads()) {}
  ~IntraOpThreadsGuard() { nn::SetIntraOpThreads(saved_); }

 private:
  int saved_;
};

TEST(TrainerJournalTest, JournalBytesIdenticalAcrossThreadSettings) {
  IntraOpThreadsGuard guard;

  nn::SetIntraOpThreads(1);
  SchemeSetup reference_setup = EventfulScheme();
  reference_setup.config.num_threads = 2;
  TinyWorkload w;
  const std::vector<uint8_t> reference =
      RunWithMemoryJournal(&w, std::move(reference_setup));
  ASSERT_FALSE(reference.empty());

  for (int intra_op : {2, 8}) {
    nn::SetIntraOpThreads(intra_op);
    SchemeSetup setup = EventfulScheme();
    setup.config.num_threads = 2;
    TinyWorkload twin;
    const std::vector<uint8_t> got =
        RunWithMemoryJournal(&twin, std::move(setup));
    EXPECT_EQ(got, reference) << "intra_op=" << intra_op;
  }

  nn::SetIntraOpThreads(2);
  for (int pool : {1, 4}) {
    SchemeSetup setup = EventfulScheme();
    setup.config.num_threads = pool;
    TinyWorkload twin;
    const std::vector<uint8_t> got =
        RunWithMemoryJournal(&twin, std::move(setup));
    EXPECT_EQ(got, reference) << "pool=" << pool;
  }
}

TEST(TrainerJournalTest, KillAnywhereResumeReplaysToByteEqualJournal) {
  TinyWorkload w;

  // Reference: the uninterrupted, sealed journal.
  const std::string ref_path = TempPath("fedmigr-trainer-journal-ref.fjrn");
  (void)util::RemoveFile(ref_path);
  {
    obs::Journal journal({ref_path, 1.0});
    ASSERT_TRUE(journal.Attach(0).ok());
    Trainer reference = w.MakeTrainer(EventfulScheme());
    reference.SetJournal(&journal);
    const RunResult result = reference.Run();
    EXPECT_FALSE(result.interrupted);
  }
  const util::Result<std::vector<uint8_t>> ref_bytes =
      util::ReadFileBytes(ref_path);
  ASSERT_TRUE(ref_bytes.ok());

  const std::string path = TempPath("fedmigr-trainer-journal-resume.fjrn");
  for (int kill_epoch : {2, 3, 5}) {
    (void)util::RemoveFile(path);

    // Killed: the hook stops the run after `kill_epoch`; the journal holds
    // exactly the committed epochs (Finish, no summary).
    std::vector<uint8_t> mid_bytes;
    {
      obs::Journal journal({path, 1.0});
      ASSERT_TRUE(journal.Attach(0).ok());
      Trainer killed = w.MakeTrainer(EventfulScheme());
      killed.SetJournal(&journal);
      killed.SetEpochHook([kill_epoch](const Trainer&, int epoch) {
        return epoch < kill_epoch;
      });
      const RunResult result = killed.Run();
      EXPECT_TRUE(result.interrupted);
      mid_bytes = StateBytes(killed);
    }

    // The documented crash mode: a torn half-frame after the last commit.
    {
      util::Result<std::vector<uint8_t>> bytes = util::ReadFileBytes(path);
      ASSERT_TRUE(bytes.ok());
      bytes->insert(bytes->end(), {0x46, 0x4A, 0x52, 0x4E, 0x01});
      ASSERT_TRUE(util::AtomicWriteFile(path, *bytes).ok());
    }

    // Resumed: a fresh trainer loads the snapshot state; the journal
    // attaches at the resume epoch, truncating the torn tail, and the run
    // completes to a sealed journal.
    {
      obs::Journal journal({path, 1.0});
      ASSERT_TRUE(journal.Attach(kill_epoch).ok());
      Trainer resumed = w.MakeTrainer(EventfulScheme());
      util::ByteReader reader(mid_bytes);
      ASSERT_TRUE(resumed.LoadState(&reader).ok());
      resumed.SetJournal(&journal);
      const RunResult result = resumed.Run();
      EXPECT_FALSE(result.interrupted);
    }

    const util::Result<std::vector<uint8_t>> got = util::ReadFileBytes(path);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *ref_bytes) << "kill at " << kill_epoch;
  }
  (void)util::RemoveFile(ref_path);
  (void)util::RemoveFile(path);
}

TEST(TrainerJournalTest, LineageIsAnAcyclicDagOverMintedBlocks) {
  TinyWorkload w;
  const std::vector<uint8_t> image =
      RunWithMemoryJournal(&w, EventfulScheme());
  const util::Result<obs::JournalContents> contents =
      obs::ParseJournal(image);
  ASSERT_TRUE(contents.ok());

  // Lineage id 1 is the store's construction-time mint, before the journal
  // opens; everything else must be minted by an earlier publish event.
  std::set<uint64_t> minted = {1};
  int64_t last_minted = 1;
  int publishes = 0;
  int hops = 0;
  for (const obs::JournalEvent& event : contents->events) {
    const auto kind = static_cast<obs::JournalEventKind>(event.kind);
    switch (kind) {
      case obs::JournalEventKind::kModelPublished:
        // Strictly increasing mints with parent < child: acyclic by
        // construction, and the parent is always an existing node.
        EXPECT_GT(static_cast<int64_t>(event.u), last_minted);
        EXPECT_LT(event.v, event.u);
        EXPECT_TRUE(minted.count(event.v) == 1) << "parent " << event.v;
        minted.insert(event.u);
        last_minted = static_cast<int64_t>(event.u);
        ++publishes;
        break;
      case obs::JournalEventKind::kMigrationC2C:
      case obs::JournalEventKind::kMigrationFallback:
      case obs::JournalEventKind::kMigrationRolledBack:
        // A hop moves a block that exists.
        EXPECT_TRUE(minted.count(event.u) == 1)
            << "hop lineage " << event.u << " at epoch " << event.epoch;
        ++hops;
        break;
      case obs::JournalEventKind::kRoundBegin:
      case obs::JournalEventKind::kModelDistributed:
        EXPECT_TRUE(minted.count(event.u) == 1)
            << "lineage " << event.u << " at epoch " << event.epoch;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(publishes, 0);
  EXPECT_GT(hops, 0);
}

TEST(TrainerJournalTest, QuarantinedClientLineageTerminates) {
  // Persistent sign-flip attackers under the defense profile: once a
  // client transitions into quarantine, the server accepts nothing more
  // from it until (if ever) it is paroled — in the event stream, no
  // kArrived upload may appear while its state is quarantined.
  TinyWorkload w;
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = 10;
  setup.config.eval_every = 10;
  setup.config.seed = 77;
  setup.config.fault.attack_mode = net::AttackMode::kSignFlip;
  setup.config.fault.attack_fraction = 0.2;
  setup.config.fault.seed = 13;
  ASSERT_TRUE(ParseRobustProfile("defense", &setup.config.robust));

  const std::vector<uint8_t> image =
      RunWithMemoryJournal(&w, std::move(setup));
  const util::Result<obs::JournalContents> contents =
      obs::ParseJournal(image);
  ASSERT_TRUE(contents.ok());

  std::map<int32_t, bool> quarantined;  // client -> currently quarantined
  int transitions_in = 0;
  int excluded_uploads = 0;
  for (const obs::JournalEvent& event : contents->events) {
    const auto kind = static_cast<obs::JournalEventKind>(event.kind);
    if (kind == obs::JournalEventKind::kQuarantineTransition) {
      const bool into = (event.b & 0xFF) == obs::kJournalStateQuarantined;
      quarantined[event.a] = into;
      if (into) ++transitions_in;
    } else if (kind == obs::JournalEventKind::kClientUploaded) {
      const auto status = static_cast<obs::UploadStatus>(event.b);
      if (quarantined[event.a]) {
        EXPECT_NE(status, obs::UploadStatus::kArrived)
            << "client " << event.a << " at epoch " << event.epoch;
        if (status == obs::UploadStatus::kExcludedQuarantined) {
          ++excluded_uploads;
        }
      }
    }
  }
  // The defense actually fired: attackers entered quarantine and their
  // subsequent uploads were refused at the door.
  EXPECT_GT(transitions_in, 0);
  EXPECT_GT(excluded_uploads, 0);
}

// bench_fig6-style synthetic fleet: one shared dataset, every client an
// 8-sample wrapped slice, K = 1e5 with only the cohort materialized.
struct BigFleet {
  explicit BigFleet(int k) : clients(k) {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 30;
    spec.test_per_class = 2;
    data = data::GenerateSynthetic(spec);
    const int n = data.train.size();
    const int samples_per_client = 8;
    partition.resize(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      auto& slice = partition[static_cast<size_t>(i)];
      slice.reserve(samples_per_client);
      for (int j = 0; j < samples_per_client; ++j) {
        slice.push_back(static_cast<int>(
            (static_cast<int64_t>(i) * samples_per_client + j) % n));
      }
    }
  }

  Trainer MakeTrainer(TrainerConfig config) const {
    net::TopologyConfig tc;
    tc.lan_of = net::EvenLanAssignment(clients, std::max(1, clients / 1000));
    return Trainer(std::move(config), &data.train, partition, &data.test,
                   net::Topology(std::move(tc)),
                   net::MakeUniformFleet(clients),
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::make_unique<RandomMigrationPolicy>());
  }

  int clients;
  data::TrainTest data;
  data::Partition partition;
};

TEST(TrainerJournalScaleTest, RecordCountIsBoundedByTheCohortNotTheFleet) {
  constexpr int kFleet = 100000;
  constexpr int kCohort = 100;
  constexpr int kEpochs = 4;
  BigFleet fleet(kFleet);

  TrainerConfig config;
  config.scheme_name = "journal-scale-test";
  config.max_epochs = kEpochs;
  config.agg_period = 2;
  config.cohort_size = kCohort;
  config.eval_every = 0;
  config.batch_size = 8;
  config.seed = 11;

  obs::Journal journal(obs::Journal::Options{});
  ASSERT_TRUE(journal.Attach(0).ok());
  Trainer trainer = fleet.MakeTrainer(config);
  trainer.SetJournal(&journal);
  const RunResult result = trainer.Run();
  EXPECT_FALSE(result.interrupted);

  // Per epoch, client-level detail covers only the materialized cohort:
  // at most distribute + participate + upload + one migration hop per
  // member, plus a constant handful of round-lifecycle records. Nothing
  // scales with the 100k idle clients.
  const int64_t per_epoch_bound = 6 * kCohort + 16;
  EXPECT_GT(journal.events_committed(), kEpochs);  // it did record
  EXPECT_LE(journal.events_committed(), kEpochs * per_epoch_bound);
  EXPECT_LT(journal.events_committed(), kFleet / 10);
  // The journal image itself stays kilobytes, not fleet-sized.
  EXPECT_LT(journal.memory_image().size(),
            static_cast<size_t>(kEpochs * per_epoch_bound * 64));

  // Sampling thins client detail without touching the reconciliation
  // kinds: the thinned journal still derives the same migration totals.
  obs::Journal sampled_journal(obs::Journal::Options{"", 0.25});
  ASSERT_TRUE(sampled_journal.Attach(0).ok());
  Trainer sampled_trainer = fleet.MakeTrainer(config);
  sampled_trainer.SetJournal(&sampled_journal);
  const RunResult sampled_result = sampled_trainer.Run();
  EXPECT_FALSE(sampled_result.interrupted);
  EXPECT_LT(sampled_journal.events_committed(), journal.events_committed());
  const obs::JournalSummary& full = journal.running_summary();
  const obs::JournalSummary& thin = sampled_journal.running_summary();
  EXPECT_EQ(thin.epochs_run, full.epochs_run);
  EXPECT_EQ(thin.migrations_planned, full.migrations_planned);
  EXPECT_EQ(thin.migrations_completed, full.migrations_completed);
  EXPECT_EQ(thin.model_publishes, full.model_publishes);
}

}  // namespace
}  // namespace fedmigr::fl
