// Byzantine-robust aggregation, update screening and quarantine: aggregator
// rules, the ingest screen, the reputation state machine, snapshot
// round-trips, and the end-to-end attack-vs-defense matrix on a tiny
// workload.

#include "fl/robust.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

nn::Sequential ConstantModel(float value) {
  util::Rng rng(1);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Dense>(3, 2, &rng));
  for (nn::Tensor* p : model.Params()) p->Fill(value);
  return model;
}

nn::Sequential NoisyModel(float center, float spread, uint64_t seed) {
  nn::Sequential model = ConstantModel(center);
  util::Rng rng(seed);
  for (nn::Tensor* p : model.Params()) {
    float* data = p->data();
    for (int64_t i = 0; i < p->size(); ++i) {
      data[i] = center + spread * static_cast<float>(rng.Normal());
    }
  }
  return model;
}

double MeanParam(const nn::Sequential& model) {
  double sum = 0.0;
  int64_t count = 0;
  for (const nn::Tensor* p : model.Params()) {
    const float* data = p->data();
    for (int64_t i = 0; i < p->size(); ++i) sum += data[i];
    count += p->size();
  }
  return sum / static_cast<double>(count);
}

// ---------------------------------------------------------------------------
// Aggregators
// ---------------------------------------------------------------------------

TEST(RobustAggregatorTest, MeanIsBitIdenticalToLegacyWeightedAverage) {
  const nn::Sequential a = NoisyModel(0.5f, 0.3f, 11);
  const nn::Sequential b = NoisyModel(-0.2f, 0.5f, 12);
  const nn::Sequential c = NoisyModel(1.0f, 0.1f, 13);
  const std::vector<const nn::Sequential*> models = {&a, &b, &c};
  const std::vector<double> weights = {3.0, 1.0, 2.5};

  nn::Sequential legacy = ConstantModel(0.0f);
  Server::WeightedAverage(models, weights, &legacy);
  nn::Sequential robust = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kMean)->Aggregate(models, weights, &robust);

  const std::vector<float> lhs = nn::FlattenParams(legacy);
  const std::vector<float> rhs = nn::FlattenParams(robust);
  ASSERT_EQ(lhs.size(), rhs.size());
  EXPECT_EQ(0, std::memcmp(lhs.data(), rhs.data(),
                           lhs.size() * sizeof(float)));
}

TEST(RobustAggregatorTest, TrimmedMeanDropsCoordinateExtremes) {
  // Four models at 1.0, one at 1000: trim_fraction 0.2 removes one value
  // from each end per coordinate, so the outlier never enters the mean.
  const nn::Sequential honest = ConstantModel(1.0f);
  const nn::Sequential outlier = ConstantModel(1000.0f);
  const std::vector<const nn::Sequential*> models = {&honest, &honest,
                                                     &honest, &honest,
                                                     &outlier};
  nn::Sequential out = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kTrimmedMean)
      ->Aggregate(models, std::vector<double>(5, 1.0), &out);
  EXPECT_NEAR(MeanParam(out), 1.0, 1e-6);
}

TEST(RobustAggregatorTest, CoordinateMedianResistsMinorityOutliers) {
  const nn::Sequential low = ConstantModel(-50.0f);
  const nn::Sequential mid = ConstantModel(2.0f);
  const nn::Sequential high = ConstantModel(90.0f);
  const std::vector<const nn::Sequential*> models = {&low, &mid, &high};
  nn::Sequential out = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kCoordinateMedian)
      ->Aggregate(models, std::vector<double>(3, 1.0), &out);
  EXPECT_NEAR(MeanParam(out), 2.0, 1e-6);
}

TEST(RobustAggregatorTest, KrumSelectsFromTheHonestCluster) {
  // Seven honest models clustered at 1.0, two attackers at -8: Krum's
  // score (sum of closest n-f-2 distances) puts every attacker far from
  // the cluster, so the selection lands inside it.
  std::vector<nn::Sequential> owned;
  for (int i = 0; i < 7; ++i) owned.push_back(NoisyModel(1.0f, 0.05f, 20 + i));
  owned.push_back(ConstantModel(-8.0f));
  owned.push_back(ConstantModel(-8.5f));
  std::vector<const nn::Sequential*> models;
  for (const auto& m : owned) models.push_back(&m);

  nn::Sequential out = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kKrum)
      ->Aggregate(models, std::vector<double>(models.size(), 1.0), &out);
  EXPECT_NEAR(MeanParam(out), 1.0, 0.2);

  nn::Sequential multi = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kMultiKrum)
      ->Aggregate(models, std::vector<double>(models.size(), 1.0), &multi);
  EXPECT_NEAR(MeanParam(multi), 1.0, 0.2);
}

TEST(RobustAggregatorTest, MatrixMeanFailsWhereRobustRulesHold) {
  // The acceptance matrix: n = 10 uploads, f = 2 sign-flipped attackers
  // (f < n/2 - 1). The weighted mean is dragged far off the honest
  // center; trimmed-mean, median and Krum all stay within a tight ball.
  std::vector<nn::Sequential> owned;
  for (int i = 0; i < 8; ++i) owned.push_back(NoisyModel(1.0f, 0.05f, 40 + i));
  owned.push_back(ConstantModel(-8.0f));  // sign-flip style poison
  owned.push_back(ConstantModel(-8.0f));
  std::vector<const nn::Sequential*> models;
  for (const auto& m : owned) models.push_back(&m);
  const std::vector<double> weights(models.size(), 1.0);

  const AggregatorKind robust_kinds[] = {AggregatorKind::kTrimmedMean,
                                         AggregatorKind::kCoordinateMedian,
                                         AggregatorKind::kKrum,
                                         AggregatorKind::kMultiKrum};
  for (AggregatorKind kind : robust_kinds) {
    nn::Sequential out = ConstantModel(0.0f);
    MakeAggregator(kind)->Aggregate(models, weights, &out);
    EXPECT_NEAR(MeanParam(out), 1.0, 0.2)
        << "rule " << AggregatorKindName(kind);
  }
  nn::Sequential mean = ConstantModel(0.0f);
  MakeAggregator(AggregatorKind::kMean)->Aggregate(models, weights, &mean);
  EXPECT_LT(MeanParam(mean), 0.0);  // two -8 uploads drag 8x(+1) below zero
}

TEST(RobustAggregatorTest, ParseRoundTrips) {
  const AggregatorKind kinds[] = {
      AggregatorKind::kMean, AggregatorKind::kTrimmedMean,
      AggregatorKind::kCoordinateMedian, AggregatorKind::kKrum,
      AggregatorKind::kMultiKrum};
  for (AggregatorKind kind : kinds) {
    AggregatorKind parsed;
    ASSERT_TRUE(ParseAggregatorKind(AggregatorKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_EQ(MakeAggregator(kind)->name(), AggregatorKindName(kind));
  }
  AggregatorKind unused;
  EXPECT_FALSE(ParseAggregatorKind("bogus", &unused));

  net::AttackMode mode;
  ASSERT_TRUE(net::ParseAttackMode("sign-flip", &mode));
  EXPECT_EQ(mode, net::AttackMode::kSignFlip);
  EXPECT_FALSE(net::ParseAttackMode("bogus", &mode));

  RobustConfig config;
  EXPECT_TRUE(ParseRobustProfile("off", &config));
  EXPECT_FALSE(config.active());
  EXPECT_TRUE(ParseRobustProfile("screen", &config));
  EXPECT_TRUE(config.screening.active());
  EXPECT_FALSE(config.reputation.enabled);
  EXPECT_TRUE(ParseRobustProfile("defense", &config));
  EXPECT_TRUE(config.reputation.enabled);
  EXPECT_FALSE(ParseRobustProfile("bogus", &config));
}

// ---------------------------------------------------------------------------
// Screening
// ---------------------------------------------------------------------------

TEST(ScreeningTest, NonFiniteUpdatesAlwaysRejected) {
  const nn::Sequential reference = ConstantModel(1.0f);
  const nn::Sequential honest = ConstantModel(1.1f);
  nn::Sequential poisoned = ConstantModel(1.0f);
  poisoned.Params()[0]->data()[0] = std::numeric_limits<float>::quiet_NaN();

  std::vector<const nn::Sequential*> kept;
  std::vector<double> kept_weights;
  std::vector<std::unique_ptr<nn::Sequential>> storage;
  RobustCounters counters;
  const auto verdicts = ScreenUpdates(
      ScreeningConfig{}, {&honest, &poisoned}, {1.0, 1.0}, reference, &kept,
      &kept_weights, &storage, &counters);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].accepted());
  EXPECT_EQ(verdicts[1].outcome, ScreeningOutcome::kNonFinite);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], &honest);
  EXPECT_EQ(counters.screened_updates, 2);
  EXPECT_EQ(counters.nonfinite_rejected, 1);
}

TEST(ScreeningTest, CosineGateCatchesSignFlip) {
  const nn::Sequential reference = NoisyModel(1.0f, 0.2f, 7);
  nn::Sequential flipped = reference;
  for (nn::Tensor* p : flipped.Params()) p->Scale(-1.0f);
  const nn::Sequential honest = NoisyModel(1.0f, 0.25f, 8);

  ScreeningConfig config;
  config.cosine_reject_below = -0.2;
  std::vector<const nn::Sequential*> kept;
  std::vector<double> kept_weights;
  std::vector<std::unique_ptr<nn::Sequential>> storage;
  RobustCounters counters;
  const auto verdicts =
      ScreenUpdates(config, {&honest, &flipped}, {1.0, 1.0}, reference, &kept,
                    &kept_weights, &storage, &counters);
  EXPECT_TRUE(verdicts[0].accepted());
  EXPECT_EQ(verdicts[1].outcome, ScreeningOutcome::kCosineOutlier);
  EXPECT_NEAR(verdicts[1].cosine, -1.0, 1e-3);
  EXPECT_EQ(counters.cosine_rejected, 1);
}

TEST(ScreeningTest, NormOutlierRejectedAndClipApplied) {
  const nn::Sequential reference = ConstantModel(0.0f);
  const nn::Sequential small_a = ConstantModel(0.1f);
  const nn::Sequential small_b = ConstantModel(-0.1f);
  const nn::Sequential small_c = ConstantModel(0.12f);
  const nn::Sequential huge = ConstantModel(50.0f);

  ScreeningConfig config;
  config.norm_reject_factor = 4.0;
  std::vector<const nn::Sequential*> kept;
  std::vector<double> kept_weights;
  std::vector<std::unique_ptr<nn::Sequential>> storage;
  RobustCounters counters;
  auto verdicts = ScreenUpdates(config, {&small_a, &small_b, &small_c, &huge},
                                {1.0, 1.0, 1.0, 1.0}, reference, &kept,
                                &kept_weights, &storage, &counters);
  EXPECT_EQ(verdicts[3].outcome, ScreeningOutcome::kNormOutlier);
  EXPECT_EQ(counters.norm_rejected, 1);
  EXPECT_EQ(kept.size(), 3u);

  // Clipping: same outlier, but with a clip ball instead of rejection —
  // the update is kept, scaled back onto the ball.
  ScreeningConfig clip_config;
  clip_config.clip_norm = 1.0;
  kept.clear();
  kept_weights.clear();
  storage.clear();
  RobustCounters clip_counters;
  verdicts = ScreenUpdates(clip_config, {&small_a, &huge}, {1.0, 1.0},
                           reference, &kept, &kept_weights, &storage,
                           &clip_counters);
  EXPECT_EQ(verdicts[1].outcome, ScreeningOutcome::kClipped);
  EXPECT_TRUE(verdicts[1].accepted());
  EXPECT_EQ(clip_counters.norm_clipped, 1);
  ASSERT_EQ(kept.size(), 2u);
  // The clipped survivor's delta norm sits on the ball.
  double delta2 = 0.0;
  const std::vector<float> clipped = nn::FlattenParams(*kept[1]);
  for (float v : clipped) delta2 += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(delta2), 1.0, 1e-4);
}

// ---------------------------------------------------------------------------
// Reputation state machine
// ---------------------------------------------------------------------------

TEST(ReputationTest, AlwaysFlaggedClientQuarantinedAtPatience) {
  ReputationConfig config;
  config.enabled = true;
  config.patience = 3;
  config.quarantine_rounds = 4;
  ReputationTracker tracker(config, 2);
  RobustCounters counters;

  for (int round = 1; round <= config.patience; ++round) {
    EXPECT_TRUE(tracker.Eligible(0)) << "round " << round;
    tracker.ReportFlagged(0, &counters);
    tracker.ReportClean(1);
    tracker.AdvanceRound(&counters);
  }
  // Quarantined at exactly round `patience` — well before 2x patience.
  EXPECT_FALSE(tracker.Eligible(0));
  EXPECT_EQ(tracker.state(0), ReputationState::kQuarantined);
  EXPECT_EQ(tracker.first_quarantine_round(0), config.patience);
  EXPECT_LT(tracker.first_quarantine_round(0), 2 * config.patience);
  EXPECT_EQ(counters.quarantines, 1);
  // The clean bystander never left healthy.
  EXPECT_EQ(tracker.state(1), ReputationState::kHealthy);
}

TEST(ReputationTest, NoClientStaysInSuspectForever) {
  // Strikes never reset while suspect, so any flag/clean sequence leaves
  // the state within patience^2 reports: either `patience` flags
  // accumulate (quarantine) or `patience` consecutive cleans land first
  // (healthy). Fuzz random sequences and check the bound.
  ReputationConfig config;
  config.enabled = true;
  config.patience = 3;
  config.quarantine_rounds = 2;
  const int bound = config.patience * config.patience;

  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    ReputationTracker tracker(config, 1);
    RobustCounters counters;
    int consecutive_suspect = 0;
    for (int round = 0; round < 200; ++round) {
      if (tracker.state(0) == ReputationState::kSuspect) {
        ++consecutive_suspect;
        ASSERT_LE(consecutive_suspect, bound) << "trial " << trial;
      } else {
        consecutive_suspect = 0;
      }
      if (tracker.Eligible(0)) {
        if (rng.Bernoulli(0.5)) {
          tracker.ReportFlagged(0, &counters);
        } else {
          tracker.ReportClean(0);
        }
      }
      tracker.AdvanceRound(&counters);
    }
  }
}

TEST(ReputationTest, RehabilitationRestoresEligibilityAndRelapsesOnFlag) {
  ReputationConfig config;
  config.enabled = true;
  config.patience = 2;
  config.quarantine_rounds = 3;
  ReputationTracker tracker(config, 1);
  RobustCounters counters;

  // Straight to quarantine.
  for (int i = 0; i < config.patience; ++i) {
    tracker.ReportFlagged(0, &counters);
    tracker.AdvanceRound(&counters);
  }
  ASSERT_EQ(tracker.state(0), ReputationState::kQuarantined);

  // Serve the full quarantine; eligibility comes back as rehabilitating.
  for (int i = 0; i < config.quarantine_rounds; ++i) {
    EXPECT_FALSE(tracker.Eligible(0));
    tracker.AdvanceRound(&counters);
  }
  EXPECT_EQ(tracker.state(0), ReputationState::kRehabilitating);
  EXPECT_TRUE(tracker.Eligible(0));

  // One flag during rehabilitation relapses immediately.
  tracker.ReportFlagged(0, &counters);
  EXPECT_EQ(tracker.state(0), ReputationState::kQuarantined);
  EXPECT_EQ(counters.quarantines, 2);
  tracker.AdvanceRound(&counters);  // the round that triggered the relapse

  // Serve again, then a clean streak of `patience` promotes to healthy.
  for (int i = 0; i < config.quarantine_rounds; ++i) {
    tracker.AdvanceRound(&counters);
  }
  ASSERT_EQ(tracker.state(0), ReputationState::kRehabilitating);
  for (int i = 0; i < config.patience; ++i) {
    tracker.ReportClean(0);
    tracker.AdvanceRound(&counters);
  }
  EXPECT_EQ(tracker.state(0), ReputationState::kHealthy);
  EXPECT_TRUE(tracker.Eligible(0));
  EXPECT_EQ(counters.rehabilitations, 1);
}

TEST(ReputationTest, StateRoundTripsByteEqual) {
  ReputationConfig config;
  config.enabled = true;
  config.patience = 2;
  config.quarantine_rounds = 3;
  ReputationTracker tracker(config, 4);
  RobustCounters counters;
  // Mixed states: quarantined, suspect, healthy, rehabilitating-ish.
  tracker.ReportFlagged(0, &counters);
  tracker.ReportFlagged(1, &counters);
  tracker.AdvanceRound(&counters);
  tracker.ReportFlagged(0, &counters);
  tracker.ReportClean(2);
  tracker.AdvanceRound(&counters);

  util::ByteWriter first;
  tracker.SaveState(&first);

  ReputationTracker restored(config, 4);
  util::ByteReader reader(first.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  util::ByteWriter second;
  restored.SaveState(&second);
  EXPECT_EQ(first.bytes(), second.bytes());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(restored.state(i), tracker.state(i));
    EXPECT_EQ(restored.first_quarantine_round(i),
              tracker.first_quarantine_round(i));
  }

  // Client-count mismatch is rejected.
  ReputationTracker wrong(config, 5);
  util::ByteReader bad(first.bytes());
  EXPECT_FALSE(wrong.LoadState(&bad).ok());
}

TEST(RobustCountersTest, RoundTripsByteEqual) {
  RobustCounters counters;
  counters.screened_updates = 17;
  counters.nonfinite_rejected = 3;
  counters.norm_clipped = 2;
  counters.cosine_rejected = 5;
  counters.quarantines = 1;
  util::ByteWriter writer;
  SaveRobustCounters(counters, &writer);
  RobustCounters restored;
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(LoadRobustCounters(&reader, &restored).ok());
  util::ByteWriter again;
  SaveRobustCounters(restored, &again);
  EXPECT_EQ(writer.bytes(), again.bytes());
  EXPECT_EQ(restored.cosine_rejected, 5);
}

// ---------------------------------------------------------------------------
// End-to-end: attacks vs defenses on a tiny workload
// ---------------------------------------------------------------------------

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  Trainer MakeTrainer(SchemeSetup setup) {
    return Trainer(setup.config, &data.train, partition, &data.test, topology,
                   devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::move(setup.policy));
  }

  RunResult Run(SchemeSetup setup) {
    Trainer trainer = MakeTrainer(std::move(setup));
    return trainer.Run();
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

SchemeSetup AttackedFedAvg(net::AttackMode mode, double fraction,
                           int epochs = 8) {
  SchemeSetup setup = MakeFedAvg();
  setup.config.max_epochs = epochs;
  setup.config.eval_every = epochs;
  setup.config.fault.attack_mode = mode;
  setup.config.fault.attack_fraction = fraction;
  return setup;
}

TEST(RobustTrainerTest, InertConfigMatchesLegacyTrajectoryBitIdentical) {
  // The whole robustness layer at defaults must not move a single bit of
  // the clean trajectory (the screen runs, but only observes).
  TinyWorkload w;
  SchemeSetup plain = MakeRandMigr(2);
  plain.config.max_epochs = 4;
  const RunResult a = w.Run(std::move(plain));

  SchemeSetup with_layer = MakeRandMigr(2);
  with_layer.config.max_epochs = 4;
  with_layer.config.robust = RobustConfig{};  // explicit defaults
  const RunResult b = w.Run(std::move(with_layer));

  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss);
    EXPECT_DOUBLE_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy);
  }
  EXPECT_EQ(b.robust.nonfinite_rejected, 0);
  EXPECT_EQ(b.robust.quarantines, 0);
  EXPECT_GT(b.robust.screened_updates, 0);  // the gate observed every upload
}

TEST(RobustTrainerTest, OneNanClientDoesNotPoisonTheRun) {
  // Satellite regression: a single client uploading NaN (diverged or
  // bricked) must be dropped at ingest by the always-on gate — with the
  // *default* inert config — and the run must keep converging.
  TinyWorkload w;
  const RunResult result =
      w.Run(AttackedFedAvg(net::AttackMode::kNanInjection, 0.1));
  EXPECT_EQ(result.epochs_run, 8);
  EXPECT_GT(result.robust.attacked_updates, 0);
  EXPECT_GT(result.robust.nonfinite_rejected, 0);
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  EXPECT_TRUE(std::isfinite(result.history.back().train_loss));
  // Nine honest clients keep learning: accuracy stays a real measurement.
  EXPECT_GT(result.final_accuracy, 0.0);
}

TEST(RobustTrainerTest, SignFlipMatrixMeanDegradesRobustRulesTolerate) {
  // 20% sign-flip on FedAvg: the weighted mean collapses, trimmed-mean and
  // Krum stay within a couple of accuracy points of their own clean runs.
  TinyWorkload w;
  auto run = [&w](AggregatorKind kind, bool attacked) {
    SchemeSetup setup = AttackedFedAvg(net::AttackMode::kSignFlip,
                                       attacked ? 0.2 : 0.0, 10);
    setup.config.eval_every = 5;
    setup.config.robust.aggregator = kind;
    return w.Run(std::move(setup));
  };

  const RunResult mean_clean = run(AggregatorKind::kMean, false);
  const RunResult mean_attacked = run(AggregatorKind::kMean, true);
  EXPECT_EQ(mean_attacked.robust.attacked_updates, 2 * 10);
  // Mean demonstrably degrades under the flip.
  EXPECT_LT(mean_attacked.best_accuracy, mean_clean.best_accuracy - 0.02);

  for (AggregatorKind kind :
       {AggregatorKind::kTrimmedMean, AggregatorKind::kKrum}) {
    const RunResult clean = run(kind, false);
    const RunResult attacked = run(kind, true);
    EXPECT_GE(attacked.best_accuracy, clean.best_accuracy - 0.02)
        << "rule " << AggregatorKindName(kind);
  }
}

TEST(RobustTrainerTest, DefenseQuarantinesEveryAttackerWithinPatience) {
  // Screening + reputation against a persistent sign-flip minority: every
  // attacker must be quarantined before round 2x patience, and quarantined
  // uploads must stop costing traffic.
  TinyWorkload w;
  SchemeSetup setup = AttackedFedAvg(net::AttackMode::kSignFlip, 0.2, 10);
  ASSERT_TRUE(ParseRobustProfile("defense", &setup.config.robust));
  const int patience = setup.config.robust.reputation.patience;
  const RunResult result = w.Run(std::move(setup));

  ASSERT_EQ(result.first_quarantine_round.size(), 10u);
  int quarantined = 0;
  for (int round : result.first_quarantine_round) {
    if (round < 0) continue;
    ++quarantined;
    EXPECT_LE(round, 2 * patience);
  }
  // 20% of 10 clients = both attackers caught. A persistent attacker that
  // serves its quarantine and relapses re-enters quarantine, so the
  // transition counter can exceed the distinct-client count.
  EXPECT_EQ(quarantined, 2);
  EXPECT_GE(result.robust.quarantines, 2);
  EXPECT_GT(result.robust.cosine_rejected, 0);
  EXPECT_GT(result.robust.quarantine_excluded, 0);
}

TEST(RobustTrainerTest, QuarantinedClientsLeaveTheMigrationActionSpace) {
  // Under a migration scheme, a quarantined client must neither send nor
  // receive C2C moves. NaN attackers are flagged every aggregation round,
  // so with the defense profile they end up quarantined, after which no
  // migration can carry their replica to an honest client. Migrations
  // *before* the first quarantine can still contaminate an honest client —
  // FedMigr's unique exposure — but the contaminated client then uploads
  // non-finite models itself, gets flagged, and is quarantined too: the
  // blast radius is contained either way, and the run stays measurable.
  TinyWorkload w;
  SchemeSetup setup = MakeRandMigr(3);
  setup.config.max_epochs = 12;
  setup.config.eval_every = 6;
  setup.config.fault.attack_mode = net::AttackMode::kNanInjection;
  setup.config.fault.attack_fraction = 0.2;
  ASSERT_TRUE(ParseRobustProfile("defense", &setup.config.robust));
  const RunResult result = w.Run(std::move(setup));

  EXPECT_EQ(result.epochs_run, 12);
  // Both attackers quarantined (plus possibly a client contaminated by a
  // pre-quarantine migration), never the whole fleet.
  int quarantined = 0;
  for (int round : result.first_quarantine_round) {
    if (round >= 0) ++quarantined;
  }
  EXPECT_GE(quarantined, 2);
  EXPECT_LE(quarantined, 4);
  // The run stays healthy: finite metrics, and the honest majority's
  // models never went non-finite (the virtual aggregate stays measurable).
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  EXPECT_GT(result.final_accuracy, 0.0);
}

TEST(RobustTrainerTest, ReputationStateSurvivesSnapshotByteEqual) {
  // Snapshot round-trip with live quarantine state: save mid-run, restore
  // into a fresh trainer, and the re-serialized state must be byte-equal.
  TinyWorkload w;
  auto make_setup = [] {
    SchemeSetup setup = AttackedFedAvg(net::AttackMode::kSignFlip, 0.2, 6);
    ParseRobustProfile("defense", &setup.config.robust);
    return setup;
  };

  Trainer trainer = w.MakeTrainer(make_setup());
  trainer.SetEpochHook(
      [](const Trainer&, int epoch) { return epoch < 4; });
  RunResult partial = trainer.Run();
  ASSERT_TRUE(partial.interrupted);

  util::ByteWriter saved;
  trainer.SaveState(&saved);

  Trainer restored = w.MakeTrainer(make_setup());
  util::ByteReader reader(saved.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  util::ByteWriter resaved;
  restored.SaveState(&resaved);
  EXPECT_EQ(saved.bytes(), resaved.bytes());

  // And the restored run finishes identically to an uninterrupted one.
  const RunResult continued = restored.Run();
  const RunResult reference = w.Run(make_setup());
  ASSERT_EQ(continued.history.size(), reference.history.size());
  for (size_t i = 0; i < continued.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(continued.history[i].train_loss,
                     reference.history[i].train_loss);
  }
  EXPECT_EQ(continued.robust.quarantines, reference.robust.quarantines);
  EXPECT_EQ(continued.first_quarantine_round,
            reference.first_quarantine_round);
}

}  // namespace
}  // namespace fedmigr::fl
