// Property sweeps over the trainer: traffic conservation, budget
// monotonicity and scheme invariants across a grid of configurations.

#include <tuple>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct SharedData {
  SharedData() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 16;
    spec.test_per_class = 4;
    data = data::GenerateSynthetic(spec);
  }
  data::TrainTest data;
};

SharedData& Shared() {
  static SharedData* shared = new SharedData;
  return *shared;
}

RunResult RunConfig(const std::string& scheme, int agg_period, int epochs,
                    uint64_t seed) {
  SchemeSetup setup = MakeSchemeByName(scheme, agg_period);
  setup.config.max_epochs = epochs;
  setup.config.eval_every = 0;  // metrics only; no evaluation cost
  setup.config.seed = seed;
  const net::Topology topology = net::MakeC10SimTopology();
  util::Rng rng(seed);
  data::Partition partition =
      data::PartitionByClassShards(Shared().data.train, 10, 1, &rng);
  Trainer trainer(setup.config, &Shared().data.train, std::move(partition),
                  &Shared().data.test, topology, net::MakeUniformFleet(10),
                  [](util::Rng* r) { return nn::MakeC10Net(r); },
                  std::move(setup.policy));
  return trainer.Run();
}

class SchemeSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SchemeSweep, TrafficSplitsAreConsistent) {
  const auto [scheme, agg_period] = GetParam();
  const RunResult result = RunConfig(scheme, agg_period, 6, 21);
  // Total = C2S + C2C, and the accountant's view matches the summary.
  EXPECT_NEAR(result.traffic_gb, result.c2s_gb + result.c2c_gb, 1e-12);
  EXPECT_NEAR(result.traffic.total_gb(), result.traffic_gb, 1e-12);
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_FALSE(result.history.empty());
}

TEST_P(SchemeSweep, AggregationCadenceHonored) {
  const auto [scheme, agg_period] = GetParam();
  const RunResult result = RunConfig(scheme, agg_period, 6, 22);
  for (const auto& record : result.history) {
    const bool should_aggregate =
        record.epoch % agg_period == 0 || record.epoch == 6;
    EXPECT_EQ(record.aggregated, should_aggregate)
        << scheme << " epoch " << record.epoch;
    if (!record.aggregated && scheme != std::string("fedavg") &&
        scheme != std::string("fedprox")) {
      EXPECT_GT(record.migrations, 0) << scheme;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeSweep,
    ::testing::Values(std::make_tuple("fedavg", 1),
                      std::make_tuple("fedprox", 1),
                      std::make_tuple("fedswap", 2),
                      std::make_tuple("fedswap", 3),
                      std::make_tuple("randmigr", 2),
                      std::make_tuple("randmigr", 3),
                      std::make_tuple("fedmigr-flmm", 3),
                      std::make_tuple("maxemd", 2)));

TEST(TrainerPropertyTest, MoreEpochsNeverLessTraffic) {
  const RunResult short_run = RunConfig("randmigr", 2, 4, 23);
  const RunResult long_run = RunConfig("randmigr", 2, 8, 23);
  EXPECT_GT(long_run.traffic_gb, short_run.traffic_gb);
  EXPECT_GT(long_run.time_s, short_run.time_s);
}

TEST(TrainerPropertyTest, FedAvgBeatsMigrationOnC2sPerEpoch) {
  // Per epoch, FedAvg moves 2K models over the WAN while migration schemes
  // move only the periodic aggregations — the core bandwidth claim.
  const RunResult fedavg = RunConfig("fedavg", 1, 6, 24);
  const RunResult randmigr = RunConfig("randmigr", 3, 6, 24);
  EXPECT_LT(randmigr.c2s_gb, fedavg.c2s_gb);
}

TEST(TrainerPropertyTest, SwapCostsMoreWanThanMigration) {
  const RunResult fedswap = RunConfig("fedswap", 3, 6, 25);
  const RunResult randmigr = RunConfig("randmigr", 3, 6, 25);
  EXPECT_GT(fedswap.c2s_gb, randmigr.c2s_gb);
  EXPECT_EQ(fedswap.c2c_gb, 0.0);
}

}  // namespace
}  // namespace fedmigr::fl
