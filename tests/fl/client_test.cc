#include "fl/client.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct Fixture {
  Fixture() : data(data::GenerateSynthetic(data::C10Spec())) {}
  data::TrainTest data;
};

std::vector<int> FirstN(int n) {
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  return idx;
}

TEST(ClientTest, BasicAccessors) {
  Fixture f;
  Client client(3, &f.data.train, FirstN(50), 0.05, 0.0, 1);
  EXPECT_EQ(client.id(), 3);
  EXPECT_EQ(client.num_samples(), 50);
  EXPECT_EQ(client.label_distribution().size(), 10u);
}

TEST(ClientTest, LabelDistributionSumsToOne) {
  Fixture f;
  Client client(0, &f.data.train, FirstN(40), 0.05, 0.0, 2);
  double sum = 0.0;
  for (double p : client.label_distribution()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ClientTest, LocalUpdateReducesLoss) {
  Fixture f;
  Client client(0, &f.data.train, FirstN(100), 0.1, 0.0, 3);
  util::Rng rng(4);
  client.SetModel(nn::MakeC10Net(&rng));
  LocalUpdateOptions options;
  options.batch_size = 16;
  double first = 0.0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    const auto result = client.LocalUpdate(options);
    if (epoch == 0) first = result.mean_loss;
    EXPECT_EQ(result.samples_processed, 100);
  }
  const auto last = client.LocalUpdate(options);
  EXPECT_LT(last.mean_loss, first);
}

TEST(ClientTest, LocalUpdateMovesParameters) {
  Fixture f;
  Client client(0, &f.data.train, FirstN(32), 0.05, 0.0, 5);
  util::Rng rng(6);
  const nn::Sequential initial = nn::MakeC10Net(&rng);
  client.SetModel(initial);
  (void)client.LocalUpdate({});
  EXPECT_GT(nn::Sequential::ParamDistance(client.model(), initial), 0.0);
}

TEST(ClientTest, TauMultipliesWork) {
  Fixture f;
  Client client(0, &f.data.train, FirstN(30), 0.05, 0.0, 7);
  util::Rng rng(8);
  client.SetModel(nn::MakeC10Net(&rng));
  LocalUpdateOptions options;
  options.epochs = 3;
  const auto result = client.LocalUpdate(options);
  EXPECT_EQ(result.samples_processed, 90);
}

TEST(ClientTest, EmptyClientIsNoop) {
  Fixture f;
  Client client(0, &f.data.train, {}, 0.05, 0.0, 9);
  const auto result = client.LocalUpdate({});
  EXPECT_EQ(result.samples_processed, 0);
  EXPECT_EQ(result.mean_loss, 0.0);
}

TEST(ClientTest, FedProxPullsTowardReference) {
  Fixture f;
  util::Rng rng(10);
  const nn::Sequential reference = nn::MakeC10Net(&rng);

  auto run = [&](double mu) {
    Client client(0, &f.data.train, FirstN(64), 0.05, 0.0, 11);
    client.SetModel(reference);
    client.SetProximalReference(reference);
    LocalUpdateOptions options;
    options.fedprox_mu = mu;
    options.epochs = 5;
    (void)client.LocalUpdate(options);
    return nn::Sequential::ParamDistance(client.model(), reference);
  };
  // A strong proximal term keeps the iterate closer to the reference.
  EXPECT_LT(run(10.0), run(0.0));
}

TEST(ClientTest, SetModelReplacesParameters) {
  Fixture f;
  Client client(0, &f.data.train, FirstN(10), 0.05, 0.0, 12);
  util::Rng rng(13);
  const nn::Sequential a = nn::MakeC10Net(&rng);
  const nn::Sequential b = nn::MakeC10Net(&rng);
  client.SetModel(a);
  client.SetModel(b);
  EXPECT_EQ(nn::Sequential::ParamDistance(client.model(), b), 0.0);
}

}  // namespace
}  // namespace fedmigr::fl
