#include "fl/policies.h"

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "net/budget.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

// A 10-client context with one-class-per-client skew: client k's data is
// class k, the model hosted at k has only seen class k so far.
struct ContextFixture {
  ContextFixture() : topology(net::MakeC10SimTopology()), rng(99) {
    const int k = 10;
    client_dists.resize(k, std::vector<double>(k, 0.0));
    for (int i = 0; i < k; ++i) {
      client_dists[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
    }
    model_dists = client_dists;
    ctx.topology = &topology;
    ctx.model_bytes = 100000;
    ctx.client_distributions = &client_dists;
    ctx.model_distributions = &model_dists;
    ctx.budget = &budget;
    ctx.rng = &rng;
  }

  net::Topology topology;
  net::Budget budget;
  util::Rng rng;
  std::vector<std::vector<double>> client_dists;
  std::vector<std::vector<double>> model_dists;
  PolicyContext ctx;
};

TEST(MigrationGainMatrixTest, ZeroDiagonalMaxOffDiagonal) {
  ContextFixture f;
  const auto gain = MigrationGainMatrix(f.ctx);
  for (size_t i = 0; i < gain.size(); ++i) {
    EXPECT_EQ(gain[i][i], 0.0);
    for (size_t j = 0; j < gain.size(); ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(gain[i][j], 2.0);  // disjoint singletons
      }
    }
  }
}

TEST(MigrationGainMatrixTest, SeenDataReducesGain) {
  ContextFixture f;
  // Model at 0 has already seen classes 0 and 1 equally.
  f.model_dists[0][0] = 0.5;
  f.model_dists[0][1] = 0.5;
  const auto gain = MigrationGainMatrix(f.ctx);
  EXPECT_LT(gain[0][1], gain[0][2]);
}

TEST(NoMigrationPolicyTest, AlwaysIdentity) {
  ContextFixture f;
  NoMigrationPolicy policy;
  EXPECT_TRUE(policy.Plan(f.ctx).IsIdentity());
}

TEST(RandomMigrationPolicyTest, ProducesPermutation) {
  ContextFixture f;
  RandomMigrationPolicy policy;
  for (int trial = 0; trial < 5; ++trial) {
    const MigrationPlan plan = policy.Plan(f.ctx);
    EXPECT_TRUE(plan.IsPermutation());
  }
}

TEST(RandomMigrationPolicyTest, PlansVaryAcrossCalls) {
  ContextFixture f;
  RandomMigrationPolicy policy;
  const MigrationPlan a = policy.Plan(f.ctx);
  const MigrationPlan b = policy.Plan(f.ctx);
  EXPECT_NE(a.incoming, b.incoming);
}

TEST(FedSwapPolicyTest, PairwiseSwapViaServer) {
  ContextFixture f;
  FedSwapPolicy policy;
  const MigrationPlan plan = policy.Plan(f.ctx);
  EXPECT_TRUE(plan.via_server);
  EXPECT_TRUE(plan.IsPermutation());
  // Swaps are involutions: applying incoming twice is the identity.
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    const int i = plan.incoming[j];
    EXPECT_EQ(plan.incoming[static_cast<size_t>(i)], static_cast<int>(j));
  }
  // Even client count: everyone is paired.
  EXPECT_EQ(plan.NumMoves(), 10);
}

TEST(LanConstrainedPolicyTest, CrossLanMovesOnly) {
  ContextFixture f;
  LanConstrainedPolicy policy(/*cross_lan=*/true);
  const MigrationPlan plan = policy.Plan(f.ctx);
  EXPECT_TRUE(plan.IsPermutation());
  int cross = 0;
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    const int i = plan.incoming[j];
    if (i == static_cast<int>(j)) continue;
    if (!f.topology.SameLan(i, static_cast<int>(j))) ++cross;
  }
  // With 3 LANs of sizes 4/3/3 a full cross-LAN permutation exists.
  EXPECT_GE(cross, 8);
}

TEST(LanConstrainedPolicyTest, WithinLanMovesOnly) {
  ContextFixture f;
  LanConstrainedPolicy policy(/*cross_lan=*/false);
  const MigrationPlan plan = policy.Plan(f.ctx);
  EXPECT_TRUE(plan.IsPermutation());
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    const int i = plan.incoming[j];
    if (i == static_cast<int>(j)) continue;
    EXPECT_TRUE(f.topology.SameLan(i, static_cast<int>(j)));
  }
}

TEST(MaxEmdPolicyTest, PrefersUnseenData) {
  ContextFixture f;
  // Make destination 5 uniquely attractive for model 0 by making every
  // other gain tiny: model 0 has seen everything except class 5.
  for (int c = 0; c < 10; ++c) {
    f.model_dists[0][static_cast<size_t>(c)] = c == 5 ? 0.0 : 1.0 / 9.0;
  }
  MaxEmdPolicy policy;
  const MigrationPlan plan = policy.Plan(f.ctx);
  EXPECT_EQ(plan.incoming[5], 0);
}

TEST(FlmmPolicyTest, ValidPlanUnderBudget) {
  ContextFixture f;
  FlmmPolicy policy;
  const MigrationPlan plan = policy.Plan(f.ctx);
  EXPECT_EQ(plan.incoming.size(), 10u);
  // Destinations are conflict-free by construction.
  std::vector<int> receives(10, 0);
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    if (plan.incoming[j] != static_cast<int>(j)) {
      ++receives[static_cast<size_t>(j)];
    }
  }
  for (int r : receives) EXPECT_LE(r, 1);
  EXPECT_FALSE(plan.via_server);
}

TEST(FlmmPolicyTest, NearlyExhaustedBudgetSuppressesMigration) {
  ContextFixture f;
  // Make the gains modest so the inflated comm penalty can dominate.
  for (auto& row : f.model_dists) {
    for (auto& p : row) p = 0.1;  // near-uniform models: small gains
  }
  net::Budget tight(1e12, 1000.0);
  tight.ConsumeBandwidth(990.0);  // 99% consumed
  f.ctx.budget = &tight;
  FlmmPolicy policy;
  const MigrationPlan tight_plan = policy.Plan(f.ctx);

  net::Budget fresh(1e12, 1000.0);
  f.ctx.budget = &fresh;
  const MigrationPlan fresh_plan = policy.Plan(f.ctx);
  EXPECT_LE(tight_plan.NumMoves(), fresh_plan.NumMoves());
}

TEST(PolicyNamesTest, StableIdentifiers) {
  EXPECT_EQ(NoMigrationPolicy().name(), "none");
  EXPECT_EQ(RandomMigrationPolicy().name(), "random");
  EXPECT_EQ(FedSwapPolicy().name(), "fedswap");
  EXPECT_EQ(LanConstrainedPolicy(true).name(), "cross-lan");
  EXPECT_EQ(LanConstrainedPolicy(false).name(), "within-lan");
  EXPECT_EQ(MaxEmdPolicy().name(), "max-emd");
  EXPECT_EQ(FlmmPolicy().name(), "flmm");
}

}  // namespace
}  // namespace fedmigr::fl
