// The intra-op determinism contract, asserted at the trainer level: a full
// FL run — client updates on the inter-client pool, evaluation on the main
// thread through the intra-op pool — must produce byte-identical serialized
// state at every FEDMIGR_INTRA_OP_THREADS setting in {1, 2, 8} and at both
// inter-client pool widths. This is the property the kill-and-resume
// harness and every FedMigr-vs-FedAvg comparison rest on; run under the
// `tsan` preset it doubles as the race gate for the nested-pool hot path.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "nn/gemm.h"
#include "nn/zoo.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {
namespace {

struct TinyWorkload {
  TinyWorkload() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    topology = net::MakeC10SimTopology();
    devices = net::MakeUniformFleet(10);
    util::Rng rng(3);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  Trainer MakeTrainer(SchemeSetup setup) {
    return Trainer(setup.config, &data.train, partition, &data.test,
                   topology, devices,
                   [](util::Rng* rng) { return nn::MakeC10Net(rng); },
                   std::move(setup.policy));
  }

  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
};

SchemeSetup SmallScheme(int num_threads) {
  SchemeSetup setup = MakeRandMigr(/*agg_period=*/2);
  setup.config.max_epochs = 4;
  setup.config.eval_every = 2;
  setup.config.seed = 42;
  setup.config.num_threads = num_threads;
  return setup;
}

std::vector<uint8_t> RunAndSerialize(int inter_client_threads) {
  TinyWorkload w;
  Trainer trainer = w.MakeTrainer(SmallScheme(inter_client_threads));
  const RunResult result = trainer.Run();
  EXPECT_FALSE(result.interrupted);
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  return writer.TakeBytes();
}

class IntraOpThreadsGuard {
 public:
  IntraOpThreadsGuard() : saved_(nn::GetIntraOpThreads()) {}
  ~IntraOpThreadsGuard() { nn::SetIntraOpThreads(saved_); }

 private:
  int saved_;
};

TEST(TrainerIntraOpDeterminismTest, StateBytesIdenticalAcrossThreadCounts) {
  IntraOpThreadsGuard guard;

  nn::SetIntraOpThreads(1);
  const std::vector<uint8_t> reference = RunAndSerialize(2);
  ASSERT_FALSE(reference.empty());

  for (int intra_op : {2, 8}) {
    nn::SetIntraOpThreads(intra_op);
    const std::vector<uint8_t> got = RunAndSerialize(2);
    ASSERT_EQ(got.size(), reference.size()) << "intra_op=" << intra_op;
    EXPECT_EQ(got, reference) << "intra_op=" << intra_op;
  }
}

TEST(TrainerIntraOpDeterminismTest,
     StateBytesIdenticalAcrossInterClientPoolWidths) {
  IntraOpThreadsGuard guard;
  nn::SetIntraOpThreads(2);

  const std::vector<uint8_t> one = RunAndSerialize(1);
  const std::vector<uint8_t> four = RunAndSerialize(4);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace fedmigr::fl
