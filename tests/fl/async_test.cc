#include "fl/async.h"

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    util::Rng rng(5);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  AsyncRunResult Run(AsyncConfig config,
                     std::vector<net::DeviceProfile> devices = {}) {
    if (devices.empty()) devices = net::MakeUniformFleet(10);
    AsyncTrainer trainer(config, &data.train, partition, &data.test,
                         net::MakeC10SimTopology(), std::move(devices),
                         [](util::Rng* r) { return nn::MakeC10Net(r); });
    return trainer.Run();
  }

  data::TrainTest data;
  data::Partition partition;
};

TEST(AsyncTest, RunsRequestedUpdates) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 30;
  config.eval_every = 10;
  const AsyncRunResult result = f.Run(config);
  EXPECT_EQ(result.updates_run, 30);
  EXPECT_EQ(result.history.size(), 30u);
  EXPECT_GT(result.time_s, 0.0);
}

TEST(AsyncTest, TimeAndUpdatesAreMonotone) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 25;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].sim_time_s,
              result.history[i - 1].sim_time_s);
    EXPECT_EQ(result.history[i].update, static_cast<int>(i) + 1);
  }
}

TEST(AsyncTest, TrafficIsTwoTransfersPerUpdate) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 10;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  util::Rng rng(1);
  const double model_gb =
      static_cast<double>(nn::MakeC10Net(&rng).ByteSize()) / 1e9;
  EXPECT_NEAR(result.traffic_gb, 10 * 2 * model_gb, 1e-12);
}

TEST(AsyncTest, UniformFleetHasZeroStalenessPattern) {
  // With identical devices and round times, clients alternate fairly and
  // staleness stays bounded by the fleet size.
  Fixture f;
  AsyncConfig config;
  config.max_updates = 40;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  for (const auto& record : result.history) {
    EXPECT_GE(record.staleness, 0);
    // Fair alternation bounds staleness near the fleet size (tie-breaking
    // in the event queue allows a small excess).
    EXPECT_LE(record.staleness, 2 * 10);
  }
}

TEST(AsyncTest, FastDevicesUpdateMoreOften) {
  Fixture f;
  // Client 0 is 100x faster than the rest, so its rounds are bounded by
  // the link time alone.
  auto devices = net::MakeUniformFleet(10, 50.0);
  devices[0].samples_per_second = 5000.0;
  AsyncConfig config;
  config.max_updates = 60;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config, std::move(devices));
  int fast_updates = 0;
  for (const auto& record : result.history) {
    if (record.client == 0) ++fast_updates;
  }
  // The fast client contributes far more than its 1/10 share (= 6).
  EXPECT_GT(fast_updates, 15);
}

TEST(AsyncTest, SlowClientsAccumulateStaleness) {
  Fixture f;
  auto devices = net::MakeUniformFleet(10, 1000.0);
  devices[9].samples_per_second = 50.0;  // straggler
  AsyncConfig config;
  config.max_updates = 80;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config, std::move(devices));
  int straggler_max_staleness = 0;
  for (const auto& record : result.history) {
    if (record.client == 9) {
      straggler_max_staleness =
          std::max(straggler_max_staleness, record.staleness);
    }
  }
  EXPECT_GT(straggler_max_staleness, 10);
}

TEST(AsyncTest, LearnsAboveChance) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 150;
  config.eval_every = 25;
  config.learning_rate = 0.08;
  const AsyncRunResult result = f.Run(config);
  EXPECT_GT(result.best_accuracy, 0.2);  // chance is 0.1
}

TEST(AsyncTest, BudgetStopsEarly) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 1000;
  config.eval_every = 0;
  util::Rng rng(1);
  const double model_bytes =
      static_cast<double>(nn::MakeC10Net(&rng).ByteSize());
  config.budget = net::Budget(1e15, 10.5 * 2 * model_bytes);
  const AsyncRunResult result = f.Run(config);
  EXPECT_LT(result.updates_run, 20);
}

TEST(AsyncTest, DisabledFaultConfigIsByteIdentical) {
  // The default FaultConfig must be a strict no-op: same trajectory, same
  // simulated clock, zero fault counters.
  Fixture f;
  AsyncConfig plain;
  plain.max_updates = 30;
  plain.eval_every = 10;
  AsyncConfig with_faults = plain;
  with_faults.fault = net::FaultConfig{};
  ASSERT_FALSE(with_faults.fault.enabled());
  const AsyncRunResult a = f.Run(plain);
  const AsyncRunResult b = f.Run(with_faults);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].sim_time_s, b.history[i].sim_time_s);
    EXPECT_EQ(a.history[i].client, b.history[i].client);
    EXPECT_EQ(a.history[i].staleness, b.history[i].staleness);
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(b.faults.attempts, 0);
  EXPECT_EQ(b.faults.failures, 0);
}

TEST(AsyncTest, LostUploadsNeverBlendButStillFinish) {
  // Heavy link loss with retries off: many uploads die in flight, yet the
  // loop still reaches max_updates because failed clients reschedule.
  Fixture f;
  AsyncConfig config;
  config.max_updates = 40;
  config.eval_every = 0;
  config.fault.link_failure_prob = 0.4;
  config.fault.max_retries = 0;
  const AsyncRunResult result = f.Run(config);
  EXPECT_EQ(result.updates_run, 40);
  EXPECT_EQ(result.history.size(), 40u);
  EXPECT_GT(result.faults.failures, 0);
  // Every blended update is one upload + one download attempt minimum, and
  // the failures on top mean strictly more attempts than 2 * updates.
  EXPECT_GT(result.faults.attempts, 2 * 40);
}

TEST(AsyncTest, CrashedClientsRescheduleWithoutBlending) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 30;
  config.eval_every = 0;
  config.fault.crash_prob = 0.3;
  config.fault.crash_max_epochs = 2;
  const AsyncRunResult result = f.Run(config);
  EXPECT_EQ(result.updates_run, 30);
  EXPECT_GT(result.faults.crashes, 0);
  // A crashed attempt burns simulated time, so the chaotic run's clock can
  // only move forward relative to its own history.
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].sim_time_s,
              result.history[i - 1].sim_time_s);
  }
}

TEST(AsyncTest, CorruptedUploadsAreRejectedByChecksum) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 30;
  config.eval_every = 0;
  config.fault.corruption_prob = 0.5;
  const AsyncRunResult result = f.Run(config);
  EXPECT_EQ(result.updates_run, 30);
  EXPECT_GT(result.faults.corrupt_rejected, 0);
}

TEST(AsyncTest, FaultyRunsAreDeterministic) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 30;
  config.eval_every = 10;
  config.fault.link_failure_prob = 0.25;
  config.fault.crash_prob = 0.1;
  config.fault.corruption_prob = 0.1;
  const AsyncRunResult a = f.Run(config);
  const AsyncRunResult b = f.Run(config);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].sim_time_s, b.history[i].sim_time_s);
    EXPECT_EQ(a.history[i].client, b.history[i].client);
  }
  EXPECT_EQ(a.faults.failures, b.faults.failures);
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.corrupt_rejected, b.faults.corrupt_rejected);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(AsyncTest, TargetStops) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 400;
  config.eval_every = 10;
  config.target_accuracy = 0.15;
  config.learning_rate = 0.08;
  const AsyncRunResult result = f.Run(config);
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.updates_to_target, 0);
}

}  // namespace
}  // namespace fedmigr::fl
