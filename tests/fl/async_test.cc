#include "fl/async.h"

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticSpec spec = data::C10Spec();
    spec.train_per_class = 20;
    spec.test_per_class = 5;
    data = data::GenerateSynthetic(spec);
    util::Rng rng(5);
    partition = data::PartitionByClassShards(data.train, 10, 1, &rng);
  }

  AsyncRunResult Run(AsyncConfig config,
                     std::vector<net::DeviceProfile> devices = {}) {
    if (devices.empty()) devices = net::MakeUniformFleet(10);
    AsyncTrainer trainer(config, &data.train, partition, &data.test,
                         net::MakeC10SimTopology(), std::move(devices),
                         [](util::Rng* r) { return nn::MakeC10Net(r); });
    return trainer.Run();
  }

  data::TrainTest data;
  data::Partition partition;
};

TEST(AsyncTest, RunsRequestedUpdates) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 30;
  config.eval_every = 10;
  const AsyncRunResult result = f.Run(config);
  EXPECT_EQ(result.updates_run, 30);
  EXPECT_EQ(result.history.size(), 30u);
  EXPECT_GT(result.time_s, 0.0);
}

TEST(AsyncTest, TimeAndUpdatesAreMonotone) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 25;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].sim_time_s,
              result.history[i - 1].sim_time_s);
    EXPECT_EQ(result.history[i].update, static_cast<int>(i) + 1);
  }
}

TEST(AsyncTest, TrafficIsTwoTransfersPerUpdate) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 10;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  util::Rng rng(1);
  const double model_gb =
      static_cast<double>(nn::MakeC10Net(&rng).ByteSize()) / 1e9;
  EXPECT_NEAR(result.traffic_gb, 10 * 2 * model_gb, 1e-12);
}

TEST(AsyncTest, UniformFleetHasZeroStalenessPattern) {
  // With identical devices and round times, clients alternate fairly and
  // staleness stays bounded by the fleet size.
  Fixture f;
  AsyncConfig config;
  config.max_updates = 40;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config);
  for (const auto& record : result.history) {
    EXPECT_GE(record.staleness, 0);
    // Fair alternation bounds staleness near the fleet size (tie-breaking
    // in the event queue allows a small excess).
    EXPECT_LE(record.staleness, 2 * 10);
  }
}

TEST(AsyncTest, FastDevicesUpdateMoreOften) {
  Fixture f;
  // Client 0 is 100x faster than the rest, so its rounds are bounded by
  // the link time alone.
  auto devices = net::MakeUniformFleet(10, 50.0);
  devices[0].samples_per_second = 5000.0;
  AsyncConfig config;
  config.max_updates = 60;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config, std::move(devices));
  int fast_updates = 0;
  for (const auto& record : result.history) {
    if (record.client == 0) ++fast_updates;
  }
  // The fast client contributes far more than its 1/10 share (= 6).
  EXPECT_GT(fast_updates, 15);
}

TEST(AsyncTest, SlowClientsAccumulateStaleness) {
  Fixture f;
  auto devices = net::MakeUniformFleet(10, 1000.0);
  devices[9].samples_per_second = 50.0;  // straggler
  AsyncConfig config;
  config.max_updates = 80;
  config.eval_every = 0;
  const AsyncRunResult result = f.Run(config, std::move(devices));
  int straggler_max_staleness = 0;
  for (const auto& record : result.history) {
    if (record.client == 9) {
      straggler_max_staleness =
          std::max(straggler_max_staleness, record.staleness);
    }
  }
  EXPECT_GT(straggler_max_staleness, 10);
}

TEST(AsyncTest, LearnsAboveChance) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 150;
  config.eval_every = 25;
  config.learning_rate = 0.08;
  const AsyncRunResult result = f.Run(config);
  EXPECT_GT(result.best_accuracy, 0.2);  // chance is 0.1
}

TEST(AsyncTest, BudgetStopsEarly) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 1000;
  config.eval_every = 0;
  util::Rng rng(1);
  const double model_bytes =
      static_cast<double>(nn::MakeC10Net(&rng).ByteSize());
  config.budget = net::Budget(1e15, 10.5 * 2 * model_bytes);
  const AsyncRunResult result = f.Run(config);
  EXPECT_LT(result.updates_run, 20);
}

TEST(AsyncTest, TargetStops) {
  Fixture f;
  AsyncConfig config;
  config.max_updates = 400;
  config.eval_every = 10;
  config.target_accuracy = 0.15;
  config.learning_rate = 0.08;
  const AsyncRunResult result = f.Run(config);
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.updates_to_target, 0);
}

}  // namespace
}  // namespace fedmigr::fl
