# Empty dependencies file for scheme_sweep.
# This may be replaced when dependencies are built.
