file(REMOVE_RECURSE
  "CMakeFiles/scheme_sweep.dir/scheme_sweep.cpp.o"
  "CMakeFiles/scheme_sweep.dir/scheme_sweep.cpp.o.d"
  "scheme_sweep"
  "scheme_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
