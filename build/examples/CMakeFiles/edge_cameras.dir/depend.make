# Empty dependencies file for edge_cameras.
# This may be replaced when dependencies are built.
