# Empty compiler generated dependencies file for edge_cameras.
# This may be replaced when dependencies are built.
