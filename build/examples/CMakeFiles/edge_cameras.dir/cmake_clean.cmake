file(REMOVE_RECURSE
  "CMakeFiles/edge_cameras.dir/edge_cameras.cpp.o"
  "CMakeFiles/edge_cameras.dir/edge_cameras.cpp.o.d"
  "edge_cameras"
  "edge_cameras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cameras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
