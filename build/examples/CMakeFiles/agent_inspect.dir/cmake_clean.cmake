file(REMOVE_RECURSE
  "CMakeFiles/agent_inspect.dir/agent_inspect.cpp.o"
  "CMakeFiles/agent_inspect.dir/agent_inspect.cpp.o.d"
  "agent_inspect"
  "agent_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
