# Empty compiler generated dependencies file for agent_inspect.
# This may be replaced when dependencies are built.
