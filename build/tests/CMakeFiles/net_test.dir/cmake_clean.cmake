file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/budget_test.cc.o"
  "CMakeFiles/net_test.dir/net/budget_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/device_test.cc.o"
  "CMakeFiles/net_test.dir/net/device_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/fault_test.cc.o"
  "CMakeFiles/net_test.dir/net/fault_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/topology_test.cc.o"
  "CMakeFiles/net_test.dir/net/topology_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/traffic_test.cc.o"
  "CMakeFiles/net_test.dir/net/traffic_test.cc.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
