
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/budget_test.cc" "tests/CMakeFiles/net_test.dir/net/budget_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/budget_test.cc.o.d"
  "/root/repo/tests/net/device_test.cc" "tests/CMakeFiles/net_test.dir/net/device_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/device_test.cc.o.d"
  "/root/repo/tests/net/fault_test.cc" "tests/CMakeFiles/net_test.dir/net/fault_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/fault_test.cc.o.d"
  "/root/repo/tests/net/topology_test.cc" "tests/CMakeFiles/net_test.dir/net/topology_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/topology_test.cc.o.d"
  "/root/repo/tests/net/traffic_test.cc" "tests/CMakeFiles/net_test.dir/net/traffic_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/traffic_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedmigr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedmigr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
