file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/gradcheck.cc.o"
  "CMakeFiles/nn_test.dir/nn/gradcheck.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/gradcheck_sweep_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/gradcheck_sweep_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/init_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/init_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/loss_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/loss_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/ops_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/ops_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/sequential_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/sequential_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/training_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/training_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/zoo_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/zoo_test.cc.o.d"
  "nn_test"
  "nn_test.pdb"
  "nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
