
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/gradcheck.cc" "tests/CMakeFiles/nn_test.dir/nn/gradcheck.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/gradcheck.cc.o.d"
  "/root/repo/tests/nn/gradcheck_sweep_test.cc" "tests/CMakeFiles/nn_test.dir/nn/gradcheck_sweep_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/gradcheck_sweep_test.cc.o.d"
  "/root/repo/tests/nn/init_test.cc" "tests/CMakeFiles/nn_test.dir/nn/init_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/init_test.cc.o.d"
  "/root/repo/tests/nn/layers_test.cc" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cc.o.d"
  "/root/repo/tests/nn/loss_test.cc" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cc.o.d"
  "/root/repo/tests/nn/ops_test.cc" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/sequential_test.cc" "tests/CMakeFiles/nn_test.dir/nn/sequential_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/sequential_test.cc.o.d"
  "/root/repo/tests/nn/serialize_test.cc" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cc.o.d"
  "/root/repo/tests/nn/tensor_test.cc" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cc.o.d"
  "/root/repo/tests/nn/training_test.cc" "tests/CMakeFiles/nn_test.dir/nn/training_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/training_test.cc.o.d"
  "/root/repo/tests/nn/zoo_test.cc" "tests/CMakeFiles/nn_test.dir/nn/zoo_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/zoo_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedmigr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedmigr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
