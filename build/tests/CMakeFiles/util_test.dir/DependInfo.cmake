
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/crc32_test.cc" "tests/CMakeFiles/util_test.dir/util/crc32_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/crc32_test.cc.o.d"
  "/root/repo/tests/util/csv_test.cc" "tests/CMakeFiles/util_test.dir/util/csv_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/csv_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedmigr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedmigr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
