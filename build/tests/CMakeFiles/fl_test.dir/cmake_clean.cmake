file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl/async_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/async_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/client_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/client_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/fault_tolerance_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/fault_tolerance_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/migration_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/migration_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/participation_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/participation_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/policies_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/policies_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/schemes_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/schemes_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/trainer_property_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/trainer_property_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/trainer_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/trainer_test.cc.o.d"
  "fl_test"
  "fl_test.pdb"
  "fl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
