
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/async_test.cc" "tests/CMakeFiles/fl_test.dir/fl/async_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/async_test.cc.o.d"
  "/root/repo/tests/fl/client_test.cc" "tests/CMakeFiles/fl_test.dir/fl/client_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/client_test.cc.o.d"
  "/root/repo/tests/fl/fault_tolerance_test.cc" "tests/CMakeFiles/fl_test.dir/fl/fault_tolerance_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/fault_tolerance_test.cc.o.d"
  "/root/repo/tests/fl/migration_test.cc" "tests/CMakeFiles/fl_test.dir/fl/migration_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/migration_test.cc.o.d"
  "/root/repo/tests/fl/participation_test.cc" "tests/CMakeFiles/fl_test.dir/fl/participation_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/participation_test.cc.o.d"
  "/root/repo/tests/fl/policies_test.cc" "tests/CMakeFiles/fl_test.dir/fl/policies_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/policies_test.cc.o.d"
  "/root/repo/tests/fl/schemes_test.cc" "tests/CMakeFiles/fl_test.dir/fl/schemes_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/schemes_test.cc.o.d"
  "/root/repo/tests/fl/server_test.cc" "tests/CMakeFiles/fl_test.dir/fl/server_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/server_test.cc.o.d"
  "/root/repo/tests/fl/trainer_property_test.cc" "tests/CMakeFiles/fl_test.dir/fl/trainer_property_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/trainer_property_test.cc.o.d"
  "/root/repo/tests/fl/trainer_test.cc" "tests/CMakeFiles/fl_test.dir/fl/trainer_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedmigr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedmigr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
