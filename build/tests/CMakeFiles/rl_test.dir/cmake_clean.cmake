file(REMOVE_RECURSE
  "CMakeFiles/rl_test.dir/rl/agent_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/agent_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/policy_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/policy_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/pretrain_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/pretrain_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/replay_buffer_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/replay_buffer_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/state_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/state_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/sumtree_property_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/sumtree_property_test.cc.o.d"
  "CMakeFiles/rl_test.dir/rl/surrogate_test.cc.o"
  "CMakeFiles/rl_test.dir/rl/surrogate_test.cc.o.d"
  "rl_test"
  "rl_test.pdb"
  "rl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
