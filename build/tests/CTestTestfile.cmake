# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
