file(REMOVE_RECURSE
  "libfedmigr_rl.a"
)
