file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_rl.dir/agent.cc.o"
  "CMakeFiles/fedmigr_rl.dir/agent.cc.o.d"
  "CMakeFiles/fedmigr_rl.dir/policy.cc.o"
  "CMakeFiles/fedmigr_rl.dir/policy.cc.o.d"
  "CMakeFiles/fedmigr_rl.dir/pretrain.cc.o"
  "CMakeFiles/fedmigr_rl.dir/pretrain.cc.o.d"
  "CMakeFiles/fedmigr_rl.dir/replay_buffer.cc.o"
  "CMakeFiles/fedmigr_rl.dir/replay_buffer.cc.o.d"
  "CMakeFiles/fedmigr_rl.dir/state.cc.o"
  "CMakeFiles/fedmigr_rl.dir/state.cc.o.d"
  "CMakeFiles/fedmigr_rl.dir/surrogate.cc.o"
  "CMakeFiles/fedmigr_rl.dir/surrogate.cc.o.d"
  "libfedmigr_rl.a"
  "libfedmigr_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
