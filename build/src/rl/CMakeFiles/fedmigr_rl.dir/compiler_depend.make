# Empty compiler generated dependencies file for fedmigr_rl.
# This may be replaced when dependencies are built.
