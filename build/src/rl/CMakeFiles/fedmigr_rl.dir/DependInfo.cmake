
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/agent.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/agent.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/agent.cc.o.d"
  "/root/repo/src/rl/policy.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/policy.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/policy.cc.o.d"
  "/root/repo/src/rl/pretrain.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/pretrain.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/pretrain.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/replay_buffer.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/replay_buffer.cc.o.d"
  "/root/repo/src/rl/state.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/state.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/state.cc.o.d"
  "/root/repo/src/rl/surrogate.cc" "src/rl/CMakeFiles/fedmigr_rl.dir/surrogate.cc.o" "gcc" "src/rl/CMakeFiles/fedmigr_rl.dir/surrogate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
