file(REMOVE_RECURSE
  "libfedmigr_data.a"
)
