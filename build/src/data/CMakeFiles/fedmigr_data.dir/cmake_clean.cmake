file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_data.dir/dataset.cc.o"
  "CMakeFiles/fedmigr_data.dir/dataset.cc.o.d"
  "CMakeFiles/fedmigr_data.dir/distribution.cc.o"
  "CMakeFiles/fedmigr_data.dir/distribution.cc.o.d"
  "CMakeFiles/fedmigr_data.dir/partition.cc.o"
  "CMakeFiles/fedmigr_data.dir/partition.cc.o.d"
  "CMakeFiles/fedmigr_data.dir/synthetic.cc.o"
  "CMakeFiles/fedmigr_data.dir/synthetic.cc.o.d"
  "libfedmigr_data.a"
  "libfedmigr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
