# Empty compiler generated dependencies file for fedmigr_data.
# This may be replaced when dependencies are built.
