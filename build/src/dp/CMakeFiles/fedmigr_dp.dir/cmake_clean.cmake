file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_dp.dir/accountant.cc.o"
  "CMakeFiles/fedmigr_dp.dir/accountant.cc.o.d"
  "CMakeFiles/fedmigr_dp.dir/gaussian.cc.o"
  "CMakeFiles/fedmigr_dp.dir/gaussian.cc.o.d"
  "libfedmigr_dp.a"
  "libfedmigr_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
