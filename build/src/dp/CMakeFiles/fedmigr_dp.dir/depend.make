# Empty dependencies file for fedmigr_dp.
# This may be replaced when dependencies are built.
