file(REMOVE_RECURSE
  "libfedmigr_dp.a"
)
