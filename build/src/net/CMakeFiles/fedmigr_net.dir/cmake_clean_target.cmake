file(REMOVE_RECURSE
  "libfedmigr_net.a"
)
