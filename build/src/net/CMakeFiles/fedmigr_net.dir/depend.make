# Empty dependencies file for fedmigr_net.
# This may be replaced when dependencies are built.
