
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/budget.cc" "src/net/CMakeFiles/fedmigr_net.dir/budget.cc.o" "gcc" "src/net/CMakeFiles/fedmigr_net.dir/budget.cc.o.d"
  "/root/repo/src/net/device.cc" "src/net/CMakeFiles/fedmigr_net.dir/device.cc.o" "gcc" "src/net/CMakeFiles/fedmigr_net.dir/device.cc.o.d"
  "/root/repo/src/net/fault.cc" "src/net/CMakeFiles/fedmigr_net.dir/fault.cc.o" "gcc" "src/net/CMakeFiles/fedmigr_net.dir/fault.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/fedmigr_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/fedmigr_net.dir/topology.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/net/CMakeFiles/fedmigr_net.dir/traffic.cc.o" "gcc" "src/net/CMakeFiles/fedmigr_net.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
