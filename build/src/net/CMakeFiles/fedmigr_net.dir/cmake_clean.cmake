file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_net.dir/budget.cc.o"
  "CMakeFiles/fedmigr_net.dir/budget.cc.o.d"
  "CMakeFiles/fedmigr_net.dir/device.cc.o"
  "CMakeFiles/fedmigr_net.dir/device.cc.o.d"
  "CMakeFiles/fedmigr_net.dir/fault.cc.o"
  "CMakeFiles/fedmigr_net.dir/fault.cc.o.d"
  "CMakeFiles/fedmigr_net.dir/topology.cc.o"
  "CMakeFiles/fedmigr_net.dir/topology.cc.o.d"
  "CMakeFiles/fedmigr_net.dir/traffic.cc.o"
  "CMakeFiles/fedmigr_net.dir/traffic.cc.o.d"
  "libfedmigr_net.a"
  "libfedmigr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
