# Empty dependencies file for fedmigr_nn.
# This may be replaced when dependencies are built.
