file(REMOVE_RECURSE
  "libfedmigr_nn.a"
)
