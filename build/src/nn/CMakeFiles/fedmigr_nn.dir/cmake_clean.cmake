file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_nn.dir/init.cc.o"
  "CMakeFiles/fedmigr_nn.dir/init.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/layers.cc.o"
  "CMakeFiles/fedmigr_nn.dir/layers.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/loss.cc.o"
  "CMakeFiles/fedmigr_nn.dir/loss.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/ops.cc.o"
  "CMakeFiles/fedmigr_nn.dir/ops.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/optimizer.cc.o"
  "CMakeFiles/fedmigr_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/sequential.cc.o"
  "CMakeFiles/fedmigr_nn.dir/sequential.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/serialize.cc.o"
  "CMakeFiles/fedmigr_nn.dir/serialize.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/tensor.cc.o"
  "CMakeFiles/fedmigr_nn.dir/tensor.cc.o.d"
  "CMakeFiles/fedmigr_nn.dir/zoo.cc.o"
  "CMakeFiles/fedmigr_nn.dir/zoo.cc.o.d"
  "libfedmigr_nn.a"
  "libfedmigr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
