file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_fl.dir/async.cc.o"
  "CMakeFiles/fedmigr_fl.dir/async.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/client.cc.o"
  "CMakeFiles/fedmigr_fl.dir/client.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/migration.cc.o"
  "CMakeFiles/fedmigr_fl.dir/migration.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/policies.cc.o"
  "CMakeFiles/fedmigr_fl.dir/policies.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/schemes.cc.o"
  "CMakeFiles/fedmigr_fl.dir/schemes.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/server.cc.o"
  "CMakeFiles/fedmigr_fl.dir/server.cc.o.d"
  "CMakeFiles/fedmigr_fl.dir/trainer.cc.o"
  "CMakeFiles/fedmigr_fl.dir/trainer.cc.o.d"
  "libfedmigr_fl.a"
  "libfedmigr_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
