# Empty compiler generated dependencies file for fedmigr_fl.
# This may be replaced when dependencies are built.
