
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/async.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/async.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/async.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/client.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/client.cc.o.d"
  "/root/repo/src/fl/migration.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/migration.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/migration.cc.o.d"
  "/root/repo/src/fl/policies.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/policies.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/policies.cc.o.d"
  "/root/repo/src/fl/schemes.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/schemes.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/schemes.cc.o.d"
  "/root/repo/src/fl/server.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/server.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/server.cc.o.d"
  "/root/repo/src/fl/trainer.cc" "src/fl/CMakeFiles/fedmigr_fl.dir/trainer.cc.o" "gcc" "src/fl/CMakeFiles/fedmigr_fl.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
