file(REMOVE_RECURSE
  "libfedmigr_fl.a"
)
