file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_core.dir/experiment.cc.o"
  "CMakeFiles/fedmigr_core.dir/experiment.cc.o.d"
  "CMakeFiles/fedmigr_core.dir/fedmigr.cc.o"
  "CMakeFiles/fedmigr_core.dir/fedmigr.cc.o.d"
  "libfedmigr_core.a"
  "libfedmigr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
