file(REMOVE_RECURSE
  "libfedmigr_core.a"
)
