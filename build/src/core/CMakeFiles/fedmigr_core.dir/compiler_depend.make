# Empty compiler generated dependencies file for fedmigr_core.
# This may be replaced when dependencies are built.
