# Empty dependencies file for fedmigr_util.
# This may be replaced when dependencies are built.
