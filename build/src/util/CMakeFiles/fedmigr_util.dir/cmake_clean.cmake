file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_util.dir/crc32.cc.o"
  "CMakeFiles/fedmigr_util.dir/crc32.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/csv.cc.o"
  "CMakeFiles/fedmigr_util.dir/csv.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/logging.cc.o"
  "CMakeFiles/fedmigr_util.dir/logging.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/rng.cc.o"
  "CMakeFiles/fedmigr_util.dir/rng.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/stats.cc.o"
  "CMakeFiles/fedmigr_util.dir/stats.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/status.cc.o"
  "CMakeFiles/fedmigr_util.dir/status.cc.o.d"
  "CMakeFiles/fedmigr_util.dir/thread_pool.cc.o"
  "CMakeFiles/fedmigr_util.dir/thread_pool.cc.o.d"
  "libfedmigr_util.a"
  "libfedmigr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
