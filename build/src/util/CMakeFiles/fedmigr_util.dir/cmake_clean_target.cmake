file(REMOVE_RECURSE
  "libfedmigr_util.a"
)
