
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/flmm.cc" "src/opt/CMakeFiles/fedmigr_opt.dir/flmm.cc.o" "gcc" "src/opt/CMakeFiles/fedmigr_opt.dir/flmm.cc.o.d"
  "/root/repo/src/opt/hungarian.cc" "src/opt/CMakeFiles/fedmigr_opt.dir/hungarian.cc.o" "gcc" "src/opt/CMakeFiles/fedmigr_opt.dir/hungarian.cc.o.d"
  "/root/repo/src/opt/qp.cc" "src/opt/CMakeFiles/fedmigr_opt.dir/qp.cc.o" "gcc" "src/opt/CMakeFiles/fedmigr_opt.dir/qp.cc.o.d"
  "/root/repo/src/opt/simplex.cc" "src/opt/CMakeFiles/fedmigr_opt.dir/simplex.cc.o" "gcc" "src/opt/CMakeFiles/fedmigr_opt.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
