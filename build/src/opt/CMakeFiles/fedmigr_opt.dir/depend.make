# Empty dependencies file for fedmigr_opt.
# This may be replaced when dependencies are built.
