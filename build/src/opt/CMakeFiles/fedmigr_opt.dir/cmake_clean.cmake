file(REMOVE_RECURSE
  "CMakeFiles/fedmigr_opt.dir/flmm.cc.o"
  "CMakeFiles/fedmigr_opt.dir/flmm.cc.o.d"
  "CMakeFiles/fedmigr_opt.dir/hungarian.cc.o"
  "CMakeFiles/fedmigr_opt.dir/hungarian.cc.o.d"
  "CMakeFiles/fedmigr_opt.dir/qp.cc.o"
  "CMakeFiles/fedmigr_opt.dir/qp.cc.o.d"
  "CMakeFiles/fedmigr_opt.dir/simplex.cc.o"
  "CMakeFiles/fedmigr_opt.dir/simplex.cc.o.d"
  "libfedmigr_opt.a"
  "libfedmigr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmigr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
