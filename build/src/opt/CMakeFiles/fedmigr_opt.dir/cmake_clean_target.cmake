file(REMOVE_RECURSE
  "libfedmigr_opt.a"
)
