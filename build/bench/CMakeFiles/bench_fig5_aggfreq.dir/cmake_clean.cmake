file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_aggfreq.dir/bench_fig5_aggfreq.cpp.o"
  "CMakeFiles/bench_fig5_aggfreq.dir/bench_fig5_aggfreq.cpp.o.d"
  "bench_fig5_aggfreq"
  "bench_fig5_aggfreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_aggfreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
