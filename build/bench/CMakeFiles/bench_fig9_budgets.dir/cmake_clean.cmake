file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_budgets.dir/bench_fig9_budgets.cpp.o"
  "CMakeFiles/bench_fig9_budgets.dir/bench_fig9_budgets.cpp.o.d"
  "bench_fig9_budgets"
  "bench_fig9_budgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_budgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
