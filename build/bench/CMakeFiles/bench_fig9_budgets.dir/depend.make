# Empty dependencies file for bench_fig9_budgets.
# This may be replaced when dependencies are built.
