file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_privacy.dir/bench_fig4_privacy.cpp.o"
  "CMakeFiles/bench_fig4_privacy.dir/bench_fig4_privacy.cpp.o.d"
  "bench_fig4_privacy"
  "bench_fig4_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
