file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_strategies.dir/bench_fig3_strategies.cpp.o"
  "CMakeFiles/bench_fig3_strategies.dir/bench_fig3_strategies.cpp.o.d"
  "bench_fig3_strategies"
  "bench_fig3_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
