file(REMOVE_RECURSE
  "CMakeFiles/bench_nn_ops.dir/bench_nn_ops.cpp.o"
  "CMakeFiles/bench_nn_ops.dir/bench_nn_ops.cpp.o.d"
  "bench_nn_ops"
  "bench_nn_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
