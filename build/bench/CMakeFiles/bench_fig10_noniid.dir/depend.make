# Empty dependencies file for bench_fig10_noniid.
# This may be replaced when dependencies are built.
