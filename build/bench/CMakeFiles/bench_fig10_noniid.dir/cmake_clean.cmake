file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_noniid.dir/bench_fig10_noniid.cpp.o"
  "CMakeFiles/bench_fig10_noniid.dir/bench_fig10_noniid.cpp.o.d"
  "bench_fig10_noniid"
  "bench_fig10_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
