
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_tolerance.cpp" "bench/CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cpp.o" "gcc" "bench/CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedmigr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fedmigr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedmigr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedmigr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedmigr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedmigr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fedmigr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedmigr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedmigr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
