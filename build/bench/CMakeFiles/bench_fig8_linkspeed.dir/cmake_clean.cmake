file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_linkspeed.dir/bench_fig8_linkspeed.cpp.o"
  "CMakeFiles/bench_fig8_linkspeed.dir/bench_fig8_linkspeed.cpp.o.d"
  "bench_fig8_linkspeed"
  "bench_fig8_linkspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_linkspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
