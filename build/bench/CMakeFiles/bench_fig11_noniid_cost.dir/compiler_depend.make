# Empty compiler generated dependencies file for bench_fig11_noniid_cost.
# This may be replaced when dependencies are built.
