// Self-test fixture: a symmetric pair with a loop and a tag-guarded tail.
// The writer stages the branch differently from the reader (payload inside
// the writer's arm, tag-then-guard on the reader), which must still pass
// via the relaxed branchy-scope comparison.  No findings expected.
namespace fixture {

constexpr uint32_t kCleanVersion = 1;

void WriteThing(util::ByteWriter* writer, const Thing& t) {
  writer->WriteU32(kCleanVersion);
  writer->WriteU64(t.items.size());
  for (const double item : t.items) {
    writer->WriteF64(item);
  }
  if (t.has_tail) {
    writer->WriteBool(true);
    writer->WriteString(t.tail);
  } else {
    writer->WriteBool(false);
  }
}

util::Status ReadThing(util::ByteReader* reader, Thing* t) {
  uint32_t version = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&version));
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    double item = 0.0;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&item));
    t->items.push_back(item);
  }
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&t->has_tail));
  if (t->has_tail) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadString(&t->tail));
  }
  return util::OkStatus();
}

}  // namespace fixture
