// Mutation fixture: the writer emits a length-prefixed element loop, the
// reader consumes a single element (loop nesting lost in an edit).
namespace fixture {

// SCHEMA-EXPECT: asymmetry
void WriteSeries(util::ByteWriter* writer, const std::vector<float>& v) {
  writer->WriteU64(v.size());
  for (const float f : v) {
    writer->WriteF32(f);
  }
}

util::Status ReadSeries(util::ByteReader* reader, std::vector<float>* v) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  float f = 0.0f;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF32(&f));
  v->push_back(f);
  return util::OkStatus();
}

}  // namespace fixture
