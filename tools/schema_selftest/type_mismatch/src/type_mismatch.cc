// Mutation fixture: a 4-byte write paired with an 8-byte read.
namespace fixture {

// SCHEMA-EXPECT: asymmetry
void WriteCounter(util::ByteWriter* writer, const Counter& c) {
  writer->WriteI32(c.value);
}

util::Status ReadCounter(util::ByteReader* reader, Counter* c) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&c->value));
  return util::OkStatus();
}

}  // namespace fixture
