// Mutation fixture: the writer emits two fields, the reader consumes one
// (a LoadState edit forgot the second read).
namespace fixture {

// SCHEMA-EXPECT: asymmetry
void WritePoint(util::ByteWriter* writer, const Point& p) {
  writer->WriteU32(p.x);
  writer->WriteU64(p.y);
}

util::Status ReadPoint(util::ByteReader* reader, Point* p) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&p->x));
  return util::OkStatus();
}

}  // namespace fixture
