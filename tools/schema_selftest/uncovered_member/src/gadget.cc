// Mutation fixture: one member serialized, one silently skipped (fires),
// one skipped with the mandatory annotation (does not fire).
namespace fixture {

class Gadget {
 public:
  void SaveState(util::ByteWriter* writer) const {
    writer->WriteI64(count_);
  }

  util::Status LoadState(util::ByteReader* reader) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&count_));
    return util::OkStatus();
  }

 private:
  int64_t count_ = 0;
  // SCHEMA-EXPECT: coverage
  double stray_ = 0.0;
  // SNAPSHOT-SKIP(derived cache, rebuilt lazily on first use)
  double cache_ = 0.0;
};

}  // namespace fixture
