// Mutation fixture: same fields, opposite order.  Both positions mismatch,
// so the strict pairwise comparison reports two element findings.
namespace fixture {

// SCHEMA-EXPECT: asymmetry, asymmetry
void WritePair(util::ByteWriter* writer, const Pair& p) {
  writer->WriteU32(p.tag);
  writer->WriteF64(p.value);
}

util::Status ReadPair(util::ByteReader* reader, Pair* p) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&p->value));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&p->tag));
  return util::OkStatus();
}

}  // namespace fixture
