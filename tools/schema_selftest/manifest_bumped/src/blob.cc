// Mutation fixture: the same schema edit as manifest_stale, but the author
// bumped the version constant - so only the stale-manifest drift fires,
// not version-discipline.
namespace fixture {

constexpr uint32_t kFixtureVersion = 2;

// SCHEMA-EXPECT: drift
void WriteBlob(util::ByteWriter* writer, const Blob& b) {
  writer->WriteU32(kFixtureVersion);
  writer->WriteU64(b.payload);
}

util::Status ReadBlob(util::ByteReader* reader, Blob* b) {
  uint32_t version = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&version));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&b->payload));
  return util::OkStatus();
}

}  // namespace fixture
