// Mutation fixture: a SaveState with no LoadState anywhere in the tree.
namespace fixture {

class Orphan {
 public:
  // SCHEMA-EXPECT: unpaired
  void SaveState(util::ByteWriter* writer) const {
    writer->WriteU32(seq_);
  }

 private:
  uint32_t seq_ = 0;
};

}  // namespace fixture
