// Mutation fixture: a field was added to the wire schema but golden.json
// and the version constant were left untouched.
namespace fixture {

constexpr uint32_t kFixtureVersion = 1;

// SCHEMA-EXPECT: drift, version-discipline
void WriteBlob(util::ByteWriter* writer, const Blob& b) {
  writer->WriteU32(kFixtureVersion);
  writer->WriteU64(b.payload);
}

util::Status ReadBlob(util::ByteReader* reader, Blob* b) {
  uint32_t version = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&version));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&b->payload));
  return util::OkStatus();
}

}  // namespace fixture
