#!/usr/bin/env python3
"""check_journal — structural validator for FedMigr flight-recorder journals.

Independently re-implements the FJRN container (src/obs/journal.h) in pure
Python — no dependency on the C++ reader — and checks that a journal
produced by `--journal-out` holds together:

  * every chunk frame validates: magic "FJRN", version 1, payload length,
    CRC32 over the preceding frame bytes;
  * the header chunk leads the file, epoch chunks carry strictly
    increasing epochs, and every event inside an epoch chunk is stamped
    with that chunk's epoch;
  * each committed epoch contains exactly one round-commit event, and it
    is the last event of its chunk;
  * publish events mint strictly increasing lineage ids and each parent
    precedes its child (the lineage DAG is acyclic by construction —
    this check proves the file on disk kept it that way);
  * when the summary chunk is present, every one of its twelve totals
    re-derives exactly from the event stream.

A torn tail (bytes after the last valid frame) is an error by default —
a cleanly finished run has none; pass --allow-torn for journals from
interrupted runs, where a torn final frame is the documented crash mode.

Usage: tools/check_journal.py [--allow-torn] JOURNAL.fjrn [...]
Exits 0 when every file validates, 1 otherwise.

The parsing half doubles as a library: tools/fedmigr_report imports
parse_journal()/summarize() from here.
"""

import struct
import sys
import zlib

JOURNAL_MAGIC = 0x4E524A46  # "FJRN" little-endian
JOURNAL_VERSION = 1
CHUNK_HEADER, CHUNK_EPOCH, CHUNK_SUMMARY = 0, 1, 2

FRAME_HEADER = struct.Struct("<IIQ")  # magic, version, payload_size
EVENT = struct.Struct("<BiiiQQd")     # kind, epoch, a, b, u, v, x (37 bytes)

# JournalEventKind (src/obs/journal.h). Values are the on-disk format.
KIND_NAMES = {
    1: "round_begin",
    2: "cohort_sampled",
    3: "client_departed",
    4: "client_carried_over",
    5: "churn_absence",
    6: "model_distributed",
    7: "client_participated",
    8: "client_uploaded",
    9: "screen_verdict",
    10: "quarantine_transition",
    11: "quorum_commit",
    12: "quorum_miss",
    13: "model_published",
    14: "migration_c2c",
    15: "migration_fallback",
    16: "migration_rolled_back",
    17: "chaos_lan_sealed",
    18: "chaos_lan_opened",
    19: "chaos_server_down",
    20: "chaos_server_up",
    21: "round_commit",
}
KINDS = {name: value for value, name in KIND_NAMES.items()}

SUMMARY_FIELDS = (
    "epochs_run", "migrations_planned", "migrations_completed",
    "migration_fallbacks", "migrations_rolled_back", "quorum_commits",
    "quorum_misses", "carryover_clients", "churn_absences",
    "churn_departures", "quarantines", "model_publishes",
)

# Reputation state counted by the summary's `quarantines` total
# (kJournalStateQuarantined in src/obs/journal.h).
STATE_QUARANTINED = 2


class JournalError(Exception):
    """A structural violation the C++ reader would also reject."""


class Event(object):
    __slots__ = ("kind", "epoch", "a", "b", "u", "v", "x")

    def __init__(self, kind, epoch, a, b, u, v, x):
        self.kind = kind
        self.epoch = epoch
        self.a = a
        self.b = b
        self.u = u
        self.v = v
        self.x = x

    @property
    def name(self):
        return KIND_NAMES.get(self.kind, "unknown(%d)" % self.kind)

    def __repr__(self):
        return "Event(%s, epoch=%d, a=%d, b=%d, u=%d, v=%d, x=%g)" % (
            self.name, self.epoch, self.a, self.b, self.u, self.v, self.x)


def _split_frames(data):
    """Yields (payload, offset) per valid frame; returns torn-tail size."""
    frames = []
    offset = 0
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < FRAME_HEADER.size + 4:
            break
        magic, version, payload_size = FRAME_HEADER.unpack_from(data, offset)
        if magic != JOURNAL_MAGIC or version != JOURNAL_VERSION:
            break
        checked = FRAME_HEADER.size + payload_size
        if remaining < checked + 4:
            break
        stored = struct.unpack_from("<I", data, offset + checked)[0]
        if stored != zlib.crc32(data[offset:offset + checked]) & 0xFFFFFFFF:
            break
        payload = data[offset + FRAME_HEADER.size:offset + checked]
        frames.append((payload, offset))
        offset += checked + 4
    return frames, len(data) - offset


def _read_string(payload, offset):
    (size,) = struct.unpack_from("<Q", payload, offset)
    offset += 8
    if offset + size > len(payload):
        raise JournalError("string runs past its chunk")
    return payload[offset:offset + size].decode("utf-8"), offset + size


def parse_journal(data):
    """Parses journal bytes into a dict mirroring obs::JournalContents.

    Returns {"header": dict|None, "events": [Event], "committed_epochs":
    [int], "summary": dict|None, "torn_tail_bytes": int}. Raises
    JournalError on violations the C++ reader also rejects (out-of-place
    header, non-monotone epochs, event/chunk epoch mismatch, trailing
    payload bytes); a torn tail is reported, not raised.
    """
    frames, torn = _split_frames(data)
    result = {
        "header": None,
        "events": [],
        "committed_epochs": [],
        "summary": None,
        "torn_tail_bytes": torn,
    }
    for payload, frame_offset in frames:
        if not payload:
            raise JournalError("empty chunk payload at offset %d"
                               % frame_offset)
        chunk_kind = payload[0]
        if chunk_kind == CHUNK_HEADER:
            if result["header"] is not None or frame_offset != 0:
                raise JournalError("header chunk out of place")
            offset = 1
            run_seed, num_clients, cohort_size, sample_rate = \
                struct.unpack_from("<Qqqd", payload, offset)
            offset += 8 * 4
            scheme, offset = _read_string(payload, offset)
            if offset != len(payload):
                raise JournalError("header chunk has trailing bytes")
            result["header"] = {
                "run_seed": run_seed,
                "num_clients": num_clients,
                "cohort_size": cohort_size,
                "sample_rate": sample_rate,
                "scheme": scheme,
            }
        elif chunk_kind == CHUNK_EPOCH:
            epoch, count = struct.unpack_from("<iI", payload, 1)
            if result["committed_epochs"] and \
                    epoch <= result["committed_epochs"][-1]:
                raise JournalError("journal epochs not monotone at epoch %d"
                                   % epoch)
            result["committed_epochs"].append(epoch)
            offset = 1 + 8
            for _ in range(count):
                if offset + EVENT.size > len(payload):
                    raise JournalError("epoch %d chunk truncated mid-event"
                                       % epoch)
                event = Event(*EVENT.unpack_from(payload, offset))
                offset += EVENT.size
                if event.epoch != epoch:
                    raise JournalError(
                        "event stamped epoch %d inside epoch %d chunk"
                        % (event.epoch, epoch))
                result["events"].append(event)
            if offset != len(payload):
                raise JournalError("epoch %d chunk has trailing bytes" % epoch)
        elif chunk_kind == CHUNK_SUMMARY:
            if result["summary"] is not None:
                raise JournalError("duplicate summary chunk")
            values = struct.unpack_from("<%dq" % len(SUMMARY_FIELDS),
                                        payload, 1)
            if 1 + 8 * len(SUMMARY_FIELDS) != len(payload):
                raise JournalError("summary chunk has trailing bytes")
            result["summary"] = dict(zip(SUMMARY_FIELDS, values))
        else:
            raise JournalError("unknown chunk kind %d" % chunk_kind)
    return result


def parse_journal_file(path):
    with open(path, "rb") as f:
        return parse_journal(f.read())


def summarize(events):
    """Re-derives the summary totals from the event stream — the same
    accumulation as AccumulateSummaryEvent in src/obs/journal.cc."""
    s = dict.fromkeys(SUMMARY_FIELDS, 0)
    for e in events:
        if e.kind == KINDS["round_commit"]:
            s["epochs_run"] += 1
        elif e.kind == KINDS["migration_c2c"]:
            s["migrations_planned"] += 1
            s["migrations_completed"] += 1
        elif e.kind == KINDS["migration_fallback"]:
            s["migrations_planned"] += 1
            s["migration_fallbacks"] += 1
        elif e.kind == KINDS["migration_rolled_back"]:
            s["migrations_planned"] += 1
            s["migrations_rolled_back"] += 1
        elif e.kind == KINDS["quorum_commit"]:
            s["quorum_commits"] += 1
        elif e.kind == KINDS["quorum_miss"]:
            s["quorum_misses"] += 1
        elif e.kind == KINDS["client_carried_over"]:
            s["carryover_clients"] += 1
        elif e.kind == KINDS["churn_absence"]:
            s["churn_absences"] += 1
        elif e.kind == KINDS["client_departed"]:
            s["churn_departures"] += 1
        elif e.kind == KINDS["quarantine_transition"]:
            if (e.b & 0xFF) == STATE_QUARANTINED:
                s["quarantines"] += 1
        elif e.kind == KINDS["model_published"]:
            s["model_publishes"] += 1
    return s


def validate(path, allow_torn=False):
    errors = []
    try:
        journal = parse_journal_file(path)
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)], None
    except JournalError as e:
        return ["%s: %s" % (path, e)], None

    if journal["torn_tail_bytes"] and not allow_torn:
        errors.append(
            "%s: %d torn-tail byte(s) after the last valid frame (pass "
            "--allow-torn for interrupted runs)"
            % (path, journal["torn_tail_bytes"]))
    if journal["header"] is None:
        errors.append("%s: no header chunk" % path)

    # One round commit per committed epoch, and it closes the chunk.
    by_epoch = {}
    for event in journal["events"]:
        by_epoch.setdefault(event.epoch, []).append(event)
    for epoch in journal["committed_epochs"]:
        events = by_epoch.get(epoch, [])
        commits = [e for e in events if e.kind == KINDS["round_commit"]]
        if len(commits) != 1:
            errors.append("%s: epoch %d has %d round-commit events (want 1)"
                          % (path, epoch, len(commits)))
        elif events[-1] is not commits[0]:
            errors.append("%s: epoch %d round commit is not the chunk's "
                          "final event" % (path, epoch))

    # Publishes mint strictly increasing lineage ids; every parent was
    # minted earlier (or is a pre-journal id), so the DAG is acyclic.
    last_minted = 0
    for event in journal["events"]:
        if event.kind != KINDS["model_published"]:
            continue
        if event.u <= last_minted:
            errors.append(
                "%s: publish lineage %d at epoch %d not strictly increasing "
                "(last %d)" % (path, event.u, event.epoch, last_minted))
        if event.v >= event.u:
            errors.append(
                "%s: publish lineage %d at epoch %d has parent %d >= itself"
                % (path, event.u, event.epoch, event.v))
        last_minted = max(last_minted, event.u)

    if journal["summary"] is not None:
        derived = summarize(journal["events"])
        for field in SUMMARY_FIELDS:
            if journal["summary"][field] != derived[field]:
                errors.append(
                    "%s: summary.%s = %d but the events derive %d"
                    % (path, field, journal["summary"][field],
                       derived[field]))

    return errors, journal


def main(argv):
    allow_torn = False
    paths = []
    for arg in argv:
        if arg == "--allow-torn":
            allow_torn = True
        elif arg.startswith("-"):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors, journal = validate(path, allow_torn=allow_torn)
        for error in errors:
            print("check_journal: " + error, file=sys.stderr)
        if errors:
            failed = True
        else:
            print("check_journal: %s OK (%d epochs, %d events%s)"
                  % (path, len(journal["committed_epochs"]),
                     len(journal["events"]),
                     ", sealed" if journal["summary"] is not None
                     else ", unsealed"))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
