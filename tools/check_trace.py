#!/usr/bin/env python3
"""check_trace — structural validator for FedMigr telemetry exports.

Chrome traces (from `--trace-out`, obs::TraceRecorder::WriteChromeJson)
must actually load in a trace viewer:

  * parses as JSON with a top-level "traceEvents" list;
  * every event carries ph/pid/tid, and every non-metadata event a numeric
    "ts";
  * per (pid, tid) track, timestamps are monotone non-decreasing in stream
    order (the viewer requirement the exporter guarantees by construction);
  * "B" and "E" events pair up: every "E" closes an open "B" on its track
    and no track ends with an open span;
  * metadata names the two clock domains (pid 1 wall clock, pid 2
    simulated time) when events reference them;
  * counter tracks ("C", e.g. tools/fedmigr_report's journal counters)
    carry a name and numeric series values.

Metrics snapshots (from `--metrics-out`, obs::MetricsSnapshot::ToJson)
are detected by their top-level "counters"/"gauges"/"histograms" shape:

  * every histogram carries count/sum/mean and the p50/p90/p95/p99
    percentile columns;
  * percentiles are monotone: p50 <= p90 <= p95 <= p99;
  * the per-bucket counts sum to the sample count.

Usage: tools/check_trace.py FILE.json [FILE2.json ...]
Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

PERCENTILE_KEYS = ("p50", "p90", "p95", "p99")


def validate_metrics(path, doc):
    errors = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append("%s: metrics section %r is missing" % (path, section))
    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        return errors
    for name, hist in sorted(histograms.items()):
        where = "%s: histogram %r" % (path, name)
        if not isinstance(hist, dict):
            errors.append("%s: not an object" % where)
            continue
        for key in ("count", "sum", "mean", "bounds", "counts") + \
                PERCENTILE_KEYS:
            if key not in hist:
                errors.append("%s: missing %r" % (where, key))
        percentiles = [hist.get(key) for key in PERCENTILE_KEYS]
        if all(isinstance(p, (int, float)) for p in percentiles):
            for lo, hi, lo_v, hi_v in zip(
                    PERCENTILE_KEYS, PERCENTILE_KEYS[1:],
                    percentiles, percentiles[1:]):
                if lo_v > hi_v:
                    errors.append(
                        "%s: %s=%s exceeds %s=%s (percentiles must be "
                        "monotone)" % (where, lo, lo_v, hi, hi_v))
        counts = hist.get("counts")
        if isinstance(counts, list) and isinstance(hist.get("count"), int):
            if sum(counts) != hist["count"]:
                errors.append(
                    "%s: bucket counts sum to %s but count is %s"
                    % (where, sum(counts), hist["count"]))
    return errors


def validate(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: does not parse as JSON: %s" % (path, e)]

    if isinstance(doc, dict) and "traceEvents" not in doc and \
            "histograms" in doc:
        return validate_metrics(path, doc)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: top-level 'traceEvents' list is missing" % path]

    last_ts = {}     # (pid, tid) -> last timestamp seen on the track
    open_spans = {}  # (pid, tid) -> count of unclosed "B" events
    named_pids = set()
    for index, event in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, index)
        if not isinstance(event, dict):
            errors.append("%s: event is not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "i", "M", "X", "C"):
            errors.append("%s: unknown phase %r" % (where, ph))
            continue
        if "pid" not in event or "tid" not in event:
            errors.append("%s: missing pid/tid" % where)
            continue
        track = (event["pid"], event["tid"])
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event["pid"])
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append("%s: missing numeric 'ts'" % where)
            continue
        if ts < last_ts.get(track, float("-inf")):
            errors.append(
                "%s: ts %s goes backwards on track pid=%s tid=%s (last %s)"
                % (where, ts, track[0], track[1], last_ts[track]))
        last_ts[track] = ts
        if ph == "C":
            # Counter samples (fedmigr_report's journal tracks): a name and
            # numeric series values are what the viewer plots.
            if not event.get("name"):
                errors.append("%s: 'C' event without a name" % where)
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                errors.append("%s: 'C' event without args" % where)
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                errors.append("%s: 'C' event with non-numeric series"
                              % where)
        elif ph == "B":
            if not event.get("name"):
                errors.append("%s: 'B' event without a name" % where)
            open_spans[track] = open_spans.get(track, 0) + 1
        elif ph == "E":
            if open_spans.get(track, 0) <= 0:
                errors.append(
                    "%s: 'E' with no open 'B' on track pid=%s tid=%s"
                    % (where, track[0], track[1]))
            else:
                open_spans[track] -= 1

    for track, count in sorted(open_spans.items()):
        if count > 0:
            errors.append(
                "%s: %d unclosed 'B' span(s) on track pid=%s tid=%s"
                % (path, count, track[0], track[1]))
    for pid in sorted({track[0] for track in last_ts}):
        if pid not in named_pids:
            errors.append(
                "%s: events reference pid %s but no process_name metadata "
                "names it" % (path, pid))
    return errors


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = validate(path)
        for error in errors:
            print("check_trace: " + error, file=sys.stderr)
        if errors:
            failed = True
        else:
            print("check_trace: %s OK" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
