// Seeded violations for `fedmigr_lint --self-test`. Every line marked
// LINT-EXPECT must be flagged with exactly that rule; any other flagged
// line is a self-test failure (false positive). This file is a fixture —
// it is never compiled or linked.

#include <sys/time.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "util/file.h"
#include "util/status.h"

namespace fedmigr::lint_fixture {

// --- banned-random ---------------------------------------------------------

unsigned SeedFromHardware() {
  std::random_device device;  // LINT-EXPECT: banned-random
  return device();
}

unsigned SeedFromClock() {
  return static_cast<unsigned>(time(nullptr));  // LINT-EXPECT: banned-random
}

int LegacyRand() {
  srand(42);     // LINT-EXPECT: banned-random
  return rand(); // LINT-EXPECT: banned-random
}

double StdEngineDraw() {
  std::mt19937 engine;  // LINT-EXPECT: banned-random
  std::default_random_engine fallback;  // LINT-EXPECT: banned-random
  return static_cast<double>(engine()) + static_cast<double>(fallback());
}

// --- unordered-iter --------------------------------------------------------

double SumInHashOrder(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // LINT-EXPECT: unordered-iter
    total += w;
  }
  return total;
}

int WalkUnorderedSet() {
  std::unordered_set<int> ids = {3, 1, 2};
  int checksum = 0;
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // LINT-EXPECT: unordered-iter
    checksum = checksum * 31 + *it;
  }
  return checksum;
}

// --- raw-file-write --------------------------------------------------------

void TearProneWrite(const char* path) {
  std::FILE* f = fopen(path, "wb");  // LINT-EXPECT: raw-file-write
  const char byte = 1;
  fwrite(&byte, 1, 1, f);  // LINT-EXPECT: raw-file-write
}

void StreamWrite(const char* path) {
  std::ofstream out(path);  // LINT-EXPECT: raw-file-write
  out << "metrics";
}

// --- wallclock -------------------------------------------------------------

long HostTimeLeak() {
  const auto wall = std::chrono::steady_clock::now();  // LINT-EXPECT: wallclock
  (void)std::chrono::system_clock::now();  // LINT-EXPECT: wallclock
  using Clock = std::chrono::high_resolution_clock;  // LINT-EXPECT: wallclock
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // LINT-EXPECT: wallclock
  struct timeval tv;
  gettimeofday(&tv, nullptr);  // LINT-EXPECT: wallclock
  return wall.time_since_epoch().count() + Clock::duration::period::den +
         ts.tv_sec + tv.tv_sec;
}

// --- counter-mutation ------------------------------------------------------

struct FixtureCounters {
  long screened_updates = 0;
  long crashes = 0;
  long retries = 0;
  long fallbacks = 0;
};

void MutatesCountersDirectly(FixtureCounters* counters) {
  counters->screened_updates += 1;  // LINT-EXPECT: counter-mutation
  counters->crashes++;  // LINT-EXPECT: counter-mutation
  ++counters->retries;  // LINT-EXPECT: counter-mutation
  counters->fallbacks = 7;  // LINT-EXPECT: counter-mutation
}

struct OwnsCounters {
  FixtureCounters counters_;
  void Tamper() {
    counters_.crashes -= 1;  // LINT-EXPECT: counter-mutation
    robust_counters_.screened_updates++;  // LINT-EXPECT: counter-mutation
    chaos_counters_.retries++;  // LINT-EXPECT: counter-mutation
  }
  FixtureCounters robust_counters_;
  FixtureCounters chaos_counters_;
};

// --- eager-client-alloc ----------------------------------------------------

namespace nn {
struct Sequential {};
}  // namespace nn

void EagerModelAllocations() {
  nn::Sequential replica;  // LINT-EXPECT: eager-client-alloc
  auto minted = std::make_shared<nn::Sequential>();  // LINT-EXPECT: eager-client-alloc
  auto owned = std::make_unique<nn::Sequential>();  // LINT-EXPECT: eager-client-alloc
  std::vector<nn::Sequential> fleet;  // LINT-EXPECT: eager-client-alloc
  (void)replica;
  (void)minted;
  (void)owned;
  (void)fleet;
}

// --- journal-emit ----------------------------------------------------------

void ForgesJournalRecords(fedmigr::util::ByteWriter* writer,
                          std::vector<fedmigr::obs::JournalEvent>* queue) {
  obs::JournalEvent raw;  // LINT-EXPECT: journal-emit
  raw.kind = 14;
  obs::WriteJournalEvent(raw, writer);  // LINT-EXPECT: journal-emit
  queue->push_back(obs::JournalEvent{21, 0, 0, 0, 0, 0, 0.0});  // LINT-EXPECT: journal-emit
  std::vector<unsigned char> payload;
  const auto framed = obs::FrameJournalChunk(payload);  // LINT-EXPECT: journal-emit
  (void)framed;
}

// --- discarded-status ------------------------------------------------------

void DropsStatuses(const std::string& path) {
  util::RemoveFile(path);  // LINT-EXPECT: discarded-status
  util::MakeDirectories(path);  // LINT-EXPECT: discarded-status
}

}  // namespace fedmigr::lint_fixture
