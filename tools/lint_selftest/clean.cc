// Negative fixture for `fedmigr_lint --self-test`: idiomatic FedMigr code
// that must produce zero findings. Patterns here are chosen to sit close
// to each rule's boundary — mentioning banned names only in comments and
// strings, ordered-container iteration, sanctioned error handling — so a
// rule that over-triggers fails the self-test as loudly as one that goes
// quiet. Never compiled or linked.

#include <map>
#include <string>
#include <vector>

#include "util/file.h"
#include "util/rng.h"
#include "util/status.h"

namespace fedmigr::lint_fixture {

// Comments may talk about std::random_device, rand() and time(nullptr)
// freely; only code draws findings.
double SanctionedDraw(util::Rng* rng) {
  // "call srand() first" — banned names inside a string are fine too.
  const std::string hint = "do not use rand() or std::mt19937 here";
  return rng->Uniform() + static_cast<double>(hint.size());
}

double SumInKeyOrder(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {
    total += w + id;
  }
  return total;
}

// The counter-mutation boundary: address-of funnel calls, serialization
// reads, comparisons and whole-struct assignment are all sanctioned —
// only a direct field mutation is a finding.
struct CleanCounters {
  long crashes = 0;
  long retries = 0;
};

void Bump(long* slot) { ++*slot; }
void ReadI64Fixture(const long* slot, long* out);

long FunnelledCounterUse(CleanCounters* counters) {
  Bump(&counters->crashes);
  long staged = 0;
  ReadI64Fixture(&counters->retries, &staged);
  if (counters->crashes == 3 || counters->retries >= 1) {
    return counters->crashes;
  }
  CleanCounters snapshot;
  snapshot = *counters;  // whole-struct staging commit
  return snapshot.retries;
}

// The eager-client-alloc boundary: references, pointers and const shared
// handles are the sanctioned CoW currency — only by-value construction
// (and make_shared/make_unique/vector of whole models) is a finding.
namespace nn {
struct Sequential {};
}  // namespace nn

long CowHandlesAreClean(const nn::Sequential& model, nn::Sequential* scratch) {
  const std::shared_ptr<const nn::Sequential> alias;
  const nn::Sequential* view = alias ? alias.get() : &model;
  std::vector<const nn::Sequential*> uploads = {view};
  (void)scratch;
  return static_cast<long>(uploads.size());
}

util::Status HandledStatuses(const std::string& path,
                             const std::vector<uint8_t>& payload) {
  FEDMIGR_RETURN_IF_ERROR(util::MakeDirectories(path));
  const util::Status written = util::AtomicWriteFile(path + "/a.bin", payload);
  if (!written.ok()) {
    return written;
  }
  return util::RemoveFile(path + "/a.bin");
}

}  // namespace fedmigr::lint_fixture
