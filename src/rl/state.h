// State featurization (Section III-C).
//
// The paper's state s_t = (t, w_t, F_t, D_t, R_t, G_t) is reduced to a fixed
// per-action feature row: the agent scores the action "migrate the model at
// source i to destination j" from the components of s_t that pertain to the
// pair (i, j) plus the global scalars. This keeps the policy network's input
// size independent of K, which is what lets one pre-trained agent serve
// networks of any size (the paper's scalability claim, Fig. 6).

#ifndef FEDMIGR_RL_STATE_H_
#define FEDMIGR_RL_STATE_H_

#include <vector>

#include "fl/policies.h"

namespace fedmigr::rl {

// Number of features per (source, destination) action row.
inline constexpr int kActionFeatureDim = 8;

struct GlobalFeatures {
  double epoch_fraction = 0.0;    // t / T
  double loss = 0.0;              // F_t (squashed)
  double compute_fraction = 0.0;  // consumed / B_c
  double bandwidth_fraction = 0.0;
};

// Feature row for migrating the model hosted at `src` to client `dst`:
// [ emd_gain, same_lan, transfer_time_norm, stay_flag,
//   epoch_frac, loss, compute_frac, bandwidth_frac ].
std::vector<float> ActionFeatures(const fl::PolicyContext& ctx,
                                  const std::vector<std::vector<double>>& gain,
                                  double max_transfer_seconds, int src,
                                  int dst, const GlobalFeatures& global);

// All K candidate rows for one source (dst = 0..K-1; dst == src is "stay").
std::vector<std::vector<float>> CandidateRows(
    const fl::PolicyContext& ctx,
    const std::vector<std::vector<double>>& gain, int src);

// Largest pairwise transfer time in the topology for `ctx.model_bytes` —
// the normalizer used by ActionFeatures.
double MaxTransferSeconds(const fl::PolicyContext& ctx);

GlobalFeatures MakeGlobalFeatures(const fl::PolicyContext& ctx,
                                  int horizon_epochs);

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_STATE_H_
