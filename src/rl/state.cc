#include "rl/state.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::rl {

double MaxTransferSeconds(const fl::PolicyContext& ctx) {
  const int k = ctx.topology->num_clients();
  double max_time = 0.0;
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      max_time = std::max(
          max_time, ctx.topology->TransferSeconds(i, j, ctx.model_bytes));
    }
  }
  return max_time > 0.0 ? max_time : 1.0;
}

GlobalFeatures MakeGlobalFeatures(const fl::PolicyContext& ctx,
                                  int horizon_epochs) {
  GlobalFeatures global;
  global.epoch_fraction =
      std::min(1.0, static_cast<double>(ctx.epoch) /
                        std::max(1, horizon_epochs));
  // Squash the loss so datasets with different class counts produce
  // comparable magnitudes.
  global.loss = std::tanh(ctx.global_loss / 4.0);
  if (ctx.budget != nullptr) {
    global.compute_fraction = ctx.budget->ComputeUsedFraction();
    global.bandwidth_fraction = ctx.budget->BandwidthUsedFraction();
  }
  return global;
}

std::vector<float> ActionFeatures(const fl::PolicyContext& ctx,
                                  const std::vector<std::vector<double>>& gain,
                                  double max_transfer_seconds, int src,
                                  int dst, const GlobalFeatures& global) {
  std::vector<float> row(kActionFeatureDim);
  const bool stay = src == dst;
  // Availability folds into the existing features rather than widening the
  // row (which would invalidate every pre-trained agent): an unavailable
  // destination gains nothing and its link looks maximally slow, so the
  // actor scores it like the worst possible move even before the policy
  // masks it out of the action space.
  const bool dst_down = !stay && !fl::ClientAvailable(ctx, dst);
  const double emd =
      stay || dst_down
          ? 0.0
          : gain[static_cast<size_t>(src)][static_cast<size_t>(dst)];
  const double same_lan = stay ? 1.0
                               : (ctx.topology->SameLan(src, dst) ? 1.0 : 0.0);
  const double time =
      stay ? 0.0
           : (dst_down
                  ? 1.0
                  : ctx.topology->TransferSeconds(src, dst, ctx.model_bytes) /
                        max_transfer_seconds);
  row[0] = static_cast<float>(emd / 2.0);  // EMD over a simplex is <= 2
  row[1] = static_cast<float>(same_lan);
  row[2] = static_cast<float>(time);
  row[3] = stay ? 1.0f : 0.0f;
  row[4] = static_cast<float>(global.epoch_fraction);
  row[5] = static_cast<float>(global.loss);
  row[6] = static_cast<float>(global.compute_fraction);
  row[7] = static_cast<float>(global.bandwidth_fraction);
  return row;
}

std::vector<std::vector<float>> CandidateRows(
    const fl::PolicyContext& ctx,
    const std::vector<std::vector<double>>& gain, int src) {
  const int k = ctx.topology->num_clients();
  const double max_time = MaxTransferSeconds(ctx);
  const GlobalFeatures global = MakeGlobalFeatures(ctx, /*horizon=*/1000);
  std::vector<std::vector<float>> rows;
  rows.reserve(static_cast<size_t>(k));
  for (int dst = 0; dst < k; ++dst) {
    rows.push_back(ActionFeatures(ctx, gain, max_time, src, dst, global));
  }
  return rows;
}

}  // namespace fedmigr::rl
