// DRL-driven migration policy: the bridge between the DDPG agent and the FL
// trainer. This is the policy FedMigr proper runs with.
//
// Plan(): every source client's candidate rows are scored by the actor; a
// destination is picked greedily (or sampled when exploring), with
// destinations claimed at most once per round and an optional ρ-greedy mix
// of relaxed-FLMM actions. Feedback(): the trainer's per-epoch outcome is
// turned into the Eq. 17/18 reward, pending transitions are completed with
// their successor states and pushed into the replay buffer, and (when
// online learning is enabled) the agent takes gradient steps — so the agent
// keeps adapting to the live system exactly as Section III-C describes.

#ifndef FEDMIGR_RL_POLICY_H_
#define FEDMIGR_RL_POLICY_H_

#include <memory>
#include <vector>

#include "fl/policies.h"
#include "rl/agent.h"
#include "rl/replay_buffer.h"

namespace fedmigr::rl {

struct DrlPolicyOptions {
  // Sample the softmax policy rather than argmax. Sampling is the default:
  // the stochastic gain-weighted policy is what makes migration effective
  // (deterministic matching degenerates; see AgentConfig::entropy_beta).
  bool explore = true;
  double rho = 0.0;            // FLMM-guided exploration probability
  bool online_learning = false;
  int train_steps_per_feedback = 1;
  size_t buffer_capacity = 4096;
  uint64_t seed = 23;
};

class DrlMigrationPolicy : public fl::MigrationPolicy {
 public:
  // The policy shares (and may keep training) the given agent.
  DrlMigrationPolicy(std::shared_ptr<DdpgAgent> agent,
                     DrlPolicyOptions options);

  fl::MigrationPlan Plan(const fl::PolicyContext& ctx) override;
  void Feedback(const fl::PolicyFeedback& feedback) override;
  std::string name() const override { return "fedmigr-drl"; }

  // Snapshot hooks: agent networks + Adam moments, the prioritized replay
  // buffer, the policy RNG, and the in-flight decision queues.
  void SaveState(util::ByteWriter* writer) const override;
  util::Status LoadState(util::ByteReader* reader) override;

  const DdpgAgent& agent() const { return *agent_; }

 private:
  struct PendingDecision {
    int src = 0;
    std::vector<std::vector<float>> candidates;
    int action = 0;
    // Realized divergence gain and normalized link time of the chosen
    // action, for ShapedDecisionReward.
    double gain = 0.0;
    double time_norm = 0.0;
  };

  std::shared_ptr<DdpgAgent> agent_;
  // SNAPSHOT-SKIP(configuration, supplied identically on resume)
  DrlPolicyOptions options_;
  PrioritizedReplayBuffer buffer_;
  util::Rng rng_;
  // Decisions awaiting reward (set by Feedback) and successor state (set by
  // the next Plan). `awaiting_srcs_` parallels `awaiting_next_state_`.
  std::vector<PendingDecision> awaiting_reward_;
  std::vector<Transition> awaiting_next_state_;
  std::vector<int> awaiting_srcs_;
};

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_POLICY_H_
