#include "rl/agent.h"

#include <algorithm>
#include <cmath>

#include "nn/serialize.h"
#include "nn/zoo.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fedmigr::rl {

namespace {

nn::Tensor RowsToTensor(const std::vector<std::vector<float>>& rows) {
  FEDMIGR_CHECK(!rows.empty());
  const int k = static_cast<int>(rows.size());
  const int f = static_cast<int>(rows[0].size());
  nn::Tensor tensor({k, f});
  for (int i = 0; i < k; ++i) {
    FEDMIGR_CHECK_EQ(static_cast<int>(rows[static_cast<size_t>(i)].size()), f);
    for (int j = 0; j < f; ++j) {
      tensor.At(i, j) = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  return tensor;
}

std::vector<double> SoftmaxMasked(const std::vector<double>& scores,
                                  const std::vector<bool>& mask) {
  FEDMIGR_CHECK_EQ(scores.size(), mask.size());
  // A non-finite score (the actor diverged — e.g. trained on Byzantine
  // losses) cannot be exponentiated; those actions are excluded, and if no
  // finite-scored action remains the policy degrades to uniform over the
  // mask rather than emitting NaN probabilities.
  double max_score = -1e300;
  bool any = false;
  bool any_finite = false;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (mask[i]) {
      any = true;
      if (std::isfinite(scores[i])) {
        max_score = std::max(max_score, scores[i]);
        any_finite = true;
      }
    }
  }
  FEDMIGR_CHECK(any) << "all actions masked";
  std::vector<double> probs(scores.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!mask[i]) continue;
    if (!any_finite) {
      probs[i] = 1.0;
    } else if (std::isfinite(scores[i])) {
      probs[i] = std::exp(scores[i] - max_score);
    }
    total += probs[i];
  }
  for (auto& p : probs) p /= total;
  return probs;
}

}  // namespace

DdpgAgent::DdpgAgent(const AgentConfig& config) : config_(config) {
  util::Rng rng(config_.seed);
  const std::vector<int> dims = {kActionFeatureDim, config_.hidden,
                                 config_.hidden, 1};
  actor_ = nn::MakeMlp(dims, /*softmax_output=*/false, &rng);
  critic_ = nn::MakeMlp(dims, /*softmax_output=*/false, &rng);
  target_actor_ = actor_;
  target_critic_ = critic_;
  actor_optimizer_ = std::make_unique<nn::Adam>(config_.actor_lr);
  critic_optimizer_ = std::make_unique<nn::Adam>(config_.critic_lr);
}

std::vector<double> DdpgAgent::ForwardColumn(
    nn::Sequential* model, const std::vector<std::vector<float>>& rows) {
  const nn::Tensor out = model->Forward(RowsToTensor(rows), /*training=*/false);
  std::vector<double> column(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    column[i] = out[static_cast<int64_t>(i)];
  }
  return column;
}

std::vector<double> DdpgAgent::Score(
    const std::vector<std::vector<float>>& candidates, bool use_target) {
  return ForwardColumn(use_target ? &target_actor_ : &actor_, candidates);
}

std::vector<double> DdpgAgent::Policy(
    const std::vector<std::vector<float>>& candidates,
    const std::vector<bool>& mask) {
  return SoftmaxMasked(Score(candidates), mask);
}

int DdpgAgent::SelectAction(const std::vector<std::vector<float>>& candidates,
                            const std::vector<bool>& mask, bool explore,
                            util::Rng* rng) {
  const std::vector<double> probs = Policy(candidates, mask);
  if (explore) {
    return rng->Categorical(probs);
  }
  int best = -1;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (!mask[i]) continue;
    if (best < 0 || probs[i] > probs[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

double DdpgAgent::Q(const std::vector<float>& features, bool use_target) {
  return ForwardColumn(use_target ? &target_critic_ : &critic_, {features})[0];
}

TrainStats DdpgAgent::Train(PrioritizedReplayBuffer* buffer, util::Rng* rng) {
  FEDMIGR_TRACE_SCOPE("rl/train_step");
  TrainStats stats;
  if (buffer->size() < static_cast<size_t>(config_.batch_size)) return stats;

  const auto batch = buffer->Sample(
      static_cast<size_t>(config_.batch_size), rng);

  critic_.ZeroGrads();
  actor_.ZeroGrads();
  double critic_loss = 0.0;
  double td_sum = 0.0;
  double q_sum = 0.0;

  for (const auto& sample : batch) {
    const Transition& z = *sample.transition;
    const float weight = static_cast<float>(sample.weight);

    // --- Target value h_t (Eq. 21): r + γ Q'(s', π'(s')). -----------------
    double target = z.reward;
    if (!z.done && !z.next_candidates.empty()) {
      const std::vector<double> next_scores =
          Score(z.next_candidates, /*use_target=*/true);
      int best = 0;
      for (size_t j = 1; j < next_scores.size(); ++j) {
        if (next_scores[j] > next_scores[static_cast<size_t>(best)]) {
          best = static_cast<int>(j);
        }
      }
      target += config_.gamma *
                Q(z.next_candidates[static_cast<size_t>(best)],
                  /*use_target=*/true);
    }

    // --- Critic: weighted squared TD error, with input gradient captured
    // for the Eq. 25 priority. ---------------------------------------------
    const auto& action_row = z.candidates[static_cast<size_t>(z.action_index)];
    const nn::Tensor features = RowsToTensor({action_row});
    const nn::Tensor q_out = critic_.Forward(features, /*training=*/true);
    const double q_value = q_out[0];
    const double td_error = target - q_value;
    nn::Tensor grad_q({1, 1});
    grad_q[0] = static_cast<float>(-2.0 * td_error) * weight /
                static_cast<float>(batch.size());
    const nn::Tensor grad_input = critic_.Backward(grad_q);
    // |∇_a Q|: magnitude of the critic's sensitivity to the action features.
    const double grad_action_norm = grad_input.Norm() /
                                    std::max(1e-12, 2.0 * std::fabs(td_error) *
                                                        weight /
                                                        batch.size());

    // --- Actor: advantage-weighted log-policy gradient. -------------------
    // A = Q(s, a) - mean_j Q(s, j); loss = -μ A log π(a|s).
    const std::vector<double> all_q = ForwardColumn(&critic_, z.candidates);
    double mean_q = 0.0;
    for (double q : all_q) mean_q += q;
    mean_q /= static_cast<double>(all_q.size());
    const double advantage = q_value - mean_q;

    const std::vector<double> scores = ForwardColumn(&actor_, z.candidates);
    std::vector<bool> mask(scores.size(), true);
    const std::vector<double> probs = SoftmaxMasked(scores, mask);
    // d(-A log π(a))/d score_j = -A (1{j=a} - π_j); re-run forward with
    // training=true so the backward pass has fresh caches.
    const nn::Tensor actor_in = RowsToTensor(z.candidates);
    (void)actor_.Forward(actor_in, /*training=*/true);
    // Policy entropy, for the regularizer below.
    double entropy = 0.0;
    for (double p : probs) {
      if (p > 1e-12) entropy -= p * std::log(p);
    }
    nn::Tensor grad_scores({static_cast<int>(scores.size()), 1});
    for (size_t j = 0; j < scores.size(); ++j) {
      const double indicator = static_cast<int>(j) == z.action_index ? 1.0
                                                                     : 0.0;
      // Policy-gradient term plus entropy regularization
      // (d(-H)/ds_j = π_j (log π_j + H)).
      const double pg = -advantage * (indicator - probs[j]);
      const double ent = config_.entropy_beta * probs[j] *
                         (std::log(std::max(probs[j], 1e-12)) + entropy);
      grad_scores[static_cast<int64_t>(j)] =
          static_cast<float>(pg + ent) * weight /
          static_cast<float>(batch.size());
    }
    actor_.Backward(grad_scores);

    // --- Priority (Eq. 25): ε |φ| + (1-ε) |∇_a Q|. -------------------------
    const double priority = config_.priority_epsilon * std::fabs(td_error) +
                            (1.0 - config_.priority_epsilon) *
                                grad_action_norm;
    buffer->UpdatePriority(sample.index, priority);

    critic_loss += td_error * td_error;
    td_sum += std::fabs(td_error);
    q_sum += q_value;
  }

  critic_optimizer_->Step(&critic_);
  actor_optimizer_->Step(&actor_);

  // Soft target updates: θ' ← τ θ + (1-τ) θ'.
  target_actor_.LerpParamsFrom(actor_, static_cast<float>(config_.soft_tau));
  target_critic_.LerpParamsFrom(critic_, static_cast<float>(config_.soft_tau));

  const double n = static_cast<double>(batch.size());
  stats.critic_loss = critic_loss / n;
  stats.mean_td_error = td_sum / n;
  stats.mean_q = q_sum / n;

  if (obs::Telemetry::enabled()) {
    static obs::Counter* train_steps =
        obs::Registry::Default().GetCounter("rl/train_steps");
    static obs::Gauge* critic_loss_gauge =
        obs::Registry::Default().GetGauge("rl/critic_loss");
    static obs::Gauge* td_error_gauge =
        obs::Registry::Default().GetGauge("rl/mean_td_error");
    static obs::Gauge* mean_q_gauge =
        obs::Registry::Default().GetGauge("rl/mean_q");
    static obs::Gauge* replay_size =
        obs::Registry::Default().GetGauge("rl/replay_size");
    train_steps->Increment();
    critic_loss_gauge->Set(stats.critic_loss);
    td_error_gauge->Set(stats.mean_td_error);
    mean_q_gauge->Set(stats.mean_q);
    replay_size->Set(static_cast<double>(buffer->size()));
  }
  return stats;
}

void DdpgAgent::SaveState(util::ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(config_.hidden));
  nn::WriteParams(writer, actor_);
  nn::WriteParams(writer, critic_);
  nn::WriteParams(writer, target_actor_);
  nn::WriteParams(writer, target_critic_);
  actor_optimizer_->SaveState(writer);
  critic_optimizer_->SaveState(writer);
}

util::Status DdpgAgent::LoadState(util::ByteReader* reader) {
  uint32_t hidden = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&hidden));
  if (hidden != static_cast<uint32_t>(config_.hidden)) {
    return util::Status::InvalidArgument(
        "agent architecture mismatch: snapshot hidden=" +
        std::to_string(hidden) + ", agent hidden=" +
        std::to_string(config_.hidden));
  }
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &actor_));
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &critic_));
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &target_actor_));
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &target_critic_));
  FEDMIGR_RETURN_IF_ERROR(actor_optimizer_->LoadState(reader));
  FEDMIGR_RETURN_IF_ERROR(critic_optimizer_->LoadState(reader));
  return util::Status::Ok();
}

double StepReward(double loss_before, double loss_after,
                  double compute_cost_fraction, double bandwidth_cost_fraction,
                  double upsilon) {
  FEDMIGR_CHECK_GT(upsilon, 1.0);
  const double denom = std::max(std::fabs(loss_before), 1e-8);
  const double relative_delta =
      std::clamp((loss_after - loss_before) / denom, -1.0, 1.0);
  return -std::pow(upsilon, relative_delta) - compute_cost_fraction -
         bandwidth_cost_fraction;
}

double TerminalReward(double step_reward, bool success, double bonus) {
  return step_reward + (success ? bonus : -bonus);
}

double ShapedDecisionReward(double epoch_reward, double emd_gain,
                            double time_norm, double gain_weight,
                            double time_weight) {
  return epoch_reward + gain_weight * emd_gain - time_weight * time_norm;
}

}  // namespace fedmigr::rl
