#include "rl/pretrain.h"

#include <algorithm>
#include <vector>

#include "opt/flmm.h"
#include "util/logging.h"

namespace fedmigr::rl {

PretrainReport Pretrain(DdpgAgent* agent, const SurrogateConfig& env_config,
                        const PretrainOptions& options) {
  FEDMIGR_CHECK(agent != nullptr);
  PretrainReport report;
  util::Rng rng(options.seed);
  SurrogateEnv env(env_config, options.seed ^ 0xabcdef);
  PrioritizedReplayBuffer buffer(options.buffer_capacity);

  const int k = env.num_clients();
  // Decisions of the previous epoch waiting for their next-state rows.
  struct Pending {
    int src = 0;
    std::vector<std::vector<float>> candidates;
    int action = 0;
    double reward = 0.0;
    bool done = false;
  };

  for (int episode = 0; episode < options.episodes; ++episode) {
    env.Reset();
    const double progress = options.episodes > 1
                                ? static_cast<double>(episode) /
                                      (options.episodes - 1)
                                : 1.0;
    const double rho =
        options.rho_start + (options.rho_end - options.rho_start) * progress;

    double episode_return = 0.0;
    std::vector<Pending> pending;
    bool done = false;
    while (!done) {
      // ρ-greedy: one FLMM plan per epoch covers the solver-guided picks.
      std::vector<int> flmm_destination;
      if (rho > 0.0) {
        opt::FlmmOptions flmm_options;
        const opt::FlmmPlan plan =
            opt::SolveFlmm(env.GainMatrix(), env.topology(),
                           env_config.model_bytes, flmm_options);
        flmm_destination = plan.destination;
      }

      std::vector<Pending> current;
      current.reserve(static_cast<size_t>(k));
      for (int src = 0; src < k; ++src) {
        Pending decision;
        decision.src = src;
        decision.candidates = env.Candidates(src);
        const std::vector<bool> mask = env.Mask(src);
        int action;
        if (!flmm_destination.empty() && rng.Bernoulli(rho) &&
            mask[static_cast<size_t>(
                flmm_destination[static_cast<size_t>(src)])]) {
          action = flmm_destination[static_cast<size_t>(src)];
        } else {
          action = agent->SelectAction(decision.candidates, mask,
                                       /*explore=*/true, &rng);
        }
        decision.action = action;
        env.Choose(src, action);
        current.push_back(std::move(decision));
      }

      const SurrogateEnv::StepResult step = env.EndEpoch();
      episode_return += step.reward;
      done = step.done;
      for (auto& decision : current) {
        decision.reward =
            step.shaped_rewards[static_cast<size_t>(decision.src)];
        decision.done = step.done;
      }

      // The previous epoch's decisions now know their successor state.
      for (auto& prev : pending) {
        Transition transition;
        transition.candidates = std::move(prev.candidates);
        transition.action_index = prev.action;
        transition.reward = static_cast<float>(prev.reward);
        transition.done = prev.done;
        transition.next_candidates =
            current[static_cast<size_t>(prev.src)].candidates;
        buffer.Add(std::move(transition));
        ++report.transitions;
      }
      pending = std::move(current);

      for (int s = 0; s < options.train_steps_per_epoch; ++s) {
        agent->Train(&buffer, &rng);
      }
    }
    // Flush terminal decisions (no successor state).
    for (auto& prev : pending) {
      Transition transition;
      transition.candidates = std::move(prev.candidates);
      transition.action_index = prev.action;
      transition.reward = static_cast<float>(prev.reward);
      transition.done = true;
      buffer.Add(std::move(transition));
      ++report.transitions;
    }

    if (episode == 0) report.first_episode_return = episode_return;
    report.last_episode_return = episode_return;
    ++report.episodes;
  }
  return report;
}

DdpgAgent MakePretrainedAgent(int num_clients, int num_classes, int num_lans,
                              const AgentConfig& agent_config,
                              const PretrainOptions& options) {
  DdpgAgent agent(agent_config);
  SurrogateConfig env_config;
  env_config.num_clients = num_clients;
  env_config.num_classes = num_classes;
  env_config.num_lans = num_lans;
  Pretrain(&agent, env_config, options);
  return agent;
}

}  // namespace fedmigr::rl
