#include "rl/replay_buffer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::rl {

namespace {

void WriteRows(util::ByteWriter* writer,
               const std::vector<std::vector<float>>& rows) {
  writer->WriteU64(rows.size());
  for (const auto& row : rows) writer->WriteF32Vector(row);
}

util::Status ReadRows(util::ByteReader* reader,
                      std::vector<std::vector<float>>* rows) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > reader->remaining()) {
    return util::Status::InvalidArgument("row count exceeds buffer");
  }
  rows->assign(static_cast<size_t>(count), {});
  for (auto& row : *rows) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF32Vector(&row));
  }
  return util::Status::Ok();
}

}  // namespace

void WriteTransition(util::ByteWriter* writer, const Transition& transition) {
  WriteRows(writer, transition.candidates);
  writer->WriteI32(transition.action_index);
  writer->WriteF32(transition.reward);
  writer->WriteBool(transition.done);
  WriteRows(writer, transition.next_candidates);
}

util::Status ReadTransition(util::ByteReader* reader,
                            Transition* transition) {
  Transition result;
  FEDMIGR_RETURN_IF_ERROR(ReadRows(reader, &result.candidates));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&result.action_index));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF32(&result.reward));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&result.done));
  FEDMIGR_RETURN_IF_ERROR(ReadRows(reader, &result.next_candidates));
  if (result.action_index < 0 ||
      (!result.candidates.empty() &&
       result.action_index >= static_cast<int>(result.candidates.size()))) {
    return util::Status::InvalidArgument("transition action out of range");
  }
  *transition = std::move(result);
  return util::Status::Ok();
}

SumTree::SumTree(size_t capacity) : capacity_(capacity) {
  FEDMIGR_CHECK_GT(capacity, 0u);
  base_ = 1;
  while (base_ < capacity_) base_ <<= 1;
  nodes_.assign(2 * base_, 0.0);
}

void SumTree::Set(size_t index, double priority) {
  FEDMIGR_CHECK_LT(index, capacity_);
  FEDMIGR_CHECK_GE(priority, 0.0);
  size_t node = index + base_;
  const double delta = priority - nodes_[node];
  while (node >= 1) {
    nodes_[node] += delta;
    node /= 2;
  }
}

double SumTree::Get(size_t index) const {
  FEDMIGR_CHECK_LT(index, capacity_);
  return nodes_[index + base_];
}

double SumTree::Total() const { return nodes_[1]; }

size_t SumTree::Find(double mass) const {
  FEDMIGR_CHECK_GE(mass, 0.0);
  size_t node = 1;
  while (node < base_) {
    const size_t left = 2 * node;
    // Descend left when the mass falls inside the left subtree, and also
    // when the right subtree carries no mass: with `mass >= Total()` (a
    // floating-point edge the caller can hit when scaling a [0, 1) draw by
    // Total()) or a zero-priority padding tail, the plain descent would
    // walk into an empty leaf; steering away from zero-sum subtrees lands
    // on the last leaf that actually carries priority instead.
    if (mass < nodes_[left] || !(nodes_[left + 1] > 0.0)) {
      node = left;
    } else {
      mass -= nodes_[left];
      node = left + 1;
    }
  }
  return std::min(node - base_, capacity_ - 1);
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(size_t capacity, double xi,
                                                 double beta)
    : capacity_(capacity), xi_(xi), beta_(beta), tree_(capacity) {
  FEDMIGR_CHECK_GE(xi_, 0.0);
  FEDMIGR_CHECK_GE(beta_, 0.0);
  storage_.resize(capacity_);
}

void PrioritizedReplayBuffer::Add(Transition transition) {
  storage_[next_] = std::move(transition);
  tree_.Set(next_, std::pow(max_priority_, xi_));
  next_ = (next_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
}

std::vector<SampledTransition> PrioritizedReplayBuffer::Sample(
    size_t batch_size, util::Rng* rng) {
  FEDMIGR_CHECK(!empty());
  std::vector<SampledTransition> batch;
  batch.reserve(batch_size);
  const double total = tree_.Total();
  FEDMIGR_CHECK_GT(total, 0.0);

  // First pass: draw indices and compute raw weights; normalize by the max
  // weight afterwards (Eq. 29).
  double max_weight = 0.0;
  for (size_t b = 0; b < batch_size; ++b) {
    const double mass = rng->Uniform() * total;
    const size_t index = std::min(tree_.Find(mass), size_ - 1);
    const double probability = tree_.Get(index) / total;
    SampledTransition sample;
    sample.index = index;
    sample.weight =
        std::pow(static_cast<double>(size_) * probability, -beta_);
    sample.transition = &storage_[index];
    max_weight = std::max(max_weight, sample.weight);
    batch.push_back(sample);
  }
  if (max_weight > 0.0) {
    for (auto& sample : batch) sample.weight /= max_weight;
  }
  return batch;
}

void PrioritizedReplayBuffer::SaveState(util::ByteWriter* writer) const {
  writer->WriteU64(capacity_);
  writer->WriteU64(next_);
  writer->WriteU64(size_);
  writer->WriteF64(max_priority_);
  for (size_t i = 0; i < size_; ++i) {
    WriteTransition(writer, storage_[i]);
  }
  // Tree leaves carry the ξ-exponentiated priorities; storing them verbatim
  // avoids re-deriving (and re-rounding) them on load.
  for (size_t i = 0; i < size_; ++i) {
    writer->WriteF64(tree_.Get(i));
  }
}

util::Status PrioritizedReplayBuffer::LoadState(util::ByteReader* reader) {
  uint64_t capacity = 0;
  uint64_t next = 0;
  uint64_t size = 0;
  double max_priority = 0.0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&capacity));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&next));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&size));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&max_priority));
  if (capacity != capacity_) {
    return util::Status::InvalidArgument(
        "replay buffer capacity mismatch: snapshot has " +
        std::to_string(capacity) + ", buffer has " +
        std::to_string(capacity_));
  }
  if (size > capacity || next >= capacity ||
      (size < capacity && next != size)) {
    return util::Status::InvalidArgument("inconsistent replay buffer state");
  }
  std::vector<Transition> storage(capacity_);
  for (size_t i = 0; i < size; ++i) {
    FEDMIGR_RETURN_IF_ERROR(ReadTransition(reader, &storage[i]));
  }
  std::vector<double> leaves(static_cast<size_t>(size), 0.0);
  for (size_t i = 0; i < size; ++i) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&leaves[i]));
    if (!(leaves[i] >= 0.0)) {
      return util::Status::InvalidArgument("negative replay priority");
    }
  }
  storage_ = std::move(storage);
  next_ = next;
  size_ = size;
  max_priority_ = max_priority;
  tree_ = SumTree(capacity_);
  for (size_t i = 0; i < size_; ++i) tree_.Set(i, leaves[i]);
  return util::Status::Ok();
}

void PrioritizedReplayBuffer::UpdatePriority(size_t index, double priority) {
  FEDMIGR_CHECK_LT(index, size_);
  // A non-finite TD error (critic diverged on Byzantine rewards) collapses
  // to the floor priority: the transition stays reachable, the sum tree
  // stays finite.
  if (!std::isfinite(priority)) priority = 1e-6;
  priority = std::max(priority, 1e-6);  // keep every transition reachable
  max_priority_ = std::max(max_priority_, priority);
  tree_.Set(index, std::pow(priority, xi_));
}

}  // namespace fedmigr::rl
