#include "rl/replay_buffer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::rl {

SumTree::SumTree(size_t capacity) : capacity_(capacity) {
  FEDMIGR_CHECK_GT(capacity, 0u);
  base_ = 1;
  while (base_ < capacity_) base_ <<= 1;
  nodes_.assign(2 * base_, 0.0);
}

void SumTree::Set(size_t index, double priority) {
  FEDMIGR_CHECK_LT(index, capacity_);
  FEDMIGR_CHECK_GE(priority, 0.0);
  size_t node = index + base_;
  const double delta = priority - nodes_[node];
  while (node >= 1) {
    nodes_[node] += delta;
    node /= 2;
  }
}

double SumTree::Get(size_t index) const {
  FEDMIGR_CHECK_LT(index, capacity_);
  return nodes_[index + base_];
}

double SumTree::Total() const { return nodes_[1]; }

size_t SumTree::Find(double mass) const {
  FEDMIGR_CHECK_GE(mass, 0.0);
  size_t node = 1;
  while (node < base_) {
    const size_t left = 2 * node;
    if (mass < nodes_[left]) {
      node = left;
    } else {
      mass -= nodes_[left];
      node = left + 1;
    }
  }
  return std::min(node - base_, capacity_ - 1);
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(size_t capacity, double xi,
                                                 double beta)
    : capacity_(capacity), xi_(xi), beta_(beta), tree_(capacity) {
  FEDMIGR_CHECK_GE(xi_, 0.0);
  FEDMIGR_CHECK_GE(beta_, 0.0);
  storage_.resize(capacity_);
}

void PrioritizedReplayBuffer::Add(Transition transition) {
  storage_[next_] = std::move(transition);
  tree_.Set(next_, std::pow(max_priority_, xi_));
  next_ = (next_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
}

std::vector<SampledTransition> PrioritizedReplayBuffer::Sample(
    size_t batch_size, util::Rng* rng) {
  FEDMIGR_CHECK(!empty());
  std::vector<SampledTransition> batch;
  batch.reserve(batch_size);
  const double total = tree_.Total();
  FEDMIGR_CHECK_GT(total, 0.0);

  // First pass: draw indices and compute raw weights; normalize by the max
  // weight afterwards (Eq. 29).
  double max_weight = 0.0;
  for (size_t b = 0; b < batch_size; ++b) {
    const double mass = rng->Uniform() * total;
    const size_t index = std::min(tree_.Find(mass), size_ - 1);
    const double probability = tree_.Get(index) / total;
    SampledTransition sample;
    sample.index = index;
    sample.weight =
        std::pow(static_cast<double>(size_) * probability, -beta_);
    sample.transition = &storage_[index];
    max_weight = std::max(max_weight, sample.weight);
    batch.push_back(sample);
  }
  if (max_weight > 0.0) {
    for (auto& sample : batch) sample.weight /= max_weight;
  }
  return batch;
}

void PrioritizedReplayBuffer::UpdatePriority(size_t index, double priority) {
  FEDMIGR_CHECK_LT(index, size_);
  priority = std::max(priority, 1e-6);  // keep every transition reachable
  max_priority_ = std::max(max_priority_, priority);
  tree_.Set(index, std::pow(priority, xi_));
}

}  // namespace fedmigr::rl
