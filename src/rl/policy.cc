#include "rl/policy.h"

#include <algorithm>
#include <numeric>

#include "opt/flmm.h"
#include "rl/state.h"
#include "util/logging.h"

namespace fedmigr::rl {

DrlMigrationPolicy::DrlMigrationPolicy(std::shared_ptr<DdpgAgent> agent,
                                       DrlPolicyOptions options)
    : agent_(std::move(agent)),
      options_(options),
      buffer_(options.buffer_capacity),
      rng_(options.seed) {
  FEDMIGR_CHECK(agent_ != nullptr);
}

fl::MigrationPlan DrlMigrationPolicy::Plan(const fl::PolicyContext& ctx) {
  const int k = ctx.topology->num_clients();
  const auto gain = fl::MigrationGainMatrix(ctx);

  std::vector<int> flmm_destination;
  if (options_.rho > 0.0) {
    const opt::FlmmPlan plan =
        opt::SolveFlmm(gain, *ctx.topology, ctx.model_bytes, {});
    flmm_destination = plan.destination;
  }

  // Sources act in random order; each destination can be claimed once.
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  ctx.rng->Shuffle(order);
  std::vector<bool> claimed(static_cast<size_t>(k), false);
  std::vector<int> destination(static_cast<size_t>(k));
  std::iota(destination.begin(), destination.end(), 0);

  std::vector<PendingDecision> decisions;
  decisions.reserve(static_cast<size_t>(k));
  for (int src : order) {
    // Crashed/unavailable sources hold their model; no decision is made
    // (and none is recorded for learning) on their behalf.
    if (!fl::ClientAvailable(ctx, src)) continue;
    PendingDecision decision;
    decision.src = src;
    decision.candidates = CandidateRows(ctx, gain, src);
    std::vector<bool> mask(static_cast<size_t>(k));
    for (int j = 0; j < k; ++j) {
      mask[static_cast<size_t>(j)] = !claimed[static_cast<size_t>(j)] &&
                                     fl::ClientAvailable(ctx, j);
    }
    mask[static_cast<size_t>(src)] = true;

    int action;
    if (!flmm_destination.empty() && rng_.Bernoulli(options_.rho) &&
        mask[static_cast<size_t>(
            flmm_destination[static_cast<size_t>(src)])]) {
      action = flmm_destination[static_cast<size_t>(src)];
    } else {
      action = agent_->SelectAction(decision.candidates, mask,
                                    options_.explore, &rng_);
    }
    decision.action = action;
    if (action != src) {
      decision.gain =
          gain[static_cast<size_t>(src)][static_cast<size_t>(action)];
      decision.time_norm =
          ctx.topology->TransferSeconds(src, action, ctx.model_bytes) /
          MaxTransferSeconds(ctx);
    }
    destination[static_cast<size_t>(src)] = action;
    if (action != src) claimed[static_cast<size_t>(action)] = true;
    decisions.push_back(std::move(decision));
  }

  if (options_.online_learning) {
    // The transitions of the previous epoch get their successor state: the
    // candidate rows just computed for the same source.
    std::vector<const std::vector<std::vector<float>>*> rows_by_src(
        static_cast<size_t>(k), nullptr);
    for (const auto& decision : decisions) {
      rows_by_src[static_cast<size_t>(decision.src)] = &decision.candidates;
    }
    FEDMIGR_CHECK_EQ(awaiting_next_state_.size(), awaiting_srcs_.size());
    for (size_t t = 0; t < awaiting_next_state_.size(); ++t) {
      Transition& transition = awaiting_next_state_[t];
      const int src = awaiting_srcs_[t];
      const auto* rows = rows_by_src[static_cast<size_t>(src)];
      if (!transition.done && rows != nullptr) {
        transition.next_candidates = *rows;
      }
      buffer_.Add(std::move(transition));
    }
    awaiting_next_state_.clear();
    awaiting_srcs_.clear();
    awaiting_reward_ = std::move(decisions);
  }

  return fl::PlanFromDestinations(destination);
}

void DrlMigrationPolicy::SaveState(util::ByteWriter* writer) const {
  agent_->SaveState(writer);
  buffer_.SaveState(writer);
  util::SaveRngState(rng_, writer);
  writer->WriteU64(awaiting_reward_.size());
  for (const PendingDecision& decision : awaiting_reward_) {
    writer->WriteI32(decision.src);
    writer->WriteU64(decision.candidates.size());
    for (const auto& row : decision.candidates) writer->WriteF32Vector(row);
    writer->WriteI32(decision.action);
    writer->WriteF64(decision.gain);
    writer->WriteF64(decision.time_norm);
  }
  writer->WriteU64(awaiting_next_state_.size());
  for (const Transition& transition : awaiting_next_state_) {
    WriteTransition(writer, transition);
  }
  writer->WriteI32Vector(awaiting_srcs_);
}

util::Status DrlMigrationPolicy::LoadState(util::ByteReader* reader) {
  FEDMIGR_RETURN_IF_ERROR(agent_->LoadState(reader));
  FEDMIGR_RETURN_IF_ERROR(buffer_.LoadState(reader));
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &rng_));
  uint64_t pending = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&pending));
  if (pending > reader->remaining()) {
    return util::Status::InvalidArgument("pending decision count too large");
  }
  awaiting_reward_.assign(static_cast<size_t>(pending), {});
  for (PendingDecision& decision : awaiting_reward_) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&decision.src));
    uint64_t rows = 0;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&rows));
    if (rows > reader->remaining()) {
      return util::Status::InvalidArgument("candidate row count too large");
    }
    decision.candidates.assign(static_cast<size_t>(rows), {});
    for (auto& row : decision.candidates) {
      FEDMIGR_RETURN_IF_ERROR(reader->ReadF32Vector(&row));
    }
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&decision.action));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&decision.gain));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&decision.time_norm));
  }
  uint64_t transitions = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&transitions));
  if (transitions > reader->remaining()) {
    return util::Status::InvalidArgument("transition count too large");
  }
  awaiting_next_state_.assign(static_cast<size_t>(transitions), {});
  for (Transition& transition : awaiting_next_state_) {
    FEDMIGR_RETURN_IF_ERROR(ReadTransition(reader, &transition));
  }
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32Vector(&awaiting_srcs_));
  if (awaiting_srcs_.size() != awaiting_next_state_.size()) {
    return util::Status::InvalidArgument(
        "pending transition queues out of sync");
  }
  return util::Status::Ok();
}

void DrlMigrationPolicy::Feedback(const fl::PolicyFeedback& feedback) {
  if (!options_.online_learning) return;
  double reward =
      StepReward(feedback.loss_before, feedback.loss_after,
                 feedback.compute_cost_fraction,
                 feedback.bandwidth_cost_fraction);
  if (feedback.done) {
    reward = TerminalReward(reward, feedback.success);
  }
  for (auto& decision : awaiting_reward_) {
    Transition transition;
    transition.candidates = std::move(decision.candidates);
    transition.action_index = decision.action;
    transition.reward = static_cast<float>(ShapedDecisionReward(
        reward, decision.gain, decision.time_norm));
    transition.done = feedback.done;
    awaiting_next_state_.push_back(std::move(transition));
    awaiting_srcs_.push_back(decision.src);
  }
  awaiting_reward_.clear();
  for (int s = 0; s < options_.train_steps_per_feedback; ++s) {
    agent_->Train(&buffer_, &rng_);
  }
}

}  // namespace fedmigr::rl
