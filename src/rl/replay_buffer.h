// Prioritized experience replay (Section III-D, Eqs. 23-29).
//
// Transitions are stored with a priority; sampling probability follows
// P(z) = p_z^ξ / Σ p^ξ (Eq. 26) via a sum-tree, and sampled transitions
// carry the importance weight μ_z = (|B| P(z))^(-β) / max_i μ_i (Eq. 29)
// that corrects the bias prioritization introduces.

#ifndef FEDMIGR_RL_REPLAY_BUFFER_H_
#define FEDMIGR_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::rl {

// One decision step: in state s (the K candidate (source, destination)
// feature rows) the agent chose `action_index`, received `reward`, and moved
// to the state whose candidate rows are `next_candidates` (empty when the
// episode ended).
struct Transition {
  std::vector<std::vector<float>> candidates;       // K x F
  int action_index = 0;
  float reward = 0.0f;
  bool done = false;
  std::vector<std::vector<float>> next_candidates;  // K x F, empty if done
};

// Snapshot serialization for one transition (also used by the DRL policy
// for its in-flight decision queues).
void WriteTransition(util::ByteWriter* writer, const Transition& transition);
util::Status ReadTransition(util::ByteReader* reader, Transition* transition);

// Binary sum-tree over priorities for O(log n) sampling and updates.
class SumTree {
 public:
  explicit SumTree(size_t capacity);

  void Set(size_t index, double priority);
  double Get(size_t index) const;
  double Total() const;
  // Index whose cumulative-priority interval contains `mass` in [0, Total).
  size_t Find(double mass) const;

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  // Leaves live at [base_, base_ + capacity_) with base_ the next power of
  // two >= capacity, so parent/child arithmetic is uniform.
  size_t base_;
  std::vector<double> nodes_;
};

struct SampledTransition {
  size_t index = 0;            // for UpdatePriority after the TD step
  double weight = 1.0;         // importance-sampling weight μ_z
  const Transition* transition = nullptr;
};

class PrioritizedReplayBuffer {
 public:
  // `xi` is the prioritization exponent ξ (0 = uniform), `beta` the
  // importance-sampling exponent.
  PrioritizedReplayBuffer(size_t capacity, double xi = 0.6,
                          double beta = 0.4);

  // Inserts with maximal current priority (new experience is replayed at
  // least once). Overwrites the oldest entry when full.
  void Add(Transition transition);

  // Samples `batch_size` transitions (with replacement) according to the
  // priority distribution. Requires a non-empty buffer.
  std::vector<SampledTransition> Sample(size_t batch_size, util::Rng* rng);

  // Re-prioritizes a transition after its TD error was recomputed (Eq. 25's
  // blended priority is computed by the caller).
  void UpdatePriority(size_t index, double priority);

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  // Full buffer state — stored transitions, write cursor, and the sum-tree
  // priorities — so a resumed run replays (and re-prioritizes) identically.
  // LoadState fails if the serialized capacity does not match this buffer's.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  size_t capacity_;
  // SNAPSHOT-SKIP(prioritization hyperparameters, from configuration)
  double xi_;
  // SNAPSHOT-SKIP(prioritization hyperparameters, from configuration)
  double beta_;
  std::vector<Transition> storage_;
  SumTree tree_;
  size_t next_ = 0;
  size_t size_ = 0;
  double max_priority_ = 1.0;
};

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_REPLAY_BUFFER_H_
