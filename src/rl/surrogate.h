// Surrogate pre-training environment.
//
// Section III-B: "the training of DRL agent can be performed offline in the
// simulation environment which has sufficient resources before being
// deployed in practice". Training DDPG inside the real FL loop would cost
// thousands of SGD epochs per gradient step, so we pre-train on a light
// MDP built from the paper's own analysis: the Section II-C mixing
// arithmetic drives a loss proxy, and the reward is exactly Eq. 17 with the
// real topology's transfer costs. The agent therefore learns the mapping
// the paper claims it learns — "prefer destinations with large distribution
// divergence, discounted by link cost" — at a tiny fraction of the compute.
//
// Dynamics per epoch:
//   1. every source picks a destination (or stays);
//   2. chosen models move (bandwidth cost per Eq. 16's b_ij);
//   3. each resident model mixes in its host's label distribution;
//   4. the loss proxy F_t = floor + decay(t) * (1 + κ (1 - Φ_t)) updates,
//      where Φ_t is the mean mixing level 1 - EMD(model, population)/2;
//   5. on aggregation epochs provenance resets (fresh global replicas).

#ifndef FEDMIGR_RL_SURROGATE_H_
#define FEDMIGR_RL_SURROGATE_H_

#include <vector>

#include "net/budget.h"
#include "net/topology.h"
#include "util/rng.h"

namespace fedmigr::rl {

struct SurrogateConfig {
  int num_clients = 10;
  int num_classes = 10;
  int num_lans = 3;
  int episode_epochs = 40;
  int agg_period = 10;
  // Each client's local data covers this many classes (label skew).
  int classes_per_client = 1;
  int64_t model_bytes = 50000;
  // Budgets sized so a full episode uses roughly 80% of each budget when
  // the policy migrates moderately.
  double bandwidth_budget_bytes = 4e7;
  double compute_budget = 1e6;
  double loss_floor = 0.4;
  double loss_initial = 2.3;
  double loss_decay = 0.02;   // per-epoch exponential decay of the base loss
  double skew_penalty = 1.5;  // κ above
};

class SurrogateEnv {
 public:
  SurrogateEnv(const SurrogateConfig& config, uint64_t seed);

  // Starts a new episode with freshly randomized client distributions
  // (LAN-correlated: clients in one LAN share their dominant classes, the
  // paper's motivating data layout).
  void Reset();

  int num_clients() const { return config_.num_clients; }
  int epoch() const { return epoch_; }
  double loss() const { return loss_; }
  const net::Topology& topology() const { return topology_; }

  // Candidate feature rows for one source at the current state (K rows,
  // kActionFeatureDim columns), plus the availability mask: a destination
  // already claimed this epoch is masked out (staying is always allowed).
  std::vector<std::vector<float>> Candidates(int src) const;
  std::vector<bool> Mask(int src) const;

  // Migration-gain matrix of the current state (model-vs-client EMDs).
  std::vector<std::vector<double>> GainMatrix() const;

  // Registers source `src`'s choice for this epoch.
  void Choose(int src, int dst);

  struct StepResult {
    double reward = 0.0;
    bool done = false;
    bool success = false;
    // Per-source shaped rewards (ShapedDecisionReward over the epoch
    // reward); index = source client.
    std::vector<double> shaped_rewards;
  };

  // Applies all registered choices, advances the dynamics one epoch and
  // returns the shared epoch reward (Eq. 17; Eq. 18 on the final epoch).
  StepResult EndEpoch();

 private:
  void RecomputeLoss();

  SurrogateConfig config_;
  util::Rng rng_;
  net::Topology topology_;
  net::Budget budget_;
  std::vector<std::vector<double>> client_dist_;  // K x L
  std::vector<std::vector<double>> model_dist_;   // K x L
  std::vector<double> model_samples_;
  std::vector<double> population_;
  std::vector<int> pending_destination_;  // this epoch's choices
  int epoch_ = 0;
  double loss_ = 0.0;
};

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_SURROGATE_H_
