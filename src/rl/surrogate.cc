#include "rl/surrogate.h"

#include <algorithm>
#include <cmath>

#include "data/distribution.h"
#include "fl/policies.h"
#include "rl/agent.h"
#include "rl/state.h"
#include "util/logging.h"

namespace fedmigr::rl {

namespace {

net::Topology BuildTopology(const SurrogateConfig& config) {
  net::TopologyConfig tc;
  tc.lan_of = net::EvenLanAssignment(config.num_clients, config.num_lans);
  return net::Topology(std::move(tc));
}

}  // namespace

SurrogateEnv::SurrogateEnv(const SurrogateConfig& config, uint64_t seed)
    : config_(config), rng_(seed), topology_(BuildTopology(config)) {
  FEDMIGR_CHECK_GT(config_.num_clients, 0);
  FEDMIGR_CHECK_GT(config_.num_classes, 0);
  FEDMIGR_CHECK_GE(config_.agg_period, 1);
  Reset();
}

void SurrogateEnv::Reset() {
  const int k = config_.num_clients;
  const int l = config_.num_classes;
  client_dist_.assign(static_cast<size_t>(k),
                      std::vector<double>(static_cast<size_t>(l), 0.0));
  // LAN-correlated skew: all clients of a LAN draw their dominant classes
  // from the same small pool, so cross-LAN divergence >> within-LAN.
  const int lans = topology_.num_lans();
  const int classes_per_lan = std::max(1, l / lans);
  for (int i = 0; i < k; ++i) {
    const int lan = topology_.lan_of(i);
    auto& dist = client_dist_[static_cast<size_t>(i)];
    for (int c = 0; c < config_.classes_per_client; ++c) {
      const int base = (lan * classes_per_lan) % l;
      const int cls = (base + rng_.UniformInt(classes_per_lan)) % l;
      dist[static_cast<size_t>(cls)] += 1.0;
    }
    double total = 0.0;
    for (double p : dist) total += p;
    for (auto& p : dist) p /= total;
  }
  population_.assign(static_cast<size_t>(l), 0.0);
  for (const auto& dist : client_dist_) {
    for (size_t c = 0; c < dist.size(); ++c) {
      population_[c] += dist[c] / static_cast<double>(k);
    }
  }
  model_dist_.assign(static_cast<size_t>(k),
                     std::vector<double>(static_cast<size_t>(l), 0.0));
  model_samples_.assign(static_cast<size_t>(k), 0.0);
  pending_destination_.assign(static_cast<size_t>(k), -1);
  budget_ = net::Budget(config_.compute_budget,
                        config_.bandwidth_budget_bytes);
  epoch_ = 0;
  RecomputeLoss();
}

void SurrogateEnv::RecomputeLoss() {
  // Mixing level Φ: 1 when every resident model has seen the population
  // distribution, 0 when every model only knows one client's skewed data.
  double phi = 0.0;
  for (const auto& dist : model_dist_) {
    phi += 1.0 - data::EmdDistance(dist, population_) / 2.0;
  }
  phi /= static_cast<double>(model_dist_.size());
  const double base =
      config_.loss_floor +
      (config_.loss_initial - config_.loss_floor) *
          std::exp(-config_.loss_decay * static_cast<double>(epoch_));
  loss_ = base * (1.0 + config_.skew_penalty * (1.0 - phi));
}

std::vector<std::vector<double>> SurrogateEnv::GainMatrix() const {
  const int k = config_.num_clients;
  std::vector<std::vector<double>> gain(
      static_cast<size_t>(k), std::vector<double>(static_cast<size_t>(k)));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      gain[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          i == j ? 0.0
                 : data::EmdDistance(model_dist_[static_cast<size_t>(i)],
                                     client_dist_[static_cast<size_t>(j)]);
    }
  }
  return gain;
}

std::vector<std::vector<float>> SurrogateEnv::Candidates(int src) const {
  fl::PolicyContext ctx;
  ctx.epoch = epoch_;
  ctx.topology = &topology_;
  ctx.model_bytes = config_.model_bytes;
  ctx.client_distributions = &client_dist_;
  ctx.model_distributions = &model_dist_;
  ctx.global_loss = loss_;
  ctx.budget = &budget_;
  return CandidateRows(ctx, GainMatrix(), src);
}

std::vector<bool> SurrogateEnv::Mask(int src) const {
  const int k = config_.num_clients;
  std::vector<bool> mask(static_cast<size_t>(k), true);
  for (int i = 0; i < k; ++i) {
    const int claimed = pending_destination_[static_cast<size_t>(i)];
    if (claimed >= 0 && claimed != i) {
      mask[static_cast<size_t>(claimed)] = false;
    }
  }
  mask[static_cast<size_t>(src)] = true;  // staying is always possible
  return mask;
}

void SurrogateEnv::Choose(int src, int dst) {
  FEDMIGR_CHECK_GE(src, 0);
  FEDMIGR_CHECK_LT(src, config_.num_clients);
  FEDMIGR_CHECK_GE(dst, 0);
  FEDMIGR_CHECK_LT(dst, config_.num_clients);
  pending_destination_[static_cast<size_t>(src)] = dst;
}

SurrogateEnv::StepResult SurrogateEnv::EndEpoch() {
  const int k = config_.num_clients;
  const double loss_before = loss_;
  const double bandwidth_before = budget_.bandwidth_used();
  const double compute_before = budget_.compute_used();

  // Record each decision's realized gain / link time for reward shaping
  // (before the state moves underneath us).
  const auto gain_before = GainMatrix();
  double max_time = 1e-12;
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      max_time = std::max(
          max_time, topology_.TransferSeconds(i, j, config_.model_bytes));
    }
  }
  std::vector<double> decision_gain(static_cast<size_t>(k), 0.0);
  std::vector<double> decision_time(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    const int dst = pending_destination_[static_cast<size_t>(i)];
    if (dst < 0 || dst == i) continue;
    decision_gain[static_cast<size_t>(i)] =
        gain_before[static_cast<size_t>(i)][static_cast<size_t>(dst)];
    decision_time[static_cast<size_t>(i)] =
        topology_.TransferSeconds(i, dst, config_.model_bytes) / max_time;
  }

  // Execute migrations from a snapshot (destination's model is replaced).
  const auto dist_snapshot = model_dist_;
  const auto samples_snapshot = model_samples_;
  for (int i = 0; i < k; ++i) {
    const int dst = pending_destination_[static_cast<size_t>(i)];
    if (dst < 0 || dst == i) continue;
    model_dist_[static_cast<size_t>(dst)] =
        dist_snapshot[static_cast<size_t>(i)];
    model_samples_[static_cast<size_t>(dst)] =
        samples_snapshot[static_cast<size_t>(i)];
    budget_.ConsumeBandwidth(static_cast<double>(config_.model_bytes));
    budget_.ConsumeTime(
        topology_.TransferSeconds(i, dst, config_.model_bytes));
  }
  std::fill(pending_destination_.begin(), pending_destination_.end(), -1);

  // Local updating: every resident model absorbs its host's distribution
  // (unit sample weight per epoch).
  for (int i = 0; i < k; ++i) {
    model_dist_[static_cast<size_t>(i)] = data::MixDistributions(
        model_dist_[static_cast<size_t>(i)],
        model_samples_[static_cast<size_t>(i)],
        client_dist_[static_cast<size_t>(i)], 1.0);
    model_samples_[static_cast<size_t>(i)] += 1.0;
  }
  budget_.ConsumeCompute(static_cast<double>(k));

  ++epoch_;
  const bool aggregate = (epoch_ % config_.agg_period) == 0;
  RecomputeLoss();
  if (aggregate) {
    // Fresh replicas of the aggregated global model.
    for (auto& dist : model_dist_) std::fill(dist.begin(), dist.end(), 0.0);
    std::fill(model_samples_.begin(), model_samples_.end(), 0.0);
  }

  StepResult result;
  const double compute_fraction =
      (budget_.compute_used() - compute_before) / config_.compute_budget;
  const double bandwidth_fraction =
      (budget_.bandwidth_used() - bandwidth_before) /
      config_.bandwidth_budget_bytes;
  result.reward =
      StepReward(loss_before, loss_, compute_fraction, bandwidth_fraction);
  result.done = epoch_ >= config_.episode_epochs || budget_.Exhausted();
  if (result.done) {
    result.success = !budget_.Exhausted();
    result.reward = TerminalReward(result.reward, result.success);
  }
  result.shaped_rewards.resize(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    result.shaped_rewards[static_cast<size_t>(i)] = ShapedDecisionReward(
        result.reward, decision_gain[static_cast<size_t>(i)],
        decision_time[static_cast<size_t>(i)]);
  }
  return result;
}

}  // namespace fedmigr::rl
