// DDPG agent for migration-policy generation (Section III-D, Alg. 1).
//
// The actor scores candidate (source, destination) feature rows; a softmax
// over the K candidate scores is the stochastic policy π(a|s). The critic
// maps a candidate row to Q(s, a). Both have slowly-tracking target copies
// (soft updates), and learning consumes prioritized-replay batches with
// importance-sampling weights. Priorities blend |TD error| with the critic's
// action-gradient magnitude (Eq. 25).

#ifndef FEDMIGR_RL_AGENT_H_
#define FEDMIGR_RL_AGENT_H_

#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "rl/replay_buffer.h"
#include "rl/state.h"
#include "util/rng.h"

namespace fedmigr::rl {

struct AgentConfig {
  int hidden = 32;
  double actor_lr = 1e-3;
  double critic_lr = 2e-3;
  double gamma = 0.9;          // discount factor γ
  double soft_tau = 0.01;      // target-network tracking rate
  double priority_epsilon = 0.7;  // ε blending TD error and |∇_a Q| (Eq. 25)
  // Entropy bonus on the actor's softmax policy; keeps scores from
  // saturating so the sampled policy stays stochastic. Stochasticity is
  // load-bearing at deployment: deterministic max-gain matching degenerates
  // (every model always lands on maximally-foreign data and never
  // consolidates — see bench_fig3/maxemd), while a soft gain-weighted
  // policy mixes models and converges.
  double entropy_beta = 0.3;
  int batch_size = 32;
  uint64_t seed = 7;
};

struct TrainStats {
  double critic_loss = 0.0;
  double mean_td_error = 0.0;
  double mean_q = 0.0;
};

class DdpgAgent {
 public:
  explicit DdpgAgent(const AgentConfig& config);

  // Actor scores for each candidate row (higher = preferred).
  std::vector<double> Score(const std::vector<std::vector<float>>& candidates,
                            bool use_target = false);

  // Softmax policy over candidates. `mask[j] == false` removes candidate j.
  std::vector<double> Policy(const std::vector<std::vector<float>>& candidates,
                             const std::vector<bool>& mask);

  // Samples (explore) or argmaxes (exploit) an action from the policy.
  int SelectAction(const std::vector<std::vector<float>>& candidates,
                   const std::vector<bool>& mask, bool explore,
                   util::Rng* rng);

  // Critic estimate for one candidate row.
  double Q(const std::vector<float>& features, bool use_target = false);

  // One learning step on a prioritized batch; updates priorities in place
  // and soft-updates the targets. No-op when the buffer holds fewer than
  // `config.batch_size` transitions.
  TrainStats Train(PrioritizedReplayBuffer* buffer, util::Rng* rng);

  // Learning state: actor/critic/target parameters and both Adam moment
  // sets. Restoring into an agent built with the same architecture resumes
  // training bit-identically.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

  const AgentConfig& config() const { return config_; }

 private:
  // Runs `model` on a [K, F] tensor assembled from rows; returns [K] column.
  static std::vector<double> ForwardColumn(
      nn::Sequential* model, const std::vector<std::vector<float>>& rows);

  AgentConfig config_;
  nn::Sequential actor_;
  nn::Sequential critic_;
  nn::Sequential target_actor_;
  nn::Sequential target_critic_;
  std::unique_ptr<nn::Adam> actor_optimizer_;
  std::unique_ptr<nn::Adam> critic_optimizer_;
};

// Eq. 17: r_t = -Υ^(ΔF/F_prev) - c_t/B_c - b_t/B_b.
double StepReward(double loss_before, double loss_after,
                  double compute_cost_fraction, double bandwidth_cost_fraction,
                  double upsilon = 8.0);

// Eq. 18: terminal reward, ±C depending on success.
double TerminalReward(double step_reward, bool success, double bonus = 2.0);

// Per-decision credit assignment. Eq. 17's reward is shared by every
// source's decision in the epoch; the shaping term re-distributes credit
// toward decisions that realized more divergence gain over cheaper links,
// which is exactly the structure the optimal policy exploits:
//   r_i = r_epoch + gain_weight * emd_gain_i - time_weight * time_norm_i.
double ShapedDecisionReward(double epoch_reward, double emd_gain,
                            double time_norm, double gain_weight = 0.5,
                            double time_weight = 0.2);

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_AGENT_H_
