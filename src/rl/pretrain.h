// Offline pre-training of the DDPG agent on the surrogate environment
// (Alg. 1 driven by SurrogateEnv), with ρ-greedy exploration: with
// probability ρ the action comes from the relaxed-FLMM solver, otherwise
// from the actor network (Section III-D "Action Exploration").

#ifndef FEDMIGR_RL_PRETRAIN_H_
#define FEDMIGR_RL_PRETRAIN_H_

#include "rl/agent.h"
#include "rl/replay_buffer.h"
#include "rl/surrogate.h"

namespace fedmigr::rl {

struct PretrainOptions {
  int episodes = 20;
  double rho_start = 0.6;  // FLMM-guided exploration probability, decayed
  double rho_end = 0.05;
  int train_steps_per_epoch = 1;
  size_t buffer_capacity = 8192;
  uint64_t seed = 11;
};

struct PretrainReport {
  double first_episode_return = 0.0;
  double last_episode_return = 0.0;
  int episodes = 0;
  int transitions = 0;
};

// Trains `agent` in place. Returns aggregate learning statistics (episode
// returns are the undiscounted reward sums, useful as a learning signal in
// tests: the last episodes should out-earn the first).
PretrainReport Pretrain(DdpgAgent* agent, const SurrogateConfig& env_config,
                        const PretrainOptions& options);

// Convenience: builds an agent with the given config and pre-trains it on a
// surrogate environment sized for `num_clients`.
DdpgAgent MakePretrainedAgent(int num_clients, int num_classes, int num_lans,
                              const AgentConfig& agent_config = {},
                              const PretrainOptions& options = {});

}  // namespace fedmigr::rl

#endif  // FEDMIGR_RL_PRETRAIN_H_
