// FedMigr: the paper's contribution, assembled.
//
// MakeFedMigr() produces a SchemeSetup whose migration policy is a DDPG
// agent pre-trained offline on the surrogate environment (Section III-B's
// "train in simulation, deploy in practice"), wrapped in the
// DrlMigrationPolicy that plans one migration round per non-aggregation
// epoch and keeps learning online from the Eq. 17/18 reward.

#ifndef FEDMIGR_CORE_FEDMIGR_H_
#define FEDMIGR_CORE_FEDMIGR_H_

#include <memory>

#include "fl/schemes.h"
#include "net/topology.h"
#include "rl/agent.h"
#include "rl/policy.h"
#include "rl/pretrain.h"

namespace fedmigr::core {

struct FedMigrOptions {
  int agg_period = 50;  // M + 1
  rl::AgentConfig agent;
  rl::PretrainOptions pretrain;
  rl::DrlPolicyOptions policy;
  // When true (default) pre-trained agents are cached per
  // (clients, classes, lans, seed) so multi-scheme benches pay the
  // pre-training cost once.
  bool cache_agent = true;
};

// Builds the full FedMigr scheme for a network of `topology.num_clients()`
// clients and `num_classes` label classes.
fl::SchemeSetup MakeFedMigr(const net::Topology& topology, int num_classes,
                            const FedMigrOptions& options = {});

// The pre-trained agent itself (shared_ptr so policies can share it);
// honors the same cache.
std::shared_ptr<rl::DdpgAgent> GetOrTrainAgent(const net::Topology& topology,
                                               int num_classes,
                                               const FedMigrOptions& options);

// Drops all cached agents (tests use this for isolation).
void ClearAgentCache();

}  // namespace fedmigr::core

#endif  // FEDMIGR_CORE_FEDMIGR_H_
