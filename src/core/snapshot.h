// Crash-safe run snapshots: durable checkpoint/resume with bit-identical
// continuation.
//
// A snapshot is one file holding everything a run needs to continue exactly
// where it stopped: the server model, every client's model/optimizer/RNG,
// the DRL policy (actor/critic/targets, Adam moments, prioritized replay
// incl. sum-tree priorities), all RNG streams, budget/traffic/fault state
// and the metric history. The container framing is
//
//   [u32 magic "FSNP"][u32 version][u64 payload_size][payload][u32 crc32]
//
// little-endian, with the CRC covering every byte before it. Readers
// validate size, magic, version, length and CRC before any trainer state is
// touched, so a torn, truncated or bit-flipped file degrades into a clean
// Status error and the previous snapshot (kept by rotation) takes over.
//
// Files are published atomically (tmp + fsync + rename, util/file.h): a
// crash mid-write can never corrupt an already-published snapshot.
//
// Resume contract: run A (uninterrupted) and run B (killed at any epoch
// boundary, restarted from the newest valid snapshot) produce bit-identical
// final models, metric histories and replay-buffer contents. See
// tests/core/snapshot_test.cc for the kill-and-resume harness.

#ifndef FEDMIGR_CORE_SNAPSHOT_H_
#define FEDMIGR_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "fl/trainer.h"
#include "util/status.h"

namespace fedmigr::core {

// --- Container framing (exposed for the corruption fuzz tests) ----------

// Wraps a payload in the FSNP frame.
std::vector<uint8_t> FrameSnapshot(const std::vector<uint8_t>& payload);

// Validates the frame and returns the payload. Never crashes on malformed
// input: truncation, bad magic, bad version, length mismatch and CRC
// mismatch all come back as Status errors.
util::Result<std::vector<uint8_t>> UnframeSnapshot(
    const std::vector<uint8_t>& framed);

// Frame + atomic write / read + unframe.
util::Status WriteSnapshotFile(const std::string& path,
                               const std::vector<uint8_t>& payload);
util::Result<std::vector<uint8_t>> ReadSnapshotFile(const std::string& path);

// --- Snapshot cadence and rotation ---------------------------------------

struct SnapshotOptions {
  // Empty disables snapshotting entirely.
  std::string directory;
  // Save every N completed epochs (and always on interrupt).
  int every_epochs = 1;
  // Snapshots retained; older ones are removed after a successful publish.
  // Keeping >= 2 gives a last-good fallback if the newest file is damaged
  // by the filesystem after publish.
  int keep = 2;
};

class SnapshotManager {
 public:
  explicit SnapshotManager(SnapshotOptions options);

  bool enabled() const { return !options_.directory.empty(); }
  const SnapshotOptions& options() const { return options_; }

  // Serializes the trainer and atomically publishes snap-NNNNNN.fsnp for
  // `epoch`, then rotates old snapshots down to `keep`.
  util::Status Save(const fl::Trainer& trainer, int epoch);

  // Cadence wrapper for the trainer's epoch hook.
  util::Status MaybeSave(const fl::Trainer& trainer, int epoch);

  // Snapshot files in the directory, full paths, newest epoch first.
  std::vector<std::string> ListSnapshots() const;

  // Restores `trainer` from the newest snapshot that both unframes and
  // loads cleanly, skipping damaged ones (last-good fallback). Returns the
  // epoch the restored snapshot was taken after, or 0 when no usable
  // snapshot exists (fresh start).
  util::Result<int> Resume(fl::Trainer* trainer) const;

 private:
  std::string PathForEpoch(int epoch) const;
  SnapshotOptions options_;
};

// --- Interrupt handling ---------------------------------------------------

// Installs SIGINT/SIGTERM handlers that set an atomic flag (the handler
// does nothing else — serialization happens on the run thread at the next
// epoch boundary). Idempotent.
void InstallInterruptHandlers();
// True once a handled signal arrived (or RequestInterrupt was called).
bool InterruptRequested();
// Programmatic equivalents, used by tests to model a kill.
void RequestInterrupt();
void ClearInterrupt();

// --- RunScheme wiring -----------------------------------------------------

struct RunControl {
  SnapshotOptions snapshot;  // empty directory = no snapshots
  // Resume from the newest valid snapshot in snapshot.directory (fresh
  // start when none is usable).
  bool resume = false;
  // Install SIGINT/SIGTERM handlers; on interrupt the run stops at the next
  // epoch boundary after flushing a final snapshot, and the returned
  // RunResult has `interrupted` set.
  bool handle_signals = false;
  // When non-null, receives the epoch resumed from (0 = fresh start).
  int* resumed_from_epoch = nullptr;
  // Optional flight recorder (obs/journal.h). RunScheme attaches it with
  // the resumed-from epoch — truncating journal chunks the resumed run will
  // replay — and installs it into the trainer, so a killed-and-resumed run
  // produces a byte-equal journal. Non-owning; must outlive the call.
  obs::Journal* journal = nullptr;
};

// RunScheme with crash-safety: auto-resume, cadence snapshots and a final
// snapshot on interrupt. With a default RunControl this is exactly the
// plain RunScheme.
fl::RunResult RunScheme(const Workload& workload, fl::SchemeSetup setup,
                        const RunControl& control);

}  // namespace fedmigr::core

#endif  // FEDMIGR_CORE_SNAPSHOT_H_
