#include "core/fedmigr.h"

#include <map>
#include <mutex>
#include <tuple>

#include "util/logging.h"

namespace fedmigr::core {

namespace {

// Clients, classes, LANs, agent seed, pre-training episodes: everything
// that shapes the trained policy.
using CacheKey = std::tuple<int, int, int, uint64_t, int>;

std::mutex& CacheMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::map<CacheKey, std::shared_ptr<rl::DdpgAgent>>& AgentCache() {
  static auto* cache = new std::map<CacheKey, std::shared_ptr<rl::DdpgAgent>>;
  return *cache;
}

}  // namespace

std::shared_ptr<rl::DdpgAgent> GetOrTrainAgent(const net::Topology& topology,
                                               int num_classes,
                                               const FedMigrOptions& options) {
  const CacheKey key{topology.num_clients(), num_classes, topology.num_lans(),
                     options.agent.seed, options.pretrain.episodes};
  if (options.cache_agent) {
    std::lock_guard<std::mutex> lock(CacheMutex());
    auto it = AgentCache().find(key);
    if (it != AgentCache().end()) return it->second;
  }

  auto agent = std::make_shared<rl::DdpgAgent>(options.agent);
  rl::SurrogateConfig env_config;
  env_config.num_clients = topology.num_clients();
  env_config.num_classes = num_classes;
  env_config.num_lans = topology.num_lans();
  const rl::PretrainReport report =
      rl::Pretrain(agent.get(), env_config, options.pretrain);
  FEDMIGR_LOG(kDebug) << "FedMigr agent pre-trained: " << report.episodes
                      << " episodes, return " << report.first_episode_return
                      << " -> " << report.last_episode_return;

  if (options.cache_agent) {
    std::lock_guard<std::mutex> lock(CacheMutex());
    AgentCache()[key] = agent;
  }
  return agent;
}

void ClearAgentCache() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  AgentCache().clear();
}

fl::SchemeSetup MakeFedMigr(const net::Topology& topology, int num_classes,
                            const FedMigrOptions& options) {
  fl::SchemeSetup setup;
  setup.config.scheme_name = "fedmigr";
  setup.config.agg_period = options.agg_period;
  auto agent = GetOrTrainAgent(topology, num_classes, options);
  setup.policy =
      std::make_unique<rl::DrlMigrationPolicy>(agent, options.policy);
  return setup;
}

}  // namespace fedmigr::core
