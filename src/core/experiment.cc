#include "core/experiment.h"

#include "nn/zoo.h"
#include "util/logging.h"

namespace fedmigr::core {

Workload MakeWorkload(const WorkloadConfig& config) {
  Workload workload;
  workload.config = config;

  data::SyntheticSpec spec;
  if (config.dataset == "c10") {
    spec = data::C10Spec();
    workload.model_name = "c10";
  } else if (config.dataset == "c100") {
    spec = data::C100Spec();
    workload.model_name = "c100";
  } else if (config.dataset == "imagenet100") {
    spec = data::ImageNet100Spec();
    workload.model_name = "resmini";
  } else {
    FEDMIGR_CHECK(false) << "unknown dataset: " << config.dataset;
  }
  spec.seed ^= config.seed;
  if (config.noise_override > 0.0) spec.noise = config.noise_override;
  if (config.signal_override > 0.0) {
    spec.prototype_scale = config.signal_override;
  }
  if (config.train_per_class_override > 0) {
    spec.train_per_class = config.train_per_class_override;
  }
  workload.data = data::GenerateSynthetic(spec);
  workload.num_classes = spec.num_classes;

  util::Rng rng(config.seed * 7919ULL + 13);
  switch (config.partition) {
    case PartitionKind::kIid:
      workload.partition = data::PartitionIid(workload.data.train,
                                              config.num_clients, &rng);
      break;
    case PartitionKind::kShard: {
      const int classes_per_client =
          std::max(1, spec.num_classes / config.num_clients);
      workload.partition = data::PartitionByClassShards(
          workload.data.train, config.num_clients, classes_per_client, &rng);
      break;
    }
    case PartitionKind::kLanShard:
      workload.partition = data::PartitionByLanShards(
          workload.data.train,
          net::EvenLanAssignment(config.num_clients, config.num_lans), &rng);
      break;
    case PartitionKind::kDominance:
      workload.partition = data::PartitionDominance(
          workload.data.train, config.num_clients, config.partition_param,
          &rng);
      break;
    case PartitionKind::kClassLack:
      workload.partition = data::PartitionClassLack(
          workload.data.train, config.num_clients,
          static_cast<int>(config.partition_param), &rng);
      break;
  }

  net::TopologyConfig tc;
  tc.lan_of = net::EvenLanAssignment(config.num_clients, config.num_lans);
  workload.topology = net::Topology(std::move(tc));
  workload.devices = net::MakeTestbedFleet(config.num_clients);

  const std::string model_name = workload.model_name;
  workload.model_factory = [model_name](util::Rng* model_rng) {
    return nn::MakeModelByName(model_name, model_rng);
  };
  return workload;
}

void ApplyWorkloadDefaults(const Workload& workload,
                           fl::TrainerConfig* config) {
  config->batch_size = 32;
  config->eval_every = 5;
  config->momentum = 0.0;
  if (workload.model_name == "c10") {
    config->learning_rate = 0.08;
  } else if (workload.model_name == "c100") {
    config->learning_rate = 0.08;
  } else {
    config->learning_rate = 0.05;
  }
}

fl::RunResult RunScheme(const Workload& workload, fl::SchemeSetup setup) {
  fl::Trainer trainer(setup.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology,
                      workload.devices, workload.model_factory,
                      std::move(setup.policy));
  return trainer.Run();
}

}  // namespace fedmigr::core
