#include "core/snapshot.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/file.h"
#include "util/logging.h"
#include "util/serial.h"

namespace fedmigr::core {

namespace {

// "FSNP" read as a little-endian u32.
constexpr uint32_t kSnapshotMagic = 0x504E5346u;
constexpr uint32_t kSnapshotVersion = 1;
// magic + version + payload_size before the payload, crc32 after it.
constexpr size_t kHeaderSize = 4 + 4 + 8;
constexpr size_t kFrameOverhead = kHeaderSize + 4;

constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".fsnp";

}  // namespace

std::vector<uint8_t> FrameSnapshot(const std::vector<uint8_t>& payload) {
  util::ByteWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  writer.WriteU64(payload.size());
  std::vector<uint8_t> framed = writer.TakeBytes();
  framed.insert(framed.end(), payload.begin(), payload.end());
  const uint32_t crc = util::Crc32(framed.data(), framed.size());
  const auto* p = reinterpret_cast<const uint8_t*>(&crc);
  framed.insert(framed.end(), p, p + sizeof(crc));
  return framed;
}

util::Result<std::vector<uint8_t>> UnframeSnapshot(
    const std::vector<uint8_t>& framed) {
  if (framed.size() < kFrameOverhead) {
    return util::Status::DataLoss("snapshot truncated below frame size");
  }
  util::ByteReader reader(framed);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU32(&magic));
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU32(&version));
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU64(&payload_size));
  if (magic != kSnapshotMagic) {
    return util::Status::DataLoss("snapshot magic mismatch");
  }
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument("unsupported snapshot version");
  }
  if (payload_size != framed.size() - kFrameOverhead) {
    return util::Status::DataLoss("snapshot payload length mismatch");
  }
  const size_t checked = kHeaderSize + static_cast<size_t>(payload_size);
  const uint32_t expected = util::Crc32(framed.data(), checked);
  uint32_t stored = 0;
  std::memcpy(&stored, framed.data() + checked, sizeof(stored));
  if (stored != expected) {
    return util::Status::DataLoss("snapshot checksum mismatch");
  }
  return std::vector<uint8_t>(framed.begin() + kHeaderSize,
                              framed.begin() + checked);
}

util::Status WriteSnapshotFile(const std::string& path,
                               const std::vector<uint8_t>& payload) {
  return util::AtomicWriteFile(path, FrameSnapshot(payload));
}

util::Result<std::vector<uint8_t>> ReadSnapshotFile(const std::string& path) {
  util::Result<std::vector<uint8_t>> bytes = util::ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return UnframeSnapshot(*bytes);
}

// --- SnapshotManager ------------------------------------------------------

SnapshotManager::SnapshotManager(SnapshotOptions options)
    : options_(std::move(options)) {
  if (options_.every_epochs < 1) options_.every_epochs = 1;
  if (options_.keep < 1) options_.keep = 1;
}

std::string SnapshotManager::PathForEpoch(int epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06d%s", kSnapshotPrefix, epoch,
                kSnapshotSuffix);
  return options_.directory + "/" + name;
}

namespace {

// Parses "snap-NNNNNN.fsnp" into the epoch; -1 for anything else.
int EpochFromName(const std::string& name) {
  const size_t prefix = sizeof(kSnapshotPrefix) - 1;
  const size_t suffix = sizeof(kSnapshotSuffix) - 1;
  if (name.size() <= prefix + suffix) return -1;
  if (name.compare(0, prefix, kSnapshotPrefix) != 0) return -1;
  if (name.compare(name.size() - suffix, suffix, kSnapshotSuffix) != 0) {
    return -1;
  }
  int epoch = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    if (epoch > 100000000) return -1;
    epoch = epoch * 10 + (name[i] - '0');
  }
  return epoch;
}

}  // namespace

std::vector<std::string> SnapshotManager::ListSnapshots() const {
  std::vector<std::pair<int, std::string>> found;
  util::Result<std::vector<std::string>> names =
      util::ListDirectory(options_.directory);
  if (!names.ok()) return {};
  for (const std::string& name : *names) {
    const int epoch = EpochFromName(name);
    if (epoch >= 0) found.emplace_back(epoch, options_.directory + "/" + name);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

util::Status SnapshotManager::Save(const fl::Trainer& trainer, int epoch) {
  if (!enabled()) return util::Status::Ok();
  FEDMIGR_RETURN_IF_ERROR(util::MakeDirectories(options_.directory));
  util::ByteWriter writer;
  trainer.SaveState(&writer);
  FEDMIGR_RETURN_IF_ERROR(WriteSnapshotFile(PathForEpoch(epoch),
                                            writer.bytes()));
  // Rotation runs only after a successful publish, so a failed save never
  // costs an older good snapshot.
  const std::vector<std::string> snapshots = ListSnapshots();
  for (size_t i = static_cast<size_t>(options_.keep); i < snapshots.size();
       ++i) {
    const util::Status removed = util::RemoveFile(snapshots[i]);
    if (!removed.ok()) {
      FEDMIGR_LOG(kWarning) << "snapshot rotation: " << removed.ToString();
    }
  }
  return util::Status::Ok();
}

util::Status SnapshotManager::MaybeSave(const fl::Trainer& trainer,
                                        int epoch) {
  if (!enabled()) return util::Status::Ok();
  if (epoch % options_.every_epochs != 0) return util::Status::Ok();
  return Save(trainer, epoch);
}

util::Result<int> SnapshotManager::Resume(fl::Trainer* trainer) const {
  if (!enabled()) return 0;
  for (const std::string& path : ListSnapshots()) {
    util::Result<std::vector<uint8_t>> payload = ReadSnapshotFile(path);
    if (!payload.ok()) {
      FEDMIGR_LOG(kWarning) << "skipping snapshot " << path << ": "
                            << payload.status().ToString();
      continue;
    }
    util::ByteReader reader(*payload);
    const util::Status loaded = trainer->LoadState(&reader);
    if (!loaded.ok()) {
      FEDMIGR_LOG(kWarning) << "skipping snapshot " << path << ": "
                            << loaded.ToString();
      continue;
    }
    return trainer->next_epoch() - 1;
  }
  return 0;
}

// --- Interrupt handling ---------------------------------------------------

namespace {

// The only cross-thread state in the snapshot subsystem (the flush itself
// always runs on the run thread). Release on store / acquire on load: when
// a non-signal thread calls RequestInterrupt() after preparing state for
// the run thread to observe, the flag carries the happens-before edge.
// The signal-handler path needs none of that — it just requires the
// lock-free store, which std::atomic<bool> guarantees on every platform
// we build for (checked in tests/core/snapshot_race_test.cc under TSan).
std::atomic<bool> g_interrupted{false};

// Async-signal-safe: only a lock-free atomic store; the snapshot flush
// happens on the run thread at the next epoch boundary.
void HandleSignal(int /*signum*/) {
  g_interrupted.store(true, std::memory_order_release);
}

}  // namespace

void InstallInterruptHandlers() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
}

bool InterruptRequested() {
  return g_interrupted.load(std::memory_order_acquire);
}

void RequestInterrupt() {
  g_interrupted.store(true, std::memory_order_release);
}

void ClearInterrupt() {
  g_interrupted.store(false, std::memory_order_release);
}

// --- RunScheme wiring -----------------------------------------------------

fl::RunResult RunScheme(const Workload& workload, fl::SchemeSetup setup,
                        const RunControl& control) {
  fl::Trainer trainer(setup.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology,
                      workload.devices, workload.model_factory,
                      std::move(setup.policy));
  SnapshotManager manager(control.snapshot);

  int resumed_from = 0;
  if (control.resume && manager.enabled()) {
    util::Result<int> resumed = manager.Resume(&trainer);
    if (resumed.ok()) {
      resumed_from = *resumed;
      if (resumed_from > 0) {
        FEDMIGR_LOG(kInfo) << "resumed " << setup.config.scheme_name
                           << " from snapshot after epoch " << resumed_from;
      }
    }
  }
  if (control.resumed_from_epoch != nullptr) {
    *control.resumed_from_epoch = resumed_from;
  }

  if (control.journal != nullptr) {
    // Attach AFTER the resume decision: the journal keeps exactly the
    // chunks of epochs the restored trainer will not replay.
    if (!control.journal->attached()) {
      const util::Status attached = control.journal->Attach(resumed_from);
      FEDMIGR_CHECK(attached.ok())
          << "journal attach failed: " << attached.ToString();
    }
    trainer.SetJournal(control.journal);
  }

  if (control.handle_signals) InstallInterruptHandlers();

  if (manager.enabled() || control.handle_signals) {
    trainer.SetEpochHook([&manager, &control](const fl::Trainer& t,
                                              int epoch) {
      const bool stop = control.handle_signals && InterruptRequested();
      // On interrupt the cadence is overridden: the final state always gets
      // flushed so the restart loses no completed work.
      const util::Status saved =
          stop ? manager.Save(t, epoch) : manager.MaybeSave(t, epoch);
      if (!saved.ok()) {
        FEDMIGR_LOG(kWarning) << "snapshot save failed: " << saved.ToString();
      }
      return !stop;
    });
  }
  return trainer.Run();
}

}  // namespace fedmigr::core
