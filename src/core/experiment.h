// Experiment harness shared by benches, examples and integration tests:
// builds the paper's workloads (dataset analogue + partition + topology +
// device fleet + model factory) and runs a scheme on them.

#ifndef FEDMIGR_CORE_EXPERIMENT_H_
#define FEDMIGR_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/schemes.h"
#include "fl/trainer.h"
#include "net/device.h"
#include "net/topology.h"

namespace fedmigr::core {

enum class PartitionKind {
  kIid,
  kShard,       // whole classes per client (the simulation non-IID setting)
  kLanShard,    // LAN-correlated skew (Fig. 3's motivating layout)
  kDominance,   // testbed CIFAR-10 skew, parameter p in [0, 1]
  kClassLack,   // testbed CIFAR-100 skew, parameter = lacked classes
};

struct WorkloadConfig {
  // "c10" | "c100" | "imagenet100".
  std::string dataset = "c10";
  PartitionKind partition = PartitionKind::kShard;
  double partition_param = 0.0;
  int num_clients = 10;
  int num_lans = 3;
  uint64_t seed = 5;
  // Optional dataset-difficulty overrides (0 keeps the spec defaults).
  double noise_override = 0.0;
  double signal_override = 0.0;  // prototype scale
  int train_per_class_override = 0;
};

struct Workload {
  WorkloadConfig config;
  data::TrainTest data;
  data::Partition partition;
  net::Topology topology;
  std::vector<net::DeviceProfile> devices;
  fl::Trainer::ModelFactory model_factory;
  std::string model_name;
  int num_classes = 0;
};

Workload MakeWorkload(const WorkloadConfig& config);

// Fills scheme-independent training knobs with per-dataset defaults
// (learning rate, batch size, evaluation cadence).
void ApplyWorkloadDefaults(const Workload& workload,
                           fl::TrainerConfig* config);

// Runs one scheme on one workload. `setup.config` must already carry the
// workload knobs (epochs, budgets, target accuracy, ...).
fl::RunResult RunScheme(const Workload& workload, fl::SchemeSetup setup);

}  // namespace fedmigr::core

#endif  // FEDMIGR_CORE_EXPERIMENT_H_
