#include "fl/model_store.h"

#include "nn/serialize.h"

namespace fedmigr::fl {

const ModelRef& ModelStore::Publish(const nn::Sequential& aggregate) {
  aggregate_ = std::make_shared<const nn::Sequential>(aggregate);
  flat_ = std::make_shared<const std::vector<float>>(
      nn::FlattenParams(*aggregate_));
  parent_lineage_ = aggregate_lineage_;
  aggregate_lineage_ = next_lineage_id_++;
  return aggregate_;
}

std::shared_ptr<nn::Sequential> ModelStore::Clone(const nn::Sequential& model) {
  return std::make_shared<nn::Sequential>(model);
}

FlatRef ModelStore::Flatten(const nn::Sequential& model) {
  return std::make_shared<const std::vector<float>>(nn::FlattenParams(model));
}

}  // namespace fedmigr::fl
