// The FL experiment loop.
//
// One Trainer instance runs one scheme over one dataset/partition/topology
// and produces a RunResult with the full metric history. All five schemes
// of the paper are expressed through the same loop:
//   FedAvg   — agg_period = 1, NoMigrationPolicy
//   FedProx  — agg_period = 1, NoMigrationPolicy, fedprox_mu > 0
//   FedSwap  — agg_period = M+1, FedSwapPolicy (via-server exchange)
//   RandMigr — agg_period = M+1, RandomMigrationPolicy
//   FedMigr  — agg_period = M+1, DrlMigrationPolicy (src/rl) or FlmmPolicy
//
// Epoch structure follows Section II-B: every epoch is one Local Updating
// pass (τ local epochs on every client); on aggregation epochs the models
// travel to the PS and back (C2S traffic over the WAN), on the remaining
// epochs the active policy migrates models directly between clients (C2C).

#ifndef FEDMIGR_FL_TRAINER_H_
#define FEDMIGR_FL_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "dp/gaussian.h"
#include "fl/chaos.h"
#include "fl/client.h"
#include "fl/cohort.h"
#include "fl/model_store.h"
#include "fl/policies.h"
#include "fl/robust.h"
#include "fl/server.h"
#include "net/budget.h"
#include "net/device.h"
#include "net/fault.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace fedmigr::fl {

struct TrainerConfig {
  std::string scheme_name = "fedavg";
  int max_epochs = 200;
  // Aggregate every `agg_period` epochs; the paper's M = agg_period - 1
  // migrations per global iteration ("agg50" = agg_period 50).
  int agg_period = 1;
  int tau = 1;  // local epochs per Local Updating phase
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.0;
  double fedprox_mu = 0.0;
  // Fraction α of clients selected per global iteration (Sec. II-A's
  // FedAvg knob). 1.0 = all clients, the paper's evaluation setting.
  double client_fraction = 1.0;
  // Partial-participation cohort scheduling for fleet-scale runs. 0 keeps
  // the legacy full-participation loop (bit-identical to pre-cohort
  // builds). A positive value C selects a deterministic cohort of C clients
  // per aggregation round (seeded by `seed` and the round index); only
  // cohort members are materialized, trained, screened, aggregated and
  // migrated, so per-epoch cost is O(C) and memory is O(C) model blocks on
  // top of the shared aggregate. Mutually exclusive with client_fraction
  // < 1 (cohorts *are* the participation sample).
  int cohort_size = 0;
  // Per-epoch probability that a client is unavailable (edge nodes
  // "dynamically join/leave the system", Sec. III-C). An unavailable
  // client skips local updating and neither sends nor receives migrations
  // that epoch.
  double dropout_prob = 0.0;
  // Target test accuracy in [0, 1]; <= 0 disables early stopping.
  double target_accuracy = -1.0;
  // Evaluate the (virtual) global model every this many epochs.
  int eval_every = 5;
  net::Budget budget;  // default: unlimited
  dp::DpConfig dp;
  // Fault model for links and clients (see net/fault.h). The default config
  // is a strict no-op: with all probabilities at zero the trainer follows
  // exactly the fault-free code path and produces bit-identical results.
  net::FaultConfig fault;
  // Byzantine-robust aggregation, update screening and client quarantine
  // (see fl/robust.h). The default config is inert in the same sense: Mean
  // aggregation through the legacy kernel, no screening beyond the
  // always-on non-finite gate, no reputation — bit-identical results.
  RobustConfig robust;
  // Round-progress watchdog: an aggregation round commits (aggregate +
  // publish) only when at least ceil(quorum_fraction * expected) uploads
  // arrived before the upload deadline, where `expected` counts the
  // participating, reputation-eligible members of the round. On a quorum
  // miss nothing is published — the fleet keeps training against the last
  // published aggregate — and in cohort mode the survivors' local updates
  // are carried into the next round's cohort so their error feedback is not
  // lost. 0 disables the watchdog (the legacy always-commit behavior).
  double quorum_fraction = 0.0;
  // When the WAN to the server is shared, uploads serialize; when false,
  // each client has an independent WAN path.
  bool wan_shared = true;
  uint64_t seed = 1;
  // Client-parallel local updating. Worth raising only on multi-core hosts.
  int num_threads = 1;
};

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  // Test metrics are only refreshed on eval epochs; in between the last
  // value is carried forward.
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double cumulative_time_s = 0.0;
  double cumulative_traffic_gb = 0.0;
  bool aggregated = false;
  int migrations = 0;
};

struct RunResult {
  std::string scheme;
  std::vector<EpochRecord> history;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  int epochs_run = 0;
  double time_s = 0.0;
  // Total training samples processed (the compute-budget unit).
  double compute_units = 0.0;
  double traffic_gb = 0.0;
  double c2s_gb = 0.0;
  double c2c_gb = 0.0;
  // Directional C2S split: uploads (client -> server, including uploads a
  // straggler deadline later drops from aggregation and failed-attempt
  // charges) vs downloads (server -> client distribution). Keeps per-round
  // cohort accounting from double-counting dropped uploads as distribution
  // traffic.
  double c2s_up_gb = 0.0;
  double c2s_down_gb = 0.0;
  bool reached_target = false;
  int epochs_to_target = -1;
  double time_to_target_s = -1.0;
  double traffic_to_target_gb = -1.0;
  bool budget_exhausted = false;
  // Set when the run was stopped early by the epoch hook (snapshot-and-exit,
  // SIGINT, ...) rather than by a natural stop condition. A resumed run
  // clears it and continues exactly where the interrupted one left off.
  bool interrupted = false;
  // Full per-link accounting, for the Fig. 8 link-frequency analysis.
  net::TrafficAccountant traffic;
  // Fault-tolerance counters (attempts, retries, fallbacks, dropped
  // stragglers, checksum rejects, ...). All zero when faults are disabled.
  net::FaultCounters faults;
  // Robustness counters (screened/rejected uploads, attacks applied,
  // quarantine events; see fl/robust.h).
  RobustCounters robust;
  // Chaos-recovery counters (migration capture/rollback ledger, quorum
  // commits/misses, churn membership; see fl/chaos.h). All zero on a
  // zero-chaos config with the watchdog disabled.
  ChaosCounters chaos;
  // Aggregation round (1-based) in which each client first entered
  // quarantine; -1 = never. Empty when reputation is disabled.
  std::vector<int> first_quarantine_round;
  // Registry snapshot taken as Run() returned. The registry accumulates
  // process-wide, so diff two snapshots to isolate a single run. Empty when
  // telemetry is disabled or compiled out.
  obs::MetricsSnapshot metrics;
};

class Trainer {
 public:
  using ModelFactory = std::function<nn::Sequential(util::Rng*)>;

  // `train` and `test` must outlive the trainer. `partition[k]` is client
  // k's index list; partition size, topology client count and device count
  // must agree.
  Trainer(TrainerConfig config, const data::Dataset* train,
          data::Partition partition, const data::Dataset* test,
          net::Topology topology, std::vector<net::DeviceProfile> devices,
          ModelFactory model_factory,
          std::unique_ptr<MigrationPolicy> policy);

  // Runs the configured number of epochs (or until the target accuracy /
  // budget stop) and returns the collected metrics. Re-entrant: after
  // LoadState (or an epoch-hook stop) a further Run() call continues from
  // the first unfinished epoch and yields the same bytes an uninterrupted
  // run would have produced.
  RunResult Run();

  int num_clients() const { return clients_.size(); }

  // Sharded-simulator introspection (gauges, scalability tests).
  int num_materialized_clients() const { return clients_.num_materialized(); }
  long aggregate_aliases() const { return store_.aggregate_use_count(); }
  // Active cohort of the current round; empty when cohorts are disabled.
  const std::vector<int>& cohort() const { return cohort_; }

  // Called after each completed epoch (all bookkeeping and policy feedback
  // done). Returning false stops the run gracefully: Run() returns with
  // `interrupted` set and the trainer left in a state Run() can continue
  // from. The snapshot subsystem uses this for cadence saves and SIGINT.
  using EpochHook = std::function<bool(const Trainer&, int epoch)>;
  void SetEpochHook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  // Attaches the flight recorder (obs/journal.h). Non-owning; the journal
  // must be Attach()ed and outlive Run(). Events are emitted only from the
  // serial sections of the loop and committed once per epoch, so the
  // journal is byte-identical across thread counts and kill/resume. May be
  // installed or detached from the epoch hook (epochs recorded while
  // detached simply have no chunk) — the bench_telemetry overhead harness
  // toggles it per epoch.
  void SetJournal(obs::Journal* journal) { journal_ = journal; }

  // Per-client lineage id (the publish the client's model descends from;
  // 0 = pre-publish). Exposed for the lineage tests.
  int64_t model_lineage(int client) const {
    return model_lineage_[static_cast<size_t>(client)];
  }

  // First epoch the next Run() call would execute (1-based; max_epochs + 1
  // once the run is complete).
  int next_epoch() const { return progress_.next_epoch; }
  bool done() const { return progress_.done; }

  // Serializes everything a bit-identical continuation needs: run progress,
  // metric history, the server model, every client (model + optimizer +
  // RNG), the policy (via MigrationPolicy::SaveState), and the budget /
  // traffic / fault / RNG streams. LoadState validates a fingerprint
  // (scheme, client count, parameter count, seed, schedule) and restores
  // no state unless the whole blob parses.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  // One Local Updating phase across the active clients; returns weighted
  // mean loss and advances time/compute budgets.
  double LocalUpdatePhase(int epoch, double* phase_seconds);
  // Uploads, aggregates, redistributes; evaluates only when `evaluate` is
  // set (evaluation is measurement, not simulation, and is the dominant
  // cost for schemes that aggregate every epoch).
  Evaluation AggregationPhase(int epoch, bool evaluate);
  // Plans and executes one migration round; returns number of moves.
  int MigrationPhase(int epoch, double loss);
  // Cohort-local migration: plans over the C active clients against a
  // cohort-induced sub-topology, then executes against the real fleet.
  int CohortMigrationPhase(int epoch, double loss);
  // Weighted average of current local models, evaluated on the test set
  // (measurement only; no traffic is charged).
  Evaluation VirtualEvaluation();

  void ApplyDp(nn::Sequential* model);

  // True when partial-participation cohort scheduling is on.
  bool cohort_mode() const { return cohort_sampler_ != nullptr; }
  // The ids every per-epoch loop iterates: the current cohort, or the
  // cached identity list [0, K) in legacy mode.
  const std::vector<int>& active_clients() const {
    return cohort_mode() ? cohort_ : identity_;
  }
  // Client i, materialized on demand (cohort mode) from the retained
  // partition slice with the same seed it would have received eagerly.
  Client& ClientAt(int i);
  // Client i without materializing; CHECK-fails if still lazy.
  Client& MaterializedClient(int i) const;
  // Starts aggregation round `round`: retires the previous cohort, samples
  // the new one, materializes its members and delivers the current
  // aggregate to them (the cohort-mode Model Distribution).
  void BeginRound(int64_t round);
  // Applies the CoW model moves shared by both migration paths.
  int ApplyMigrationMoves(int epoch, const MigrationPlan& plan,
                          const MigrationExecution& exec,
                          const std::vector<int>* node_ids);

  TrainerConfig config_;
  // SNAPSHOT-SKIP(construction-time inputs, supplied again on resume)
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Topology topology_;  // SNAPSHOT-SKIP(construction-time input)
  // SNAPSHOT-SKIP(construction-time input, supplied again on resume)
  std::vector<net::DeviceProfile> devices_;
  std::unique_ptr<MigrationPolicy> policy_;
  // Retained for lazy materialization; slot i is moved into client i when
  // it first joins a cohort (and reclaimed if a snapshot restore returns
  // the client to the lazy state).
  data::Partition partition_;
  ShardedClients clients_;
  ModelStore store_;
  // SNAPSHOT-SKIP(deterministic in config seed; rebuilt on construction)
  std::unique_ptr<CohortSampler> cohort_sampler_;
  std::vector<int> cohort_;       // sorted ids of the current round's cohort
  int64_t cohort_round_ = -1;     // round cohort_ belongs to
  // Survivors of a quorum-missed round (sorted ids): their uploads never
  // committed, so BeginRound folds them into the next cohort and skips
  // their Model Distribution — they keep the pending local update.
  std::vector<int> carryover_;
  // SNAPSHOT-SKIP(constant iota over [0, K), rebuilt on construction)
  std::vector<int> identity_;     // [0, K) — legacy active list
  std::unique_ptr<Server> server_;
  net::Budget budget_;
  net::TrafficAccountant traffic_;
  net::FaultInjector faults_;
  util::Rng rng_;
  util::ThreadPool pool_;  // SNAPSHOT-SKIP(runtime infrastructure)
  // SNAPSHOT-SKIP(derived from the global model at construction)
  int64_t model_bytes_ = 0;
  int64_t model_params_ = 0;

  // Per-slot model provenance: the label distribution the resident model
  // has accumulated since the last aggregation, and its sample weight.
  std::vector<std::vector<double>> model_distributions_;
  std::vector<double> model_samples_;
  // Per-slot lineage: the ModelStore publish id client i's resident model
  // descends from (0 until the first distribution). Minted only in serial
  // code (ModelStore::Publish), inherited by CoW clones, moved by
  // migrations — the causal edge stream the flight recorder emits.
  std::vector<int64_t> model_lineage_;

  // Participation state: the α-sample for the current global iteration and
  // this epoch's availability (participation minus dropouts). `eligible_`
  // additionally masks out quarantined clients; it is what the migration
  // policies (and thus the DRL/FLMM action space) see, and it equals
  // `available_` whenever reputation is disabled.
  std::vector<bool> participating_;
  std::vector<bool> available_;
  std::vector<bool> eligible_;
  void ResampleParticipants();
  void RollAvailability();

  // Robustness state: the aggregation rule installed into the server (null
  // = legacy FedAvg), per-client reputation, and the run's counters.
  // SNAPSHOT-SKIP(rebuilt from config_.robust at construction)
  std::unique_ptr<Aggregator> aggregator_;
  ReputationTracker reputation_;
  RobustCounters robust_counters_;
  ChaosCounters chaos_counters_;

  // Run-loop state promoted to members so a run can be snapshotted between
  // epochs and continued bit-identically.
  struct RunProgress {
    int next_epoch = 1;
    double last_accuracy = 0.0;
    double last_test_loss = 0.0;
    double previous_loss = -1.0;
    bool done = false;
  };
  RunProgress progress_;
  RunResult result_;
  EpochHook epoch_hook_;  // SNAPSHOT-SKIP(caller-installed callback)
  // The journal's durability is its own frame-per-epoch append plus the
  // resume-time truncation — nothing of it rides in the snapshot.
  // SNAPSHOT-SKIP(caller-attached recorder with its own durability)
  obs::Journal* journal_ = nullptr;
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_TRAINER_H_
