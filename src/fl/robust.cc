#include "fl/robust.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace fedmigr::fl {

namespace {

// Live registry mirrors of RobustCounters, one counter per field — same
// contract as FaultMetrics in net/fault.cc: the struct is the serialized
// per-run source of truth, the registry accumulates process-wide, and every
// mutation goes through BumpRobust to keep the two views in lockstep.
struct RobustMetrics {
  obs::Counter* screened_updates;
  obs::Counter* nonfinite_rejected;
  obs::Counter* norm_clipped;
  obs::Counter* norm_rejected;
  obs::Counter* cosine_rejected;
  obs::Counter* attacked_updates;
  obs::Counter* quarantine_excluded;
  obs::Counter* quarantines;
  obs::Counter* rehabilitations;

  static const RobustMetrics& Get() {
    static const RobustMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      return new RobustMetrics{
          registry.GetCounter("fl/robust_screened_updates"),
          registry.GetCounter("fl/robust_nonfinite_rejected"),
          registry.GetCounter("fl/robust_norm_clipped"),
          registry.GetCounter("fl/robust_norm_rejected"),
          registry.GetCounter("fl/robust_cosine_rejected"),
          registry.GetCounter("fl/robust_attacked_updates"),
          registry.GetCounter("fl/robust_quarantine_excluded"),
          registry.GetCounter("fl/robust_quarantines"),
          registry.GetCounter("fl/robust_rehabilitations"),
      };
    }();
    return *metrics;
  }
};

void BumpRobust(int64_t* slot, obs::Counter* RobustMetrics::*member) {
  ++*slot;
  if (obs::Telemetry::enabled()) (RobustMetrics::Get().*member)->Increment();
}

}  // namespace

void CountScreenedUpdate(RobustCounters* counters) {
  BumpRobust(&counters->screened_updates, &RobustMetrics::screened_updates);
}
void CountNonFiniteRejected(RobustCounters* counters) {
  BumpRobust(&counters->nonfinite_rejected, &RobustMetrics::nonfinite_rejected);
}
void CountNormClipped(RobustCounters* counters) {
  BumpRobust(&counters->norm_clipped, &RobustMetrics::norm_clipped);
}
void CountNormRejected(RobustCounters* counters) {
  BumpRobust(&counters->norm_rejected, &RobustMetrics::norm_rejected);
}
void CountCosineRejected(RobustCounters* counters) {
  BumpRobust(&counters->cosine_rejected, &RobustMetrics::cosine_rejected);
}
void CountAttackedUpdate(RobustCounters* counters) {
  BumpRobust(&counters->attacked_updates, &RobustMetrics::attacked_updates);
}
void CountQuarantineExcluded(RobustCounters* counters) {
  BumpRobust(&counters->quarantine_excluded,
             &RobustMetrics::quarantine_excluded);
}

void SaveRobustCounters(const RobustCounters& counters,
                        util::ByteWriter* writer) {
  writer->WriteI64(counters.screened_updates);
  writer->WriteI64(counters.nonfinite_rejected);
  writer->WriteI64(counters.norm_clipped);
  writer->WriteI64(counters.norm_rejected);
  writer->WriteI64(counters.cosine_rejected);
  writer->WriteI64(counters.attacked_updates);
  writer->WriteI64(counters.quarantine_excluded);
  writer->WriteI64(counters.quarantines);
  writer->WriteI64(counters.rehabilitations);
}

util::Status LoadRobustCounters(util::ByteReader* reader,
                                RobustCounters* counters) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->screened_updates));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->nonfinite_rejected));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->norm_clipped));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->norm_rejected));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->cosine_rejected));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->attacked_updates));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->quarantine_excluded));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->quarantines));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->rehabilitations));
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Aggregators
// ---------------------------------------------------------------------------

bool ParseAggregatorKind(const std::string& name, AggregatorKind* kind) {
  if (name == "mean") *kind = AggregatorKind::kMean;
  else if (name == "trimmed-mean") *kind = AggregatorKind::kTrimmedMean;
  else if (name == "median") *kind = AggregatorKind::kCoordinateMedian;
  else if (name == "krum") *kind = AggregatorKind::kKrum;
  else if (name == "multi-krum") *kind = AggregatorKind::kMultiKrum;
  else return false;
  return true;
}

const char* AggregatorKindName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kMean: return "mean";
    case AggregatorKind::kTrimmedMean: return "trimmed-mean";
    case AggregatorKind::kCoordinateMedian: return "median";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kMultiKrum: return "multi-krum";
  }
  return "mean";
}

void WeightedMean(const std::vector<const nn::Sequential*>& models,
                  const std::vector<double>& weights, nn::Sequential* out) {
  FEDMIGR_CHECK(!models.empty());
  FEDMIGR_CHECK_EQ(models.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    FEDMIGR_CHECK_GE(w, 0.0);
    total += w;
  }
  FEDMIGR_CHECK_GT(total, 0.0);

  auto out_params = out->Params();
  for (nn::Tensor* p : out_params) p->Zero();
  for (size_t m = 0; m < models.size(); ++m) {
    const float alpha = static_cast<float>(weights[m] / total);
    if (alpha == 0.0f) continue;
    auto in_params = models[m]->Params();
    FEDMIGR_CHECK_EQ(in_params.size(), out_params.size());
    for (size_t p = 0; p < out_params.size(); ++p) {
      out_params[p]->Axpy(alpha, *in_params[p]);
    }
  }
}

namespace {

std::vector<std::vector<float>> FlattenAll(
    const std::vector<const nn::Sequential*>& models) {
  std::vector<std::vector<float>> flat;
  flat.reserve(models.size());
  for (const nn::Sequential* model : models) {
    flat.push_back(nn::FlattenParams(*model));
    FEDMIGR_CHECK_EQ(flat.back().size(), flat.front().size());
  }
  return flat;
}

void WriteFlat(const std::vector<float>& flat, nn::Sequential* out) {
  const util::Status status = nn::UnflattenParams(flat, out);
  FEDMIGR_CHECK(status.ok()) << status.ToString();
}

class MeanAggregator : public Aggregator {
 public:
  void Aggregate(const std::vector<const nn::Sequential*>& models,
                 const std::vector<double>& weights,
                 nn::Sequential* out) const override {
    WeightedMean(models, weights, out);
  }
  std::string name() const override { return "mean"; }
};

class TrimmedMeanAggregator : public Aggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_fraction)
      : trim_fraction_(trim_fraction) {
    FEDMIGR_CHECK_GE(trim_fraction_, 0.0);
    FEDMIGR_CHECK_LT(trim_fraction_, 0.5);
  }

  void Aggregate(const std::vector<const nn::Sequential*>& models,
                 const std::vector<double>& weights,
                 nn::Sequential* out) const override {
    (void)weights;  // robust rules are unweighted by design
    FEDMIGR_CHECK(!models.empty());
    const auto flat = FlattenAll(models);
    const int n = static_cast<int>(flat.size());
    const int trim = std::min(static_cast<int>(trim_fraction_ * n),
                              (n - 1) / 2);
    std::vector<float> result(flat[0].size());
    std::vector<float> column(static_cast<size_t>(n));
    for (size_t c = 0; c < result.size(); ++c) {
      for (int m = 0; m < n; ++m) {
        column[static_cast<size_t>(m)] = flat[static_cast<size_t>(m)][c];
      }
      std::sort(column.begin(), column.end());
      double sum = 0.0;
      for (int m = trim; m < n - trim; ++m) {
        sum += column[static_cast<size_t>(m)];
      }
      result[c] = static_cast<float>(sum / (n - 2 * trim));
    }
    WriteFlat(result, out);
  }
  std::string name() const override { return "trimmed-mean"; }

 private:
  double trim_fraction_;
};

class CoordinateMedianAggregator : public Aggregator {
 public:
  void Aggregate(const std::vector<const nn::Sequential*>& models,
                 const std::vector<double>& weights,
                 nn::Sequential* out) const override {
    (void)weights;
    FEDMIGR_CHECK(!models.empty());
    const auto flat = FlattenAll(models);
    const int n = static_cast<int>(flat.size());
    std::vector<float> result(flat[0].size());
    std::vector<float> column(static_cast<size_t>(n));
    for (size_t c = 0; c < result.size(); ++c) {
      for (int m = 0; m < n; ++m) {
        column[static_cast<size_t>(m)] = flat[static_cast<size_t>(m)][c];
      }
      std::sort(column.begin(), column.end());
      result[c] = (n % 2 == 1)
                      ? column[static_cast<size_t>(n / 2)]
                      : 0.5f * (column[static_cast<size_t>(n / 2 - 1)] +
                                column[static_cast<size_t>(n / 2)]);
    }
    WriteFlat(result, out);
  }
  std::string name() const override { return "median"; }
};

class KrumAggregator : public Aggregator {
 public:
  KrumAggregator(int assumed_attackers, int multi_m, bool multi)
      : assumed_attackers_(assumed_attackers), multi_m_(multi_m),
        multi_(multi) {}

  void Aggregate(const std::vector<const nn::Sequential*>& models,
                 const std::vector<double>& weights,
                 nn::Sequential* out) const override {
    (void)weights;
    FEDMIGR_CHECK(!models.empty());
    const int n = static_cast<int>(models.size());
    if (n == 1) {
      out->CopyParamsFrom(*models[0]);
      return;
    }
    const auto flat = FlattenAll(models);

    // Krum needs n > 2f + 2; derive or clamp f accordingly, then score
    // every candidate by the sum of its n - f - 2 smallest squared
    // distances to the others.
    int f = assumed_attackers_ >= 0 ? assumed_attackers_ : (n - 3) / 2;
    f = std::max(0, std::min(f, n - 3));
    const int neighbors = std::max(1, n - f - 2);

    std::vector<std::vector<double>> dist2(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        double d = 0.0;
        const auto& fa = flat[static_cast<size_t>(a)];
        const auto& fb = flat[static_cast<size_t>(b)];
        for (size_t c = 0; c < fa.size(); ++c) {
          const double delta = static_cast<double>(fa[c]) - fb[c];
          d += delta * delta;
        }
        dist2[static_cast<size_t>(a)][static_cast<size_t>(b)] = d;
        dist2[static_cast<size_t>(b)][static_cast<size_t>(a)] = d;
      }
    }
    std::vector<double> score(static_cast<size_t>(n));
    std::vector<double> row(static_cast<size_t>(n - 1));
    for (int a = 0; a < n; ++a) {
      size_t r = 0;
      for (int b = 0; b < n; ++b) {
        if (b != a) row[r++] = dist2[static_cast<size_t>(a)][static_cast<size_t>(b)];
      }
      std::sort(row.begin(), row.end());
      double s = 0.0;
      for (int m = 0; m < neighbors; ++m) s += row[static_cast<size_t>(m)];
      score[static_cast<size_t>(a)] = s;
    }

    // Stable ranking: ties break toward the lower index.
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
      return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
    });

    if (!multi_) {
      out->CopyParamsFrom(*models[static_cast<size_t>(order[0])]);
      return;
    }
    const int m = std::max(1, std::min(multi_m_, n - f));
    std::vector<float> result(flat[0].size(), 0.0f);
    for (int r = 0; r < m; ++r) {
      const auto& fr = flat[static_cast<size_t>(order[static_cast<size_t>(r)])];
      for (size_t c = 0; c < result.size(); ++c) result[c] += fr[c];
    }
    const float inv = 1.0f / static_cast<float>(m);
    for (float& v : result) v *= inv;
    WriteFlat(result, out);
  }
  std::string name() const override { return multi_ ? "multi-krum" : "krum"; }

 private:
  int assumed_attackers_;
  int multi_m_;
  bool multi_;
};

}  // namespace

std::unique_ptr<Aggregator> MakeAggregator(AggregatorKind kind,
                                           const AggregatorOptions& options) {
  switch (kind) {
    case AggregatorKind::kMean:
      return std::make_unique<MeanAggregator>();
    case AggregatorKind::kTrimmedMean:
      return std::make_unique<TrimmedMeanAggregator>(options.trim_fraction);
    case AggregatorKind::kCoordinateMedian:
      return std::make_unique<CoordinateMedianAggregator>();
    case AggregatorKind::kKrum:
      return std::make_unique<KrumAggregator>(options.assumed_attackers,
                                              options.multi_krum_m, false);
    case AggregatorKind::kMultiKrum:
      return std::make_unique<KrumAggregator>(options.assumed_attackers,
                                              options.multi_krum_m, true);
  }
  return std::make_unique<MeanAggregator>();
}

// ---------------------------------------------------------------------------
// Screening
// ---------------------------------------------------------------------------

bool ParamsFinite(const nn::Sequential& model) {
  for (const nn::Tensor* p : model.Params()) {
    const float* data = p->data();
    for (int64_t i = 0; i < p->size(); ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

namespace {

// Median of an unsorted copy; even counts average the two middles.
double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return (n % 2 == 1) ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

std::vector<ScreeningVerdict> ScreenUpdates(
    const ScreeningConfig& config,
    const std::vector<const nn::Sequential*>& models,
    const std::vector<double>& weights, const nn::Sequential& reference,
    std::vector<const nn::Sequential*>* out_models,
    std::vector<double>* out_weights,
    std::vector<std::unique_ptr<nn::Sequential>>* clipped_storage,
    RobustCounters* counters) {
  FEDMIGR_CHECK_EQ(models.size(), weights.size());
  std::vector<ScreeningVerdict> verdicts(models.size());

  const std::vector<float> ref = nn::FlattenParams(reference);
  double ref_norm2 = 0.0;
  for (float v : ref) ref_norm2 += static_cast<double>(v) * v;
  const double ref_norm = std::sqrt(ref_norm2);

  // Pass 1: per-update geometry (finiteness, delta norm, cosine).
  std::vector<std::vector<float>> flats(models.size());
  std::vector<bool> finite(models.size(), true);
  std::vector<double> finite_norms;
  for (size_t m = 0; m < models.size(); ++m) {
    CountScreenedUpdate(counters);
    ScreeningVerdict& verdict = verdicts[m];
    if (!ParamsFinite(*models[m])) {
      finite[m] = false;
      verdict.outcome = ScreeningOutcome::kNonFinite;
      verdict.update_norm = std::numeric_limits<double>::infinity();
      verdict.cosine = 0.0;
      CountNonFiniteRejected(counters);
      continue;
    }
    flats[m] = nn::FlattenParams(*models[m]);
    FEDMIGR_CHECK_EQ(flats[m].size(), ref.size());
    double delta2 = 0.0, dot = 0.0, norm2 = 0.0;
    for (size_t c = 0; c < ref.size(); ++c) {
      const double w = flats[m][c];
      const double r = ref[c];
      delta2 += (w - r) * (w - r);
      dot += w * r;
      norm2 += w * w;
    }
    verdict.update_norm = std::sqrt(delta2);
    const double denom = std::sqrt(norm2) * ref_norm;
    verdict.cosine = denom > 0.0 ? dot / denom : 0.0;
    finite_norms.push_back(verdict.update_norm);
  }
  const double median_norm = MedianOf(finite_norms);

  // Pass 2: verdicts + survivor emission.
  for (size_t m = 0; m < models.size(); ++m) {
    ScreeningVerdict& verdict = verdicts[m];
    if (!finite[m]) continue;
    if (config.cosine_reject_below > -1.0 &&
        verdict.cosine < config.cosine_reject_below) {
      verdict.outcome = ScreeningOutcome::kCosineOutlier;
      CountCosineRejected(counters);
      continue;
    }
    if (config.norm_reject_factor > 0.0 && median_norm > 0.0 &&
        verdict.update_norm > config.norm_reject_factor * median_norm) {
      verdict.outcome = ScreeningOutcome::kNormOutlier;
      CountNormRejected(counters);
      continue;
    }
    if (config.clip_norm > 0.0 && verdict.update_norm > config.clip_norm) {
      // Scale the delta back onto the clip ball: w' = ref + delta * s.
      const float s =
          static_cast<float>(config.clip_norm / verdict.update_norm);
      std::vector<float> clipped(ref.size());
      for (size_t c = 0; c < ref.size(); ++c) {
        clipped[c] = ref[c] + (flats[m][c] - ref[c]) * s;
      }
      auto model = std::make_unique<nn::Sequential>(*models[m]);
      WriteFlat(clipped, model.get());
      verdict.outcome = ScreeningOutcome::kClipped;
      CountNormClipped(counters);
      out_models->push_back(model.get());
      out_weights->push_back(weights[m]);
      clipped_storage->push_back(std::move(model));
      continue;
    }
    out_models->push_back(models[m]);
    out_weights->push_back(weights[m]);
  }
  return verdicts;
}

// ---------------------------------------------------------------------------
// Reputation
// ---------------------------------------------------------------------------

const char* ReputationStateName(ReputationState state) {
  switch (state) {
    case ReputationState::kHealthy: return "healthy";
    case ReputationState::kSuspect: return "suspect";
    case ReputationState::kQuarantined: return "quarantined";
    case ReputationState::kRehabilitating: return "rehabilitating";
  }
  return "healthy";
}

ReputationTracker::ReputationTracker(const ReputationConfig& config,
                                     int num_clients)
    : config_(config), states_(static_cast<size_t>(num_clients)) {
  FEDMIGR_CHECK_GE(config_.patience, 1);
  FEDMIGR_CHECK_GE(config_.quarantine_rounds, 1);
}

ReputationState ReputationTracker::state(int client) const {
  if (client < 0 || client >= num_clients()) return ReputationState::kHealthy;
  return states_[static_cast<size_t>(client)].state;
}

bool ReputationTracker::Eligible(int client) const {
  return state(client) != ReputationState::kQuarantined;
}

int ReputationTracker::first_quarantine_round(int client) const {
  if (client < 0 || client >= num_clients()) return -1;
  return states_[static_cast<size_t>(client)].first_quarantine_round;
}

void ReputationTracker::RecordTransition(int client, ReputationState from,
                                         ReputationState to) {
  transitions_.push_back(Transition{client, from, to});
}

std::vector<ReputationTracker::Transition>
ReputationTracker::DrainTransitions() {
  std::vector<Transition> drained;
  drained.swap(transitions_);
  return drained;
}

void ReputationTracker::Quarantine(ClientRecord* record,
                                   RobustCounters* counters) {
  RecordTransition(static_cast<int>(record - states_.data()), record->state,
                   ReputationState::kQuarantined);
  record->state = ReputationState::kQuarantined;
  // +1 because AdvanceRound still ticks the triggering round: the client
  // stays masked for `quarantine_rounds` *full* rounds after this one.
  record->quarantine_left = config_.quarantine_rounds + 1;
  record->strikes = 0;
  record->clean_streak = 0;
  if (record->first_quarantine_round < 0) {
    record->first_quarantine_round = round_ + 1;
  }
  BumpRobust(&counters->quarantines, &RobustMetrics::quarantines);
}

void ReputationTracker::ReportFlagged(int client, RobustCounters* counters) {
  if (!enabled() || client < 0 || client >= num_clients()) return;
  ClientRecord& record = states_[static_cast<size_t>(client)];
  switch (record.state) {
    case ReputationState::kHealthy:
      RecordTransition(client, ReputationState::kHealthy,
                       ReputationState::kSuspect);
      record.state = ReputationState::kSuspect;
      record.strikes = 1;
      record.clean_streak = 0;
      if (record.strikes >= config_.patience) Quarantine(&record, counters);
      break;
    case ReputationState::kSuspect:
      // Strikes accumulate and never reset inside suspect: an attacker
      // cannot oscillate clean/flagged to stay under the radar forever.
      ++record.strikes;
      record.clean_streak = 0;
      if (record.strikes >= config_.patience) Quarantine(&record, counters);
      break;
    case ReputationState::kRehabilitating:
      // Zero tolerance during rehabilitation.
      Quarantine(&record, counters);
      break;
    case ReputationState::kQuarantined:
      break;  // quarantined clients do not upload; defensive no-op
  }
}

void ReputationTracker::ReportClean(int client) {
  if (!enabled() || client < 0 || client >= num_clients()) return;
  ClientRecord& record = states_[static_cast<size_t>(client)];
  switch (record.state) {
    case ReputationState::kSuspect:
      ++record.clean_streak;
      if (record.clean_streak >= config_.patience) {
        RecordTransition(client, ReputationState::kSuspect,
                         ReputationState::kHealthy);
        record.state = ReputationState::kHealthy;
        record.strikes = 0;
        record.clean_streak = 0;
      }
      break;
    case ReputationState::kRehabilitating:
      ++record.clean_streak;
      break;  // promotion happens in AdvanceRound so counters flow there
    case ReputationState::kHealthy:
    case ReputationState::kQuarantined:
      break;
  }
}

void ReputationTracker::AdvanceRound(RobustCounters* counters) {
  if (!enabled()) return;
  ++round_;
  for (ClientRecord& record : states_) {
    const int client = static_cast<int>(&record - states_.data());
    if (record.state == ReputationState::kQuarantined) {
      if (--record.quarantine_left <= 0) {
        RecordTransition(client, ReputationState::kQuarantined,
                         ReputationState::kRehabilitating);
        record.state = ReputationState::kRehabilitating;
        record.strikes = 0;
        record.clean_streak = 0;
      }
    } else if (record.state == ReputationState::kRehabilitating &&
               record.clean_streak >= config_.patience) {
      RecordTransition(client, ReputationState::kRehabilitating,
                       ReputationState::kHealthy);
      record.state = ReputationState::kHealthy;
      record.strikes = 0;
      record.clean_streak = 0;
      BumpRobust(&counters->rehabilitations, &RobustMetrics::rehabilitations);
    }
  }
}

void ReputationTracker::SaveState(util::ByteWriter* writer) const {
  writer->WriteI32(round_);
  writer->WriteU64(states_.size());
  for (const ClientRecord& record : states_) {
    writer->WriteI32(static_cast<int32_t>(record.state));
    writer->WriteI32(record.strikes);
    writer->WriteI32(record.clean_streak);
    writer->WriteI32(record.quarantine_left);
    writer->WriteI32(record.first_quarantine_round);
  }
}

util::Status ReputationTracker::LoadState(util::ByteReader* reader) {
  int32_t round = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&round));
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count != states_.size()) {
    return util::Status::InvalidArgument(
        "reputation state client count mismatch");
  }
  std::vector<ClientRecord> records(static_cast<size_t>(count));
  for (ClientRecord& record : records) {
    int32_t state = 0;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&state));
    if (state < 0 || state > static_cast<int32_t>(
                                 ReputationState::kRehabilitating)) {
      return util::Status::InvalidArgument("reputation state out of range");
    }
    record.state = static_cast<ReputationState>(state);
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record.strikes));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record.clean_streak));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record.quarantine_left));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record.first_quarantine_round));
  }
  round_ = round;
  states_ = std::move(records);
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Profiles + attacks
// ---------------------------------------------------------------------------

bool ParseRobustProfile(const std::string& name, RobustConfig* config) {
  if (name == "off") {
    config->screening = ScreeningConfig{};
    config->reputation = ReputationConfig{};
    return true;
  }
  if (name == "screen" || name == "defense") {
    config->screening.norm_reject_factor = 4.0;
    config->screening.cosine_reject_below = -0.2;
    config->reputation.enabled = (name == "defense");
    return true;
  }
  return false;
}

void ApplyAttack(net::AttackMode mode, double scale, util::Rng* rng,
                 nn::Sequential* model) {
  switch (mode) {
    case net::AttackMode::kNone:
      return;
    case net::AttackMode::kSignFlip:
      for (nn::Tensor* p : model->Params()) {
        float* data = p->data();
        for (int64_t i = 0; i < p->size(); ++i) data[i] = -data[i];
      }
      return;
    case net::AttackMode::kGaussianNoise:
      for (nn::Tensor* p : model->Params()) {
        float* data = p->data();
        for (int64_t i = 0; i < p->size(); ++i) {
          data[i] += static_cast<float>(rng->Normal(0.0, scale));
        }
      }
      return;
    case net::AttackMode::kScaledModel:
      for (nn::Tensor* p : model->Params()) {
        p->Scale(static_cast<float>(scale));
      }
      return;
    case net::AttackMode::kSilentCorruption: {
      // Sparse finite garbage: ~1% of coordinates overwritten with +/-scale.
      // Serialized *after* tampering, so CRC32 framing and the NaN gate both
      // pass; only geometry screening (norm/cosine) can catch it.
      std::vector<float> flat = nn::FlattenParams(*model);
      const int64_t n = static_cast<int64_t>(flat.size());
      const int64_t hits = std::max<int64_t>(1, n / 100);
      for (int64_t h = 0; h < hits; ++h) {
        const int idx = rng->UniformInt(static_cast<int>(n));
        flat[static_cast<size_t>(idx)] =
            (h % 2 == 0) ? static_cast<float>(scale)
                         : -static_cast<float>(scale);
      }
      const util::Status status = nn::UnflattenParams(flat, model);
      FEDMIGR_CHECK(status.ok()) << status.ToString();
      return;
    }
    case net::AttackMode::kNanInjection:
      for (nn::Tensor* p : model->Params()) {
        p->Fill(std::numeric_limits<float>::quiet_NaN());
      }
      return;
  }
}

}  // namespace fedmigr::fl
