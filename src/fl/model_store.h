// Copy-on-write model store for the sharded simulator.
//
// At production scale (ROADMAP: millions of simulated clients) the dominant
// memory cost is one `nn::Sequential` replica per client, even though at any
// moment almost every client holds an exact copy of the last published
// aggregate. The store keeps that aggregate in a single refcounted parameter
// block; idle clients alias it through a `ModelRef` and only materialize a
// private copy on first write (see Client::mutable_model). Aliased clients
// therefore cost O(1) bytes for their model and the per-round Model
// Distribution becomes one publish plus K pointer installs instead of K deep
// copies.
//
// The store also shares the flattened-parameter view used as FedProx's
// proximal reference: one flatten per aggregation instead of one per client.
//
// This is the only sanctioned construction site for `nn::Sequential` objects
// inside src/fl (enforced by the `eager-client-alloc` fedmigr_lint rule);
// everything else holds refs.

#ifndef FEDMIGR_FL_MODEL_STORE_H_
#define FEDMIGR_FL_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/sequential.h"

namespace fedmigr::fl {

// Shared immutable handle to a model parameter block. Holders must not cast
// away constness; mutation goes through Client::mutable_model, which clones
// first unless the client already owns its block exclusively.
using ModelRef = std::shared_ptr<const nn::Sequential>;

// Shared immutable handle to a flattened parameter vector (FedProx w_ref).
using FlatRef = std::shared_ptr<const std::vector<float>>;

class ModelStore {
 public:
  // Installs `aggregate` as the current published block (one deep copy).
  // Existing refs to the previous block stay valid; the previous block is
  // freed when its last alias drops.
  const ModelRef& Publish(const nn::Sequential& aggregate);

  // The current published block; null until the first Publish.
  const ModelRef& aggregate() const { return aggregate_; }

  // Flattened view of the current block, refreshed once per Publish.
  const FlatRef& aggregate_flat() const { return flat_; }

  // Live handles to the current block, including the store's own (so a fully
  // aliased fleet of K clients reads K + 1). Diagnostic only.
  long aggregate_use_count() const {
    return aggregate_ ? aggregate_.use_count() : 0;
  }

  // Deep-copies `model` into a fresh exclusively owned block. The CoW clone
  // path for clients, kept here so src/fl has a single construction site.
  static std::shared_ptr<nn::Sequential> Clone(const nn::Sequential& model);

  // Flattens `model` into a fresh shared vector (legacy per-client proximal
  // references and tests).
  static FlatRef Flatten(const nn::Sequential& model);

  // --- Lineage (flight recorder, DESIGN.md §16) ---------------------------
  // Publish is the only mint site for lineage ids: each published block gets
  // the next id from a serial monotonic counter, so ids are deterministic
  // regardless of thread counts. CoW clones made from a block inherit its
  // lineage (a clone continues the same causal line; the trainer threads the
  // per-client id through migrations). Id 0 is "no lineage" (pre-publish).
  int64_t aggregate_lineage() const { return aggregate_lineage_; }
  // Lineage of the block the current aggregate replaced (DAG parent edge).
  int64_t parent_lineage() const { return parent_lineage_; }
  // Snapshot plumbing: the trainer serializes the mint state so a resumed
  // run continues the same id sequence byte-for-byte.
  int64_t next_lineage_id() const { return next_lineage_id_; }
  void RestoreLineage(int64_t next_id, int64_t aggregate, int64_t parent) {
    next_lineage_id_ = next_id;
    aggregate_lineage_ = aggregate;
    parent_lineage_ = parent;
  }

 private:
  ModelRef aggregate_;
  FlatRef flat_;
  int64_t next_lineage_id_ = 1;
  int64_t aggregate_lineage_ = 0;
  int64_t parent_lineage_ = 0;
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_MODEL_STORE_H_
