#include "fl/server.h"

#include "nn/loss.h"
#include "util/logging.h"

namespace fedmigr::fl {

Server::Server(nn::Sequential global_model, const data::Dataset* test)
    : global_model_(std::move(global_model)), test_(test) {
  FEDMIGR_CHECK(test_ != nullptr);
}

void Server::WeightedAverage(const std::vector<const nn::Sequential*>& models,
                             const std::vector<double>& weights,
                             nn::Sequential* out) {
  FEDMIGR_CHECK(!models.empty());
  FEDMIGR_CHECK_EQ(models.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    FEDMIGR_CHECK_GE(w, 0.0);
    total += w;
  }
  FEDMIGR_CHECK_GT(total, 0.0);

  auto out_params = out->Params();
  for (nn::Tensor* p : out_params) p->Zero();
  for (size_t m = 0; m < models.size(); ++m) {
    const float alpha = static_cast<float>(weights[m] / total);
    if (alpha == 0.0f) continue;
    auto in_params = models[m]->Params();
    FEDMIGR_CHECK_EQ(in_params.size(), out_params.size());
    for (size_t p = 0; p < out_params.size(); ++p) {
      out_params[p]->Axpy(alpha, *in_params[p]);
    }
  }
}

void Server::Aggregate(const std::vector<const nn::Sequential*>& models,
                       const std::vector<double>& weights) {
  WeightedAverage(models, weights, &global_model_);
}

Evaluation Server::EvaluateGlobal(int batch_size) const {
  return Evaluate(global_model_, batch_size);
}

Evaluation Server::Evaluate(const nn::Sequential& model,
                            int batch_size) const {
  Evaluation eval;
  if (test_->size() == 0) return eval;
  // Const-cast: Forward caches activations but inference leaves parameters
  // untouched; we evaluate on a scratch copy to keep the API honest.
  nn::Sequential scratch = model;
  data::BatchIterator batches(test_, {}, batch_size, /*rng=*/nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  double loss_sum = 0.0;
  double correct = 0.0;
  int total = 0;
  while (batches.Next(&batch, &labels)) {
    const nn::Tensor logits = scratch.Forward(batch, /*training=*/false);
    const nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    const int n = static_cast<int>(labels.size());
    loss_sum += loss.loss * n;
    correct += nn::Accuracy(logits, labels) * n;
    total += n;
  }
  eval.loss = loss_sum / total;
  eval.accuracy = correct / total;
  return eval;
}

}  // namespace fedmigr::fl
