#include "fl/server.h"

#include "nn/loss.h"
#include "util/logging.h"

namespace fedmigr::fl {

Server::Server(nn::Sequential global_model, const data::Dataset* test)
    : global_model_(std::move(global_model)), test_(test) {
  FEDMIGR_CHECK(test_ != nullptr);
}

void Server::WeightedAverage(const std::vector<const nn::Sequential*>& models,
                             const std::vector<double>& weights,
                             nn::Sequential* out) {
  WeightedMean(models, weights, out);
}

void Server::SetAggregator(const Aggregator* aggregator) {
  aggregator_ = aggregator;
}

void Server::Aggregate(const std::vector<const nn::Sequential*>& models,
                       const std::vector<double>& weights) {
  if (aggregator_ != nullptr) {
    aggregator_->Aggregate(models, weights, &global_model_);
  } else {
    WeightedMean(models, weights, &global_model_);
  }
}

Evaluation Server::EvaluateGlobal(int batch_size) const {
  return Evaluate(global_model_, batch_size);
}

Evaluation Server::Evaluate(const nn::Sequential& model,
                            int batch_size) const {
  Evaluation eval;
  if (test_->size() == 0) return eval;
  // Const-cast: Forward caches activations but inference leaves parameters
  // untouched; we evaluate on a scratch copy to keep the API honest.
  nn::Sequential scratch = model;
  data::BatchIterator batches(test_, {}, batch_size, /*rng=*/nullptr);
  nn::Tensor batch;
  std::vector<int> labels;
  double loss_sum = 0.0;
  double correct = 0.0;
  int total = 0;
  while (batches.Next(&batch, &labels)) {
    const nn::Tensor logits = scratch.Forward(batch, /*training=*/false);
    const nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    const int n = static_cast<int>(labels.size());
    loss_sum += loss.loss * n;
    correct += nn::Accuracy(logits, labels) * n;
    total += n;
  }
  eval.loss = loss_sum / total;
  eval.accuracy = correct / total;
  return eval;
}

}  // namespace fedmigr::fl
