// Parameter server: weighted FedAvg aggregation (Eq. 7) and global-model
// evaluation on the held-out test set.

#ifndef FEDMIGR_FL_SERVER_H_
#define FEDMIGR_FL_SERVER_H_

#include <vector>

#include "data/dataset.h"
#include "fl/robust.h"
#include "nn/sequential.h"

namespace fedmigr::fl {

struct Evaluation {
  double loss = 0.0;
  double accuracy = 0.0;
};

class Server {
 public:
  // `test` must outlive the server.
  Server(nn::Sequential global_model, const data::Dataset* test);

  nn::Sequential& global_model() { return global_model_; }
  const nn::Sequential& global_model() const { return global_model_; }

  // Installs a non-owning aggregation rule used by Aggregate(); nullptr
  // restores the default weighted FedAvg. The rule must outlive the server
  // (the Trainer owns it alongside the server).
  void SetAggregator(const Aggregator* aggregator);

  // w_g = sum_k (n_k / N) w_k over the given models. `weights` are the n_k
  // (any non-negative scale); at least one must be positive. With a custom
  // aggregator installed, that rule decides instead (and may ignore the
  // weights — see fl/robust.h).
  void Aggregate(const std::vector<const nn::Sequential*>& models,
                 const std::vector<double>& weights);

  // The legacy weighted average into an arbitrary output model; used for the
  // per-epoch "virtual aggregate" metric without touching server state.
  // Delegates to the shared WeightedMean kernel in fl/robust.h.
  static void WeightedAverage(const std::vector<const nn::Sequential*>& models,
                              const std::vector<double>& weights,
                              nn::Sequential* out);

  // Evaluates the stored global model on the test set.
  Evaluation EvaluateGlobal(int batch_size = 64) const;
  // Evaluates an arbitrary model on the test set.
  Evaluation Evaluate(const nn::Sequential& model, int batch_size = 64) const;

 private:
  nn::Sequential global_model_;
  const data::Dataset* test_;
  const Aggregator* aggregator_ = nullptr;  // non-owning; null = FedAvg
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_SERVER_H_
