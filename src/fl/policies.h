// Migration policies.
//
// A policy turns the current FL state into a MigrationPlan. This file holds
// every non-learned policy the paper evaluates or compares against:
//   - NoMigration            (FedAvg / FedProx: never migrate)
//   - RandomMigration        (RandMigr baseline)
//   - FedSwapPairing         (random pairwise swap through the PS)
//   - CrossLan / WithinLan   (the fixed strategies of Fig. 3)
//   - MaxEmd                 (greedy divergence heuristic, ablation oracle)
//   - Flmm                   (relaxed-QP + Hungarian planner from src/opt)
// The DRL-driven policy lives in src/rl (it needs the agent).

#ifndef FEDMIGR_FL_POLICIES_H_
#define FEDMIGR_FL_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/migration.h"
#include "net/budget.h"
#include "net/topology.h"
#include "opt/flmm.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {

// Everything a policy may look at when planning. Pointers are non-owning
// and valid only for the duration of the Plan() call.
struct PolicyContext {
  int epoch = 0;
  const net::Topology* topology = nullptr;
  int64_t model_bytes = 0;
  // Label distribution of each client's local dataset (fixed).
  const std::vector<std::vector<double>>* client_distributions = nullptr;
  // Effective label distribution seen by the model currently hosted on each
  // client (evolves as models migrate).
  const std::vector<std::vector<double>>* model_distributions = nullptr;
  double global_loss = 0.0;
  const net::Budget* budget = nullptr;
  util::Rng* rng = nullptr;
  // Per-client availability this epoch (crashes, dropout). nullptr means
  // everyone is up. Learned planners mask unavailable clients out of their
  // action space; the trainer additionally cancels any planned move that
  // touches an unavailable endpoint.
  const std::vector<bool>* available = nullptr;
};

// Availability lookup against ctx.available (true when the vector is absent).
inline bool ClientAvailable(const PolicyContext& ctx, int client) {
  return ctx.available == nullptr ||
         (*ctx.available)[static_cast<size_t>(client)];
}

// Per-epoch outcome handed back to the policy after its plan executed.
// Learned policies (the DRL agent) turn this into the reward of
// Eqs. 17-18; fixed policies ignore it.
struct PolicyFeedback {
  int epoch = 0;
  double loss_before = 0.0;
  double loss_after = 0.0;
  // Resource cost of this epoch as a fraction of the total budgets
  // (0 when budgets are infinite).
  double compute_cost_fraction = 0.0;
  double bandwidth_cost_fraction = 0.0;
  // Terminal-epoch flags (Eq. 18): `done` marks the last epoch, `success`
  // whether training finished within budget.
  bool done = false;
  bool success = false;
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  virtual MigrationPlan Plan(const PolicyContext& ctx) = 0;
  virtual void Feedback(const PolicyFeedback& feedback) { (void)feedback; }
  virtual std::string name() const = 0;

  // Run-snapshot hooks. Policies that carry mutable state across epochs
  // (the DRL agent, its replay buffer) serialize it here so an interrupted
  // run resumes bit-identically; stateless policies (which draw only from
  // the trainer's RNG, snapshotted separately) keep the no-op default.
  virtual void SaveState(util::ByteWriter* writer) const { (void)writer; }
  virtual util::Status LoadState(util::ByteReader* reader) {
    (void)reader;
    return util::Status::Ok();
  }
};

// D[i][j] = EMD between the model hosted at i and the data at j — the
// migration-gain matrix used by MaxEmd, Flmm and the DRL featurizer.
std::vector<std::vector<double>> MigrationGainMatrix(const PolicyContext& ctx);

class NoMigrationPolicy : public MigrationPolicy {
 public:
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override { return "none"; }
};

class RandomMigrationPolicy : public MigrationPolicy {
 public:
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override { return "random"; }
};

// Random disjoint pairs swapped through the parameter server.
class FedSwapPolicy : public MigrationPolicy {
 public:
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override { return "fedswap"; }
};

// Random permutation constrained to cross-LAN (or within-LAN) moves.
class LanConstrainedPolicy : public MigrationPolicy {
 public:
  explicit LanConstrainedPolicy(bool cross_lan) : cross_lan_(cross_lan) {}
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override {
    return cross_lan_ ? "cross-lan" : "within-lan";
  }

 private:
  bool cross_lan_;
};

// Hungarian matching that maximizes total migration gain, ignoring
// communication cost. The "how good can divergence-greedy get" oracle.
class MaxEmdPolicy : public MigrationPolicy {
 public:
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override { return "max-emd"; }
};

// Relaxed-FLMM planner (projected-gradient QP + Hungarian rounding),
// balancing divergence gain against link cost.
class FlmmPolicy : public MigrationPolicy {
 public:
  explicit FlmmPolicy(opt::FlmmOptions options = {}) : options_(options) {}
  MigrationPlan Plan(const PolicyContext& ctx) override;
  std::string name() const override { return "flmm"; }

 private:
  opt::FlmmOptions options_;
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_POLICIES_H_
