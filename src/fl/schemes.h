// Ready-made configurations for the paper's baseline schemes. Each factory
// returns a (TrainerConfig, MigrationPolicy) pair tuned to the scheme's
// semantics; callers then override the workload knobs (epochs, lr, ...).

#ifndef FEDMIGR_FL_SCHEMES_H_
#define FEDMIGR_FL_SCHEMES_H_

#include <memory>
#include <string>

#include "fl/policies.h"
#include "fl/trainer.h"

namespace fedmigr::fl {

struct SchemeSetup {
  TrainerConfig config;
  std::unique_ptr<MigrationPolicy> policy;
};

// `agg_period` is the paper's M+1 (e.g. 50 for the default "aggregate every
// 50 epochs with 49 migrations in between").
SchemeSetup MakeFedAvg();
SchemeSetup MakeFedProx(double mu = 0.01);
SchemeSetup MakeFedSwap(int agg_period = 50);
SchemeSetup MakeRandMigr(int agg_period = 50);
// FedMigr with the FLMM-planner policy (the non-learned variant; the DRL
// variant is assembled in src/core).
SchemeSetup MakeFedMigrFlmm(int agg_period = 50);
// Greedy max-divergence matching (ablation oracle, ignores link cost).
SchemeSetup MakeMaxEmd(int agg_period = 50);

// Factory by name: "fedavg" | "fedprox" | "fedswap" | "randmigr" |
// "fedmigr-flmm". CHECK-fails on unknown names.
SchemeSetup MakeSchemeByName(const std::string& name, int agg_period = 50);

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_SCHEMES_H_
