#include "fl/cohort.h"

#include <set>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fedmigr::fl {
namespace {

// Registry instrumentation for the sharded container (observation only:
// Get() runs concurrently inside ParallelFor, so these are the registry's
// relaxed atomics and nothing here feeds back into simulation state).
struct ShardMetrics {
  obs::Counter* hits;        // Get() found a materialized client
  obs::Counter* misses;      // Get() hit a lazy slot (nullptr)
  obs::Counter* evictions;   // Evict() destroyed a materialized client
  obs::Gauge* resident_shards;

  static const ShardMetrics& Get() {
    static const ShardMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      return new ShardMetrics{
          registry.GetCounter("fl/shard_hits"),
          registry.GetCounter("fl/shard_misses"),
          registry.GetCounter("fl/shard_evictions"),
          registry.GetGauge("fl/resident_shards"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

namespace {

// splitmix64 finalizer: decorrelates (seed, round) pairs before they seed
// the per-round xoshiro stream.
uint64_t MixSeed(uint64_t seed, int64_t round) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(round) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CohortSampler::CohortSampler(uint64_t seed, int num_clients, int cohort_size)
    : seed_(seed), num_clients_(num_clients), cohort_size_(cohort_size) {
  FEDMIGR_CHECK(num_clients > 0);
  FEDMIGR_CHECK(cohort_size > 0 && cohort_size <= num_clients);
}

std::vector<int> CohortSampler::Sample(int64_t round) const {
  std::vector<int> cohort;
  cohort.reserve(static_cast<size_t>(cohort_size_));
  if (cohort_size_ == num_clients_) {
    for (int i = 0; i < num_clients_; ++i) cohort.push_back(i);
    return cohort;
  }
  util::Rng rng(MixSeed(seed_, round));
  // Floyd's sampling: C distinct draws without touching the other K - C ids.
  // std::set keeps the result ordered (and the tree is tiny: C elements).
  std::set<int> picked;
  for (int j = num_clients_ - cohort_size_; j < num_clients_; ++j) {
    const int t = rng.UniformInt(j + 1);
    if (!picked.insert(t).second) picked.insert(j);
  }
  cohort.assign(picked.begin(), picked.end());
  return cohort;
}

ShardedClients::ShardedClients(int num_clients) : num_clients_(num_clients) {
  FEDMIGR_CHECK(num_clients >= 0);
  const int shards =
      (num_clients + (1 << kShardBits) - 1) >> kShardBits;
  shards_.resize(static_cast<size_t>(shards));
}

Client* ShardedClients::Get(int i) const {
  FEDMIGR_CHECK(i >= 0 && i < num_clients_);
  const Shard* shard = shards_[static_cast<size_t>(i >> kShardBits)].get();
  Client* client =
      shard == nullptr ? nullptr
                       : shard->slots[i & ((1 << kShardBits) - 1)].get();
  if (obs::Telemetry::enabled()) {
    if (client != nullptr) {
      ShardMetrics::Get().hits->Increment();
    } else {
      ShardMetrics::Get().misses->Increment();
    }
  }
  return client;
}

Client* ShardedClients::Put(int i, std::unique_ptr<Client> client) {
  FEDMIGR_CHECK(i >= 0 && i < num_clients_);
  FEDMIGR_CHECK(client != nullptr);
  auto& shard = shards_[static_cast<size_t>(i >> kShardBits)];
  if (shard == nullptr) {
    shard = std::make_unique<Shard>();
    ++resident_shards_;
    if (obs::Telemetry::enabled()) {
      ShardMetrics::Get().resident_shards->Set(resident_shards_);
    }
  }
  auto& slot = shard->slots[i & ((1 << kShardBits) - 1)];
  if (slot == nullptr) ++materialized_;
  slot = std::move(client);
  return slot.get();
}

void ShardedClients::Evict(int i) {
  FEDMIGR_CHECK(i >= 0 && i < num_clients_);
  auto& shard = shards_[static_cast<size_t>(i >> kShardBits)];
  if (shard == nullptr) return;
  auto& slot = shard->slots[i & ((1 << kShardBits) - 1)];
  if (slot != nullptr) {
    slot.reset();
    --materialized_;
    if (obs::Telemetry::enabled()) {
      ShardMetrics::Get().evictions->Increment();
    }
  }
}

}  // namespace fedmigr::fl
