// Simulated FL client: owns a slice of the training data, a local model
// replica and an SGD optimizer, and performs the Local Updating step
// (optionally with FedProx's proximal term).
//
// The model replica is copy-on-write: after Model Distribution the client
// merely aliases the aggregate block published by the trainer's ModelStore,
// and the first mutable access (LocalUpdate, DP noising, an in-place attack)
// clones a private block. Idle clients therefore cost O(1) model bytes,
// which is what lets the sharded simulator scale to 10^6 clients.

#ifndef FEDMIGR_FL_CLIENT_H_
#define FEDMIGR_FL_CLIENT_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/model_store.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {

struct LocalUpdateOptions {
  int epochs = 1;        // τ in the paper
  int batch_size = 32;
  // FedProx proximal weight μ; 0 disables the term. When enabled, the
  // gradient gains μ (w - w_ref) with w_ref the last distributed global
  // model.
  double fedprox_mu = 0.0;
};

struct LocalUpdateResult {
  double mean_loss = 0.0;
  int64_t samples_processed = 0;
};

class Client {
 public:
  // `dataset` must outlive the client. `indices` selects this client's local
  // samples.
  Client(int id, const data::Dataset* dataset, std::vector<int> indices,
         double learning_rate, double momentum, uint64_t seed);

  int id() const { return id_; }
  int num_samples() const { return static_cast<int>(indices_.size()); }
  const std::vector<int>& indices() const { return indices_; }

  // Local label distribution (cached at construction).
  const std::vector<double>& label_distribution() const {
    return label_distribution_;
  }

  bool has_model() const { return model_ != nullptr; }

  // Read-only view of the replica. Valid until the next SetModel.
  const nn::Sequential& model() const { return *model_; }

  // Mutable view. If the replica is currently shared (aliased from the
  // store or from a migration source) this clones a private block first, so
  // writes never leak into other holders.
  nn::Sequential& mutable_model();

  // Aliases a shared block (Model Distribution or an incoming migration).
  // O(1); no parameters are copied until the client writes.
  void SetModel(ModelRef model);

  // Legacy deep-copy install (async runtime, tests). The client owns the
  // resulting block exclusively.
  void SetModel(const nn::Sequential& model);

  // Shares the current replica and marks it immutable-in-place: the next
  // mutable_model() clones. Migration uses this to snapshot sources without
  // deep copies. Null if no model was ever installed.
  ModelRef share_model();

  // Non-demoting view of the current block (snapshot alias detection).
  ModelRef model_ref() const { return model_; }
  bool owns_model() const { return owns_model_; }

  // Rollback of a share_model() capture whose transfer never delivered: if
  // this client is again the sole holder of its block, it re-promotes to
  // exclusive ownership. A no-op while the block is still shared — the
  // ownership state is then exactly what it was before the capture.
  void ReclaimModel();

  // Records the reference point for FedProx's proximal term. Call at every
  // Model Distribution. The shared overload aliases the store's flattened
  // aggregate; the legacy overload flattens privately.
  void SetProximalReference(FlatRef reference);
  void SetProximalReference(const nn::Sequential& global);
  const FlatRef& proximal_reference() const { return proximal_reference_; }

  // Runs `options.epochs` passes of mini-batch SGD over the local data.
  LocalUpdateResult LocalUpdate(const LocalUpdateOptions& options);

  // Snapshot state: model replica, SGD momentum, shuffling RNG, FedProx
  // reference. The dataset slice is rebuilt from the workload seed, so only
  // a fingerprint (id, sample count) is stored for validation.
  //
  // The aliased forms write a flag byte instead of the parameter payload
  // when the replica (resp. proximal reference) aliases `aggregate`
  // (resp. `aggregate_flat`); LoadState re-aliases against the same refs.
  // Passing nulls (the two-argument form) always inlines the payload.
  void SaveState(util::ByteWriter* writer) const;
  void SaveState(util::ByteWriter* writer, const ModelRef& aggregate,
                 const FlatRef& aggregate_flat) const;
  util::Status LoadState(util::ByteReader* reader);
  util::Status LoadState(util::ByteReader* reader, const ModelRef& aggregate,
                         const FlatRef& aggregate_flat);

 private:
  int id_;
  // SNAPSHOT-SKIP(construction-time view of the shared dataset)
  const data::Dataset* dataset_;
  std::vector<int> indices_;
  // SNAPSHOT-SKIP(recomputed from the partition at construction)
  std::vector<double> label_distribution_;
  // Invariant: mutable access requires owns_model_; aliased blocks are
  // cloned first (see mutable_model).
  std::shared_ptr<nn::Sequential> model_;
  bool owns_model_ = false;
  nn::Sgd optimizer_;
  util::Rng rng_;
  FlatRef proximal_reference_;  // flattened global params (possibly shared)
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_CLIENT_H_
