// Simulated FL client: owns a slice of the training data, a local model
// replica and an SGD optimizer, and performs the Local Updating step
// (optionally with FedProx's proximal term).

#ifndef FEDMIGR_FL_CLIENT_H_
#define FEDMIGR_FL_CLIENT_H_

#include <vector>

#include "data/dataset.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fedmigr::fl {

struct LocalUpdateOptions {
  int epochs = 1;        // τ in the paper
  int batch_size = 32;
  // FedProx proximal weight μ; 0 disables the term. When enabled, the
  // gradient gains μ (w - w_ref) with w_ref the last distributed global
  // model.
  double fedprox_mu = 0.0;
};

struct LocalUpdateResult {
  double mean_loss = 0.0;
  int64_t samples_processed = 0;
};

class Client {
 public:
  // `dataset` must outlive the client. `indices` selects this client's local
  // samples.
  Client(int id, const data::Dataset* dataset, std::vector<int> indices,
         double learning_rate, double momentum, uint64_t seed);

  int id() const { return id_; }
  int num_samples() const { return static_cast<int>(indices_.size()); }
  const std::vector<int>& indices() const { return indices_; }

  // Local label distribution (cached at construction).
  const std::vector<double>& label_distribution() const {
    return label_distribution_;
  }

  nn::Sequential& model() { return model_; }
  const nn::Sequential& model() const { return model_; }

  // Installs a model replica (Model Distribution or an incoming migration).
  void SetModel(const nn::Sequential& model);

  // Records the reference point for FedProx's proximal term. Call at every
  // Model Distribution.
  void SetProximalReference(const nn::Sequential& global);

  // Runs `options.epochs` passes of mini-batch SGD over the local data.
  LocalUpdateResult LocalUpdate(const LocalUpdateOptions& options);

  // Snapshot state: model replica, SGD momentum, shuffling RNG, FedProx
  // reference. The dataset slice is rebuilt from the workload seed, so only
  // a fingerprint (id, sample count) is stored for validation.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  int id_;
  const data::Dataset* dataset_;
  std::vector<int> indices_;
  std::vector<double> label_distribution_;
  nn::Sequential model_;
  nn::Sgd optimizer_;
  util::Rng rng_;
  std::vector<float> proximal_reference_;  // flattened global params
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_CLIENT_H_
