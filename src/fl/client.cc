#include "fl/client.h"

#include "data/distribution.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "util/logging.h"

namespace fedmigr::fl {

Client::Client(int id, const data::Dataset* dataset, std::vector<int> indices,
               double learning_rate, double momentum, uint64_t seed)
    : id_(id),
      dataset_(dataset),
      indices_(std::move(indices)),
      optimizer_(learning_rate, momentum),
      rng_(seed) {
  FEDMIGR_CHECK(dataset_ != nullptr);
  label_distribution_ = data::LabelDistribution(*dataset_, indices_);
}

void Client::SetModel(const nn::Sequential& model) { model_ = model; }

void Client::SetProximalReference(const nn::Sequential& global) {
  proximal_reference_ = nn::FlattenParams(global);
}

void Client::SaveState(util::ByteWriter* writer) const {
  writer->WriteI32(id_);
  writer->WriteU64(indices_.size());
  nn::WriteParams(writer, model_);
  optimizer_.SaveState(writer);
  util::SaveRngState(rng_, writer);
  writer->WriteF32Vector(proximal_reference_);
}

util::Status Client::LoadState(util::ByteReader* reader) {
  int32_t id = 0;
  uint64_t samples = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&id));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&samples));
  if (id != id_ || samples != indices_.size()) {
    return util::Status::InvalidArgument(
        "client fingerprint mismatch for client " + std::to_string(id_));
  }
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &model_));
  FEDMIGR_RETURN_IF_ERROR(optimizer_.LoadState(reader));
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &rng_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF32Vector(&proximal_reference_));
  return util::Status::Ok();
}

LocalUpdateResult Client::LocalUpdate(const LocalUpdateOptions& options) {
  LocalUpdateResult result;
  if (indices_.empty()) return result;
  data::BatchIterator batches(dataset_, indices_, options.batch_size, &rng_);
  double loss_sum = 0.0;
  int batch_count = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    batches.Reset();
    nn::Tensor batch;
    std::vector<int> labels;
    while (batches.Next(&batch, &labels)) {
      model_.ZeroGrads();
      const nn::Tensor logits = model_.Forward(batch, /*training=*/true);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      model_.Backward(loss.grad_logits);
      if (options.fedprox_mu > 0.0 && !proximal_reference_.empty()) {
        // Proximal term: grad += μ (w - w_ref).
        auto params = model_.Params();
        auto grads = model_.Grads();
        size_t offset = 0;
        const float mu = static_cast<float>(options.fedprox_mu);
        for (size_t p = 0; p < params.size(); ++p) {
          for (int64_t j = 0; j < params[p]->size(); ++j) {
            (*grads[p])[j] += mu * ((*params[p])[j] -
                                    proximal_reference_[offset + j]);
          }
          offset += static_cast<size_t>(params[p]->size());
        }
      }
      optimizer_.Step(&model_);
      loss_sum += loss.loss;
      ++batch_count;
      result.samples_processed += static_cast<int64_t>(labels.size());
    }
  }
  result.mean_loss = batch_count > 0 ? loss_sum / batch_count : 0.0;
  return result;
}

}  // namespace fedmigr::fl
