#include "fl/client.h"

#include "data/distribution.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "util/logging.h"

namespace fedmigr::fl {
namespace {

// Per-client snapshot flag byte (trainer state v3). Bit 0: the replica
// aliases the trainer's current aggregate block, parameters elided. Bit 1:
// the proximal reference aliases the aggregate's flattened view, payload
// elided. Bit 2: no replica installed yet.
constexpr uint8_t kModelAliased = 1u << 0;
constexpr uint8_t kProximalAliased = 1u << 1;
constexpr uint8_t kNoModel = 1u << 2;

}  // namespace

Client::Client(int id, const data::Dataset* dataset, std::vector<int> indices,
               double learning_rate, double momentum, uint64_t seed)
    : id_(id),
      dataset_(dataset),
      indices_(std::move(indices)),
      optimizer_(learning_rate, momentum),
      rng_(seed) {
  FEDMIGR_CHECK(dataset_ != nullptr);
  label_distribution_ = data::LabelDistribution(*dataset_, indices_);
}

nn::Sequential& Client::mutable_model() {
  FEDMIGR_CHECK(model_ != nullptr);
  if (!owns_model_) {
    model_ = ModelStore::Clone(*model_);
    owns_model_ = true;
  }
  return *model_;
}

void Client::SetModel(ModelRef model) {
  FEDMIGR_CHECK(model != nullptr);
  // Constness is a sharing convention, not storage: the block is only ever
  // written through mutable_model(), which clones unless owns_model_.
  model_ = std::const_pointer_cast<nn::Sequential>(std::move(model));
  owns_model_ = false;
}

void Client::SetModel(const nn::Sequential& model) {
  model_ = ModelStore::Clone(model);
  owns_model_ = true;
}

ModelRef Client::share_model() {
  if (model_ == nullptr) return nullptr;
  owns_model_ = false;
  return model_;
}

void Client::ReclaimModel() {
  if (model_ != nullptr && model_.use_count() == 1) owns_model_ = true;
}

void Client::SetProximalReference(FlatRef reference) {
  proximal_reference_ = std::move(reference);
}

void Client::SetProximalReference(const nn::Sequential& global) {
  proximal_reference_ = ModelStore::Flatten(global);
}

void Client::SaveState(util::ByteWriter* writer) const {
  SaveState(writer, nullptr, nullptr);
}

void Client::SaveState(util::ByteWriter* writer, const ModelRef& aggregate,
                       const FlatRef& aggregate_flat) const {
  writer->WriteI32(id_);
  writer->WriteU64(indices_.size());
  uint8_t flags = 0;
  if (model_ == nullptr) {
    flags |= kNoModel;
  } else if (aggregate != nullptr && model_ == aggregate) {
    flags |= kModelAliased;
  }
  if (proximal_reference_ != nullptr && aggregate_flat != nullptr &&
      proximal_reference_ == aggregate_flat) {
    flags |= kProximalAliased;
  }
  writer->WriteU8(flags);
  if (!(flags & (kModelAliased | kNoModel))) {
    nn::WriteParams(writer, *model_);
  }
  optimizer_.SaveState(writer);
  util::SaveRngState(rng_, writer);
  if (!(flags & kProximalAliased)) {
    writer->WriteF32Vector(proximal_reference_ == nullptr
                               ? std::vector<float>()
                               : *proximal_reference_);
  }
}

util::Status Client::LoadState(util::ByteReader* reader) {
  return LoadState(reader, nullptr, nullptr);
}

util::Status Client::LoadState(util::ByteReader* reader,
                               const ModelRef& aggregate,
                               const FlatRef& aggregate_flat) {
  int32_t id = 0;
  uint64_t samples = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&id));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&samples));
  if (id != id_ || samples != indices_.size()) {
    return util::Status::InvalidArgument(
        "client fingerprint mismatch for client " + std::to_string(id_));
  }
  uint8_t flags = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU8(&flags));
  if (flags & kNoModel) {
    model_.reset();
    owns_model_ = false;
  } else if (flags & kModelAliased) {
    if (aggregate == nullptr) {
      return util::Status::DataLoss(
          "client " + std::to_string(id_) +
          " aliases the aggregate block but none was restored");
    }
    model_ = std::const_pointer_cast<nn::Sequential>(aggregate);
    owns_model_ = false;
  } else {
    // Inline payload: materialize a private block shaped like the replica
    // we already hold (or the aggregate when restoring a lazy client).
    if (model_ == nullptr || !owns_model_) {
      const nn::Sequential* shape =
          model_ != nullptr ? model_.get() : aggregate.get();
      if (shape == nullptr) {
        return util::Status::DataLoss(
            "client " + std::to_string(id_) +
            " carries inline parameters but no block shape is available");
      }
      model_ = ModelStore::Clone(*shape);
      owns_model_ = true;
    }
    FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, model_.get()));
  }
  FEDMIGR_RETURN_IF_ERROR(optimizer_.LoadState(reader));
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &rng_));
  if (flags & kProximalAliased) {
    if (aggregate_flat == nullptr) {
      return util::Status::DataLoss(
          "client " + std::to_string(id_) +
          " aliases the flattened aggregate but none was restored");
    }
    proximal_reference_ = aggregate_flat;
  } else {
    std::vector<float> proximal;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF32Vector(&proximal));
    proximal_reference_ =
        std::make_shared<const std::vector<float>>(std::move(proximal));
  }
  return util::Status::Ok();
}

LocalUpdateResult Client::LocalUpdate(const LocalUpdateOptions& options) {
  LocalUpdateResult result;
  if (indices_.empty()) return result;
  nn::Sequential& model = mutable_model();
  const std::vector<float>* proximal =
      proximal_reference_ != nullptr ? proximal_reference_.get() : nullptr;
  data::BatchIterator batches(dataset_, indices_, options.batch_size, &rng_);
  double loss_sum = 0.0;
  int batch_count = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    batches.Reset();
    nn::Tensor batch;
    std::vector<int> labels;
    while (batches.Next(&batch, &labels)) {
      model.ZeroGrads();
      const nn::Tensor logits = model.Forward(batch, /*training=*/true);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      model.Backward(loss.grad_logits);
      if (options.fedprox_mu > 0.0 && proximal != nullptr &&
          !proximal->empty()) {
        // Proximal term: grad += μ (w - w_ref).
        auto params = model.Params();
        auto grads = model.Grads();
        size_t offset = 0;
        const float mu = static_cast<float>(options.fedprox_mu);
        for (size_t p = 0; p < params.size(); ++p) {
          for (int64_t j = 0; j < params[p]->size(); ++j) {
            (*grads[p])[j] += mu * ((*params[p])[j] -
                                    (*proximal)[offset + j]);
          }
          offset += static_cast<size_t>(params[p]->size());
        }
      }
      optimizer_.Step(&model);
      loss_sum += loss.loss;
      ++batch_count;
      result.samples_processed += static_cast<int64_t>(labels.size());
    }
  }
  result.mean_loss = batch_count > 0 ? loss_sum / batch_count : 0.0;
  return result;
}

}  // namespace fedmigr::fl
