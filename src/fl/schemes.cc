#include "fl/schemes.h"

#include "util/logging.h"

namespace fedmigr::fl {

SchemeSetup MakeFedAvg() {
  SchemeSetup setup;
  setup.config.scheme_name = "fedavg";
  setup.config.agg_period = 1;
  setup.policy = std::make_unique<NoMigrationPolicy>();
  return setup;
}

SchemeSetup MakeFedProx(double mu) {
  SchemeSetup setup;
  setup.config.scheme_name = "fedprox";
  setup.config.agg_period = 1;
  setup.config.fedprox_mu = mu;
  setup.policy = std::make_unique<NoMigrationPolicy>();
  return setup;
}

SchemeSetup MakeFedSwap(int agg_period) {
  SchemeSetup setup;
  setup.config.scheme_name = "fedswap";
  setup.config.agg_period = agg_period;
  setup.policy = std::make_unique<FedSwapPolicy>();
  return setup;
}

SchemeSetup MakeRandMigr(int agg_period) {
  SchemeSetup setup;
  setup.config.scheme_name = "randmigr";
  setup.config.agg_period = agg_period;
  setup.policy = std::make_unique<RandomMigrationPolicy>();
  return setup;
}

SchemeSetup MakeFedMigrFlmm(int agg_period) {
  SchemeSetup setup;
  setup.config.scheme_name = "fedmigr-flmm";
  setup.config.agg_period = agg_period;
  setup.policy = std::make_unique<FlmmPolicy>();
  return setup;
}

SchemeSetup MakeMaxEmd(int agg_period) {
  SchemeSetup setup;
  setup.config.scheme_name = "maxemd";
  setup.config.agg_period = agg_period;
  setup.policy = std::make_unique<MaxEmdPolicy>();
  return setup;
}

SchemeSetup MakeSchemeByName(const std::string& name, int agg_period) {
  if (name == "fedavg") return MakeFedAvg();
  if (name == "fedprox") return MakeFedProx();
  if (name == "fedswap") return MakeFedSwap(agg_period);
  if (name == "randmigr") return MakeRandMigr(agg_period);
  if (name == "fedmigr-flmm") return MakeFedMigrFlmm(agg_period);
  if (name == "maxemd") return MakeMaxEmd(agg_period);
  FEDMIGR_CHECK(false) << "unknown scheme: " << name;
  return MakeFedAvg();  // unreachable
}

}  // namespace fedmigr::fl
