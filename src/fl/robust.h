// Byzantine-robust aggregation, update screening and client quarantine.
//
// Defense-in-depth between client uploads and the global model, motivated
// by FedMigr's unique exposure: a poisoned model is not just one bad term
// in one round's mean — it can be *migrated* C2C and trained on by honest
// clients, contaminating the whole lineage. Three layers:
//
//   1. Aggregator — pluggable aggregation rule. `Mean` is bit-identical to
//      the legacy weighted FedAvg path; `TrimmedMean`, `CoordinateMedian`
//      and `Krum`/`MultiKrum` bound the influence of up to f adversarial
//      uploads at increasing cost in statistical efficiency.
//   2. Update screening — per-upload gate at ingest: non-finite rejection
//      (always on; one NaN coordinate would otherwise brick the mean
//      permanently), L2 clipping of the update delta, an adaptive norm
//      outlier test against the round median, and a cosine-similarity
//      anomaly score against the last aggregate.
//   3. Reputation — per-client state machine
//         healthy -> suspect -> quarantined -> rehabilitating -> healthy
//      fed by screening verdicts. Quarantined clients are masked out of
//      the DRL/FLMM action space (via the PR 1 crash-mask plumbing) and
//      excluded as migration sources *and* targets, which is what stops
//      lineage contamination.
//
// The all-defaults RobustConfig is inert: Mean aggregation, no screening
// beyond the non-finite gate, no reputation — the trainer follows exactly
// the legacy code path and produces bit-identical results.
//
// Counters follow the FaultCounters contract: every mutation flows through
// the Count*/Report* funnels in robust.cc (enforced by fedmigr_lint's
// counter-mutation rule), which also mirror each increment into the obs
// registry as live `fl/robust_*` metrics.

#ifndef FEDMIGR_FL_ROBUST_H_
#define FEDMIGR_FL_ROBUST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.h"
#include "nn/sequential.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace fedmigr::fl {

// ---------------------------------------------------------------------------
// Aggregators
// ---------------------------------------------------------------------------

enum class AggregatorKind {
  kMean = 0,
  kTrimmedMean,
  kCoordinateMedian,
  kKrum,
  kMultiKrum,
};

// "mean" | "trimmed-mean" | "median" | "krum" | "multi-krum".
bool ParseAggregatorKind(const std::string& name, AggregatorKind* kind);
const char* AggregatorKindName(AggregatorKind kind);

struct AggregatorOptions {
  // TrimmedMean: fraction trimmed from *each* end per coordinate; the
  // effective trim count is min(floor(trim_fraction * n), (n - 1) / 2).
  double trim_fraction = 0.2;
  // Krum/MultiKrum: assumed number of Byzantine uploads f. -1 derives the
  // largest f the selection tolerates, floor((n - 3) / 2).
  int assumed_attackers = -1;
  // MultiKrum: number of best-scoring uploads averaged.
  int multi_krum_m = 3;
};

// Aggregation rule: writes the aggregate of `models` into `out`. `weights`
// are per-model sample counts; Mean uses them (bit-identical to the legacy
// weighted FedAvg), the robust rules deliberately ignore them — a sample
// count is attacker-controlled metadata, and weighting by it would hand a
// Byzantine client a free influence multiplier.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual void Aggregate(const std::vector<const nn::Sequential*>& models,
                         const std::vector<double>& weights,
                         nn::Sequential* out) const = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<Aggregator> MakeAggregator(
    AggregatorKind kind, const AggregatorOptions& options = {});

// The weighted-mean kernel shared by Server::WeightedAverage and the Mean
// aggregator — one implementation, so the two are bit-identical.
void WeightedMean(const std::vector<const nn::Sequential*>& models,
                  const std::vector<double>& weights, nn::Sequential* out);

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

// Per-run robustness counters surfaced in RunResult / bench tables. On an
// inert config everything except `screened_updates` stays zero (the
// non-finite gate is always on, so every upload is screened). Mutate only
// through the funnels below (fedmigr_lint: counter-mutation).
struct RobustCounters {
  int64_t screened_updates = 0;     // uploads that entered the screen
  int64_t nonfinite_rejected = 0;   // dropped: NaN/Inf coordinates
  int64_t norm_clipped = 0;         // kept, update delta L2-clipped
  int64_t norm_rejected = 0;        // dropped: delta-norm outlier
  int64_t cosine_rejected = 0;      // dropped: cosine anomaly vs aggregate
  int64_t attacked_updates = 0;     // models tampered by the injector
  int64_t quarantine_excluded = 0;  // uploads skipped while quarantined
  int64_t quarantines = 0;          // transitions into quarantine
  int64_t rehabilitations = 0;      // rehabilitating -> healthy transitions
};

void CountScreenedUpdate(RobustCounters* counters);
void CountNonFiniteRejected(RobustCounters* counters);
void CountNormClipped(RobustCounters* counters);
void CountNormRejected(RobustCounters* counters);
void CountCosineRejected(RobustCounters* counters);
void CountAttackedUpdate(RobustCounters* counters);
void CountQuarantineExcluded(RobustCounters* counters);

void SaveRobustCounters(const RobustCounters& counters,
                        util::ByteWriter* writer);
util::Status LoadRobustCounters(util::ByteReader* reader,
                                RobustCounters* counters);

// ---------------------------------------------------------------------------
// Update screening
// ---------------------------------------------------------------------------

struct ScreeningConfig {
  // L2 bound on the update delta ||w - w_ref||; a longer update is scaled
  // back onto the ball (kept, counted as clipped). 0 disables.
  double clip_norm = 0.0;
  // Adaptive outlier rejection: drop an update whose delta norm exceeds
  // factor * median(delta norms of the round). 0 disables.
  double norm_reject_factor = 0.0;
  // Drop an update whose parameter vector's cosine similarity against the
  // last aggregate falls below this. -1 disables (cosine is never < -1);
  // sign-flipped models land at ~-1, honest updates at ~+1.
  double cosine_reject_below = -1.0;

  bool active() const {
    return clip_norm > 0.0 || norm_reject_factor > 0.0 ||
           cosine_reject_below > -1.0;
  }
};

enum class ScreeningOutcome {
  kAccepted = 0,
  kClipped,        // accepted after L2 clipping
  kNonFinite,      // rejected: NaN/Inf coordinate
  kNormOutlier,    // rejected: delta-norm outlier
  kCosineOutlier,  // rejected: cosine anomaly
};

struct ScreeningVerdict {
  ScreeningOutcome outcome = ScreeningOutcome::kAccepted;
  double update_norm = 0.0;  // ||w - w_ref|| before any clipping
  double cosine = 1.0;       // cos(w, w_ref)

  bool accepted() const {
    return outcome == ScreeningOutcome::kAccepted ||
           outcome == ScreeningOutcome::kClipped;
  }
  // A flagged upload feeds the reputation machine.
  bool flagged() const { return !accepted(); }
};

// Screens `models` against `reference` (the last aggregate). Survivors are
// appended to `out_models`/`out_weights`; a clipped survivor is
// materialized into `clipped_storage`, which the caller must keep alive
// until aggregation is done. The non-finite gate always runs; the other
// rules follow `config`. Counter mutations flow through the funnels above.
std::vector<ScreeningVerdict> ScreenUpdates(
    const ScreeningConfig& config,
    const std::vector<const nn::Sequential*>& models,
    const std::vector<double>& weights, const nn::Sequential& reference,
    std::vector<const nn::Sequential*>* out_models,
    std::vector<double>* out_weights,
    std::vector<std::unique_ptr<nn::Sequential>>* clipped_storage,
    RobustCounters* counters);

// True when every parameter of `model` is finite.
bool ParamsFinite(const nn::Sequential& model);

// ---------------------------------------------------------------------------
// Reputation / quarantine
// ---------------------------------------------------------------------------

enum class ReputationState {
  kHealthy = 0,
  kSuspect,
  kQuarantined,
  kRehabilitating,
};

const char* ReputationStateName(ReputationState state);

struct ReputationConfig {
  bool enabled = false;
  // Flagged rounds (accumulated while suspect/rehabilitating) before
  // quarantine, and clean-round streak required to step back to healthy.
  // An always-flagged attacker is quarantined after exactly `patience`
  // aggregation rounds; any client leaves suspect within patience^2 - 1
  // rounds (strikes never reset inside suspect, so the state cannot be
  // oscillated in forever).
  int patience = 3;
  // Rounds spent quarantined before rehabilitation begins.
  int quarantine_rounds = 4;
};

// Per-client reputation driven by screening verdicts. One Report* call per
// participating client per aggregation round, then one AdvanceRound().
class ReputationTracker {
 public:
  ReputationTracker() = default;
  ReputationTracker(const ReputationConfig& config, int num_clients);

  bool enabled() const { return config_.enabled; }
  int num_clients() const { return static_cast<int>(states_.size()); }
  ReputationState state(int client) const;
  // False only while quarantined: such clients neither upload nor appear
  // in the DRL/FLMM action space nor serve as migration endpoints.
  bool Eligible(int client) const;

  void ReportClean(int client);
  void ReportFlagged(int client, RobustCounters* counters);
  // Round tick: quarantine countdowns, rehabilitation promotions. Call
  // once per aggregation round, after all reports.
  void AdvanceRound(RobustCounters* counters);

  // Aggregation round (1-based) in which the client first entered
  // quarantine; -1 if never. The bench's quarantine-latency column.
  int first_quarantine_round(int client) const;

  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

  // One state-machine edge, recorded as it happens. Drained by the trainer
  // once per round and re-emitted as journal kQuarantineTransition events.
  struct Transition {
    int client = 0;
    ReputationState from = ReputationState::kHealthy;
    ReputationState to = ReputationState::kHealthy;
  };

  // Returns the transitions recorded since the last drain (in report/tick
  // order, so deterministic) and clears the list.
  std::vector<Transition> DrainTransitions();

 private:
  struct ClientRecord {
    ReputationState state = ReputationState::kHealthy;
    int strikes = 0;          // flagged rounds since entering suspect
    int clean_streak = 0;     // consecutive clean rounds in current state
    int quarantine_left = 0;  // rounds remaining in quarantine
    int first_quarantine_round = -1;
  };

  void Quarantine(ClientRecord* record, RobustCounters* counters);
  void RecordTransition(int client, ReputationState from, ReputationState to);

  // SNAPSHOT-SKIP(configuration, supplied identically on resume)
  ReputationConfig config_;
  std::vector<ClientRecord> states_;
  int round_ = 0;  // completed aggregation rounds
  // Drained into the journal every aggregation round, so always empty at
  // the epoch boundaries where snapshots are taken.
  // SNAPSHOT-SKIP(drained every round; empty at snapshot boundaries)
  std::vector<Transition> transitions_;
};

// ---------------------------------------------------------------------------
// Config bundle + attack application
// ---------------------------------------------------------------------------

struct RobustConfig {
  AggregatorKind aggregator = AggregatorKind::kMean;
  AggregatorOptions aggregator_options;
  ScreeningConfig screening;
  ReputationConfig reputation;

  // True when any defense beyond the always-on non-finite gate is active.
  // Inactive == the trainer's legacy bit-identical path.
  bool active() const {
    return aggregator != AggregatorKind::kMean || screening.active() ||
           reputation.enabled;
  }
};

// Preset defense profiles for benches and CLI flags:
//   "off"     — inert config (Mean, no screening, no quarantine)
//   "screen"  — screening only (clip + norm outlier + cosine gate)
//   "defense" — screening + reputation/quarantine
bool ParseRobustProfile(const std::string& name, RobustConfig* config);

// Applies Byzantine tampering in place (see net::AttackMode). `rng` is the
// injector's dedicated attack stream so the tampering is deterministic and
// replayed bit-identically on resume.
void ApplyAttack(net::AttackMode mode, double scale, util::Rng* rng,
                 nn::Sequential* model);

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_ROBUST_H_
