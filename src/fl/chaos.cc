#include "fl/chaos.h"

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace fedmigr::fl {

namespace {

// Live registry mirrors of ChaosCounters, one counter per field — same
// contract as FaultMetrics/RobustMetrics: the struct is the serialized
// per-run source of truth, the registry accumulates process-wide, and every
// mutation goes through BumpChaos to keep the two views in lockstep.
struct ChaosMetrics {
  obs::Counter* migrations_planned;
  obs::Counter* migrations_completed;
  obs::Counter* migration_fallbacks;
  obs::Counter* migrations_rolled_back;
  obs::Counter* quorum_commits;
  obs::Counter* quorum_misses;
  obs::Counter* carryover_clients;
  obs::Counter* churn_absences;
  obs::Counter* churn_departures;

  static const ChaosMetrics& Get() {
    static const ChaosMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      return new ChaosMetrics{
          registry.GetCounter("fl/chaos_migrations_planned"),
          registry.GetCounter("fl/chaos_migrations_completed"),
          registry.GetCounter("fl/chaos_migration_fallbacks"),
          registry.GetCounter("fl/chaos_migrations_rolled_back"),
          registry.GetCounter("fl/chaos_quorum_commits"),
          registry.GetCounter("fl/chaos_quorum_misses"),
          registry.GetCounter("fl/chaos_carryover_clients"),
          registry.GetCounter("fl/chaos_churn_absences"),
          registry.GetCounter("fl/chaos_churn_departures"),
      };
    }();
    return *metrics;
  }
};

void BumpChaos(int64_t* slot, obs::Counter* ChaosMetrics::*member) {
  ++*slot;
  if (obs::Telemetry::enabled()) (ChaosMetrics::Get().*member)->Increment();
}

}  // namespace

void CountMigrationPlanned(ChaosCounters* counters) {
  BumpChaos(&counters->migrations_planned, &ChaosMetrics::migrations_planned);
}
void CountMigrationCompleted(ChaosCounters* counters) {
  BumpChaos(&counters->migrations_completed,
            &ChaosMetrics::migrations_completed);
}
void CountMigrationFallback(ChaosCounters* counters) {
  BumpChaos(&counters->migration_fallbacks, &ChaosMetrics::migration_fallbacks);
}
void CountMigrationRolledBack(ChaosCounters* counters) {
  BumpChaos(&counters->migrations_rolled_back,
            &ChaosMetrics::migrations_rolled_back);
}
void CountQuorumCommit(ChaosCounters* counters) {
  BumpChaos(&counters->quorum_commits, &ChaosMetrics::quorum_commits);
}
void CountQuorumMiss(ChaosCounters* counters) {
  BumpChaos(&counters->quorum_misses, &ChaosMetrics::quorum_misses);
}
void CountCarryoverClient(ChaosCounters* counters) {
  BumpChaos(&counters->carryover_clients, &ChaosMetrics::carryover_clients);
}
void CountChurnAbsence(ChaosCounters* counters) {
  BumpChaos(&counters->churn_absences, &ChaosMetrics::churn_absences);
}
void CountChurnDeparture(ChaosCounters* counters) {
  BumpChaos(&counters->churn_departures, &ChaosMetrics::churn_departures);
}

void SaveChaosCounters(const ChaosCounters& counters,
                       util::ByteWriter* writer) {
  writer->WriteI64(counters.migrations_planned);
  writer->WriteI64(counters.migrations_completed);
  writer->WriteI64(counters.migration_fallbacks);
  writer->WriteI64(counters.migrations_rolled_back);
  writer->WriteI64(counters.quorum_commits);
  writer->WriteI64(counters.quorum_misses);
  writer->WriteI64(counters.carryover_clients);
  writer->WriteI64(counters.churn_absences);
  writer->WriteI64(counters.churn_departures);
}

util::Status LoadChaosCounters(util::ByteReader* reader,
                               ChaosCounters* counters) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->migrations_planned));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->migrations_completed));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->migration_fallbacks));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->migrations_rolled_back));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->quorum_commits));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->quorum_misses));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->carryover_clients));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->churn_absences));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters->churn_departures));
  return util::Status::Ok();
}

}  // namespace fedmigr::fl
