#include "fl/async.h"

#include <cmath>
#include <queue>

#include "fl/client.h"
#include "util/logging.h"

namespace fedmigr::fl {

namespace {

// One pending "client k finishes its local round at time t" event.
struct FinishEvent {
  double time = 0.0;
  int client = 0;
  bool operator>(const FinishEvent& other) const {
    return time > other.time;
  }
};

}  // namespace

AsyncTrainer::AsyncTrainer(AsyncConfig config, const data::Dataset* train,
                           data::Partition partition,
                           const data::Dataset* test, net::Topology topology,
                           std::vector<net::DeviceProfile> devices,
                           ModelFactory model_factory)
    : config_(std::move(config)),
      train_(train),
      test_(test),
      topology_(std::move(topology)),
      devices_(std::move(devices)),
      partition_(std::move(partition)),
      model_factory_(std::move(model_factory)) {
  FEDMIGR_CHECK(train_ != nullptr);
  FEDMIGR_CHECK(test_ != nullptr);
  FEDMIGR_CHECK_EQ(partition_.size(),
                   static_cast<size_t>(topology_.num_clients()));
  FEDMIGR_CHECK_EQ(devices_.size(), partition_.size());
  FEDMIGR_CHECK_GT(config_.mixing_alpha, 0.0);
  FEDMIGR_CHECK_LE(config_.mixing_alpha, 1.0);
}

AsyncRunResult AsyncTrainer::Run() {
  const int k = topology_.num_clients();
  util::Rng rng(config_.seed);
  util::Rng model_rng = rng.Split();
  nn::Sequential global = model_factory_(&model_rng);
  const int64_t model_bytes = global.ByteSize();
  const int64_t model_params = global.NumParams();
  Server server(global, test_);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, train_, partition_[static_cast<size_t>(i)], config_.learning_rate,
        /*momentum=*/0.0, config_.seed * 7907ULL + static_cast<uint64_t>(i)));
    clients.back()->SetModel(server.global_model());
  }

  // last_sync[i]: server-update count when client i last downloaded.
  std::vector<int> last_sync(static_cast<size_t>(k), 0);
  net::Budget budget = config_.budget;
  net::TrafficAccountant traffic;
  net::FaultInjector faults(config_.fault);

  LocalUpdateOptions local;
  local.epochs = config_.local_epochs;
  local.batch_size = config_.batch_size;

  auto round_seconds = [&](int i) {
    const int64_t samples =
        static_cast<int64_t>(clients[static_cast<size_t>(i)]->num_samples()) *
        config_.local_epochs;
    return net::ComputeSeconds(devices_[static_cast<size_t>(i)], samples,
                               model_params) *
           faults.SlowdownFactor(i);
  };

  std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                      std::greater<FinishEvent>>
      events;
  for (int i = 0; i < k; ++i) {
    events.push({round_seconds(i), i});
  }

  AsyncRunResult result;
  double last_accuracy = 0.0;
  int updates = 0;
  double now = 0.0;
  while (updates < config_.max_updates && !events.empty()) {
    const FinishEvent event = events.top();
    events.pop();
    now = event.time;
    const int i = event.client;
    Client& client = *clients[static_cast<size_t>(i)];

    // One injector epoch elapses per server-side event, so crash windows
    // and straggler rolls are measured in events. A no-op when disabled.
    faults.BeginEpoch(k);

    // A crashed client lost the round it was computing; it re-attempts
    // once its outage window lets the next round complete.
    if (faults.IsCrashed(i)) {
      events.push({now + round_seconds(i), i});
      continue;
    }

    // The round that just "finished" in simulated time is executed now.
    const LocalUpdateResult update_result = client.LocalUpdate(local);
    budget.ConsumeCompute(
        static_cast<double>(update_result.samples_processed));

    // Upload over the WAN. With faults disabled Transfer() is byte-identical
    // to the direct TransferSeconds + Record path.
    const net::TransferResult up =
        faults.Transfer(i, net::kServerId, model_bytes, topology_, &traffic);
    const double upload_s = up.seconds;
    budget.ConsumeBandwidth(static_cast<double>(up.bytes));
    const bool rejected = up.status.ok() && up.corrupted;
    if (rejected) faults.CountCorruptRejected();
    if (!up.status.ok() || rejected) {
      // The update never reached the blend: the client retries a fresh
      // round from its stale model; its staleness keeps growing.
      events.push({now + upload_s + round_seconds(i), i});
      continue;
    }

    // Blend with staleness-discounted weight.
    ++updates;
    const int staleness = updates - 1 - last_sync[static_cast<size_t>(i)];
    const double mix =
        config_.mixing_alpha *
        std::pow(1.0 + static_cast<double>(staleness),
                 -config_.staleness_exponent);
    server.global_model().LerpParamsFrom(client.model(),
                                         static_cast<float>(mix));

    // Download the fresh global model and schedule the next round. A lost
    // or corrupted download leaves the client training on its stale model
    // (last_sync stays, so its discount keeps shrinking until one lands).
    const net::TransferResult down =
        faults.Transfer(net::kServerId, i, model_bytes, topology_, &traffic);
    const double download_s = down.seconds;
    budget.ConsumeBandwidth(static_cast<double>(down.bytes));
    if (down.status.ok() && down.corrupted) {
      faults.CountCorruptRejected();
    } else if (down.status.ok()) {
      client.SetModel(server.global_model());
      last_sync[static_cast<size_t>(i)] = updates;
    }

    const double next_finish =
        now + upload_s + download_s + round_seconds(i);
    events.push({next_finish, i});

    if (config_.eval_every > 0 &&
        (updates % config_.eval_every == 0 ||
         updates == config_.max_updates)) {
      last_accuracy = server.EvaluateGlobal(config_.batch_size * 2).accuracy;
    }

    AsyncUpdateRecord record;
    record.update = updates;
    record.client = i;
    record.staleness = staleness;
    record.sim_time_s = now;
    record.test_accuracy = last_accuracy;
    result.history.push_back(record);
    result.best_accuracy = std::max(result.best_accuracy, last_accuracy);

    const bool target_hit = config_.target_accuracy > 0.0 &&
                            last_accuracy >= config_.target_accuracy;
    if (target_hit && !result.reached_target) {
      result.reached_target = true;
      result.updates_to_target = updates;
      result.time_to_target_s = now;
    }
    if (target_hit || budget.Exhausted()) break;
  }

  result.final_accuracy = last_accuracy;
  result.updates_run = updates;
  result.time_s = now;
  result.traffic_gb = static_cast<double>(traffic.total_bytes()) / 1e9;
  result.faults = faults.counters();
  return result;
}

}  // namespace fedmigr::fl
