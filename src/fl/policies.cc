#include "fl/policies.h"

#include <algorithm>
#include <numeric>

#include "data/distribution.h"
#include "opt/hungarian.h"
#include "util/logging.h"

namespace fedmigr::fl {

std::vector<std::vector<double>> MigrationGainMatrix(
    const PolicyContext& ctx) {
  FEDMIGR_CHECK(ctx.model_distributions != nullptr);
  FEDMIGR_CHECK(ctx.client_distributions != nullptr);
  const auto& model = *ctx.model_distributions;
  const auto& client = *ctx.client_distributions;
  FEDMIGR_CHECK_EQ(model.size(), client.size());
  const size_t k = model.size();
  std::vector<std::vector<double>> gain(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    // A crashed/unavailable source cannot send this epoch: its whole row
    // stays zero, so gain-driven planners (MaxEmd, FLMM, DRL) leave it put.
    if (!ClientAvailable(ctx, static_cast<int>(i))) continue;
    for (size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      if (!ClientAvailable(ctx, static_cast<int>(j))) continue;
      gain[i][j] = data::EmdDistance(model[i], client[j]);
    }
  }
  return gain;
}

MigrationPlan NoMigrationPolicy::Plan(const PolicyContext& ctx) {
  return MigrationPlan::Identity(ctx.topology->num_clients());
}

MigrationPlan RandomMigrationPolicy::Plan(const PolicyContext& ctx) {
  const int k = ctx.topology->num_clients();
  std::vector<int> perm(static_cast<size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  ctx.rng->Shuffle(perm);
  // perm is "destination of model i"; convert to incoming representation.
  return PlanFromDestinations(perm);
}

MigrationPlan FedSwapPolicy::Plan(const PolicyContext& ctx) {
  const int k = ctx.topology->num_clients();
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  ctx.rng->Shuffle(order);
  std::vector<int> destination(static_cast<size_t>(k));
  std::iota(destination.begin(), destination.end(), 0);
  for (int p = 0; p + 1 < k; p += 2) {
    const int a = order[static_cast<size_t>(p)];
    const int b = order[static_cast<size_t>(p + 1)];
    destination[static_cast<size_t>(a)] = b;
    destination[static_cast<size_t>(b)] = a;
  }
  return PlanFromDestinations(destination, /*via_server=*/true);
}

MigrationPlan LanConstrainedPolicy::Plan(const PolicyContext& ctx) {
  const int k = ctx.topology->num_clients();
  // Greedy bipartite construction: each destination (in random order) takes
  // a random unused source satisfying the LAN constraint, falling back to
  // any unused source when none qualifies.
  std::vector<int> dst_order(static_cast<size_t>(k));
  std::iota(dst_order.begin(), dst_order.end(), 0);
  ctx.rng->Shuffle(dst_order);
  std::vector<bool> used(static_cast<size_t>(k), false);
  std::vector<int> incoming(static_cast<size_t>(k), -1);
  for (int j : dst_order) {
    std::vector<int> candidates;
    for (int i = 0; i < k; ++i) {
      if (used[static_cast<size_t>(i)] || i == j) continue;
      const bool same = ctx.topology->SameLan(i, j);
      if (cross_lan_ ? !same : same) candidates.push_back(i);
    }
    if (candidates.empty()) {
      for (int i = 0; i < k; ++i) {
        if (!used[static_cast<size_t>(i)]) candidates.push_back(i);
      }
    }
    const int pick =
        candidates[static_cast<size_t>(ctx.rng->UniformInt(
            static_cast<int>(candidates.size())))];
    incoming[static_cast<size_t>(j)] = pick;
    used[static_cast<size_t>(pick)] = true;
  }
  MigrationPlan plan;
  plan.incoming = std::move(incoming);
  FEDMIGR_CHECK(plan.IsPermutation());
  return plan;
}

MigrationPlan MaxEmdPolicy::Plan(const PolicyContext& ctx) {
  const auto gain = MigrationGainMatrix(ctx);
  const size_t k = gain.size();
  std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) cost[i][j] = -gain[i][j];
  }
  const std::vector<int> destination = opt::SolveAssignment(cost);
  return PlanFromDestinations(destination);
}

MigrationPlan FlmmPolicy::Plan(const PolicyContext& ctx) {
  const auto gain = MigrationGainMatrix(ctx);
  // Eq. 16's bandwidth constraint enters the relaxation as an adaptive
  // communication penalty: the closer the budget is to exhaustion, the
  // costlier every transfer looks, until migrations stop entirely (the
  // paper's worst case degrades to FedAvg).
  opt::FlmmOptions options = options_;
  if (ctx.budget != nullptr) {
    const double used = ctx.budget->BandwidthUsedFraction();
    options.comm_weight = options_.comm_weight / std::max(0.05, 1.0 - used);
  }
  const opt::FlmmPlan flmm =
      opt::SolveFlmm(gain, *ctx.topology, ctx.model_bytes, options);
  return PlanFromDestinations(flmm.destination);
}

}  // namespace fedmigr::fl
