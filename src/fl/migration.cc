#include "fl/migration.h"

#include <algorithm>

#include "util/logging.h"

namespace fedmigr::fl {

MigrationPlan MigrationPlan::Identity(int num_clients) {
  MigrationPlan plan;
  plan.incoming.resize(static_cast<size_t>(num_clients));
  for (int j = 0; j < num_clients; ++j) {
    plan.incoming[static_cast<size_t>(j)] = j;
  }
  return plan;
}

int MigrationPlan::NumMoves() const {
  int moves = 0;
  for (size_t j = 0; j < incoming.size(); ++j) {
    if (incoming[j] != static_cast<int>(j)) ++moves;
  }
  return moves;
}

bool MigrationPlan::IsPermutation() const {
  std::vector<int> seen(incoming.size(), 0);
  for (int i : incoming) {
    if (i < 0 || i >= static_cast<int>(incoming.size())) return false;
    if (++seen[static_cast<size_t>(i)] > 1) return false;
  }
  return true;
}

MigrationPlan PlanFromDestinations(const std::vector<int>& destination,
                                   bool via_server) {
  const int k = static_cast<int>(destination.size());
  MigrationPlan plan = MigrationPlan::Identity(k);
  plan.via_server = via_server;
  std::vector<bool> receives(static_cast<size_t>(k), false);
  for (int i = 0; i < k; ++i) {
    const int j = destination[static_cast<size_t>(i)];
    FEDMIGR_CHECK_GE(j, 0);
    FEDMIGR_CHECK_LT(j, k);
    if (j == i) continue;
    FEDMIGR_CHECK(!receives[static_cast<size_t>(j)])
        << "client " << j << " receives two models";
    receives[static_cast<size_t>(j)] = true;
    plan.incoming[static_cast<size_t>(j)] = i;
  }
  return plan;
}

MigrationCost CostAndRecord(const MigrationPlan& plan,
                            const net::Topology& topology, int64_t model_bytes,
                            net::TrafficAccountant* traffic) {
  return ExecuteWithFaults(plan, topology, model_bytes, traffic,
                           /*faults=*/nullptr)
      .cost;
}

MigrationExecution ExecuteWithFaults(const MigrationPlan& plan,
                                     const net::Topology& topology,
                                     int64_t model_bytes,
                                     net::TrafficAccountant* traffic,
                                     net::FaultInjector* faults,
                                     const std::vector<int>* node_ids) {
  const bool faulty = faults != nullptr && faults->enabled();
  if (node_ids != nullptr) {
    FEDMIGR_CHECK_EQ(node_ids->size(), plan.incoming.size());
  }
  MigrationExecution exec;
  exec.delivered.assign(plan.incoming.size(), false);
  exec.corrupted.assign(plan.incoming.size(), false);
  exec.via_fallback.assign(plan.incoming.size(), false);
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    if (plan.incoming[j] == static_cast<int>(j)) continue;
    const int src = node_ids != nullptr
                        ? (*node_ids)[static_cast<size_t>(plan.incoming[j])]
                        : plan.incoming[j];
    const int dst =
        node_ids != nullptr ? (*node_ids)[j] : static_cast<int>(j);
    ++exec.cost.num_moves;
    double seconds = 0.0;
    bool delivered = true;
    bool corrupted = false;
    bool used_fallback = false;
    if (!faulty) {
      if (plan.via_server) {
        // Two WAN hops: src -> server, server -> dst.
        seconds = topology.TransferSeconds(src, net::kServerId, model_bytes) +
                  topology.TransferSeconds(net::kServerId, dst, model_bytes);
        exec.cost.bytes += 2 * model_bytes;
        if (traffic != nullptr) {
          traffic->Record(src, net::kServerId, model_bytes);
          traffic->Record(net::kServerId, dst, model_bytes);
        }
      } else {
        seconds = topology.TransferSeconds(src, dst, model_bytes);
        exec.cost.bytes += model_bytes;
        if (traffic != nullptr) traffic->Record(src, dst, model_bytes);
      }
    } else if (plan.via_server) {
      const net::TransferResult up =
          faults->Transfer(src, net::kServerId, model_bytes, topology, traffic);
      seconds = up.seconds;
      exec.cost.bytes += up.bytes;
      if (up.status.ok()) {
        const net::TransferResult down = faults->Transfer(
            net::kServerId, dst, model_bytes, topology, traffic);
        seconds += down.seconds;
        exec.cost.bytes += down.bytes;
        delivered = down.status.ok();
        corrupted = up.corrupted || down.corrupted;
      } else {
        delivered = false;
      }
    } else {
      const net::TransferResult direct =
          faults->Transfer(src, dst, model_bytes, topology, traffic);
      seconds = direct.seconds;
      exec.cost.bytes += direct.bytes;
      delivered = direct.status.ok();
      corrupted = direct.corrupted;
      if (!delivered && faults->config().server_fallback) {
        // The direct link gave up: re-route through the parameter server,
        // charged as C2S both ways.
        ++exec.fallback_moves;
        used_fallback = true;
        faults->CountFallback();
        const net::TransferResult up = faults->Transfer(
            src, net::kServerId, model_bytes, topology, traffic);
        seconds += up.seconds;
        exec.cost.bytes += up.bytes;
        if (up.status.ok()) {
          const net::TransferResult down = faults->Transfer(
              net::kServerId, dst, model_bytes, topology, traffic);
          seconds += down.seconds;
          exec.cost.bytes += down.bytes;
          delivered = down.status.ok();
          corrupted = up.corrupted || down.corrupted;
        }
      }
    }
    if (delivered) {
      exec.delivered[j] = true;
      exec.corrupted[j] = corrupted;
      exec.via_fallback[j] = used_fallback;
    } else {
      ++exec.failed_moves;
    }
    // Transfers run in parallel; the round takes as long as the slowest.
    exec.cost.seconds = std::max(exec.cost.seconds, seconds);
  }
  return exec;
}

}  // namespace fedmigr::fl
