#include "fl/migration.h"

#include <algorithm>

#include "util/logging.h"

namespace fedmigr::fl {

MigrationPlan MigrationPlan::Identity(int num_clients) {
  MigrationPlan plan;
  plan.incoming.resize(static_cast<size_t>(num_clients));
  for (int j = 0; j < num_clients; ++j) {
    plan.incoming[static_cast<size_t>(j)] = j;
  }
  return plan;
}

int MigrationPlan::NumMoves() const {
  int moves = 0;
  for (size_t j = 0; j < incoming.size(); ++j) {
    if (incoming[j] != static_cast<int>(j)) ++moves;
  }
  return moves;
}

bool MigrationPlan::IsPermutation() const {
  std::vector<int> seen(incoming.size(), 0);
  for (int i : incoming) {
    if (i < 0 || i >= static_cast<int>(incoming.size())) return false;
    if (++seen[static_cast<size_t>(i)] > 1) return false;
  }
  return true;
}

MigrationPlan PlanFromDestinations(const std::vector<int>& destination,
                                   bool via_server) {
  const int k = static_cast<int>(destination.size());
  MigrationPlan plan = MigrationPlan::Identity(k);
  plan.via_server = via_server;
  std::vector<bool> receives(static_cast<size_t>(k), false);
  for (int i = 0; i < k; ++i) {
    const int j = destination[static_cast<size_t>(i)];
    FEDMIGR_CHECK_GE(j, 0);
    FEDMIGR_CHECK_LT(j, k);
    if (j == i) continue;
    FEDMIGR_CHECK(!receives[static_cast<size_t>(j)])
        << "client " << j << " receives two models";
    receives[static_cast<size_t>(j)] = true;
    plan.incoming[static_cast<size_t>(j)] = i;
  }
  return plan;
}

MigrationCost CostAndRecord(const MigrationPlan& plan,
                            const net::Topology& topology, int64_t model_bytes,
                            net::TrafficAccountant* traffic) {
  MigrationCost cost;
  for (size_t j = 0; j < plan.incoming.size(); ++j) {
    const int src = plan.incoming[j];
    const int dst = static_cast<int>(j);
    if (src == dst) continue;
    ++cost.num_moves;
    double seconds = 0.0;
    if (plan.via_server) {
      // Two WAN hops: src -> server, server -> dst.
      seconds = topology.TransferSeconds(src, net::kServerId, model_bytes) +
                topology.TransferSeconds(net::kServerId, dst, model_bytes);
      cost.bytes += 2 * model_bytes;
      if (traffic != nullptr) {
        traffic->Record(src, net::kServerId, model_bytes);
        traffic->Record(net::kServerId, dst, model_bytes);
      }
    } else {
      seconds = topology.TransferSeconds(src, dst, model_bytes);
      cost.bytes += model_bytes;
      if (traffic != nullptr) traffic->Record(src, dst, model_bytes);
    }
    // Transfers run in parallel; the round takes as long as the slowest.
    cost.seconds = std::max(cost.seconds, seconds);
  }
  return cost;
}

}  // namespace fedmigr::fl
