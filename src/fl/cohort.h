// Partial-participation cohort scheduling for the sharded simulator.
//
// `CohortSampler` draws the active cohort of each aggregation round. It is
// stateless: the round's cohort is a pure function of (seed, round index,
// fleet size, cohort size), so a resumed run recomputes the same cohorts
// without any snapshot bytes and the trainer's main RNG stream is never
// consumed — cohort scheduling cannot perturb the legacy full-participation
// streams. Sampling uses Floyd's algorithm, O(C log C) independent of the
// fleet size K, which matters at K = 10^6 with C = 10^2.
//
// `ShardedClients` is the lazy client-state container: a sharded pointer
// table whose shards are allocated only when a client in them first joins a
// cohort. Constructing a million-client trainer allocates the shard
// directory (K / 1024 pointers), not K `Client` objects.

#ifndef FEDMIGR_FL_COHORT_H_
#define FEDMIGR_FL_COHORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fl/client.h"

namespace fedmigr::fl {

class CohortSampler {
 public:
  // `cohort_size` is clamped to [1, num_clients] by the caller (Trainer
  // treats 0 as "cohorts disabled").
  CohortSampler(uint64_t seed, int num_clients, int cohort_size);

  // Distinct client ids of round `round`, sorted ascending. Deterministic in
  // (seed, round) only — repeated calls and calls from different threads
  // agree.
  std::vector<int> Sample(int64_t round) const;

  int cohort_size() const { return cohort_size_; }

 private:
  uint64_t seed_;
  int num_clients_;
  int cohort_size_;
};

class ShardedClients {
 public:
  explicit ShardedClients(int num_clients);

  int size() const { return num_clients_; }
  // Materialized clients currently held (drives the fl/materialized_models
  // gauge and the memory acceptance test).
  int num_materialized() const { return materialized_; }
  // Shards with at least one ever-materialized client (fl/resident_shards
  // gauge; shards are never returned to the lazy state).
  int num_resident_shards() const { return resident_shards_; }

  // The client at `i`, or nullptr while it is still lazy.
  Client* Get(int i) const;

  // Installs a freshly materialized client, allocating its shard on demand.
  Client* Put(int i, std::unique_ptr<Client> client);

  // Returns client `i` to the lazy state (snapshot restore of a snapshot
  // taken before the client first participated).
  void Evict(int i);

 private:
  static constexpr int kShardBits = 10;  // 1024 clients per shard

  struct Shard {
    std::unique_ptr<Client> slots[1 << kShardBits];
  };

  int num_clients_ = 0;
  int materialized_ = 0;
  int resident_shards_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_COHORT_H_
