// Trainer-level chaos accounting: the fl-side counterpart of the
// infrastructure schedule in net/fault.h (ChaosConfig).
//
// The net layer decides *when* a LAN is sealed, the server is down or a
// client has churned out; the fl layer owns the recovery semantics — the
// round-progress watchdog (quorum commit, carryover of survivor uploads),
// atomic two-phase migration capture/install with rollback, and fleet-churn
// membership (absences, departures, re-joins minting from the aggregate).
// ChaosCounters records every one of those decisions so benches and tests
// can reconcile them: migrations_planned must always equal
// migrations_completed + migration_fallbacks + migrations_rolled_back.
//
// Counters follow the FaultCounters/RobustCounters contract: every mutation
// flows through the Count* funnels below (enforced by fedmigr_lint's
// counter-mutation rule), which also mirror each increment into the obs
// registry as live `fl/chaos_*` metrics.

#ifndef FEDMIGR_FL_CHAOS_H_
#define FEDMIGR_FL_CHAOS_H_

#include <cstdint>

#include "util/serial.h"
#include "util/status.h"

namespace fedmigr::fl {

// Per-run chaos counters surfaced in RunResult / bench tables. All stay
// zero on a zero-chaos config with the watchdog disabled. Mutate only
// through the funnels below (fedmigr_lint: counter-mutation).
struct ChaosCounters {
  // Two-phase migration ledger. Every planned move is captured at its
  // source and ends in exactly one of the three buckets below.
  int64_t migrations_planned = 0;      // moves captured at the source
  int64_t migrations_completed = 0;    // installed via the direct C2C route
  int64_t migration_fallbacks = 0;     // installed via the server re-route
  int64_t migrations_rolled_back = 0;  // undelivered; source kept ownership
  // Round-progress watchdog.
  int64_t quorum_commits = 0;     // aggregation rounds that met quorum
  int64_t quorum_misses = 0;      // rounds skipped (aggregate not published)
  int64_t carryover_clients = 0;  // survivor uploads carried to a later round
  // Fleet churn.
  int64_t churn_absences = 0;    // sampled members skipped for one round
  int64_t churn_departures = 0;  // members whose private state was discarded
};

void CountMigrationPlanned(ChaosCounters* counters);
void CountMigrationCompleted(ChaosCounters* counters);
void CountMigrationFallback(ChaosCounters* counters);
void CountMigrationRolledBack(ChaosCounters* counters);
void CountQuorumCommit(ChaosCounters* counters);
void CountQuorumMiss(ChaosCounters* counters);
void CountCarryoverClient(ChaosCounters* counters);
void CountChurnAbsence(ChaosCounters* counters);
void CountChurnDeparture(ChaosCounters* counters);

void SaveChaosCounters(const ChaosCounters& counters, util::ByteWriter* writer);
util::Status LoadChaosCounters(util::ByteReader* reader,
                               ChaosCounters* counters);

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_CHAOS_H_
