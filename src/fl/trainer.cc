#include "fl/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "data/distribution.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fedmigr::fl {

namespace {

// Models a bit-flipped payload reaching a receiver: the real serialized
// frame is built, one payload bit is flipped, and the checksum verdict of
// DeserializeParams decides whether the payload is rejected. Returns true
// when the corruption was caught (the receiver keeps its current model).
bool CorruptedPayloadRejected(const nn::Sequential& model) {
  std::vector<uint8_t> bytes = nn::SerializeParams(model);
  bytes[bytes.size() / 2] ^= 0x08;
  nn::Sequential scratch = model;
  return !nn::DeserializeParams(bytes, &scratch).ok();
}

}  // namespace

Trainer::Trainer(TrainerConfig config, const data::Dataset* train,
                 data::Partition partition, const data::Dataset* test,
                 net::Topology topology,
                 std::vector<net::DeviceProfile> devices,
                 ModelFactory model_factory,
                 std::unique_ptr<MigrationPolicy> policy)
    : config_(std::move(config)),
      train_(train),
      test_(test),
      topology_(std::move(topology)),
      devices_(std::move(devices)),
      policy_(std::move(policy)),
      partition_(std::move(partition)),
      clients_(topology_.num_clients()),
      budget_(config_.budget),
      faults_(config_.fault),
      rng_(config_.seed),
      pool_(std::max(1, config_.num_threads)) {
  FEDMIGR_CHECK(train_ != nullptr);
  FEDMIGR_CHECK(test_ != nullptr);
  FEDMIGR_CHECK(policy_ != nullptr);
  const int k = topology_.num_clients();
  FEDMIGR_CHECK_EQ(static_cast<int>(partition_.size()), k);
  FEDMIGR_CHECK_EQ(static_cast<int>(devices_.size()), k);
  FEDMIGR_CHECK_GE(config_.agg_period, 1);
  FEDMIGR_CHECK_GE(config_.tau, 1);

  // Shared initialization: one global model, published once into the CoW
  // store (the paper's w_k(0) = w_g(0) — every client starts as an alias).
  util::Rng model_rng = rng_.Split();
  nn::Sequential global = model_factory(&model_rng);
  model_bytes_ = global.ByteSize();
  model_params_ = global.NumParams();
  server_ = std::make_unique<Server>(global, test_);
  store_.Publish(global);
  model_lineage_.assign(static_cast<size_t>(k), 0);

  FEDMIGR_CHECK_GT(config_.client_fraction, 0.0);
  FEDMIGR_CHECK_LE(config_.client_fraction, 1.0);
  FEDMIGR_CHECK_GE(config_.dropout_prob, 0.0);
  FEDMIGR_CHECK_LT(config_.dropout_prob, 1.0);
  FEDMIGR_CHECK_GE(config_.cohort_size, 0);
  FEDMIGR_CHECK_LE(config_.cohort_size, k);
  FEDMIGR_CHECK_GE(config_.quorum_fraction, 0.0);
  FEDMIGR_CHECK_LE(config_.quorum_fraction, 1.0);
  // Fleet churn is a cohort-runtime feature: membership is applied when the
  // round's cohort is built, and departures rely on the lazy/evict slot
  // machinery of the sharded store.
  if (config_.fault.chaos.churn_rate > 0.0) {
    FEDMIGR_CHECK_GT(config_.cohort_size, 0)
        << "fleet churn requires cohort scheduling (cohort_size > 0)";
  }

  if (config_.cohort_size > 0) {
    // Sharded mode: clients stay lazy until their first cohort; provenance
    // slots hold empty vectors until then. Cohorts are the participation
    // sample, so the α-knob must stay at its default.
    FEDMIGR_CHECK_EQ(config_.client_fraction, 1.0);
    cohort_sampler_ = std::make_unique<CohortSampler>(config_.seed, k,
                                                      config_.cohort_size);
    model_distributions_.assign(static_cast<size_t>(k),
                                std::vector<double>());
    participating_.assign(static_cast<size_t>(k), false);
    available_.assign(static_cast<size_t>(k), false);
    eligible_.assign(static_cast<size_t>(k), false);
  } else {
    identity_.resize(static_cast<size_t>(k));
    std::iota(identity_.begin(), identity_.end(), 0);
    model_distributions_.assign(
        static_cast<size_t>(k),
        std::vector<double>(static_cast<size_t>(train_->num_classes()), 0.0));
    for (int i = 0; i < k; ++i) {
      Client& client = ClientAt(i);
      client.SetModel(store_.aggregate());
      client.SetProximalReference(store_.aggregate_flat());
      model_lineage_[static_cast<size_t>(i)] = store_.aggregate_lineage();
    }
    participating_.assign(static_cast<size_t>(k), true);
    available_.assign(static_cast<size_t>(k), true);
    eligible_.assign(static_cast<size_t>(k), true);
  }
  model_samples_.assign(static_cast<size_t>(k), 0.0);

  // Robustness layer. The Mean default installs nothing so the server runs
  // the literal legacy aggregation path; a disabled ReputationTracker is a
  // no-op whose Eligible() is always true.
  if (config_.robust.aggregator != AggregatorKind::kMean) {
    aggregator_ = MakeAggregator(config_.robust.aggregator,
                                 config_.robust.aggregator_options);
    server_->SetAggregator(aggregator_.get());
  }
  reputation_ = ReputationTracker(config_.robust.reputation, k);
}

Client& Trainer::ClientAt(int i) {
  Client* existing = clients_.Get(i);
  if (existing != nullptr) return *existing;
  auto& slice = partition_[static_cast<size_t>(i)];
  Client* created = clients_.Put(
      i, std::make_unique<Client>(
             i, train_, std::move(slice), config_.learning_rate,
             config_.momentum,
             config_.seed * 1000003ULL + static_cast<uint64_t>(i)));
  slice = std::vector<int>();  // moved-from slot, leave it truly empty
  auto& dist = model_distributions_[static_cast<size_t>(i)];
  if (dist.empty()) {
    dist.assign(static_cast<size_t>(train_->num_classes()), 0.0);
  }
  if (obs::Telemetry::enabled()) {
    static obs::Gauge* materialized =
        obs::Registry::Default().GetGauge("fl/materialized_models");
    materialized->Set(static_cast<double>(clients_.num_materialized()));
  }
  return *created;
}

Client& Trainer::MaterializedClient(int i) const {
  Client* client = clients_.Get(i);
  FEDMIGR_CHECK(client != nullptr) << "client " << i << " is not materialized";
  return *client;
}

void Trainer::ResampleParticipants() {
  const int k = num_clients();
  if (config_.client_fraction >= 1.0) {
    std::fill(participating_.begin(), participating_.end(), true);
    return;
  }
  const int count = std::max(
      1, static_cast<int>(config_.client_fraction * k + 0.5));
  std::fill(participating_.begin(), participating_.end(), false);
  for (int idx : rng_.SampleWithoutReplacement(k, count)) {
    participating_[static_cast<size_t>(idx)] = true;
  }
}

void Trainer::BeginRound(int64_t round) {
  if (round == cohort_round_) return;
  // The epoch this round boundary executes in (BeginRound only runs on
  // boundary epochs) — the stamp for everything journaled below.
  const int epoch = static_cast<int>(round) * config_.agg_period + 1;
  // Retire the previous cohort. After a pre-chaos snapshot restore the list
  // is gone — recompute it (the sampler is stateless, so this is the same
  // list); chaos-era snapshots (v4) restore cohort_ directly.
  std::vector<int> previous = std::move(cohort_);
  if (previous.empty() && round > 0) {
    previous = cohort_sampler_->Sample(round - 1);
  }
  const bool churning = config_.fault.chaos.churn_rate > 0.0;
  for (int i : previous) {
    participating_[static_cast<size_t>(i)] = false;
    available_[static_cast<size_t>(i)] = false;
    eligible_[static_cast<size_t>(i)] = false;
    // Departure: the member left the fleet between rounds. Its private
    // replica, optimizer and RNG are gone — the slot returns to the lazy
    // state (its data slice is reclaimed), so a later re-join mints a fresh
    // device from the then-current aggregate via the CoW store.
    if (churning && faults_.ChurnedOut(i, round)) {
      Client* materialized = clients_.Get(i);
      if (materialized != nullptr) {
        partition_[static_cast<size_t>(i)] = materialized->indices();
        clients_.Evict(i);
      }
      auto& dist = model_distributions_[static_cast<size_t>(i)];
      std::fill(dist.begin(), dist.end(), 0.0);
      model_samples_[static_cast<size_t>(i)] = 0.0;
      model_lineage_[static_cast<size_t>(i)] = 0;
      CountChurnDeparture(&chaos_counters_);
      if (journal_ != nullptr) journal_->ClientDeparted(epoch, i);
    }
  }
  // Effective roster: the (seed, round)-pure sample minus churned-out
  // members, plus the survivors of an uncommitted round (quorum miss). The
  // sampler itself never sees the churn — determinism of Sample(round) is
  // preserved under any active-set history.
  const std::vector<int> sampled = cohort_sampler_->Sample(round);
  cohort_.clear();
  cohort_.reserve(sampled.size() + carryover_.size());
  for (int i : sampled) {
    if (churning && faults_.ChurnedOut(i, round)) {
      CountChurnAbsence(&chaos_counters_);
      if (journal_ != nullptr) journal_->ChurnAbsence(epoch, i);
      continue;
    }
    cohort_.push_back(i);
  }
  std::vector<int> carried;
  if (!carryover_.empty()) {
    const size_t sampled_n = cohort_.size();
    for (int i : carryover_) {
      // A carried member that churned out was already retired (and counted)
      // in the departure loop above — its pending update left with it.
      if (churning && faults_.ChurnedOut(i, round)) continue;
      if (std::binary_search(cohort_.begin(),
                             cohort_.begin() + static_cast<long>(sampled_n),
                             i)) {
        continue;
      }
      carried.push_back(i);
      cohort_.push_back(i);
      CountCarryoverClient(&chaos_counters_);
      if (journal_ != nullptr) journal_->ClientCarriedOver(epoch, i);
    }
    std::inplace_merge(cohort_.begin(),
                       cohort_.begin() + static_cast<long>(sampled_n),
                       cohort_.end());
  }
  carryover_.clear();
  cohort_round_ = round;
  if (journal_ != nullptr) {
    journal_->CohortSampled(epoch, static_cast<int>(cohort_.size()),
                            static_cast<int>(carried.size()));
  }

  // Cohort-mode Model Distribution: the aggregate travels only to members
  // that do not already hold the current block (a re-sampled client that
  // kept its alias downloads nothing). Deliveries are charged like the
  // legacy distribution loop; a lost download leaves the member stale (or
  // without a model at all on its first round — it then sits the round out).
  double download_seconds = 0.0;
  for (int i : cohort_) {
    participating_[static_cast<size_t>(i)] = true;
    Client& client = ClientAt(i);
    if (client.model_ref() == store_.aggregate()) continue;
    // Carryover members keep their pending local update instead of
    // re-syncing: their uncommitted error feedback rides into this round.
    if (!carried.empty() &&
        std::binary_search(carried.begin(), carried.end(), i)) {
      continue;
    }
    const net::TransferResult res = faults_.Transfer(
        net::kServerId, i, model_bytes_, topology_, &traffic_);
    download_seconds = config_.wan_shared
                           ? download_seconds + res.seconds
                           : std::max(download_seconds, res.seconds);
    budget_.ConsumeBandwidth(static_cast<double>(res.bytes));
    if (!res.status.ok()) continue;
    if (res.corrupted && CorruptedPayloadRejected(server_->global_model())) {
      faults_.CountCorruptRejected();
      continue;
    }
    client.SetModel(store_.aggregate());
    client.SetProximalReference(store_.aggregate_flat());
    auto& dist = model_distributions_[static_cast<size_t>(i)];
    std::fill(dist.begin(), dist.end(), 0.0);
    model_samples_[static_cast<size_t>(i)] = 0.0;
    model_lineage_[static_cast<size_t>(i)] = store_.aggregate_lineage();
    if (journal_ != nullptr) {
      journal_->ModelDistributed(epoch, i, store_.aggregate_lineage());
    }
  }
  budget_.ConsumeTime(download_seconds);
}

void Trainer::RollAvailability() {
  if (cohort_mode()) {
    // Only cohort members can be available; everyone else keeps the false
    // bits BeginRound left behind.
    for (int i : cohort_) {
      const size_t s = static_cast<size_t>(i);
      available_[s] = participating_[s] &&
                      (config_.dropout_prob == 0.0 ||
                       !rng_.Bernoulli(config_.dropout_prob)) &&
                      !faults_.IsCrashed(i);
      eligible_[s] = available_[s] && reputation_.Eligible(i);
    }
    return;
  }
  for (size_t i = 0; i < available_.size(); ++i) {
    available_[i] = participating_[i] &&
                    (config_.dropout_prob == 0.0 ||
                     !rng_.Bernoulli(config_.dropout_prob)) &&
                    !faults_.IsCrashed(static_cast<int>(i));
    // Quarantined clients are carved out of the migration action space the
    // same way crashed ones are (the PR 1 crash-mask plumbing): policies
    // only ever see `eligible_`.
    eligible_[i] =
        available_[i] && reputation_.Eligible(static_cast<int>(i));
  }
}

void Trainer::ApplyDp(nn::Sequential* model) {
  if (!config_.dp.enabled()) return;
  dp::PrivatizeModel(config_.dp, model, &rng_);
}

double Trainer::LocalUpdatePhase(int epoch, double* phase_seconds) {
  FEDMIGR_TRACE_SCOPE("fl/local_update");
  const std::vector<int>& active = active_clients();
  const int n = static_cast<int>(active.size());
  LocalUpdateOptions options;
  options.epochs = config_.tau;
  options.batch_size = config_.batch_size;
  options.fedprox_mu = config_.fedprox_mu;

  std::vector<LocalUpdateResult> results(static_cast<size_t>(n));
  pool_.ParallelFor(n, [&](int t) {
    const int i = active[static_cast<size_t>(t)];
    if (!available_[static_cast<size_t>(i)]) return;
    Client& client = MaterializedClient(i);
    if (!client.has_model()) return;  // first-round sync download lost
    results[static_cast<size_t>(t)] = client.LocalUpdate(options);
  });

  double loss_weighted = 0.0;
  double total_samples = 0.0;
  double slowest = 0.0;
  for (int t = 0; t < n; ++t) {
    const int i = active[static_cast<size_t>(t)];
    if (!available_[static_cast<size_t>(i)]) continue;
    Client& client = MaterializedClient(i);
    if (!client.has_model()) continue;
    const auto& res = results[static_cast<size_t>(t)];
    const double samples = static_cast<double>(client.num_samples());
    loss_weighted += res.mean_loss * samples;
    total_samples += samples;
    // Journaled from this serial reduction (never the ParallelFor above),
    // so the event order is independent of the pool width.
    if (journal_ != nullptr) {
      journal_->ClientParticipated(epoch, i, topology_.lan_of(i),
                                   model_lineage_[static_cast<size_t>(i)],
                                   res.mean_loss);
    }
    budget_.ConsumeCompute(static_cast<double>(res.samples_processed));
    slowest = std::max(
        slowest, net::ComputeSeconds(devices_[static_cast<size_t>(i)],
                                     res.samples_processed, model_params_) *
                     faults_.SlowdownFactor(i));
    // The resident model absorbs this client's distribution. Clients with
    // no local data (possible under extreme partitions) change nothing.
    if (samples > 0.0) {
      auto& dist = model_distributions_[static_cast<size_t>(i)];
      dist = data::MixDistributions(dist, model_samples_[static_cast<size_t>(i)],
                                    client.label_distribution(), samples);
      model_samples_[static_cast<size_t>(i)] += samples;
    }
  }
  // Byzantine tampering happens after the honest local update, in place, so
  // a poisoned replica also contaminates any C2C migration of it — exactly
  // the lineage-poisoning exposure fl/robust defends against. Applied
  // serially (outside the ParallelFor) from the injector's dedicated attack
  // stream: deterministic, thread-safe, invisible to the trainer RNG.
  if (config_.fault.attacks_enabled()) {
    for (int i : active) {
      if (!available_[static_cast<size_t>(i)] || !faults_.IsAttacker(i)) {
        continue;
      }
      Client& client = MaterializedClient(i);
      if (!client.has_model()) continue;
      ApplyAttack(config_.fault.attack_mode, config_.fault.attack_scale,
                  faults_.attack_rng(), &client.mutable_model());
      CountAttackedUpdate(&robust_counters_);
    }
  }

  budget_.ConsumeTime(slowest);
  *phase_seconds = slowest;
  return total_samples > 0.0 ? loss_weighted / total_samples : 0.0;
}

Evaluation Trainer::AggregationPhase(int epoch, bool evaluate) {
  FEDMIGR_TRACE_SCOPE("fl/aggregate");
  const int k = num_clients();
  const bool faulty = faults_.enabled();
  const double upload_deadline = config_.fault.upload_deadline_s;
  // Upload: every healthy selected client sends its model over the WAN
  // through the fault-aware path (retries/backoff are charged to traffic
  // and clock). A shared WAN serializes the uploads; independent paths
  // overlap them. Only uploads that survive the link, arrive before the
  // straggler deadline and pass the checksum enter the average; the round
  // is reweighted over whatever arrived. Under cohort scheduling only the
  // C active members upload, and the sample weights below are theirs alone:
  // FedAvg partial participation, where the round average is the
  // sample-weighted mean over the cohort (the 1/C participation factor
  // cancels under the weight normalization).
  const std::vector<int>& active = active_clients();
  double upload_seconds = 0.0;
  std::vector<bool> arrived(static_cast<size_t>(k), false);
  for (int i : active) {
    if (!participating_[static_cast<size_t>(i)]) continue;
    if (faulty && faults_.IsCrashed(i)) continue;
    if (!reputation_.Eligible(i)) {
      // Quarantined: the server refuses the upload outright — no transfer,
      // no traffic, no seat in the aggregate.
      CountQuarantineExcluded(&robust_counters_);
      if (journal_ != nullptr) {
        journal_->ClientUploaded(epoch, i,
                                 obs::UploadStatus::kExcludedQuarantined,
                                 model_lineage_[static_cast<size_t>(i)]);
      }
      continue;
    }
    Client& client = MaterializedClient(i);
    if (!client.has_model()) continue;
    if (config_.dp.enabled()) ApplyDp(&client.mutable_model());
    const net::TransferResult res = faults_.Transfer(
        i, net::kServerId, model_bytes_, topology_, &traffic_);
    const double arrival =
        config_.wan_shared ? upload_seconds + res.seconds : res.seconds;
    upload_seconds = config_.wan_shared
                         ? upload_seconds + res.seconds
                         : std::max(upload_seconds, res.seconds);
    budget_.ConsumeBandwidth(static_cast<double>(res.bytes));
    if (!res.status.ok()) continue;  // upload lost after retries
    if (faulty && arrival > upload_deadline) {
      // The server stopped waiting; the bytes are spent anyway.
      faults_.CountDroppedStraggler();
      if (journal_ != nullptr) {
        journal_->ClientUploaded(epoch, i,
                                 obs::UploadStatus::kDroppedStraggler,
                                 model_lineage_[static_cast<size_t>(i)]);
      }
      continue;
    }
    if (res.corrupted && CorruptedPayloadRejected(client.model())) {
      faults_.CountCorruptRejected();
      if (journal_ != nullptr) {
        journal_->ClientUploaded(epoch, i, obs::UploadStatus::kDroppedCorrupt,
                                 model_lineage_[static_cast<size_t>(i)]);
      }
      continue;
    }
    arrived[static_cast<size_t>(i)] = true;
    if (journal_ != nullptr) {
      journal_->ClientUploaded(epoch, i, obs::UploadStatus::kArrived,
                               model_lineage_[static_cast<size_t>(i)]);
    }
  }
  if (faulty && upload_seconds > upload_deadline) {
    upload_seconds = upload_deadline;
  }

  // Round-progress watchdog: the round commits only when a quorum of the
  // expected uploads arrived before the deadline. On a miss nothing is
  // screened, aggregated or published — the last published aggregate stands
  // for the whole fleet — and in cohort mode the survivors are carried into
  // the next round so their error feedback is not lost.
  if (config_.quorum_fraction > 0.0) {
    int expected = 0;
    int arrived_count = 0;
    for (int i : active) {
      const size_t s = static_cast<size_t>(i);
      if (participating_[s] && reputation_.Eligible(i)) ++expected;
      if (arrived[s]) ++arrived_count;
    }
    const bool quorum_met =
        expected == 0 ||
        static_cast<double>(arrived_count) + 1e-12 >=
            config_.quorum_fraction * static_cast<double>(expected);
    // The commit threshold with the same tolerance the verdict uses.
    const int required = static_cast<int>(
        std::ceil(config_.quorum_fraction * static_cast<double>(expected) -
                  1e-12));
    if (!quorum_met) {
      CountQuorumMiss(&chaos_counters_);
      if (journal_ != nullptr) {
        journal_->QuorumMiss(epoch, arrived_count, required);
      }
      if (cohort_mode()) {
        carryover_.clear();
        for (int i : active) {
          if (arrived[static_cast<size_t>(i)]) carryover_.push_back(i);
        }
      }
      budget_.ConsumeTime(upload_seconds);
      Evaluation eval;
      if (evaluate) {
        FEDMIGR_TRACE_SCOPE("fl/evaluate");
        eval = server_->EvaluateGlobal(config_.batch_size * 2);
      }
      return eval;
    }
    CountQuorumCommit(&chaos_counters_);
    if (journal_ != nullptr) {
      journal_->QuorumCommit(epoch, arrived_count, required);
    }
  }

  std::vector<const nn::Sequential*> models;
  std::vector<double> weights;
  std::vector<int> uploaders;
  models.reserve(active.size());
  for (int i : active) {
    if (!arrived[static_cast<size_t>(i)]) continue;
    const Client& client = MaterializedClient(i);
    models.push_back(&client.model());
    weights.push_back(static_cast<double>(client.num_samples()));
    uploaders.push_back(i);
  }
  // Ingest screening against the last aggregate: the non-finite gate always
  // runs (one NaN would brick the mean permanently); clipping and the
  // norm/cosine outlier tests follow config_.robust. Verdicts feed the
  // reputation machine; survivors are aggregated (through the installed
  // robust rule, if any). If every upload was lost or rejected this round,
  // the previous global model stands.
  if (!models.empty()) {
    std::vector<const nn::Sequential*> kept_models;
    std::vector<double> kept_weights;
    std::vector<std::unique_ptr<nn::Sequential>> clipped;
    const std::vector<ScreeningVerdict> verdicts = ScreenUpdates(
        config_.robust.screening, models, weights, server_->global_model(),
        &kept_models, &kept_weights, &clipped, &robust_counters_);
    for (size_t u = 0; u < uploaders.size(); ++u) {
      if (verdicts[u].flagged()) {
        reputation_.ReportFlagged(uploaders[u], &robust_counters_);
      } else {
        reputation_.ReportClean(uploaders[u]);
      }
      if (journal_ != nullptr) {
        journal_->ScreenVerdict(epoch, uploaders[u], verdicts[u].flagged());
      }
    }
    if (!kept_models.empty()) server_->Aggregate(kept_models, kept_weights);
  }
  reputation_.AdvanceRound(&robust_counters_);
  // Drain the reputation machine's transition log every round (not just
  // when journaling) so it never accumulates across rounds.
  for (const ReputationTracker::Transition& t :
       reputation_.DrainTransitions()) {
    if (journal_ != nullptr) {
      journal_->QuarantineTransition(epoch, t.client,
                                     static_cast<int>(t.from),
                                     static_cast<int>(t.to));
    }
  }
  Evaluation eval;
  if (evaluate) {
    FEDMIGR_TRACE_SCOPE("fl/evaluate");
    eval = server_->EvaluateGlobal(config_.batch_size * 2);
  }

  // Publish the (possibly refreshed) aggregate into the CoW store: one deep
  // copy + one flatten per aggregation, shared by every alias.
  store_.Publish(server_->global_model());
  if (journal_ != nullptr) {
    journal_->ModelPublished(epoch, store_.aggregate_lineage(),
                             store_.parent_lineage());
  }

  if (cohort_mode()) {
    // Distribution is deferred to the next round's BeginRound sync — only
    // the clients that will actually train download the new aggregate.
    budget_.ConsumeTime(upload_seconds);
    return eval;
  }

  // Distribution: global model back to every reachable client; a client
  // whose download is lost keeps training on its stale model. Each
  // successful delivery installs an alias of the published block — O(1)
  // per client instead of a deep copy.
  double download_seconds = 0.0;
  std::vector<bool> refreshed(static_cast<size_t>(k), false);
  for (int i = 0; i < k; ++i) {
    if (faulty && faults_.IsCrashed(i)) continue;
    const net::TransferResult res = faults_.Transfer(
        net::kServerId, i, model_bytes_, topology_, &traffic_);
    download_seconds = config_.wan_shared
                           ? download_seconds + res.seconds
                           : std::max(download_seconds, res.seconds);
    budget_.ConsumeBandwidth(static_cast<double>(res.bytes));
    if (!res.status.ok()) continue;
    if (res.corrupted && CorruptedPayloadRejected(server_->global_model())) {
      faults_.CountCorruptRejected();
      continue;
    }
    Client& client = MaterializedClient(i);
    client.SetModel(store_.aggregate());
    client.SetProximalReference(store_.aggregate_flat());
    refreshed[static_cast<size_t>(i)] = true;
    model_lineage_[static_cast<size_t>(i)] = store_.aggregate_lineage();
    if (journal_ != nullptr) {
      journal_->ModelDistributed(epoch, i, store_.aggregate_lineage());
    }
  }
  budget_.ConsumeTime(upload_seconds + download_seconds);

  // Fresh replicas reset their provenance; clients that missed the
  // download keep their stale model and its accumulated provenance.
  for (int i = 0; i < k; ++i) {
    if (!refreshed[static_cast<size_t>(i)]) continue;
    std::fill(model_distributions_[static_cast<size_t>(i)].begin(),
              model_distributions_[static_cast<size_t>(i)].end(), 0.0);
    model_samples_[static_cast<size_t>(i)] = 0.0;
  }
  return eval;
}

int Trainer::ApplyMigrationMoves(int epoch, const MigrationPlan& plan,
                                 const MigrationExecution& exec,
                                 const std::vector<int>* node_ids) {
  // Two-phase capture/install so every move is atomic under faults. Phase 1
  // captures EVERY planned source's payload before installing anything:
  // plans can chain (a <- b while b <- c), so installs must read pre-move
  // state. The capture is a CoW share — the source block is never copied,
  // and demoting the source to a non-owning alias guarantees its later
  // writes can't leak into the receiver. Phase 2 installs the delivered
  // payloads; an undelivered move (link gave up, sealed partition boundary,
  // corrupt payload) is rolled back — the captured ref is dropped and the
  // source re-promotes ownership of its unchanged block. Either the
  // receiver installs the full model or the source retains it: a lineage
  // can never end up orphaned or torn.
  struct Move {
    int src = 0;
    int dst = 0;
    bool delivered = false;
    bool fallback = false;
    ModelRef model;
    std::vector<double> dist;
    double samples = 0.0;
    int64_t lineage = 0;  // captured pre-move, like the payload itself
  };
  std::vector<Move> moves;
  const int n = static_cast<int>(plan.incoming.size());
  for (int j = 0; j < n; ++j) {
    const int src_local = plan.incoming[static_cast<size_t>(j)];
    if (src_local == j) continue;
    const int src =
        node_ids != nullptr ? (*node_ids)[static_cast<size_t>(src_local)]
                            : src_local;
    Client& source = MaterializedClient(src);
    if (!source.has_model()) continue;
    Move move;
    move.src = src;
    move.dst = node_ids != nullptr ? (*node_ids)[static_cast<size_t>(j)] : j;
    move.delivered = exec.delivered[static_cast<size_t>(j)];
    move.fallback = move.delivered &&
                    static_cast<size_t>(j) < exec.via_fallback.size() &&
                    exec.via_fallback[static_cast<size_t>(j)];
    move.model = source.share_model();
    move.dist = model_distributions_[static_cast<size_t>(src)];
    move.samples = model_samples_[static_cast<size_t>(src)];
    move.lineage = model_lineage_[static_cast<size_t>(src)];
    moves.push_back(std::move(move));
    CountMigrationPlanned(&chaos_counters_);
  }
  int installed = 0;
  for (Move& move : moves) {
    if (move.delivered) {
      MaterializedClient(move.dst).SetModel(std::move(move.model));
      model_distributions_[static_cast<size_t>(move.dst)] =
          std::move(move.dist);
      model_samples_[static_cast<size_t>(move.dst)] = move.samples;
      model_lineage_[static_cast<size_t>(move.dst)] = move.lineage;
      ++installed;
      if (move.fallback) {
        CountMigrationFallback(&chaos_counters_);
      } else {
        CountMigrationCompleted(&chaos_counters_);
      }
      if (journal_ != nullptr) {
        journal_->MigrationHop(epoch, move.src, move.dst,
                               move.fallback
                                   ? obs::MigrationRoute::kServerFallback
                                   : obs::MigrationRoute::kC2C,
                               move.lineage);
      }
    } else {
      // Roll back: drop the captured ref, then re-promote the source (a
      // no-op if its block is still aliased elsewhere — exactly the
      // pre-capture ownership state either way).
      move.model = nullptr;
      MaterializedClient(move.src).ReclaimModel();
      CountMigrationRolledBack(&chaos_counters_);
      if (journal_ != nullptr) {
        journal_->MigrationHop(epoch, move.src, move.dst,
                               obs::MigrationRoute::kRolledBack,
                               move.lineage);
      }
    }
  }
  // The atomicity invariant: every planned source either shipped its block
  // or still holds it — no orphaned lineages.
  for (const Move& move : moves) {
    FEDMIGR_CHECK(MaterializedClient(move.src).has_model())
        << "orphaned migration lineage at client " << move.src;
  }
  return installed;
}

int Trainer::MigrationPhase(int epoch, double loss) {
  if (cohort_mode()) return CohortMigrationPhase(epoch, loss);
  FEDMIGR_TRACE_SCOPE("fl/migrate");
  const int k = num_clients();
  std::vector<std::vector<double>> client_dists;
  client_dists.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    client_dists.push_back(MaterializedClient(i).label_distribution());
  }

  PolicyContext ctx;
  ctx.epoch = epoch;
  ctx.topology = &topology_;
  ctx.model_bytes = model_bytes_;
  ctx.client_distributions = &client_dists;
  ctx.model_distributions = &model_distributions_;
  ctx.global_loss = loss;
  ctx.budget = &budget_;
  ctx.rng = &rng_;
  // Policies plan over `eligible_`: availability minus quarantine, so a
  // quarantined client is out of the DRL/FLMM action space entirely.
  ctx.available = &eligible_;

  MigrationPlan plan = policy_->Plan(ctx);
  FEDMIGR_CHECK_EQ(static_cast<int>(plan.incoming.size()), k);
  // Ineligible clients (unavailable or quarantined) neither send nor
  // receive this epoch — a quarantined replica must not migrate, or its
  // poison would outlive the quarantine.
  for (int j = 0; j < k; ++j) {
    const int src = plan.incoming[static_cast<size_t>(j)];
    if (src != j && (!eligible_[static_cast<size_t>(j)] ||
                     !eligible_[static_cast<size_t>(src)])) {
      plan.incoming[static_cast<size_t>(j)] = j;
    }
  }
  if (plan.IsIdentity()) return 0;

  // DP noise is added before a model leaves its client.
  if (config_.dp.enabled()) {
    for (size_t j = 0; j < plan.incoming.size(); ++j) {
      const int src = plan.incoming[j];
      if (src != static_cast<int>(j)) {
        ApplyDp(&MaterializedClient(src).mutable_model());
      }
    }
  }

  MigrationExecution exec =
      ExecuteWithFaults(plan, topology_, model_bytes_, &traffic_, &faults_);
  budget_.ConsumeBandwidth(static_cast<double>(exec.cost.bytes));
  budget_.ConsumeTime(exec.cost.seconds);

  // Corrupted deliveries hit the receiver's checksum: the payload is
  // rejected and the destination keeps the model it already has.
  for (size_t j = 0; j < exec.delivered.size(); ++j) {
    if (!exec.delivered[j] || !exec.corrupted[j]) continue;
    const int src = plan.incoming[j];
    if (CorruptedPayloadRejected(MaterializedClient(src).model())) {
      faults_.CountCorruptRejected();
      exec.delivered[j] = false;
    }
  }

  // Move the replicas (and their provenance) according to the plan; a
  // failed move degrades gracefully — the destination keeps its model.
  return ApplyMigrationMoves(epoch, plan, exec, /*node_ids=*/nullptr);
}

int Trainer::CohortMigrationPhase(int epoch, double loss) {
  FEDMIGR_TRACE_SCOPE("fl/migrate");
  const int n = static_cast<int>(cohort_.size());
  if (n == 0) return 0;
  // Cohort-local sub-problem: policies (including the DRL planner, whose
  // candidate features are fixed-dimension) size everything from the
  // context, so a C-client view drives them untouched. The sub-topology
  // inherits LAN membership and base bandwidths; per-link multiplier
  // customizations only affect the executed cost below, which runs against
  // the real topology under global ids.
  std::vector<std::vector<double>> client_dists;
  std::vector<std::vector<double>> model_dists;
  std::vector<bool> local_eligible(static_cast<size_t>(n));
  client_dists.reserve(static_cast<size_t>(n));
  model_dists.reserve(static_cast<size_t>(n));
  net::TopologyConfig sub_config;
  const net::TopologyConfig& full = topology_.config();
  sub_config.intra_lan_mbps = full.intra_lan_mbps;
  sub_config.cross_lan_mbps = full.cross_lan_mbps;
  sub_config.wan_mbps = full.wan_mbps;
  sub_config.link_latency_s = full.link_latency_s;
  sub_config.lan_of.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int i = cohort_[static_cast<size_t>(t)];
    client_dists.push_back(MaterializedClient(i).label_distribution());
    model_dists.push_back(model_distributions_[static_cast<size_t>(i)]);
    local_eligible[static_cast<size_t>(t)] =
        eligible_[static_cast<size_t>(i)];
    sub_config.lan_of.push_back(topology_.lan_of(i));
  }
  net::Topology sub_topology(std::move(sub_config));

  PolicyContext ctx;
  ctx.epoch = epoch;
  ctx.topology = &sub_topology;
  ctx.model_bytes = model_bytes_;
  ctx.client_distributions = &client_dists;
  ctx.model_distributions = &model_dists;
  ctx.global_loss = loss;
  ctx.budget = &budget_;
  ctx.rng = &rng_;
  ctx.available = &local_eligible;

  MigrationPlan plan = policy_->Plan(ctx);
  FEDMIGR_CHECK_EQ(static_cast<int>(plan.incoming.size()), n);
  for (int j = 0; j < n; ++j) {
    const int src = plan.incoming[static_cast<size_t>(j)];
    if (src != j && (!local_eligible[static_cast<size_t>(j)] ||
                     !local_eligible[static_cast<size_t>(src)])) {
      plan.incoming[static_cast<size_t>(j)] = j;
    }
  }
  if (plan.IsIdentity()) return 0;

  if (config_.dp.enabled()) {
    for (size_t j = 0; j < plan.incoming.size(); ++j) {
      const int src = plan.incoming[j];
      if (src != static_cast<int>(j)) {
        ApplyDp(&MaterializedClient(cohort_[static_cast<size_t>(src)])
                     .mutable_model());
      }
    }
  }

  // Execution happens on the real fleet: `cohort_` maps the plan's local
  // index space back to global ids so traffic and fault accounting land on
  // the actual links.
  MigrationExecution exec = ExecuteWithFaults(
      plan, topology_, model_bytes_, &traffic_, &faults_, &cohort_);
  budget_.ConsumeBandwidth(static_cast<double>(exec.cost.bytes));
  budget_.ConsumeTime(exec.cost.seconds);

  for (size_t j = 0; j < exec.delivered.size(); ++j) {
    if (!exec.delivered[j] || !exec.corrupted[j]) continue;
    const int src = cohort_[static_cast<size_t>(plan.incoming[j])];
    if (CorruptedPayloadRejected(MaterializedClient(src).model())) {
      faults_.CountCorruptRejected();
      exec.delivered[j] = false;
    }
  }

  return ApplyMigrationMoves(epoch, plan, exec, &cohort_);
}

Evaluation Trainer::VirtualEvaluation() {
  FEDMIGR_TRACE_SCOPE("fl/evaluate");
  std::vector<const nn::Sequential*> models;
  std::vector<double> weights;
  for (int i : active_clients()) {
    // Quarantined replicas and non-finite models are measurement poison:
    // one NaN coordinate would turn the whole virtual aggregate (and the
    // reported accuracy) into NaN. Both gates are no-ops on a clean run.
    if (!reputation_.Eligible(i)) continue;
    const Client& client = MaterializedClient(i);
    if (!client.has_model()) continue;
    if (!ParamsFinite(client.model())) continue;
    models.push_back(&client.model());
    weights.push_back(static_cast<double>(client.num_samples()));
  }
  if (models.empty()) return server_->EvaluateGlobal(config_.batch_size * 2);
  nn::Sequential aggregate = server_->global_model();
  Server::WeightedAverage(models, weights, &aggregate);
  return server_->Evaluate(aggregate, config_.batch_size * 2);
}

RunResult Trainer::Run() {
  result_.scheme = config_.scheme_name;
  result_.interrupted = false;

  // Checked live at each use below (not latched): the epoch hook may
  // install or detach the journal between epochs — the overhead harness in
  // bench_telemetry toggles it per epoch, exactly like obs::Telemetry.
  if (journal_ != nullptr) {
    FEDMIGR_CHECK(journal_->attached())
        << "journal must be Attach()ed before Run()";
    if (!journal_->header_written()) {
      obs::JournalHeader header;
      header.run_seed = config_.seed;
      header.num_clients = num_clients();
      header.cohort_size = config_.cohort_size;
      header.scheme = config_.scheme_name;
      journal_->BeginRun(header);
    }
  }

  for (int epoch = progress_.next_epoch;
       !progress_.done && epoch <= config_.max_epochs; ++epoch) {
    FEDMIGR_TRACE_SCOPE("fl/epoch");
    EpochRecord record;
    record.epoch = epoch;

    // Epoch tick for the injector: crash/straggler rolls happen on its own
    // RNG stream, and the chaos schedule (partition/outage windows) advances
    // here — before BeginRound, so a partition can refuse the round's
    // aggregate downloads.
    faults_.BeginEpoch(num_clients());

    // Chaos window edges: the injector's schedule is pure in the epoch, so
    // an edge is simply this epoch's sealed/down state differing from the
    // previous epoch's — the same comparison on a fresh and a resumed run.
    if (journal_ != nullptr && (config_.fault.chaos.has_partitions() ||
                                config_.fault.chaos.has_outages())) {
      for (int lan = 0; lan < topology_.num_lans(); ++lan) {
        const bool sealed = faults_.LanSealed(lan, epoch);
        const bool was_sealed = epoch > 1 && faults_.LanSealed(lan, epoch - 1);
        if (sealed && !was_sealed) journal_->ChaosLanSealed(epoch, lan);
        if (!sealed && was_sealed) journal_->ChaosLanOpened(epoch, lan);
      }
      const bool down = faults_.ServerDown(epoch);
      const bool was_down = epoch > 1 && faults_.ServerDown(epoch - 1);
      if (down && !was_down) journal_->ChaosServerDown(epoch);
      if (!down && was_down) journal_->ChaosServerUp(epoch);
    }

    // A new global iteration starts right after each aggregation.
    if (cohort_mode()) {
      const int64_t round = (epoch - 1) / config_.agg_period;
      if ((epoch - 1) % config_.agg_period == 0) {
        BeginRound(round);
      } else if (round != cohort_round_) {
        // Resumed mid-round from a pre-chaos snapshot: the members' state
        // came back with the snapshot; only the cohort list needs
        // recomputing (the same churn filter BeginRound applies — carryover
        // is only ever consumed at a round boundary, so none is in flight
        // mid-round).
        const std::vector<int> sampled = cohort_sampler_->Sample(round);
        cohort_.clear();
        for (int i : sampled) {
          if (config_.fault.chaos.churn_rate > 0.0 &&
              faults_.ChurnedOut(i, round)) {
            continue;
          }
          cohort_.push_back(i);
        }
        cohort_round_ = round;
      }
    } else if ((epoch - 1) % config_.agg_period == 0) {
      ResampleParticipants();
    }
    RollAvailability();

    if (journal_ != nullptr) {
      int available_count = 0;
      for (int i : active_clients()) {
        if (available_[static_cast<size_t>(i)]) ++available_count;
      }
      journal_->RoundBegin(epoch, static_cast<int>(active_clients().size()),
                           available_count, store_.aggregate_lineage());
    }
    // A publish this epoch moves the store's lineage head; comparing after
    // the phases tells the round-commit event whether one happened.
    const int64_t lineage_before = store_.aggregate_lineage();

    double compute_before = budget_.compute_used();
    double bandwidth_before = budget_.bandwidth_used();
    const double sim_epoch_start = budget_.time_used();

    double phase_seconds = 0.0;
    record.train_loss = LocalUpdatePhase(epoch, &phase_seconds);
    const double sim_after_update = budget_.time_used();

    const bool aggregate_now = (epoch % config_.agg_period == 0) ||
                               (epoch == config_.max_epochs);
    const bool evaluate_now =
        config_.eval_every > 0 && (epoch % config_.eval_every == 0 ||
                                   epoch == config_.max_epochs);
    if (aggregate_now) {
      const Evaluation eval = AggregationPhase(epoch, evaluate_now);
      if (evaluate_now) {
        progress_.last_accuracy = eval.accuracy;
        progress_.last_test_loss = eval.loss;
      }
      record.aggregated = true;
    } else {
      record.migrations = MigrationPhase(epoch, record.train_loss);
      if (evaluate_now) {
        const Evaluation eval = VirtualEvaluation();
        progress_.last_accuracy = eval.accuracy;
        progress_.last_test_loss = eval.loss;
      }
    }

    record.test_accuracy = progress_.last_accuracy;
    record.test_loss = progress_.last_test_loss;
    record.cumulative_time_s = budget_.time_used();
    record.cumulative_traffic_gb =
        static_cast<double>(traffic_.total_bytes()) / 1e9;
    result_.history.push_back(record);

    if (obs::Telemetry::enabled()) {
      // Simulated-time spans go on the pid-2 tracks so a trace shows what
      // the simulation modelled next to what the host actually spent.
      obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
      if (recorder.recording()) {
        const double sim_epoch_end = budget_.time_used();
        recorder.RecordSimSpan("epoch " + std::to_string(epoch), "fl/epoch",
                               sim_epoch_start, sim_epoch_end);
        recorder.RecordSimSpan("local_update", "fl/phase", sim_epoch_start,
                               sim_after_update);
        recorder.RecordSimSpan(record.aggregated ? "aggregate" : "migrate",
                               "fl/phase", sim_after_update, sim_epoch_end);
      }
      static obs::Counter* epochs_run =
          obs::Registry::Default().GetCounter("fl/epochs_run");
      static obs::Counter* aggregations =
          obs::Registry::Default().GetCounter("fl/aggregations");
      static obs::Counter* migrations_applied =
          obs::Registry::Default().GetCounter("fl/migrations_applied");
      static obs::Gauge* train_loss =
          obs::Registry::Default().GetGauge("fl/train_loss");
      static obs::Gauge* test_accuracy =
          obs::Registry::Default().GetGauge("fl/test_accuracy");
      epochs_run->Increment();
      if (record.aggregated) aggregations->Increment();
      migrations_applied->Add(record.migrations);
      train_loss->Set(record.train_loss);
      test_accuracy->Set(record.test_accuracy);
      obs::UpdateResourceGauges();
    }

    result_.best_accuracy =
        std::max(result_.best_accuracy, progress_.last_accuracy);
    result_.epochs_run = epoch;

    // Reward feedback for learned policies.
    PolicyFeedback feedback;
    feedback.epoch = epoch;
    feedback.loss_before = progress_.previous_loss < 0.0
                               ? record.train_loss
                               : progress_.previous_loss;
    feedback.loss_after = record.train_loss;
    const double cb = budget_.compute_budget();
    const double bb = budget_.bandwidth_budget();
    feedback.compute_cost_fraction =
        std::isinf(cb) ? 0.0 : (budget_.compute_used() - compute_before) / cb;
    feedback.bandwidth_cost_fraction =
        std::isinf(bb) ? 0.0
                       : (budget_.bandwidth_used() - bandwidth_before) / bb;
    progress_.previous_loss = record.train_loss;

    const bool target_hit = config_.target_accuracy > 0.0 &&
                            progress_.last_accuracy >= config_.target_accuracy;
    if (target_hit && !result_.reached_target) {
      if (obs::Telemetry::enabled()) {
        obs::TraceRecorder::Default().RecordInstant("fl/target_reached");
      }
      result_.reached_target = true;
      result_.epochs_to_target = epoch;
      result_.time_to_target_s = budget_.time_used();
      result_.traffic_to_target_gb =
          static_cast<double>(traffic_.total_bytes()) / 1e9;
    }
    const bool exhausted = budget_.Exhausted();
    const bool done =
        target_hit || exhausted || epoch == config_.max_epochs;
    feedback.done = done;
    feedback.success = done && !exhausted;
    policy_->Feedback(feedback);

    // The epoch is now fully accounted for; a snapshot taken here (by the
    // hook) resumes at next_epoch.
    progress_.next_epoch = epoch + 1;
    if (target_hit || exhausted) {
      result_.budget_exhausted = exhausted;
      progress_.done = true;
    } else if (epoch == config_.max_epochs) {
      progress_.done = true;
    }

    // Flush the epoch's events as one frame BEFORE the hook: a snapshot
    // taken there resumes at epoch + 1, and Attach(epoch) keeps exactly the
    // chunks committed so far — kill-anywhere resume replays to a
    // byte-equal journal.
    if (journal_ != nullptr) {
      int participated = 0;
      for (int i : active_clients()) {
        if (participating_[static_cast<size_t>(i)]) ++participated;
      }
      journal_->RoundCommitted(epoch, participated,
                               store_.aggregate_lineage() != lineage_before,
                               store_.aggregate_lineage(), record.train_loss);
      const util::Status committed = journal_->CommitEpoch(epoch);
      FEDMIGR_CHECK(committed.ok())
          << "journal commit failed: " << committed.message();
    }

    if (epoch_hook_ && !epoch_hook_(*this, epoch) && !progress_.done) {
      result_.interrupted = true;
      break;
    }
  }

  if (journal_ != nullptr) {
    // Clean completion seals the journal with the summary chunk; an
    // interrupted run only syncs — the resumed run appends the rest.
    const util::Status sealed =
        progress_.done && !result_.interrupted ? journal_->EndRun()
                                               : journal_->Finish();
    FEDMIGR_CHECK(sealed.ok())
        << "journal finalize failed: " << sealed.message();
  }

  result_.final_accuracy = progress_.last_accuracy;
  result_.time_s = budget_.time_used();
  result_.compute_units = budget_.compute_used();
  result_.traffic_gb = static_cast<double>(traffic_.total_bytes()) / 1e9;
  result_.c2s_gb = traffic_.c2s_gb();
  result_.c2c_gb = traffic_.c2c_gb();
  result_.c2s_up_gb = traffic_.c2s_up_gb();
  result_.c2s_down_gb = traffic_.c2s_down_gb();
  result_.traffic = traffic_;
  result_.faults = faults_.counters();
  result_.robust = robust_counters_;
  result_.chaos = chaos_counters_;
  if (reputation_.enabled()) {
    result_.first_quarantine_round.assign(static_cast<size_t>(num_clients()),
                                          -1);
    for (int i = 0; i < num_clients(); ++i) {
      result_.first_quarantine_round[static_cast<size_t>(i)] =
          reputation_.first_quarantine_round(i);
    }
  }
  if (obs::Telemetry::enabled()) {
    result_.metrics = obs::Registry::Default().Snapshot();
  }
  return result_;
}

namespace {

// Bumped whenever the trainer state layout changes.
// v2: robustness counters + reputation state appended after the policy blob.
// v3: cohort_size joins the fingerprint; per-client records gain a kind
//     byte (0 = lazy, never materialized; 1 = materialized) and a flag byte
//     that elides the parameter payload when the replica aliases the
//     current aggregate block (see Client::SaveState).
// v4: chaos layer — quorum_fraction and a hash of the chaos schedule join
//     the fingerprint; the injector stream gains the epoch counter and the
//     partition/outage counters; chaos counters, the effective cohort (no
//     longer pure in (seed, round) once churn and carryover apply) and the
//     quorum carryover list are appended after the reputation state.
// v5: flight-recorder lineage — the per-slot lineage ids and the model
//     store's mint state (next id, aggregate, parent) are appended after
//     the chaos block, so a resumed run keeps emitting the same causal
//     edges the uninterrupted run would have.
constexpr uint32_t kTrainerStateVersion = 5;

// Order-sensitive splitmix64 fold of the chaos schedule: two trainers agree
// on this iff they would replay the same partition/outage/churn timeline,
// which is exactly what a byte-identical resume needs.
uint64_t ChaosScheduleFingerprint(const net::ChaosConfig& chaos) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
  };
  for (const net::PartitionWindow& w : chaos.partitions) {
    mix(static_cast<uint64_t>(w.lan));
    mix(static_cast<uint64_t>(w.start_epoch));
    mix(static_cast<uint64_t>(w.duration_epochs));
  }
  mix(static_cast<uint64_t>(chaos.partition_period));
  mix(static_cast<uint64_t>(chaos.partition_phase));
  mix(static_cast<uint64_t>(chaos.partition_lan));
  mix(static_cast<uint64_t>(chaos.partition_epochs));
  for (const net::OutageWindow& w : chaos.outages) {
    mix(static_cast<uint64_t>(w.start_epoch));
    mix(static_cast<uint64_t>(w.duration_epochs));
  }
  mix(static_cast<uint64_t>(chaos.outage_period));
  mix(static_cast<uint64_t>(chaos.outage_phase));
  mix(static_cast<uint64_t>(chaos.outage_epochs));
  uint64_t churn_bits = 0;
  static_assert(sizeof(churn_bits) == sizeof(chaos.churn_rate));
  std::memcpy(&churn_bits, &chaos.churn_rate, sizeof(churn_bits));
  mix(churn_bits);
  mix(chaos.churn_seed);
  return h;
}

void WriteEpochRecord(util::ByteWriter* writer, const EpochRecord& record) {
  writer->WriteI32(record.epoch);
  writer->WriteF64(record.train_loss);
  writer->WriteF64(record.test_accuracy);
  writer->WriteF64(record.test_loss);
  writer->WriteF64(record.cumulative_time_s);
  writer->WriteF64(record.cumulative_traffic_gb);
  writer->WriteBool(record.aggregated);
  writer->WriteI32(record.migrations);
}

util::Status ReadEpochRecord(util::ByteReader* reader, EpochRecord* record) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record->epoch));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&record->train_loss));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&record->test_accuracy));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&record->test_loss));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&record->cumulative_time_s));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&record->cumulative_traffic_gb));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&record->aggregated));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&record->migrations));
  return util::Status::Ok();
}

}  // namespace

void Trainer::SaveState(util::ByteWriter* writer) const {
  // Fingerprint: a snapshot may only be restored into a trainer built from
  // the same workload and schedule.
  writer->WriteU32(kTrainerStateVersion);
  writer->WriteString(config_.scheme_name);
  writer->WriteU32(static_cast<uint32_t>(num_clients()));
  writer->WriteI64(model_params_);
  writer->WriteU64(config_.seed);
  writer->WriteI32(config_.agg_period);
  writer->WriteI32(config_.max_epochs);
  writer->WriteI32(config_.cohort_size);
  writer->WriteF64(config_.quorum_fraction);
  writer->WriteU64(ChaosScheduleFingerprint(config_.fault.chaos));

  // Run progress and accumulated result.
  writer->WriteI32(progress_.next_epoch);
  writer->WriteF64(progress_.last_accuracy);
  writer->WriteF64(progress_.last_test_loss);
  writer->WriteF64(progress_.previous_loss);
  writer->WriteBool(progress_.done);
  writer->WriteF64(result_.best_accuracy);
  writer->WriteI32(result_.epochs_run);
  writer->WriteBool(result_.reached_target);
  writer->WriteI32(result_.epochs_to_target);
  writer->WriteF64(result_.time_to_target_s);
  writer->WriteF64(result_.traffic_to_target_gb);
  writer->WriteBool(result_.budget_exhausted);
  writer->WriteU64(result_.history.size());
  for (const EpochRecord& record : result_.history) {
    WriteEpochRecord(writer, record);
  }

  // Simulation state.
  util::SaveRngState(rng_, writer);
  budget_.SaveState(writer);
  traffic_.SaveState(writer);
  faults_.SaveState(writer);
  writer->WriteBoolVector(participating_);
  writer->WriteBoolVector(available_);
  writer->WriteU64(model_distributions_.size());
  for (const auto& dist : model_distributions_) {
    writer->WriteF64Vector(dist);
  }
  writer->WriteF64Vector(model_samples_);

  // Models: server, then every client slot. Lazy clients write one byte;
  // materialized clients whose replica still aliases the current aggregate
  // block skip the parameter payload (the block is rebuilt from the server
  // model on load). The cohort list itself is not stored — the sampler is
  // stateless in (seed, round).
  nn::WriteParams(writer, server_->global_model());
  const ModelRef& aggregate = store_.aggregate();
  const FlatRef& aggregate_flat = store_.aggregate_flat();
  for (int i = 0; i < num_clients(); ++i) {
    const Client* client = clients_.Get(i);
    if (client == nullptr) {
      writer->WriteU8(0);
      continue;
    }
    writer->WriteU8(1);
    client->SaveState(writer, aggregate, aggregate_flat);
  }

  // Policy state rides as a length-prefixed blob so the container framing
  // survives even if a policy's stream is malformed.
  util::ByteWriter policy_writer;
  policy_->SaveState(&policy_writer);
  writer->WriteBytes(policy_writer.bytes());

  // v2: robustness layer (counters + reputation). `eligible_` is derived
  // state, recomputed from availability and reputation on load.
  SaveRobustCounters(robust_counters_, writer);
  reputation_.SaveState(writer);

  // v4: chaos layer. The effective cohort must be stored (not recomputed):
  // under churn and quorum carryover it is no longer a pure function of
  // (seed, round), and a kill inside a round must resume with exactly the
  // members that were active when the round began.
  SaveChaosCounters(chaos_counters_, writer);
  writer->WriteI32Vector(cohort_);
  writer->WriteI64(cohort_round_);
  writer->WriteI32Vector(carryover_);

  // v5: lineage state for the flight recorder.
  writer->WriteU64(model_lineage_.size());
  for (int64_t lineage : model_lineage_) {
    writer->WriteI64(lineage);
  }
  writer->WriteI64(store_.next_lineage_id());
  writer->WriteI64(store_.aggregate_lineage());
  writer->WriteI64(store_.parent_lineage());
}

util::Status Trainer::LoadState(util::ByteReader* reader) {
  uint32_t version = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kTrainerStateVersion) {
    return util::Status::InvalidArgument("unsupported trainer state version");
  }
  std::string scheme;
  uint32_t clients = 0;
  int64_t params = 0;
  uint64_t seed = 0;
  int32_t agg_period = 0;
  int32_t max_epochs = 0;
  int32_t cohort_size = 0;
  double quorum_fraction = 0.0;
  uint64_t chaos_fingerprint = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadString(&scheme));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU32(&clients));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&params));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&seed));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&agg_period));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&max_epochs));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&cohort_size));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&quorum_fraction));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&chaos_fingerprint));
  if (scheme != config_.scheme_name ||
      clients != static_cast<uint32_t>(num_clients()) ||
      params != model_params_ || seed != config_.seed ||
      agg_period != config_.agg_period || max_epochs != config_.max_epochs ||
      cohort_size != config_.cohort_size ||
      quorum_fraction != config_.quorum_fraction ||
      chaos_fingerprint != ChaosScheduleFingerprint(config_.fault.chaos)) {
    return util::Status::InvalidArgument(
        "snapshot fingerprint does not match this trainer");
  }

  RunProgress progress;
  RunResult result;
  result.scheme = config_.scheme_name;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&progress.next_epoch));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&progress.last_accuracy));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&progress.last_test_loss));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&progress.previous_loss));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&progress.done));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&result.best_accuracy));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&result.epochs_run));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&result.reached_target));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&result.epochs_to_target));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&result.time_to_target_s));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&result.traffic_to_target_gb));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&result.budget_exhausted));
  if (progress.next_epoch < 1 || progress.next_epoch > config_.max_epochs + 1) {
    return util::Status::InvalidArgument("snapshot epoch out of range");
  }
  uint64_t history_size = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&history_size));
  if (history_size > static_cast<uint64_t>(config_.max_epochs)) {
    return util::Status::InvalidArgument("snapshot history too long");
  }
  result.history.resize(static_cast<size_t>(history_size));
  for (EpochRecord& record : result.history) {
    FEDMIGR_RETURN_IF_ERROR(ReadEpochRecord(reader, &record));
  }

  // Parse the simulation state into stand-ins first; the trainer is only
  // mutated once the whole stream (including every client and the policy)
  // has validated, so a corrupt snapshot leaves it untouched.
  util::Rng rng(0);
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &rng));
  net::Budget budget = config_.budget;
  FEDMIGR_RETURN_IF_ERROR(budget.LoadState(reader));
  net::TrafficAccountant traffic;
  FEDMIGR_RETURN_IF_ERROR(traffic.LoadState(reader));
  net::FaultInjector faults(config_.fault);
  FEDMIGR_RETURN_IF_ERROR(faults.LoadState(reader));
  std::vector<bool> participating;
  std::vector<bool> available;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBoolVector(&participating));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBoolVector(&available));
  if (participating.size() != static_cast<size_t>(num_clients()) ||
      available.size() != static_cast<size_t>(num_clients())) {
    return util::Status::InvalidArgument(
        "snapshot participation vectors sized wrong");
  }
  uint64_t dist_count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&dist_count));
  if (dist_count != static_cast<uint64_t>(num_clients())) {
    return util::Status::InvalidArgument(
        "snapshot distribution count mismatch");
  }
  std::vector<std::vector<double>> distributions(
      static_cast<size_t>(dist_count));
  for (auto& dist : distributions) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadF64Vector(&dist));
  }
  std::vector<double> samples;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64Vector(&samples));
  if (samples.size() != static_cast<size_t>(num_clients())) {
    return util::Status::InvalidArgument("snapshot sample count mismatch");
  }

  nn::Sequential global = server_->global_model();
  FEDMIGR_RETURN_IF_ERROR(nn::ReadParams(reader, &global));
  // Re-publish before the client records: aliased replicas re-attach to
  // this block (same caveat as the in-place client loads below — the store
  // is already mutated if a later record turns out corrupt; the snapshot
  // layer's CRC gate runs before any of this).
  store_.Publish(global);

  // Client and policy state cannot be staged without copying whole models,
  // so they are validated structurally while loading; the guarantee that
  // holds for the full trainer is therefore "no partial load on corrupt
  // container" at the snapshot layer, where a CRC gate runs first.
  for (int i = 0; i < num_clients(); ++i) {
    uint8_t kind = 0;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadU8(&kind));
    if (kind == 0) {
      Client* materialized = clients_.Get(i);
      if (materialized != nullptr) {
        // The snapshot predates this client's first cohort: reclaim the
        // data slice and return the slot to the lazy state.
        partition_[static_cast<size_t>(i)] = materialized->indices();
        clients_.Evict(i);
      }
      continue;
    }
    if (kind != 1) {
      return util::Status::InvalidArgument("unknown client record kind");
    }
    FEDMIGR_RETURN_IF_ERROR(ClientAt(i).LoadState(reader, store_.aggregate(),
                                                  store_.aggregate_flat()));
  }
  std::vector<uint8_t> policy_bytes;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBytes(&policy_bytes));
  util::ByteReader policy_reader(policy_bytes);
  FEDMIGR_RETURN_IF_ERROR(policy_->LoadState(&policy_reader));

  RobustCounters robust_counters;
  FEDMIGR_RETURN_IF_ERROR(LoadRobustCounters(reader, &robust_counters));
  ReputationTracker reputation(config_.robust.reputation, num_clients());
  FEDMIGR_RETURN_IF_ERROR(reputation.LoadState(reader));

  // v4: chaos layer.
  ChaosCounters chaos_counters;
  FEDMIGR_RETURN_IF_ERROR(LoadChaosCounters(reader, &chaos_counters));
  std::vector<int> cohort;
  int64_t cohort_round = -1;
  std::vector<int> carryover;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32Vector(&cohort));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&cohort_round));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32Vector(&carryover));
  for (int i : cohort) {
    if (i < 0 || i >= num_clients()) {
      return util::Status::InvalidArgument("snapshot cohort id out of range");
    }
  }
  for (int i : carryover) {
    if (i < 0 || i >= num_clients()) {
      return util::Status::InvalidArgument(
          "snapshot carryover id out of range");
    }
  }
  if (!cohort_mode() && (!cohort.empty() || !carryover.empty())) {
    return util::Status::InvalidArgument(
        "snapshot carries a cohort but this trainer runs legacy mode");
  }

  // v5: lineage state.
  uint64_t lineage_count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&lineage_count));
  if (lineage_count != static_cast<uint64_t>(num_clients())) {
    return util::Status::InvalidArgument("snapshot lineage count mismatch");
  }
  std::vector<int64_t> lineage(static_cast<size_t>(lineage_count));
  for (int64_t& id : lineage) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&id));
  }
  int64_t next_lineage_id = 0;
  int64_t aggregate_lineage = 0;
  int64_t parent_lineage = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&next_lineage_id));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&aggregate_lineage));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&parent_lineage));
  if (next_lineage_id < 1 || aggregate_lineage >= next_lineage_id ||
      parent_lineage >= next_lineage_id) {
    return util::Status::InvalidArgument("snapshot lineage ids inconsistent");
  }

  progress_ = progress;
  result_ = std::move(result);
  rng_ = rng;
  budget_ = budget;
  traffic_ = std::move(traffic);
  faults_ = std::move(faults);
  participating_ = std::move(participating);
  available_ = std::move(available);
  model_distributions_ = std::move(distributions);
  model_samples_ = std::move(samples);
  server_->global_model() = std::move(global);
  robust_counters_ = robust_counters;
  reputation_ = std::move(reputation);
  for (size_t i = 0; i < eligible_.size(); ++i) {
    eligible_[i] =
        available_[i] && reputation_.Eligible(static_cast<int>(i));
  }
  // The effective cohort is restored, not recomputed: under churn and
  // quorum carryover only the snapshot knows who was active mid-round.
  chaos_counters_ = chaos_counters;
  cohort_ = std::move(cohort);
  cohort_round_ = cohort_round;
  carryover_ = std::move(carryover);
  // The re-publish above minted a throwaway id; restore the mint counter
  // and the aggregate/parent heads the snapshot recorded so the next
  // publish continues the same id sequence.
  model_lineage_ = std::move(lineage);
  store_.RestoreLineage(next_lineage_id, aggregate_lineage, parent_lineage);
  return util::Status::Ok();
}

}  // namespace fedmigr::fl
