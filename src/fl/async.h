// Asynchronous federated optimization (the paper's stated future
// direction, and the Xie et al. baseline its related-work section
// discusses).
//
// Unlike the synchronous Trainer, there is no epoch barrier: each client
// trains continuously; whenever one finishes a local round it uploads its
// model, the server immediately blends it into the global model with a
// staleness-discounted mixing weight (FedAsync's polynomial decay), and
// the client continues from the fresh global model. The whole exchange is
// driven by a discrete-event queue over the same topology / device / budget
// substrate as the synchronous loop, so traffic and completion times are
// directly comparable.

#ifndef FEDMIGR_FL_ASYNC_H_
#define FEDMIGR_FL_ASYNC_H_

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/server.h"
#include "net/budget.h"
#include "net/device.h"
#include "net/fault.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "util/rng.h"

namespace fedmigr::fl {

struct AsyncConfig {
  // Stop after this many server updates (one update = one client upload).
  int max_updates = 200;
  int local_epochs = 1;  // local passes per round
  int batch_size = 16;
  double learning_rate = 0.05;
  // Base mixing weight α of FedAsync: w_g ← (1-αs) w_g + αs w_k.
  double mixing_alpha = 0.4;
  // Polynomial staleness exponent a: αs = α (1 + staleness)^-a, where
  // staleness = number of server updates since the client last synced.
  double staleness_exponent = 0.5;
  // Evaluate the global model every this many server updates.
  int eval_every = 20;
  double target_accuracy = -1.0;
  net::Budget budget;
  // Fault model for links and clients (see net/fault.h). The default config
  // is a strict no-op: the event loop follows exactly the fault-free path
  // and produces bit-identical results. With faults on, a crashed client
  // re-attempts its round later, a lost upload never reaches the blend, a
  // corrupted one is rejected by the server's checksum, and a lost download
  // leaves the client training on its stale model (its staleness keeps
  // growing until a download lands). One injector epoch elapses per event,
  // so crash windows are measured in server-side events, and the chaos
  // schedule (partition/outage windows) applies to every hop. Byzantine
  // attack modes are not applied here — the async path has no robust
  // aggregation layer to defend the blend.
  net::FaultConfig fault;
  uint64_t seed = 1;
};

struct AsyncUpdateRecord {
  int update = 0;          // server-update index (1-based)
  int client = 0;
  int staleness = 0;
  double sim_time_s = 0.0;  // simulated wall-clock of this update
  double test_accuracy = 0.0;  // carried forward between evaluations
};

struct AsyncRunResult {
  std::vector<AsyncUpdateRecord> history;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  int updates_run = 0;
  double time_s = 0.0;
  double traffic_gb = 0.0;
  bool reached_target = false;
  int updates_to_target = -1;
  double time_to_target_s = -1.0;
  // Fault-tolerance counters, mirroring the sync path's RunResult::faults.
  // All zero when faults are disabled.
  net::FaultCounters faults;
};

// Runs asynchronous FL over the given workload pieces. `partition[k]` is
// client k's sample-index list into `train`.
class AsyncTrainer {
 public:
  using ModelFactory = std::function<nn::Sequential(util::Rng*)>;

  AsyncTrainer(AsyncConfig config, const data::Dataset* train,
               data::Partition partition, const data::Dataset* test,
               net::Topology topology,
               std::vector<net::DeviceProfile> devices,
               ModelFactory model_factory);

  AsyncRunResult Run();

 private:
  AsyncConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Topology topology_;
  std::vector<net::DeviceProfile> devices_;
  data::Partition partition_;
  ModelFactory model_factory_;
};

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_ASYNC_H_
