// Migration plans and their execution.
//
// A plan says, for every client j, which client's model it runs next:
// incoming[j] = i installs client i's current model on client j (i == j
// keeps the local model). Plans from the Hungarian pipeline are
// permutations; the DRL single-pair plans and FedSwap pairings are handled
// by the same representation.
//
// `via_server` distinguishes FedSwap-style exchange (models travel through
// the PS, charged as C2S WAN traffic both ways) from true C2C migration.

#ifndef FEDMIGR_FL_MIGRATION_H_
#define FEDMIGR_FL_MIGRATION_H_

#include <cstdint>
#include <vector>

#include "net/fault.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace fedmigr::fl {

struct MigrationPlan {
  std::vector<int> incoming;  // incoming[j] = source client for j's model
  bool via_server = false;

  // A plan that keeps every model where it is.
  static MigrationPlan Identity(int num_clients);

  // Number of models that actually move.
  int NumMoves() const;
  bool IsIdentity() const { return NumMoves() == 0; }
  // True when `incoming` is a permutation of [0, K).
  bool IsPermutation() const;
};

// From a destination map (destination[i] = j means i's model goes to j,
// i = stay) to the incoming representation. Destinations must be distinct
// for moved models.
MigrationPlan PlanFromDestinations(const std::vector<int>& destination,
                                   bool via_server = false);

struct MigrationCost {
  double seconds = 0.0;   // wall-clock (moves happen in parallel: max)
  int64_t bytes = 0;      // total traffic charged
  int num_moves = 0;
};

// Computes the traffic/time cost of executing `plan` with models of
// `model_bytes` bytes and records every transfer in `traffic` (if non-null).
// Does not touch any models — callers move the actual replicas.
MigrationCost CostAndRecord(const MigrationPlan& plan,
                            const net::Topology& topology, int64_t model_bytes,
                            net::TrafficAccountant* traffic);

// Outcome of executing a plan over a faulty network. `delivered[j]` is true
// when destination j actually received its planned model; a move that is
// not delivered degrades gracefully — j simply keeps the model it had.
// `corrupted[j]` marks deliveries whose payload arrived bit-flipped (the
// receiver's checksum rejects those; callers treat them as undelivered and
// count a corrupt_reject).
struct MigrationExecution {
  MigrationCost cost;
  std::vector<bool> delivered;
  std::vector<bool> corrupted;
  // Delivered, but via the server re-route rather than the planned direct
  // C2C link (false wherever delivered[j] is false). The trainer's chaos
  // ledger splits completed moves on this.
  std::vector<bool> via_fallback;
  int failed_moves = 0;    // moves that never reached their destination
  int fallback_moves = 0;  // C2C moves re-routed through the server (C2S)
};

// Executes `plan` through the fault-aware transfer path. Failed attempts,
// retries and fallback hops are all charged to `traffic` and to the
// returned cost. When `faults` is null or disabled this is exactly
// CostAndRecord with every move delivered. A C2C move whose direct link
// gives up is re-routed via the server (two C2S hops) when the injector's
// `server_fallback` is set; via-server plans have no further fallback.
//
// `node_ids` (optional) maps the plan's index space to global client ids:
// a cohort-local plan over C active clients executes against the full
// topology, and traffic/fault accounting is attributed to the real clients.
// Null means the identity map (the plan already uses global ids).
MigrationExecution ExecuteWithFaults(const MigrationPlan& plan,
                                     const net::Topology& topology,
                                     int64_t model_bytes,
                                     net::TrafficAccountant* traffic,
                                     net::FaultInjector* faults,
                                     const std::vector<int>* node_ids = nullptr);

}  // namespace fedmigr::fl

#endif  // FEDMIGR_FL_MIGRATION_H_
