#include "nn/serialize.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "util/crc32.h"
#include "util/file.h"

namespace fedmigr::nn {

namespace {

// "FMGR" little-endian.
constexpr uint32_t kMagic = 0x52474D46u;
constexpr uint32_t kFormatVersion = 2;
// magic + version + count.
constexpr size_t kV2HeaderSize = 2 * sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kV2FrameOverhead = kV2HeaderSize + sizeof(uint32_t);

template <typename T>
T ReadLe(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Ingest gate shared by both wire formats: a single NaN coordinate entering
// an aggregation would turn the whole mean non-finite, permanently, and a
// CRC only proves the NaN arrived intact. Checkpoint/snapshot restore paths
// (ReadParams/ReadTensor) are deliberately not gated — they replay whatever
// state was saved.
util::Status CheckPayloadFinite(const std::vector<float>& flat) {
  for (float v : flat) {
    if (!std::isfinite(v)) {
      return util::Status::DataLoss("non-finite parameter in payload");
    }
  }
  return util::Status::Ok();
}

// Legacy v1 framing: [uint64 count][count * float32].
util::Status DeserializeV1(const std::vector<uint8_t>& bytes,
                           Sequential* model) {
  if (bytes.size() < sizeof(uint64_t)) {
    return util::Status::InvalidArgument("buffer too small for header");
  }
  const uint64_t count = ReadLe<uint64_t>(bytes.data());
  if (count > (bytes.size() - sizeof(uint64_t)) / sizeof(float) ||
      bytes.size() != sizeof(uint64_t) + count * sizeof(float)) {
    return util::Status::InvalidArgument("buffer size does not match header");
  }
  std::vector<float> flat(count);
  std::memcpy(flat.data(), bytes.data() + sizeof(uint64_t),
              count * sizeof(float));
  FEDMIGR_RETURN_IF_ERROR(CheckPayloadFinite(flat));
  return UnflattenParams(flat, model);
}

}  // namespace

std::vector<float> FlattenParams(const Sequential& model) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(model.NumParams()));
  for (const Tensor* p : model.Params()) {
    flat.insert(flat.end(), p->data(), p->data() + p->size());
  }
  return flat;
}

util::Status UnflattenParams(const std::vector<float>& flat,
                             Sequential* model) {
  if (static_cast<int64_t>(flat.size()) != model->NumParams()) {
    return util::Status::InvalidArgument(
        "parameter count mismatch: got " + std::to_string(flat.size()) +
        ", model has " + std::to_string(model->NumParams()));
  }
  size_t offset = 0;
  for (Tensor* p : model->Params()) {
    std::memcpy(p->data(), flat.data() + offset,
                static_cast<size_t>(p->size()) * sizeof(float));
    offset += static_cast<size_t>(p->size());
  }
  return util::Status::Ok();
}

std::vector<uint8_t> SerializeParams(const Sequential& model) {
  const std::vector<float> flat = FlattenParams(model);
  const uint64_t count = flat.size();
  std::vector<uint8_t> bytes(kV2FrameOverhead + flat.size() * sizeof(float));
  uint8_t* p = bytes.data();
  std::memcpy(p, &kMagic, sizeof(uint32_t));
  std::memcpy(p + sizeof(uint32_t), &kFormatVersion, sizeof(uint32_t));
  std::memcpy(p + 2 * sizeof(uint32_t), &count, sizeof(uint64_t));
  std::memcpy(p + kV2HeaderSize, flat.data(), flat.size() * sizeof(float));
  const uint32_t crc =
      util::Crc32(p, kV2HeaderSize + flat.size() * sizeof(float));
  std::memcpy(p + kV2HeaderSize + flat.size() * sizeof(float), &crc,
              sizeof(uint32_t));
  return bytes;
}

util::Status DeserializeParams(const std::vector<uint8_t>& bytes,
                               Sequential* model) {
  if (bytes.empty()) {
    return util::Status::InvalidArgument("empty buffer");
  }
  if (bytes.size() < kV2FrameOverhead ||
      ReadLe<uint32_t>(bytes.data()) != kMagic) {
    // Not a v2 frame; try the legacy unframed encoding.
    return DeserializeV1(bytes, model);
  }
  const uint32_t version = ReadLe<uint32_t>(bytes.data() + sizeof(uint32_t));
  if (version != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported parameter format version " + std::to_string(version));
  }
  const uint64_t count = ReadLe<uint64_t>(bytes.data() + 2 * sizeof(uint32_t));
  if (count > (bytes.size() - kV2FrameOverhead) / sizeof(float) ||
      bytes.size() != kV2FrameOverhead + count * sizeof(float)) {
    return util::Status::InvalidArgument("buffer size does not match header");
  }
  const size_t checked_size = kV2HeaderSize + count * sizeof(float);
  const uint32_t stored_crc = ReadLe<uint32_t>(bytes.data() + checked_size);
  const uint32_t actual_crc = util::Crc32(bytes.data(), checked_size);
  if (stored_crc != actual_crc) {
    return util::Status::DataLoss("parameter payload checksum mismatch");
  }
  std::vector<float> flat(count);
  std::memcpy(flat.data(), bytes.data() + kV2HeaderSize,
              count * sizeof(float));
  FEDMIGR_RETURN_IF_ERROR(CheckPayloadFinite(flat));
  return UnflattenParams(flat, model);
}

util::Status SaveCheckpoint(const Sequential& model,
                            const std::string& path) {
  return util::AtomicWriteFile(path, SerializeParams(model));
}

void WriteTensor(util::ByteWriter* writer, const Tensor& tensor) {
  writer->WriteI32Vector(tensor.shape());
  writer->WriteU64(static_cast<uint64_t>(tensor.size()));
  for (int64_t i = 0; i < tensor.size(); ++i) writer->WriteF32(tensor[i]);
}

util::Status ReadTensor(util::ByteReader* reader, Tensor* tensor) {
  Shape shape;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32Vector(&shape));
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > reader->remaining() / sizeof(float)) {
    return util::Status::InvalidArgument("tensor payload truncated");
  }
  if (shape.empty()) {
    if (count != 0) {
      return util::Status::InvalidArgument(
          "scalar-shaped tensor with nonzero payload");
    }
    *tensor = Tensor();
    return util::Status::Ok();
  }
  // Overflow-safe element count; anything not backed by the buffer was
  // already rejected above, so the cap only guards the multiplication.
  int64_t elements = 1;
  constexpr int64_t kMaxElements = int64_t{1} << 40;
  for (int dim : shape) {
    if (dim < 0) {
      return util::Status::InvalidArgument("negative tensor dimension");
    }
    if (dim > 0 && elements > kMaxElements / dim) {
      return util::Status::InvalidArgument("tensor shape overflows");
    }
    elements *= dim;
  }
  if (static_cast<int64_t>(count) != elements) {
    return util::Status::InvalidArgument(
        "tensor element count does not match shape");
  }
  Tensor result(shape);
  for (uint64_t i = 0; i < count; ++i) {
    FEDMIGR_RETURN_IF_ERROR(
        reader->ReadF32(&result[static_cast<int64_t>(i)]));
  }
  *tensor = std::move(result);
  return util::Status::Ok();
}

void WriteParams(util::ByteWriter* writer, const Sequential& model) {
  writer->WriteF32Vector(FlattenParams(model));
}

util::Status ReadParams(util::ByteReader* reader, Sequential* model) {
  std::vector<float> flat;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF32Vector(&flat));
  return UnflattenParams(flat, model);
}

util::Status LoadCheckpoint(const std::string& path, Sequential* model) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return util::Status::Internal("cannot determine size: " + path);
  }
  if (size == 0) {
    return util::Status::InvalidArgument("empty checkpoint: " + path);
  }
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in || in.gcount() != size) {
    return util::Status::Internal("read failed: " + path);
  }
  return DeserializeParams(bytes, model);
}

}  // namespace fedmigr::nn
