#include "nn/serialize.h"

#include <cstring>
#include <fstream>

namespace fedmigr::nn {

std::vector<float> FlattenParams(const Sequential& model) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(model.NumParams()));
  for (const Tensor* p : model.Params()) {
    flat.insert(flat.end(), p->data(), p->data() + p->size());
  }
  return flat;
}

util::Status UnflattenParams(const std::vector<float>& flat,
                             Sequential* model) {
  if (static_cast<int64_t>(flat.size()) != model->NumParams()) {
    return util::Status::InvalidArgument(
        "parameter count mismatch: got " + std::to_string(flat.size()) +
        ", model has " + std::to_string(model->NumParams()));
  }
  size_t offset = 0;
  for (Tensor* p : model->Params()) {
    std::memcpy(p->data(), flat.data() + offset,
                static_cast<size_t>(p->size()) * sizeof(float));
    offset += static_cast<size_t>(p->size());
  }
  return util::Status::Ok();
}

std::vector<uint8_t> SerializeParams(const Sequential& model) {
  const std::vector<float> flat = FlattenParams(model);
  const uint64_t count = flat.size();
  std::vector<uint8_t> bytes(sizeof(uint64_t) + flat.size() * sizeof(float));
  std::memcpy(bytes.data(), &count, sizeof(uint64_t));
  std::memcpy(bytes.data() + sizeof(uint64_t), flat.data(),
              flat.size() * sizeof(float));
  return bytes;
}

util::Status DeserializeParams(const std::vector<uint8_t>& bytes,
                               Sequential* model) {
  if (bytes.size() < sizeof(uint64_t)) {
    return util::Status::InvalidArgument("buffer too small for header");
  }
  uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(uint64_t));
  if (bytes.size() != sizeof(uint64_t) + count * sizeof(float)) {
    return util::Status::InvalidArgument("buffer size does not match header");
  }
  std::vector<float> flat(count);
  std::memcpy(flat.data(), bytes.data() + sizeof(uint64_t),
              count * sizeof(float));
  return UnflattenParams(flat, model);
}

util::Status SaveCheckpoint(const Sequential& model,
                            const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeParams(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::Ok();
}

util::Status LoadCheckpoint(const std::string& path, Sequential* model) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return util::Status::Internal("read failed: " + path);
  }
  return DeserializeParams(bytes, model);
}

}  // namespace fedmigr::nn
