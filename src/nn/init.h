// Weight initialization schemes.

#ifndef FEDMIGR_NN_INIT_H_
#define FEDMIGR_NN_INIT_H_

#include "nn/tensor.h"
#include "util/rng.h"

namespace fedmigr::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
// Suits tanh/sigmoid/linear layers.
void XavierUniform(Tensor* weights, int fan_in, int fan_out, util::Rng* rng);

// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Suits ReLU layers.
void HeNormal(Tensor* weights, int fan_in, util::Rng* rng);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_INIT_H_
