#include "nn/optimizer.h"

#include <cmath>

#include "nn/serialize.h"
#include "util/logging.h"

namespace fedmigr::nn {

namespace {

void WriteTensorList(util::ByteWriter* writer,
                     const std::vector<Tensor>& tensors) {
  writer->WriteU64(tensors.size());
  for (const Tensor& t : tensors) WriteTensor(writer, t);
}

util::Status ReadTensorList(util::ByteReader* reader,
                            std::vector<Tensor>* tensors) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > reader->remaining()) {
    return util::Status::InvalidArgument("tensor list length exceeds buffer");
  }
  std::vector<Tensor> result(static_cast<size_t>(count));
  for (auto& t : result) {
    FEDMIGR_RETURN_IF_ERROR(ReadTensor(reader, &t));
  }
  *tensors = std::move(result);
  return util::Status::Ok();
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {}

void Sgd::Step(Sequential* model) {
  auto params = model->Params();
  auto grads = model->Grads();
  FEDMIGR_CHECK_EQ(params.size(), grads.size());
  if (momentum_ != 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    for (Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  const float lr = static_cast<float>(learning_rate_);
  const float mu = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    FEDMIGR_CHECK(p.SameShape(g));
    if (momentum_ != 0.0) {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < p.size(); ++j) {
        const float grad = g[j] + wd * p[j];
        v[j] = mu * v[j] + grad;
        p[j] -= lr * v[j];
      }
    } else {
      for (int64_t j = 0; j < p.size(); ++j) {
        p[j] -= lr * (g[j] + wd * p[j]);
      }
    }
  }
}

void Sgd::SaveState(util::ByteWriter* writer) const {
  WriteTensorList(writer, velocity_);
}

util::Status Sgd::LoadState(util::ByteReader* reader) {
  return ReadTensorList(reader, &velocity_);
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::Step(Sequential* model) {
  auto params = model->Params();
  auto grads = model->Grads();
  FEDMIGR_CHECK_EQ(params.size(), grads.size());
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step = static_cast<float>(learning_rate_ / bias1);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g[j]);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j]);
      const double vhat = v[j] / bias2;
      p[j] -= step * m[j] / static_cast<float>(std::sqrt(vhat) + epsilon_);
    }
  }
}

void Adam::SaveState(util::ByteWriter* writer) const {
  writer->WriteI64(t_);
  WriteTensorList(writer, m_);
  WriteTensorList(writer, v_);
}

util::Status Adam::LoadState(util::ByteReader* reader) {
  int64_t t = 0;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&t));
  FEDMIGR_RETURN_IF_ERROR(ReadTensorList(reader, &m));
  FEDMIGR_RETURN_IF_ERROR(ReadTensorList(reader, &v));
  if (t < 0 || m.size() != v.size()) {
    return util::Status::InvalidArgument("inconsistent Adam state");
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return util::Status::Ok();
}

}  // namespace fedmigr::nn
