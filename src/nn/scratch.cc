#include "nn/scratch.h"

#include <algorithm>

namespace fedmigr::nn {

namespace {
constexpr int64_t kGranularity = 16;       // floats; keeps panels 64B-apart
constexpr int64_t kMinChunkFloats = 1 << 16;  // 256 KiB first chunk
}  // namespace

float* ScratchArena::AllocFloats(int64_t n) {
  n = (n + kGranularity - 1) / kGranularity * kGranularity;
  // Advance through existing chunks (everything past current_ is fully
  // rewound) before growing.
  while (current_ < chunks_.size()) {
    Chunk& chunk = chunks_[current_];
    if (chunk.capacity - chunk.used >= n) {
      float* out = chunk.data.get() + chunk.used;
      chunk.used += n;
      return out;
    }
    ++current_;
  }
  Chunk chunk;
  const int64_t prev =
      chunks_.empty() ? 0 : 2 * chunks_.back().capacity;
  chunk.capacity = std::max({n, prev, kMinChunkFloats});
  chunk.data = std::make_unique<float[]>(static_cast<size_t>(chunk.capacity));
  chunk.used = n;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  return chunks_.back().data.get();
}

ScratchArena& ScratchArena::ThreadLocal() {
  static thread_local ScratchArena arena;
  return arena;
}

int64_t ScratchArena::capacity() const {
  int64_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.capacity;
  return total;
}

ScratchArena::Scope::Scope()
    : arena_(ThreadLocal()),
      chunk_(arena_.current_),
      used_(arena_.chunks_.empty()
                ? 0
                : arena_.chunks_[arena_.current_].used) {}

ScratchArena::Scope::~Scope() {
  for (size_t i = chunk_ + 1; i < arena_.chunks_.size(); ++i) {
    arena_.chunks_[i].used = 0;
  }
  if (chunk_ < arena_.chunks_.size()) {
    arena_.chunks_[chunk_].used = used_;
  }
  arena_.current_ = chunk_;
}

}  // namespace fedmigr::nn
