// First-order optimizers. SGD (optionally with momentum) drives FL local
// updating, as in the paper; Adam trains the DDPG actor/critic.

#ifndef FEDMIGR_NN_OPTIMIZER_H_
#define FEDMIGR_NN_OPTIMIZER_H_

#include <vector>

#include "nn/sequential.h"
#include "nn/tensor.h"
#include "util/serial.h"

namespace fedmigr::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the model's current gradients, then leaves the
  // gradients untouched (callers ZeroGrads() between mini-batches).
  virtual void Step(Sequential* model) = 0;

  // Full internal state (momentum/moment buffers, step counters) for the
  // run-snapshot subsystem; restoring resumes updates bit-identically.
  virtual void SaveState(util::ByteWriter* writer) const = 0;
  virtual util::Status LoadState(util::ByteReader* reader) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0,
               double weight_decay = 0.0);

  void Step(Sequential* model) override;
  void SaveState(util::ByteWriter* writer) const override;
  util::Status LoadState(util::ByteReader* reader) override;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 private:
  // SNAPSHOT-SKIP(hyperparameters, supplied identically on resume)
  double learning_rate_;
  double momentum_;
  double weight_decay_;  // SNAPSHOT-SKIP(hyperparameter, from config)
  // Velocity buffers, lazily sized to the first model seen. Keyed by
  // parameter position; an optimizer instance serves one model.
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void Step(Sequential* model) override;
  void SaveState(util::ByteWriter* writer) const override;
  util::Status LoadState(util::ByteReader* reader) override;

 private:
  // SNAPSHOT-SKIP(hyperparameters, supplied identically on resume)
  double learning_rate_;
  // SNAPSHOT-SKIP(hyperparameters, supplied identically on resume)
  double beta1_;
  double beta2_;
  double epsilon_;  // SNAPSHOT-SKIP(hyperparameter, from config)
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_OPTIMIZER_H_
