// Concrete layers: Dense, Conv2D, MaxPool2x2, activations, Flatten.
//
// All layers follow the Layer contract in layer.h. Shapes:
//   Dense     [N, in]           -> [N, out]
//   Conv2D    [N, Cin, H, W]    -> [N, Cout, H', W']  (stride 1, zero pad)
//   MaxPool   [N, C, H, W]      -> [N, C, H/2, W/2]
//   Flatten   [N, ...]          -> [N, prod(...)]
//   ReLU/Tanh/Sigmoid: elementwise, shape-preserving.

#ifndef FEDMIGR_NN_LAYERS_H_
#define FEDMIGR_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace fedmigr::nn {

// Fully connected layer: y = x W^T + b, with W of shape [out, in].
class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> Grads() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::string name() const override { return "Dense"; }
  std::unique_ptr<Layer> Clone() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  Dense() = default;  // for Clone

  int in_features_ = 0;
  int out_features_ = 0;
  Tensor weights_;       // [out, in]
  Tensor bias_;          // [out]
  Tensor grad_weights_;  // [out, in]
  Tensor grad_bias_;     // [out]
  Tensor cached_input_;  // [N, in]
};

// 2-D convolution, stride 1, symmetric zero padding.
class Conv2D : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel_size, int pad,
         util::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&kernel_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&grad_kernel_, &grad_bias_}; }
  std::string name() const override { return "Conv2D"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Conv2D() = default;

  int in_channels_ = 0;
  int out_channels_ = 0;
  int kernel_size_ = 0;
  int pad_ = 0;
  Tensor kernel_;  // [out, in, k, k]
  Tensor bias_;    // [out]
  Tensor grad_kernel_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

// 2x2 max pooling with stride 2.
class MaxPool2x2 : public Layer {
 public:
  MaxPool2x2() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2x2"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2x2>();
  }

 private:
  Tensor argmax_;
  Shape input_shape_;
};

// Collapses all trailing dimensions: [N, ...] -> [N, prod(...)].
class Flatten : public Layer {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  Shape input_shape_;
};

class ReLU : public Layer {
 public:
  ReLU() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tanh() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  Sigmoid() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Sigmoid>();
  }

 private:
  Tensor cached_output_;
};

// Row-wise softmax. Only used as the output nonlinearity of the DRL actor;
// classification losses fold softmax into the loss for stability.
class Softmax : public Layer {
 public:
  Softmax() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Softmax"; }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Softmax>();
  }

 private:
  Tensor cached_output_;
};

// Residual block over two Dense+ReLU sublayers: y = ReLU(x + F(x)).
// Requires in == out features. Stand-in for the residual connections of the
// paper's ResNet-152 model.
class ResidualDense : public Layer {
 public:
  ResidualDense(int features, int hidden, util::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;
  std::string name() const override { return "ResidualDense"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  ResidualDense() = default;

  std::unique_ptr<Dense> fc1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Dense> fc2_;
  Tensor cached_sum_;  // x + F(x), pre-activation of the output ReLU
};

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_LAYERS_H_
