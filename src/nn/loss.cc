#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::nn {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  FEDMIGR_CHECK_EQ(logits.ndim(), 2);
  const int batch = logits.dim(0), classes = logits.dim(1);
  FEDMIGR_CHECK_EQ(static_cast<int>(labels.size()), batch);

  LossResult result;
  result.grad_logits = Tensor({batch, classes});
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const int label = labels[static_cast<size_t>(n)];
    FEDMIGR_CHECK_GE(label, 0);
    FEDMIGR_CHECK_LT(label, classes);
    float row_max = logits.At(n, 0);
    for (int c = 1; c < classes; ++c) {
      row_max = std::max(row_max, logits.At(n, c));
    }
    double sum = 0.0;
    for (int c = 0; c < classes; ++c) {
      sum += std::exp(static_cast<double>(logits.At(n, c) - row_max));
    }
    const double log_sum = std::log(sum) + row_max;
    result.loss += log_sum - logits.At(n, label);
    for (int c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.At(n, c)) - log_sum);
      result.grad_logits.At(n, c) =
          (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.loss /= batch;
  return result;
}

LossResult MeanSquaredError(const Tensor& prediction, const Tensor& target) {
  FEDMIGR_CHECK(prediction.SameShape(target));
  LossResult result;
  result.grad_logits = Tensor(prediction.shape());
  const int64_t n = prediction.size();
  const float scale = 2.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const double diff = prediction[i] - target[i];
    result.loss += diff * diff;
    result.grad_logits[i] = static_cast<float>(diff) * scale;
  }
  result.loss /= static_cast<double>(n);
  return result;
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  FEDMIGR_CHECK_EQ(logits.ndim(), 2);
  const int batch = logits.dim(0), classes = logits.dim(1);
  FEDMIGR_CHECK_EQ(static_cast<int>(labels.size()), batch);
  if (batch == 0) return 0.0;
  int correct = 0;
  for (int n = 0; n < batch; ++n) {
    int argmax = 0;
    for (int c = 1; c < classes; ++c) {
      if (logits.At(n, c) > logits.At(n, argmax)) argmax = c;
    }
    if (argmax == labels[static_cast<size_t>(n)]) ++correct;
  }
  return static_cast<double>(correct) / batch;
}

}  // namespace fedmigr::nn
