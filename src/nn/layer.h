// Abstract layer interface for the sequential networks used by all FL
// schemes and the DRL agent.
//
// Layers own their parameters and gradient buffers; a forward pass caches
// whatever the matching backward pass needs. Training is single-threaded per
// model instance (each simulated client owns its model), so no locking.

#ifndef FEDMIGR_NN_LAYER_H_
#define FEDMIGR_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace fedmigr::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output. `training` toggles train-only behaviour
  // (e.g., dropout); inference passes false.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  // Computes the gradient w.r.t. the layer input given the gradient w.r.t.
  // the output of the most recent Forward(). Accumulates parameter
  // gradients into the buffers returned by Grads().
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  // Trainable parameters / matching gradient buffers. Empty for stateless
  // layers. Order is stable and identical between the two lists.
  virtual std::vector<Tensor*> Params() { return {}; }
  virtual std::vector<Tensor*> Grads() { return {}; }

  // Human-readable layer tag for debugging and serialization checks.
  virtual std::string name() const = 0;

  // Deep copy (parameters included, caches excluded). Used when a model is
  // distributed to or migrated between simulated clients.
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_LAYER_H_
