#include "nn/ops.h"

#include <algorithm>
#include <cstring>

#include "nn/gemm.h"
#include "nn/scratch.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace fedmigr::nn {

namespace {

// Expands one NCHW image (cin x h x w) into the im2col column matrix
// cols[cin*kh*kw, oh*ow]: row (ic, ky, kx), column (oy, ox) holds
// input(ic, oy + ky - pad, ox + kx - pad), zero outside the image. Rows
// are ordered (ic, ky, kx) — the same order the legacy conv kernel
// accumulated taps in, so the GEMM's k-ordered reduction reproduces its
// float association.
void Im2col(const float* in, int cin, int h, int w, int kh, int kw, int pad,
            int oh, int ow, float* cols) {
  float* dst = cols;
  for (int ic = 0; ic < cin; ++ic) {
    const float* in_c = in + static_cast<int64_t>(ic) * h * w;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int x_lo = std::max(0, pad - kx);
        const int x_hi = std::min(ow, w + pad - kx);
        for (int oy = 0; oy < oh; ++oy, dst += ow) {
          const int iy = oy + ky - pad;
          if (iy < 0 || iy >= h || x_hi <= x_lo) {
            std::memset(dst, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          for (int ox = 0; ox < x_lo; ++ox) dst[ox] = 0.0f;
          std::memcpy(dst + x_lo, in_c + iy * w + (x_lo + kx - pad),
                      static_cast<size_t>(x_hi - x_lo) * sizeof(float));
          for (int ox = x_hi; ox < ow; ++ox) dst[ox] = 0.0f;
        }
      }
    }
  }
}

// Transpose of Im2col: scatter-adds the column matrix back into the
// (pre-zeroed) image gradient. Walks rows in the same (ic, ky, kx) order.
void Col2im(const float* cols, int cin, int h, int w, int kh, int kw, int pad,
            int oh, int ow, float* gin) {
  const float* src = cols;
  for (int ic = 0; ic < cin; ++ic) {
    float* gin_c = gin + static_cast<int64_t>(ic) * h * w;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int x_lo = std::max(0, pad - kx);
        const int x_hi = std::min(ow, w + pad - kx);
        for (int oy = 0; oy < oh; ++oy, src += ow) {
          const int iy = oy + ky - pad;
          if (iy < 0 || iy >= h || x_hi <= x_lo) continue;
          float* gin_row = gin_c + iy * w + (x_lo + kx - pad);
          for (int ox = x_lo; ox < x_hi; ++ox) {
            gin_row[ox - x_lo] += src[ox];
          }
        }
      }
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMIGR_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  Sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n);
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FEDMIGR_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  Sgemm(true, false, m, n, k, a.data(), m, b.data(), n, c.data(), n);
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FEDMIGR_CHECK_EQ(b.dim(1), k);
  Tensor c({m, n});
  Sgemm(false, true, m, n, k, a.data(), k, b.data(), k, c.data(), n);
  return c;
}

Tensor Conv2dForward(const Tensor& input, const Tensor& kernel,
                     const Tensor& bias, int pad) {
  FEDMIGR_CHECK_EQ(input.ndim(), 4);
  FEDMIGR_CHECK_EQ(kernel.ndim(), 4);
  const int batch = input.dim(0), cin = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  const int cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  FEDMIGR_CHECK_EQ(kernel.dim(1), cin);
  FEDMIGR_CHECK_EQ(bias.size(), cout);
  const int oh = h + 2 * pad - kh + 1;
  const int ow = w + 2 * pad - kw + 1;
  FEDMIGR_CHECK_GT(oh, 0);
  FEDMIGR_CHECK_GT(ow, 0);
  Tensor output({batch, cout, oh, ow});

  const int kcols = cin * kh * kw;  // GEMM reduction depth
  const int ohw = oh * ow;
  if (obs::Telemetry::enabled()) {
    static obs::Counter* conv_calls =
        obs::Registry::Default().GetCounter("nn/conv_calls");
    static obs::Counter* conv_flops =
        obs::Registry::Default().GetCounter("nn/conv_flops");
    conv_calls->Increment();
    conv_flops->Add(2ll * batch * cout * ohw * kcols);
  }
  const int64_t in_img = static_cast<int64_t>(cin) * h * w;
  const int64_t out_img = static_cast<int64_t>(cout) * ohw;
  const float* in = input.data();
  const float* ker = kernel.data();  // [cout, kcols] row-major
  const float* bias_p = bias.data();
  float* out = output.data();

  // One image per parallel chunk; images are independent, so any split of
  // the batch yields bit-identical outputs.
  IntraOpParallelRange(batch, 1, [&](int64_t img_begin, int64_t img_end) {
    ScratchArena::Scope scope;
    float* cols = ScratchArena::ThreadLocal().AllocFloats(
        static_cast<int64_t>(kcols) * ohw);
    for (int64_t img = img_begin; img < img_end; ++img) {
      Im2col(in + img * in_img, cin, h, w, kh, kw, pad, oh, ow, cols);
      float* out_n = out + img * out_img;
      // Pre-fill with the bias and let the GEMM accumulate on top of it
      // (kSeedFromC), matching the legacy kernel's bias-first reduction.
      for (int oc = 0; oc < cout; ++oc) {
        std::fill(out_n + static_cast<int64_t>(oc) * ohw,
                  out_n + static_cast<int64_t>(oc + 1) * ohw, bias_p[oc]);
      }
      Sgemm(false, false, cout, ohw, kcols, ker, kcols, cols, ohw, out_n, ohw,
            GemmAcc::kSeedFromC);
    }
  });
  return output;
}

void Conv2dBackward(const Tensor& input, const Tensor& kernel, int pad,
                    const Tensor& grad_output, Tensor* grad_input,
                    Tensor* grad_kernel, Tensor* grad_bias) {
  const int batch = input.dim(0), cin = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  const int cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  FEDMIGR_CHECK_EQ(grad_output.dim(0), batch);
  FEDMIGR_CHECK_EQ(grad_output.dim(1), cout);

  *grad_input = Tensor(input.shape());
  *grad_kernel = Tensor(kernel.shape());
  *grad_bias = Tensor(Shape{cout});

  const int kcols = cin * kh * kw;
  const int ohw = oh * ow;
  if (obs::Telemetry::enabled()) {
    static obs::Counter* conv_calls =
        obs::Registry::Default().GetCounter("nn/conv_calls");
    static obs::Counter* conv_flops =
        obs::Registry::Default().GetCounter("nn/conv_flops");
    conv_calls->Increment();
    // Two GEMMs per image (kernel gradient + input gradient).
    conv_flops->Add(4ll * batch * cout * ohw * kcols);
  }
  const int64_t in_img = static_cast<int64_t>(cin) * h * w;
  const int64_t out_img = static_cast<int64_t>(cout) * ohw;
  const float* in = input.data();
  const float* ker = kernel.data();
  const float* go = grad_output.data();
  float* gin = grad_input->data();
  float* gker = grad_kernel->data();
  float* gbias = grad_bias->data();

  // Bias gradient: a cheap streaming sum, kept serial and in the legacy
  // element order.
  for (int64_t img = 0; img < batch; ++img) {
    const float* go_n = go + img * out_img;
    for (int oc = 0; oc < cout; ++oc) {
      const float* go_c = go_n + static_cast<int64_t>(oc) * ohw;
      for (int i = 0; i < ohw; ++i) gbias[oc] += go_c[i];
    }
  }

  // Kernel gradient: per-image register-reduced partials (one GEMM each),
  // summed across the batch in image order afterwards — the reduction
  // tree is fixed, so the result is independent of the thread count.
  ScratchArena::Scope caller_scope;
  const int64_t gk_size = static_cast<int64_t>(cout) * kcols;
  float* gker_partials =
      ScratchArena::ThreadLocal().AllocFloats(batch * gk_size);

  IntraOpParallelRange(batch, 1, [&](int64_t img_begin, int64_t img_end) {
    ScratchArena::Scope scope;
    ScratchArena& arena = ScratchArena::ThreadLocal();
    float* cols = arena.AllocFloats(static_cast<int64_t>(kcols) * ohw);
    float* cols_grad = arena.AllocFloats(static_cast<int64_t>(kcols) * ohw);
    for (int64_t img = img_begin; img < img_end; ++img) {
      const float* go_n = go + img * out_img;
      // dK_img = dY_img (cout x ohw) · cols_img^T (ohw x kcols).
      Im2col(in + img * in_img, cin, h, w, kh, kw, pad, oh, ow, cols);
      Sgemm(false, true, cout, kcols, ohw, go_n, ohw, cols, ohw,
            gker_partials + img * gk_size, kcols, GemmAcc::kOverwrite);
      // dcols = K^T (kcols x cout) · dY_img (cout x ohw), scattered back
      // into this image's (disjoint) slice of grad_input.
      Sgemm(true, false, kcols, ohw, cout, ker, kcols, go_n, ohw, cols_grad,
            ohw, GemmAcc::kOverwrite);
      Col2im(cols_grad, cin, h, w, kh, kw, pad, oh, ow, gin + img * in_img);
    }
  });

  for (int64_t img = 0; img < batch; ++img) {
    const float* partial = gker_partials + img * gk_size;
    for (int64_t i = 0; i < gk_size; ++i) gker[i] += partial[i];
  }
}

Tensor MaxPool2x2Forward(const Tensor& input, Tensor* argmax) {
  FEDMIGR_CHECK_EQ(input.ndim(), 4);
  const int batch = input.dim(0), c = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  FEDMIGR_CHECK_EQ(h % 2, 0);
  FEDMIGR_CHECK_EQ(w % 2, 0);
  const int oh = h / 2, ow = w / 2;
  Tensor output({batch, c, oh, ow});
  *argmax = Tensor({batch, c, oh, ow});
  const float* in = input.data();
  float* out = output.data();
  float* arg = argmax->data();
  const int64_t planes = static_cast<int64_t>(batch) * c;
  for (int64_t plane = 0; plane < planes; ++plane) {
    const float* in_p = in + plane * h * w;
    const int64_t in_base = plane * h * w;
    for (int oy = 0; oy < oh; ++oy) {
      const float* row0 = in_p + (2 * oy) * w;
      const float* row1 = row0 + w;
      for (int ox = 0; ox < ow; ++ox) {
        const int x = 2 * ox;
        // Same tie-breaking as the scalar original: strictly-greater
        // comparisons in (dy, dx) order keep the first maximum.
        float best = row0[x];
        int best_dy = 0, best_dx = 0;
        if (row0[x + 1] > best) {
          best = row0[x + 1];
          best_dx = 1;
        }
        if (row1[x] > best) {
          best = row1[x];
          best_dy = 1;
          best_dx = 0;
        }
        if (row1[x + 1] > best) {
          best = row1[x + 1];
          best_dy = 1;
          best_dx = 1;
        }
        *out++ = best;
        *arg++ = static_cast<float>(in_base + (2 * oy + best_dy) * w + x +
                                    best_dx);
      }
    }
  }
  return output;
}

Tensor MaxPool2x2Backward(const Tensor& grad_output, const Tensor& argmax,
                          const Shape& input_shape) {
  Tensor grad_input(input_shape);
  FEDMIGR_CHECK(grad_output.SameShape(argmax));
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    const int64_t flat = static_cast<int64_t>(argmax[i]);
    grad_input[flat] += grad_output[i];
  }
  return grad_input;
}

}  // namespace fedmigr::nn
