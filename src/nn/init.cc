#include "nn/init.h"

#include <cmath>

namespace fedmigr::nn {

void XavierUniform(Tensor* weights, int fan_in, int fan_out, util::Rng* rng) {
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  for (int64_t i = 0; i < weights->size(); ++i) {
    (*weights)[i] = static_cast<float>(rng->Uniform(-a, a));
  }
}

void HeNormal(Tensor* weights, int fan_in, util::Rng* rng) {
  const double stddev = std::sqrt(2.0 / fan_in);
  for (int64_t i = 0; i < weights->size(); ++i) {
    (*weights)[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
}

}  // namespace fedmigr::nn
