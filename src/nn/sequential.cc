#include "nn/sequential.h"

#include <cmath>

#include "util/logging.h"

namespace fedmigr::nn {

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->Clone());
  return *this;
}

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  FEDMIGR_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->Forward(activation, training);
  }
  return activation;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

std::vector<Tensor*> Sequential::Params() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<const Tensor*> Sequential::Params() const {
  std::vector<const Tensor*> params;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> Sequential::Grads() {
  std::vector<Tensor*> grads;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Grads()) grads.push_back(g);
  }
  return grads;
}

void Sequential::ZeroGrads() {
  for (Tensor* g : Grads()) g->Zero();
}

int64_t Sequential::NumParams() const {
  int64_t n = 0;
  for (const Tensor* p : Params()) n += p->size();
  return n;
}

void Sequential::CopyParamsFrom(const Sequential& other) {
  auto dst = Params();
  auto src = other.Params();
  FEDMIGR_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    FEDMIGR_CHECK(dst[i]->SameShape(*src[i]));
    *dst[i] = *src[i];
  }
}

void Sequential::LerpParamsFrom(const Sequential& other, float alpha) {
  auto dst = Params();
  auto src = other.Params();
  FEDMIGR_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i]->Scale(1.0f - alpha);
    dst[i]->Axpy(alpha, *src[i]);
  }
}

double Sequential::ParamNorm() const {
  double sum = 0.0;
  for (const Tensor* p : Params()) {
    const double norm = p->Norm();
    sum += norm * norm;
  }
  return std::sqrt(sum);
}

double Sequential::ParamDistance(const Sequential& a, const Sequential& b) {
  auto pa = a.Params();
  auto pb = b.Params();
  FEDMIGR_CHECK_EQ(pa.size(), pb.size());
  double sum = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) {
    FEDMIGR_CHECK(pa[i]->SameShape(*pb[i]));
    for (int64_t j = 0; j < pa[i]->size(); ++j) {
      const double diff = (*pa[i])[j] - (*pb[i])[j];
      sum += diff * diff;
    }
  }
  return std::sqrt(sum);
}

}  // namespace fedmigr::nn
