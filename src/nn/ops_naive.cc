// Reference kernels: the scalar loop nests the GEMM layer replaced.
// These are the oracle for the randomized equivalence tests in
// tests/nn/gemm_test.cc and the baseline side of bench_nn_ops; the layers
// never call them. Keep them boring and obviously correct.

#include <algorithm>

#include "nn/ops.h"
#include "util/logging.h"

namespace fedmigr::nn {

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMIGR_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj order: streams through B and C rows, cache-friendly for row-major.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = pa[static_cast<size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + static_cast<size_t>(kk) * n;
      float* crow = pc + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransANaive(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FEDMIGR_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + static_cast<size_t>(kk) * m;
    const float* brow = pb + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.ndim(), 2);
  FEDMIGR_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FEDMIGR_CHECK_EQ(b.dim(1), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<size_t>(i) * k;
    float* crow = pc + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
  return c;
}

Tensor Conv2dForwardNaive(const Tensor& input, const Tensor& kernel,
                          const Tensor& bias, int pad) {
  FEDMIGR_CHECK_EQ(input.ndim(), 4);
  FEDMIGR_CHECK_EQ(kernel.ndim(), 4);
  const int batch = input.dim(0), cin = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  const int cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  FEDMIGR_CHECK_EQ(kernel.dim(1), cin);
  FEDMIGR_CHECK_EQ(bias.size(), cout);
  const int oh = h + 2 * pad - kh + 1;
  const int ow = w + 2 * pad - kw + 1;
  FEDMIGR_CHECK_GT(oh, 0);
  FEDMIGR_CHECK_GT(ow, 0);
  Tensor output({batch, cout, oh, ow});
  const float* in = input.data();
  const float* ker = kernel.data();
  float* out = output.data();
  const int64_t in_chan = static_cast<int64_t>(h) * w;
  const int64_t in_img = in_chan * cin;
  const int64_t out_chan = static_cast<int64_t>(oh) * ow;
  const int64_t out_img = out_chan * cout;
  const int64_t ker_chan = static_cast<int64_t>(kh) * kw;
  const int64_t ker_filter = ker_chan * cin;
  for (int n = 0; n < batch; ++n) {
    const float* in_n = in + n * in_img;
    float* out_n = out + n * out_img;
    for (int oc = 0; oc < cout; ++oc) {
      const float b = bias[oc];
      float* out_c = out_n + oc * out_chan;
      for (int64_t i = 0; i < out_chan; ++i) out_c[i] = b;
      const float* ker_f = ker + oc * ker_filter;
      for (int ic = 0; ic < cin; ++ic) {
        const float* in_c = in_n + ic * in_chan;
        const float* ker_c = ker_f + ic * ker_chan;
        // Accumulate one kernel tap across the whole output plane: the
        // inner loops become contiguous row sweeps.
        for (int ky = 0; ky < kh; ++ky) {
          for (int kx = 0; kx < kw; ++kx) {
            const float kv = ker_c[ky * kw + kx];
            if (kv == 0.0f) continue;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy + ky - pad;
              if (iy < 0 || iy >= h) continue;
              const int x_lo = std::max(0, pad - kx);
              const int x_hi = std::min(ow, w + pad - kx);
              const float* in_row = in_c + iy * w + (x_lo + kx - pad);
              float* out_row = out_c + oy * ow + x_lo;
              for (int ox = x_lo; ox < x_hi; ++ox) {
                *out_row++ += kv * *in_row++;
              }
            }
          }
        }
      }
    }
  }
  return output;
}

void Conv2dBackwardNaive(const Tensor& input, const Tensor& kernel, int pad,
                         const Tensor& grad_output, Tensor* grad_input,
                         Tensor* grad_kernel, Tensor* grad_bias) {
  const int batch = input.dim(0), cin = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  const int cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  FEDMIGR_CHECK_EQ(grad_output.dim(0), batch);
  FEDMIGR_CHECK_EQ(grad_output.dim(1), cout);

  *grad_input = Tensor(input.shape());
  *grad_kernel = Tensor(kernel.shape());
  *grad_bias = Tensor(Shape{cout});

  const float* in = input.data();
  const float* ker = kernel.data();
  const float* go = grad_output.data();
  float* gin = grad_input->data();
  float* gker = grad_kernel->data();
  float* gbias = grad_bias->data();
  const int64_t in_chan = static_cast<int64_t>(h) * w;
  const int64_t in_img = in_chan * cin;
  const int64_t out_chan = static_cast<int64_t>(oh) * ow;
  const int64_t out_img = out_chan * cout;
  const int64_t ker_chan = static_cast<int64_t>(kh) * kw;
  const int64_t ker_filter = ker_chan * cin;

  for (int n = 0; n < batch; ++n) {
    const float* in_n = in + n * in_img;
    const float* go_n = go + n * out_img;
    float* gin_n = gin + n * in_img;
    for (int oc = 0; oc < cout; ++oc) {
      const float* go_c = go_n + oc * out_chan;
      for (int64_t i = 0; i < out_chan; ++i) gbias[oc] += go_c[i];
      const float* ker_f = ker + oc * ker_filter;
      float* gker_f = gker + oc * ker_filter;
      for (int ic = 0; ic < cin; ++ic) {
        const float* in_c = in_n + ic * in_chan;
        float* gin_c = gin_n + ic * in_chan;
        const float* ker_c = ker_f + ic * ker_chan;
        float* gker_c = gker_f + ic * ker_chan;
        for (int ky = 0; ky < kh; ++ky) {
          for (int kx = 0; kx < kw; ++kx) {
            const float kv = ker_c[ky * kw + kx];
            float tap_grad = 0.0f;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy + ky - pad;
              if (iy < 0 || iy >= h) continue;
              const int x_lo = std::max(0, pad - kx);
              const int x_hi = std::min(ow, w + pad - kx);
              const float* in_row = in_c + iy * w + (x_lo + kx - pad);
              float* gin_row = gin_c + iy * w + (x_lo + kx - pad);
              const float* go_row = go_c + oy * ow + x_lo;
              for (int ox = x_lo; ox < x_hi; ++ox) {
                const float g = *go_row++;
                tap_grad += g * *in_row;
                *gin_row += g * kv;
                ++in_row;
                ++gin_row;
              }
            }
            gker_c[ky * kw + kx] += tap_grad;
          }
        }
      }
    }
  }
}

}  // namespace fedmigr::nn
