// Loss functions. SoftmaxCrossEntropy folds softmax into the loss for
// numerical stability; MSE is used by the DDPG critic.

#ifndef FEDMIGR_NN_LOSS_H_
#define FEDMIGR_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace fedmigr::nn {

struct LossResult {
  double loss = 0.0;     // mean over the batch
  Tensor grad_logits;    // dL/dlogits, already divided by batch size
};

// Mean softmax cross-entropy of `logits` [N, C] against integer `labels`.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

// Mean squared error between `prediction` and `target` (same shape).
LossResult MeanSquaredError(const Tensor& prediction, const Tensor& target);

// Fraction of rows whose argmax matches the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_LOSS_H_
