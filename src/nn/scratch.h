// Per-thread bump allocator for kernel scratch memory: im2col column
// matrices, GEMM packing panels, per-image gradient partials. Hot-loop
// allocations reuse the same chunks round after round, so steady-state
// training performs no heap traffic inside the kernels.
//
// Usage: open a Scope, AllocFloats freely, let the Scope rewind on
// destruction. Chunks never move once allocated (growth appends a new
// chunk), so pointers handed out stay valid until the Scope that covers
// them closes. Scopes nest: a conv kernel holds its im2col buffer open
// while the GEMM it calls allocates and releases packing panels.
//
// Thread safety: arenas are strictly thread-local (ThreadLocal() returns
// the calling thread's instance) and no pointer may cross threads; the
// `tsan` preset's GemmConcurrency tests exercise concurrent kernels each
// bumping their own arena.

#ifndef FEDMIGR_NN_SCRATCH_H_
#define FEDMIGR_NN_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fedmigr::nn {

class ScratchArena {
 public:
  // Uninitialized storage for n floats. Requests are rounded up to
  // 16-float granularity; SIMD consumers use unaligned loads, so the
  // natural new[] alignment suffices.
  float* AllocFloats(int64_t n);

  // The calling thread's arena.
  static ScratchArena& ThreadLocal();

  // RAII marker: rewinds the thread-local arena to its entry position.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    size_t chunk_;
    int64_t used_;
  };

  // Total floats reserved across all chunks (diagnostics/tests).
  int64_t capacity() const;

 private:
  struct Chunk {
    std::unique_ptr<float[]> data;
    int64_t capacity = 0;  // floats
    int64_t used = 0;      // floats
  };

  std::vector<Chunk> chunks_;
  size_t current_ = 0;
};

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_SCRATCH_H_
