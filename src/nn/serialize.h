// Parameter (de)serialization.
//
// Model transfers in the simulator are charged by serialized byte size, and
// the DP module perturbs serialized parameter vectors; both go through the
// flat little-endian float encoding defined here.

#ifndef FEDMIGR_NN_SERIALIZE_H_
#define FEDMIGR_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.h"
#include "util/serial.h"
#include "util/status.h"

namespace fedmigr::nn {

// Flattens all parameters into one float vector (stable layer order).
std::vector<float> FlattenParams(const Sequential& model);

// Writes a flat float vector back into the model's parameters. Fails if the
// element count does not match.
util::Status UnflattenParams(const std::vector<float>& flat,
                             Sequential* model);

// Byte-level encoding, format v2 with integrity framing:
//   [uint32 magic "FMGR"][uint32 version][uint64 count]
//   [count * float32 payload][uint32 crc32 of everything before it]
// A truncated or bit-flipped buffer fails the size or checksum test and is
// rejected with a Status (kDataLoss for checksum mismatches) instead of
// silently loading garbage. Both paths also reject payloads containing
// NaN/Inf coordinates (kDataLoss): a CRC only proves a NaN arrived intact,
// and one non-finite parameter entering an aggregation poisons the global
// model permanently. DeserializeParams also accepts the legacy v1 framing
// ([uint64 count][payload]) so old checkpoints keep loading.
// Simulated transfer sizes are metered by Sequential::ByteSize (raw
// parameter bytes), so the framing does not change traffic accounting.
std::vector<uint8_t> SerializeParams(const Sequential& model);
util::Status DeserializeParams(const std::vector<uint8_t>& bytes,
                               Sequential* model);

// Checkpointing: writes/reads the byte encoding above to a file. Saving is
// atomic (tmp file + fsync + rename), so a crash mid-write can never leave
// a torn file at the published path. Loading requires a model of the same
// architecture (same parameter count).
util::Status SaveCheckpoint(const Sequential& model,
                            const std::string& path);
util::Status LoadCheckpoint(const std::string& path, Sequential* model);

// Byte-stream helpers for snapshot serialization (core/snapshot).
void WriteTensor(util::ByteWriter* writer, const Tensor& tensor);
util::Status ReadTensor(util::ByteReader* reader, Tensor* tensor);
// Length-prefixed flattened parameters; ReadParams requires a model of the
// same parameter count.
void WriteParams(util::ByteWriter* writer, const Sequential& model);
util::Status ReadParams(util::ByteReader* reader, Sequential* model);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_SERIALIZE_H_
