// Core numeric kernels shared by the layers: GEMM-style matrix products and
// the convolution / pooling forward & backward passes.
//
// The kernels are plain loop nests with register blocking where it matters
// (matmul inner loops). Model sizes in the FedMigr experiments are small
// (tens of thousands to a few million parameters), so clarity wins over
// vendor-BLAS-grade tuning.

#ifndef FEDMIGR_NN_OPS_H_
#define FEDMIGR_NN_OPS_H_

#include "nn/tensor.h"

namespace fedmigr::nn {

// C = A(MxK) * B(KxN).
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A^T(KxM -> MxK view) * B(KxN): used for weight gradients.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// C = A(MxK) * B^T(NxK -> KxN view): used for input gradients.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

// 2-D convolution, NCHW layout, stride 1, symmetric zero padding.
//   input  [N, Cin, H, W]
//   kernel [Cout, Cin, Kh, Kw]
//   bias   [Cout]
//   output [N, Cout, H + 2*pad - Kh + 1, W + 2*pad - Kw + 1]
Tensor Conv2dForward(const Tensor& input, const Tensor& kernel,
                     const Tensor& bias, int pad);

// Gradients of Conv2dForward. grad_output has the forward output's shape.
void Conv2dBackward(const Tensor& input, const Tensor& kernel, int pad,
                    const Tensor& grad_output, Tensor* grad_input,
                    Tensor* grad_kernel, Tensor* grad_bias);

// 2x2 max pooling with stride 2 (the only pooling the paper's models use).
// `argmax` (same shape as output) records the flat input offset of each
// selected element for the backward pass.
Tensor MaxPool2x2Forward(const Tensor& input, Tensor* argmax);
Tensor MaxPool2x2Backward(const Tensor& grad_output, const Tensor& argmax,
                          const Shape& input_shape);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_OPS_H_
