// Core numeric kernels shared by the layers: GEMM-backed matrix products,
// im2col-lowered convolution forward & backward, and pooling.
//
// The matrix products call the blocked/packed/vectorized SGEMM in
// nn/gemm.h; convolutions are lowered onto the same GEMM through
// im2col/col2im with per-thread scratch-arena buffers (nn/scratch.h).
// The naive scalar loop nests they replaced are retained below as
// *Naive reference kernels — the ground truth for the randomized
// equivalence tests and the "pre-optimization" side of bench_nn_ops.

#ifndef FEDMIGR_NN_OPS_H_
#define FEDMIGR_NN_OPS_H_

#include "nn/tensor.h"

namespace fedmigr::nn {

// C = A(MxK) * B(KxN).
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A^T(KxM -> MxK view) * B(KxN): used for weight gradients.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// C = A(MxK) * B^T(NxK -> KxN view): used for input gradients.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

// 2-D convolution, NCHW layout, stride 1, symmetric zero padding.
//   input  [N, Cin, H, W]
//   kernel [Cout, Cin, Kh, Kw]
//   bias   [Cout]
//   output [N, Cout, H + 2*pad - Kh + 1, W + 2*pad - Kw + 1]
Tensor Conv2dForward(const Tensor& input, const Tensor& kernel,
                     const Tensor& bias, int pad);

// Gradients of Conv2dForward. grad_output has the forward output's shape.
void Conv2dBackward(const Tensor& input, const Tensor& kernel, int pad,
                    const Tensor& grad_output, Tensor* grad_input,
                    Tensor* grad_kernel, Tensor* grad_bias);

// 2x2 max pooling with stride 2 (the only pooling the paper's models use).
// `argmax` (same shape as output) records the flat input offset of each
// selected element for the backward pass.
Tensor MaxPool2x2Forward(const Tensor& input, Tensor* argmax);
Tensor MaxPool2x2Backward(const Tensor& grad_output, const Tensor& argmax,
                          const Shape& input_shape);

// ------------------------------------------------------ reference kernels --
// The pre-GEMM scalar implementations (ops_naive.cc). Semantically
// identical to the ops above; kept as the oracle for property tests and
// as the baseline side of the kernel benchmarks. Not used by the layers.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransANaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b);
Tensor Conv2dForwardNaive(const Tensor& input, const Tensor& kernel,
                          const Tensor& bias, int pad);
void Conv2dBackwardNaive(const Tensor& input, const Tensor& kernel, int pad,
                         const Tensor& grad_output, Tensor* grad_input,
                         Tensor* grad_kernel, Tensor* grad_bias);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_OPS_H_
