// Dense row-major float tensor: the storage type for activations, weights
// and gradients throughout the NN substrate.
//
// The tensor is deliberately simple — no views, no broadcasting beyond the
// few helpers the layers need — because every consumer in this codebase
// operates on contiguous float buffers of known shape.

#ifndef FEDMIGR_NN_TENSOR_H_
#define FEDMIGR_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fedmigr::nn {

// Shape of a tensor; up to 4 dimensions in practice ([N, C, H, W] for conv
// activations, [N, D] for dense activations, [out, in] for weights).
using Shape = std::vector<int>;

// Number of elements described by a shape.
int64_t NumElements(const Shape& shape);

// "[2, 3, 4]" — for error messages and logs.
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  // Tensor with explicit contents; data.size() must equal NumElements(shape).
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const Shape& shape() const { return shape_; }
  int dim(int i) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Multi-dimensional accessors (bounds unchecked in release; the layers are
  // the only callers and validate shapes at construction).
  float& At(int i, int j);
  float At(int i, int j) const;
  float& At(int i, int j, int k, int l);
  float At(int i, int j, int k, int l) const;

  // Reinterprets the buffer with a new shape of identical element count.
  void Reshape(Shape shape);

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // this += other (same shape).
  void Add(const Tensor& other);
  // this += alpha * other (same shape).
  void Axpy(float alpha, const Tensor& other);
  // this *= alpha.
  void Scale(float alpha);

  // Sum of all elements.
  double Sum() const;
  // L2 norm of the flattened tensor.
  double Norm() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// out = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
// out = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
// out = alpha * a.
Tensor Scale(const Tensor& a, float alpha);
// Flat dot product (same element count).
double Dot(const Tensor& a, const Tensor& b);
// Max absolute difference; used heavily by tests.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_TENSOR_H_
