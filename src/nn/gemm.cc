#include "nn/gemm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define FEDMIGR_GEMM_X86 1
#else
#define FEDMIGR_GEMM_X86 0
#endif

#include "nn/scratch.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedmigr::nn {

namespace {

constexpr int kMR = 4;   // micro-tile rows (broadcast lanes)
constexpr int kNR = 16;  // micro-tile cols (two 8-float vectors)
constexpr int kMC = 64;  // row-panel height: parallel grain, multiple of kMR

// ---------------------------------------------------------- intra-op pool --

std::mutex g_pool_mutex;
int g_intra_op_threads = 0;  // 0 = unset; resolved from env on first use
std::unique_ptr<util::ThreadPool> g_pool;

int ResolveThreadsLocked() {
  if (g_intra_op_threads == 0) {
    int threads = 1;
    if (const char* env = std::getenv("FEDMIGR_INTRA_OP_THREADS")) {
      threads = std::max(1, std::atoi(env));
    }
    g_intra_op_threads = threads;
  }
  return g_intra_op_threads;
}

// -------------------------------------------------------------- telemetry --

// GEMM call/FLOP counters batch in a thread-local tally: parallel client
// threads issue tens of thousands of small GEMMs per epoch, and a shared
// fetch_add per call turns into cache-line ping-pong that alone can blow
// the <2% telemetry budget (DESIGN.md §11). Each thread publishes into the
// registry every kGemmTallyFlush calls, so registry reads lag a live thread
// by at most kGemmTallyFlush - 1 calls.
struct GemmTally {
  int64_t calls = 0;
  int64_t flops = 0;
};
thread_local GemmTally t_gemm_tally;
constexpr int64_t kGemmTallyFlush = 512;

void FlushGemmTally(GemmTally* tally) {
  static obs::Counter* gemm_calls =
      obs::Registry::Default().GetCounter("nn/gemm_calls");
  static obs::Counter* gemm_flops =
      obs::Registry::Default().GetCounter("nn/gemm_flops");
  gemm_calls->Add(tally->calls);
  gemm_flops->Add(tally->flops);
  tally->calls = 0;
  tally->flops = 0;
}

inline void BumpGemmTally(int64_t flops) {
  GemmTally& tally = t_gemm_tally;
  ++tally.calls;
  tally.flops += flops;
  if (tally.calls >= kGemmTallyFlush) FlushGemmTally(&tally);
}

// ----------------------------------------------------------- micro-kernel --

// acc (kMR x kNR, row-major) += sum_p ap[p*kMR + r] * bp[p*kNR + c].
// ap/bp are the packed panels; the k loop runs in order, so every output
// element accumulates in k-order regardless of tiling or threading.
void MicroKernelPortable(int k, const float* ap, const float* bp, float* acc) {
  for (int p = 0; p < k; ++p) {
    const float* a = ap + p * kMR;
    const float* b = bp + p * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float ar = a[r];
      float* row = acc + r * kNR;
      for (int c = 0; c < kNR; ++c) row[c] += ar * b[c];
    }
  }
}

#if FEDMIGR_GEMM_X86
// Same reduction order as the portable kernel, with the 4x16 tile held in
// eight ymm accumulators and each multiply-add fused (1-ulp difference vs
// the portable path). Compiled for AVX2+FMA in this baseline TU via the
// target attribute; only called after a runtime CPU check.
__attribute__((target("avx2,fma"))) void MicroKernelAvx2(int k,
                                                         const float* ap,
                                                         const float* bp,
                                                         float* acc) {
  __m256 c00 = _mm256_loadu_ps(acc + 0 * kNR + 0);
  __m256 c01 = _mm256_loadu_ps(acc + 0 * kNR + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 1 * kNR + 0);
  __m256 c11 = _mm256_loadu_ps(acc + 1 * kNR + 8);
  __m256 c20 = _mm256_loadu_ps(acc + 2 * kNR + 0);
  __m256 c21 = _mm256_loadu_ps(acc + 2 * kNR + 8);
  __m256 c30 = _mm256_loadu_ps(acc + 3 * kNR + 0);
  __m256 c31 = _mm256_loadu_ps(acc + 3 * kNR + 8);
  for (int p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    __m256 a = _mm256_broadcast_ss(ap + p * kMR + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(ap + p * kMR + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(ap + p * kMR + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(ap + p * kMR + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
  }
  _mm256_storeu_ps(acc + 0 * kNR + 0, c00);
  _mm256_storeu_ps(acc + 0 * kNR + 8, c01);
  _mm256_storeu_ps(acc + 1 * kNR + 0, c10);
  _mm256_storeu_ps(acc + 1 * kNR + 8, c11);
  _mm256_storeu_ps(acc + 2 * kNR + 0, c20);
  _mm256_storeu_ps(acc + 2 * kNR + 8, c21);
  _mm256_storeu_ps(acc + 3 * kNR + 0, c30);
  _mm256_storeu_ps(acc + 3 * kNR + 8, c31);
}
#endif  // FEDMIGR_GEMM_X86

using MicroKernelFn = void (*)(int, const float*, const float*, float*);

struct KernelChoice {
  MicroKernelFn fn;
  const char* name;
};

KernelChoice ResolveMicroKernel() {
#if FEDMIGR_GEMM_X86
  const char* env = std::getenv("FEDMIGR_GEMM_KERNEL");
  const bool force_portable =
      env != nullptr && std::string(env) == "portable";
  if (!force_portable && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return {MicroKernelAvx2, "avx2+fma"};
  }
#endif
  return {MicroKernelPortable, "portable"};
}

const KernelChoice& MicroKernel() {
  static const KernelChoice choice = ResolveMicroKernel();
  return choice;
}

// ---------------------------------------------------------------- packing --

inline float ReadA(const float* a, int lda, bool trans, int i, int p) {
  return trans ? a[static_cast<size_t>(p) * lda + i]
               : a[static_cast<size_t>(i) * lda + p];
}

// Packs rows [i0, i0 + mc) of op(A) into kMR-row micro-panels stored
// k-major (kMR consecutive floats per k step), zero-padding short panels.
void PackA(const float* a, int lda, bool trans, int i0, int mc, int k,
           float* ap) {
  const int panels = (mc + kMR - 1) / kMR;
  for (int mp = 0; mp < panels; ++mp) {
    float* dst = ap + static_cast<size_t>(mp) * k * kMR;
    const int rows = std::min(kMR, mc - mp * kMR);
    const int base = i0 + mp * kMR;
    for (int p = 0; p < k; ++p) {
      for (int r = 0; r < rows; ++r) {
        dst[p * kMR + r] = ReadA(a, lda, trans, base + r, p);
      }
      for (int r = rows; r < kMR; ++r) dst[p * kMR + r] = 0.0f;
    }
  }
}

// Packs op(B) (k x n) into kNR-column micro-panels stored k-major,
// zero-padding the rightmost panel.
void PackB(const float* b, int ldb, bool trans, int n, int k, float* bp) {
  const int panels = (n + kNR - 1) / kNR;
  for (int np = 0; np < panels; ++np) {
    float* dst = bp + static_cast<size_t>(np) * k * kNR;
    const int cols = std::min(kNR, n - np * kNR);
    const int j0 = np * kNR;
    if (!trans && cols == kNR) {
      for (int p = 0; p < k; ++p) {
        std::memcpy(dst + p * kNR, b + static_cast<size_t>(p) * ldb + j0,
                    kNR * sizeof(float));
      }
      continue;
    }
    for (int p = 0; p < k; ++p) {
      for (int c = 0; c < cols; ++c) {
        dst[p * kNR + c] = trans ? b[static_cast<size_t>(j0 + c) * ldb + p]
                                 : b[static_cast<size_t>(p) * ldb + j0 + c];
      }
      for (int c = cols; c < kNR; ++c) dst[p * kNR + c] = 0.0f;
    }
  }
}

}  // namespace

void SetIntraOpThreads(int num_threads) {
  FEDMIGR_CHECK_GT(num_threads, 0);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (num_threads == g_intra_op_threads) return;
  g_intra_op_threads = num_threads;
  g_pool.reset();  // rebuilt lazily at the new width
}

int GetIntraOpThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return ResolveThreadsLocked();
}

void IntraOpParallelRange(int64_t n, int64_t grain,
                          const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  util::ThreadPool* pool = nullptr;
  // Inside any pool worker the kernels run inline: the inter-client level
  // already owns the parallelism, and blocking a worker on another pool's
  // Wait() would at best oversubscribe and at worst (same pool) deadlock.
  if (n > grain && !util::ThreadPool::InWorkerThread()) {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (ResolveThreadsLocked() > 1) {
      if (g_pool == nullptr) {
        g_pool = std::make_unique<util::ThreadPool>(g_intra_op_threads);
      }
      pool = g_pool.get();
    }
  }
  if (pool != nullptr) {
    pool->ParallelForRange(n, grain, fn);
    return;
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * grain;
    fn(begin, std::min(n, begin + grain));
  }
}

const char* GemmKernelName() { return MicroKernel().name; }

void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
           int lda, const float* b, int ldb, float* c, int ldc, GemmAcc acc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (acc == GemmAcc::kOverwrite) {
      for (int i = 0; i < m; ++i) {
        std::memset(c + static_cast<size_t>(i) * ldc, 0, n * sizeof(float));
      }
    }
    return;
  }
  // FLOP accounting is per-call; the wall-clock histogram only kicks in
  // above a work threshold so small GEMMs (DRL scoring, 1×F rows) never
  // pay for a clock read.
  constexpr int64_t kTimedFlopThreshold = int64_t{1} << 20;
  const int64_t flops = 2ll * m * n * k;
  int64_t start_ns = 0;
  if (obs::Telemetry::enabled()) {
    BumpGemmTally(flops);
    if (flops >= kTimedFlopThreshold) start_ns = obs::MonotonicNowNs();
  }

  const MicroKernelFn micro = MicroKernel().fn;
  const int n_panels = (n + kNR - 1) / kNR;

  ScratchArena::Scope scope;
  float* bp = ScratchArena::ThreadLocal().AllocFloats(
      static_cast<int64_t>(n_panels) * k * kNR);
  PackB(b, ldb, trans_b, n, k, bp);

  // Row-blocks of kMC rows are the unit of parallelism; kMC is a multiple
  // of kMR, so the micro-panel grid is identical whether a block is
  // processed alone or as part of a larger inline range.
  IntraOpParallelRange(m, kMC, [&](int64_t row_begin, int64_t row_end) {
    ScratchArena::Scope block_scope;
    const int mc = static_cast<int>(row_end - row_begin);
    const int m_panels = (mc + kMR - 1) / kMR;
    float* ap = ScratchArena::ThreadLocal().AllocFloats(
        static_cast<int64_t>(m_panels) * k * kMR);
    PackA(a, lda, trans_a, static_cast<int>(row_begin), mc, k, ap);
    alignas(64) float tile[kMR * kNR];
    for (int mp = 0; mp < m_panels; ++mp) {
      const int i0 = static_cast<int>(row_begin) + mp * kMR;
      const int mr = std::min(kMR, static_cast<int>(row_end) - i0);
      const float* ap_panel = ap + static_cast<size_t>(mp) * k * kMR;
      for (int np = 0; np < n_panels; ++np) {
        const int j0 = np * kNR;
        const int nr = std::min(kNR, n - j0);
        const float* bp_panel = bp + static_cast<size_t>(np) * k * kNR;
        if (acc == GemmAcc::kSeedFromC) {
          for (int r = 0; r < mr; ++r) {
            const float* crow = c + static_cast<size_t>(i0 + r) * ldc + j0;
            float* trow = tile + r * kNR;
            for (int cc = 0; cc < nr; ++cc) trow[cc] = crow[cc];
            for (int cc = nr; cc < kNR; ++cc) trow[cc] = 0.0f;
          }
          if (mr < kMR) {
            std::memset(tile + mr * kNR, 0, (kMR - mr) * kNR * sizeof(float));
          }
        } else {
          std::memset(tile, 0, sizeof(tile));
        }
        micro(k, ap_panel, bp_panel, tile);
        for (int r = 0; r < mr; ++r) {
          float* crow = c + static_cast<size_t>(i0 + r) * ldc + j0;
          const float* trow = tile + r * kNR;
          if (acc == GemmAcc::kAddAfter) {
            for (int cc = 0; cc < nr; ++cc) crow[cc] += trow[cc];
          } else {
            for (int cc = 0; cc < nr; ++cc) crow[cc] = trow[cc];
          }
        }
      }
    }
  });

  if (start_ns != 0) {
    static obs::Histogram* gemm_ms = obs::Registry::Default().GetHistogram(
        obs::Registry::LabeledName("nn/gemm_ms",
                                   {{"kernel", GemmKernelName()}}));
    gemm_ms->Observe(static_cast<double>(obs::MonotonicNowNs() - start_ns) *
                     1e-6);
  }
}

}  // namespace fedmigr::nn
