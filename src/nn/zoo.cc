#include "nn/zoo.h"

#include <memory>

#include "nn/layers.h"
#include "util/logging.h"

namespace fedmigr::nn {

Sequential MakeC10Net(util::Rng* rng) {
  // conv5x5(3->8) - pool - conv5x5(8->16) - pool - fc(64->64) - fc(64->10).
  // Mirrors the paper's C10-CNN (two 5x5 convs each followed by 2x2 pooling,
  // one hidden FC, softmax head), scaled to 8x8 synthetic images.
  Sequential model;
  model.Add(std::make_unique<Conv2D>(kImageChannels, 8, 5, 2, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2x2>())
      .Add(std::make_unique<Conv2D>(8, 16, 5, 2, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2x2>())
      .Add(std::make_unique<Flatten>())
      .Add(std::make_unique<Dense>(16 * 2 * 2, 64, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Dense>(64, 10, rng));
  return model;
}

Sequential MakeC100Net(util::Rng* rng) {
  // Same trunk as C10Net but with two hidden FC layers and a 100-way head,
  // matching the paper's C100-CNN variant.
  Sequential model;
  model.Add(std::make_unique<Conv2D>(kImageChannels, 8, 5, 2, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2x2>())
      .Add(std::make_unique<Conv2D>(8, 16, 5, 2, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2x2>())
      .Add(std::make_unique<Flatten>())
      .Add(std::make_unique<Dense>(16 * 2 * 2, 96, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Dense>(96, 96, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Dense>(96, 100, rng));
  return model;
}

Sequential MakeResMini(util::Rng* rng, int num_classes) {
  // Dense stem + three residual blocks. Parameter count exceeds both CNNs,
  // preserving ResNet-152's "largest model / largest transfer" role.
  Sequential model;
  model.Add(std::make_unique<Dense>(kResFeatureDim, 160, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<ResidualDense>(160, 160, rng))
      .Add(std::make_unique<ResidualDense>(160, 160, rng))
      .Add(std::make_unique<ResidualDense>(160, 160, rng))
      .Add(std::make_unique<Dense>(160, num_classes, rng));
  return model;
}

Sequential MakeMlp(const std::vector<int>& dims, bool softmax_output,
                   util::Rng* rng) {
  FEDMIGR_CHECK_GE(dims.size(), 2u);
  Sequential model;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    model.Add(std::make_unique<Dense>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) model.Add(std::make_unique<ReLU>());
  }
  if (softmax_output) model.Add(std::make_unique<Softmax>());
  return model;
}

Sequential MakeModelByName(const std::string& name, util::Rng* rng) {
  if (name == "c10") return MakeC10Net(rng);
  if (name == "c100") return MakeC100Net(rng);
  if (name == "resmini") return MakeResMini(rng);
  FEDMIGR_CHECK(false) << "unknown model name: " << name;
  return Sequential();  // unreachable
}

}  // namespace fedmigr::nn
