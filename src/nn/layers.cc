#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace fedmigr::nn {

// ---------------------------------------------------------------- Dense --

Dense::Dense(int in_features, int out_features, util::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}),
      grad_weights_({out_features, in_features}),
      grad_bias_({out_features}) {
  FEDMIGR_CHECK_GT(in_features, 0);
  FEDMIGR_CHECK_GT(out_features, 0);
  HeNormal(&weights_, in_features, rng);
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  FEDMIGR_CHECK_EQ(input.ndim(), 2);
  FEDMIGR_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  Tensor output = MatMulTransB(input, weights_);  // [N, out]
  const int batch = output.dim(0);
  for (int n = 0; n < batch; ++n) {
    for (int o = 0; o < out_features_; ++o) output.At(n, o) += bias_[o];
  }
  return output;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  FEDMIGR_CHECK_EQ(grad_output.ndim(), 2);
  FEDMIGR_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW = dY^T X  ([out, N] * [N, in]).
  grad_weights_.Add(MatMulTransA(grad_output, cached_input_));
  const int batch = grad_output.dim(0);
  for (int n = 0; n < batch; ++n) {
    for (int o = 0; o < out_features_; ++o) {
      grad_bias_[o] += grad_output.At(n, o);
    }
  }
  // dX = dY W ([N, out] * [out, in]).
  return MatMul(grad_output, weights_);
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->in_features_ = in_features_;
  copy->out_features_ = out_features_;
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  copy->grad_weights_ = Tensor(grad_weights_.shape());
  copy->grad_bias_ = Tensor(grad_bias_.shape());
  return copy;
}

// --------------------------------------------------------------- Conv2D --

Conv2D::Conv2D(int in_channels, int out_channels, int kernel_size, int pad,
               util::Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      pad_(pad),
      kernel_({out_channels, in_channels, kernel_size, kernel_size}),
      bias_({out_channels}),
      grad_kernel_(kernel_.shape()),
      grad_bias_(bias_.shape()) {
  FEDMIGR_CHECK_GT(kernel_size, 0);
  HeNormal(&kernel_, in_channels * kernel_size * kernel_size, rng);
}

Tensor Conv2D::Forward(const Tensor& input, bool /*training*/) {
  FEDMIGR_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  return Conv2dForward(input, kernel_, bias_, pad_);
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  Tensor grad_input, grad_kernel, grad_bias;
  Conv2dBackward(cached_input_, kernel_, pad_, grad_output, &grad_input,
                 &grad_kernel, &grad_bias);
  grad_kernel_.Add(grad_kernel);
  grad_bias_.Add(grad_bias);
  return grad_input;
}

std::unique_ptr<Layer> Conv2D::Clone() const {
  auto copy = std::unique_ptr<Conv2D>(new Conv2D());
  copy->in_channels_ = in_channels_;
  copy->out_channels_ = out_channels_;
  copy->kernel_size_ = kernel_size_;
  copy->pad_ = pad_;
  copy->kernel_ = kernel_;
  copy->bias_ = bias_;
  copy->grad_kernel_ = Tensor(grad_kernel_.shape());
  copy->grad_bias_ = Tensor(grad_bias_.shape());
  return copy;
}

// ----------------------------------------------------------- MaxPool2x2 --

Tensor MaxPool2x2::Forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  return MaxPool2x2Forward(input, &argmax_);
}

Tensor MaxPool2x2::Backward(const Tensor& grad_output) {
  return MaxPool2x2Backward(grad_output, argmax_, input_shape_);
}

// -------------------------------------------------------------- Flatten --

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  const int batch = input.dim(0);
  const int features = static_cast<int>(input.size() / batch);
  Tensor output = input;
  output.Reshape({batch, features});
  return output;
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  grad_input.Reshape(input_shape_);
  return grad_input;
}

// ----------------------------------------------------------------- ReLU --

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor output = input;
  for (int64_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  FEDMIGR_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_input[i] = 0.0f;
  }
  return grad_input;
}

// ----------------------------------------------------------------- Tanh --

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor output = input;
  for (int64_t i = 0; i < output.size(); ++i) {
    output[i] = std::tanh(output[i]);
  }
  cached_output_ = output;
  return output;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.size(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= (1.0f - y * y);
  }
  return grad_input;
}

// -------------------------------------------------------------- Sigmoid --

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor output = input;
  for (int64_t i = 0; i < output.size(); ++i) {
    output[i] = 1.0f / (1.0f + std::exp(-output[i]));
  }
  cached_output_ = output;
  return output;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.size(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= y * (1.0f - y);
  }
  return grad_input;
}

// -------------------------------------------------------------- Softmax --

Tensor Softmax::Forward(const Tensor& input, bool /*training*/) {
  FEDMIGR_CHECK_EQ(input.ndim(), 2);
  Tensor output = input;
  const int batch = input.dim(0), classes = input.dim(1);
  for (int n = 0; n < batch; ++n) {
    float row_max = output.At(n, 0);
    for (int c = 1; c < classes; ++c) {
      row_max = std::max(row_max, output.At(n, c));
    }
    float sum = 0.0f;
    for (int c = 0; c < classes; ++c) {
      const float e = std::exp(output.At(n, c) - row_max);
      output.At(n, c) = e;
      sum += e;
    }
    for (int c = 0; c < classes; ++c) output.At(n, c) /= sum;
  }
  cached_output_ = output;
  return output;
}

Tensor Softmax::Backward(const Tensor& grad_output) {
  // dL/dx_i = y_i * (dL/dy_i - sum_j dL/dy_j * y_j), per row.
  const int batch = grad_output.dim(0), classes = grad_output.dim(1);
  Tensor grad_input({batch, classes});
  for (int n = 0; n < batch; ++n) {
    float dot = 0.0f;
    for (int c = 0; c < classes; ++c) {
      dot += grad_output.At(n, c) * cached_output_.At(n, c);
    }
    for (int c = 0; c < classes; ++c) {
      grad_input.At(n, c) =
          cached_output_.At(n, c) * (grad_output.At(n, c) - dot);
    }
  }
  return grad_input;
}

// -------------------------------------------------------- ResidualDense --

ResidualDense::ResidualDense(int features, int hidden, util::Rng* rng)
    : fc1_(std::make_unique<Dense>(features, hidden, rng)),
      relu1_(std::make_unique<ReLU>()),
      fc2_(std::make_unique<Dense>(hidden, features, rng)) {}

Tensor ResidualDense::Forward(const Tensor& input, bool training) {
  Tensor residual = fc2_->Forward(
      relu1_->Forward(fc1_->Forward(input, training), training), training);
  cached_sum_ = Add(input, residual);
  Tensor output = cached_sum_;
  for (int64_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor ResidualDense::Backward(const Tensor& grad_output) {
  Tensor grad_sum = grad_output;
  for (int64_t i = 0; i < grad_sum.size(); ++i) {
    if (cached_sum_[i] <= 0.0f) grad_sum[i] = 0.0f;
  }
  Tensor grad_branch =
      fc1_->Backward(relu1_->Backward(fc2_->Backward(grad_sum)));
  grad_branch.Add(grad_sum);  // skip connection
  return grad_branch;
}

std::vector<Tensor*> ResidualDense::Params() {
  std::vector<Tensor*> params = fc1_->Params();
  for (Tensor* p : fc2_->Params()) params.push_back(p);
  return params;
}

std::vector<Tensor*> ResidualDense::Grads() {
  std::vector<Tensor*> grads = fc1_->Grads();
  for (Tensor* g : fc2_->Grads()) grads.push_back(g);
  return grads;
}

std::unique_ptr<Layer> ResidualDense::Clone() const {
  auto copy = std::unique_ptr<ResidualDense>(new ResidualDense());
  copy->fc1_.reset(static_cast<Dense*>(fc1_->Clone().release()));
  copy->relu1_ = std::make_unique<ReLU>();
  copy->fc2_.reset(static_cast<Dense*>(fc2_->Clone().release()));
  return copy;
}

}  // namespace fedmigr::nn
