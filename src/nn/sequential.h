// Sequential model container: the trainable unit that FL clients hold,
// migrate and the server aggregates.

#ifndef FEDMIGR_NN_SEQUENTIAL_H_
#define FEDMIGR_NN_SEQUENTIAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace fedmigr::nn {

class Sequential {
 public:
  Sequential() = default;

  Sequential(const Sequential& other) { *this = other; }
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  // Appends a layer; returns *this for fluent construction.
  Sequential& Add(std::unique_ptr<Layer> layer);

  Tensor Forward(const Tensor& input, bool training = true);
  // Backpropagates through all layers; returns gradient w.r.t. the input.
  Tensor Backward(const Tensor& grad_output);

  // Flattened parameter/gradient views across layers (stable order).
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();
  std::vector<const Tensor*> Params() const;

  void ZeroGrads();

  // Total number of scalar parameters.
  int64_t NumParams() const;
  // Serialized size in bytes (what the network simulator charges per model
  // transfer): 4 bytes per parameter.
  int64_t ByteSize() const { return NumParams() * 4; }

  // Overwrites this model's parameters with `other`'s. Architectures must
  // match (same parameter tensor shapes).
  void CopyParamsFrom(const Sequential& other);

  // this_params = this_params * (1 - alpha) + other_params * alpha.
  void LerpParamsFrom(const Sequential& other, float alpha);

  // L2 norm over the whole parameter vector.
  double ParamNorm() const;
  // L2 distance between two models' parameter vectors.
  static double ParamDistance(const Sequential& a, const Sequential& b);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_SEQUENTIAL_H_
