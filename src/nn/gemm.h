// Blocked, packed, vectorized SGEMM — the kernel every dense and (via
// im2col) convolution op in the NN substrate lowers onto.
//
// Scheme: B is packed once into kNR-column micro-panels; row-blocks of A
// (kMC rows, the intra-op parallel grain) are packed into kMR-row
// micro-panels; a register-tiled kMR x kNR micro-kernel accumulates the
// full K reduction for each output tile in one pass. The micro-kernel is
// either portable C (compiler-vectorized) or AVX2+FMA intrinsics, chosen
// once at startup by runtime CPU dispatch.
//
// Determinism contract: each output element is reduced in k-order
// 0..K-1 by exactly one tile, and tile boundaries depend only on the
// operand shapes — never on the thread count or on which thread runs
// which tile. Results are therefore bit-identical across runs and across
// intra-op thread counts on the same build + machine. The portable
// micro-kernel reproduces the legacy scalar kernels' mul-then-add
// sequence exactly (no FMA contraction); the AVX2 path fuses, so it
// matches only to within 1 ulp per multiply-add.

#ifndef FEDMIGR_NN_GEMM_H_
#define FEDMIGR_NN_GEMM_H_

#include <cstdint>
#include <functional>

namespace fedmigr::nn {

// How Sgemm combines the computed product P = op(A)·op(B) with the
// existing contents of C. Because float addition is not associative the
// three modes are numerically distinct; each mirrors one legacy kernel's
// reduction order:
enum class GemmAcc {
  // C = P; the k-sum is seeded from zero (legacy MatMul into a fresh C).
  kOverwrite,
  // C seeds the k-accumulation: C = ((C + p_0) + p_1) + ... (legacy conv
  // forward, where the output plane is pre-filled with the bias).
  kSeedFromC,
  // P is fully reduced in registers first, then added: C = C + P (legacy
  // conv weight-gradient, a register tap-sum flushed into memory).
  kAddAfter,
};

// C (m x n, leading dim ldc) = op(A) · op(B) combined with C per `acc`.
// All matrices are row-major. op(A) is A itself (m x k, leading dim lda)
// or, when trans_a, the transpose of a k x m buffer — element (i, p) is
// read as a[p * lda + i]. op(B) likewise is k x n, or with trans_b the
// transpose of an n x k buffer. Runs on the intra-op pool when one is
// configured and the caller is not already inside a pool worker.
void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
           int lda, const float* b, int ldb, float* c, int ldc,
           GemmAcc acc = GemmAcc::kOverwrite);

// Intra-op thread count for the kernel layer. Defaults to the
// FEDMIGR_INTRA_OP_THREADS environment variable, else 1 (serial). The
// backing pool is created lazily and rebuilt when the width changes; by
// the determinism contract above, changing it never changes results.
void SetIntraOpThreads(int num_threads);
int GetIntraOpThreads();

// Runs fn(begin, end) over the fixed chunking of [0, n) into grain-sized
// ranges, on the intra-op pool when profitable. Falls back to inline
// execution (same chunk sequence) when the pool is serial or the calling
// thread is already a pool worker — the composition rule that lets
// intra-op kernels run inside the trainer's inter-client ParallelFor
// without nested-pool deadlock. Safe to call from several non-worker
// threads at once: they share the lazily built pool, whose Wait() holds
// each caller until the combined queue drains (TSan-gated by the
// GemmConcurrency tests).
void IntraOpParallelRange(int64_t n, int64_t grain,
                          const std::function<void(int64_t, int64_t)>& fn);

// Name of the micro-kernel runtime dispatch selected on this machine:
// "avx2+fma" or "portable". Setting FEDMIGR_GEMM_KERNEL=portable forces
// the portable path (bit-compatible with the legacy scalar kernels).
const char* GemmKernelName();

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_GEMM_H_
