// Model zoo: the three classifier architectures of the paper's evaluation
// plus a generic MLP builder used by the DRL agent.
//
// Architectures mirror Section IV-B of the paper, scaled to the synthetic
// image sizes of this reproduction (see DESIGN.md, substitution table):
//   C10Net   — conv(5x5)-pool-conv(5x5)-pool-fc-softmax head, 10 classes
//              (the paper's C10-CNN from McMahan et al.).
//   C100Net  — same trunk with two 512-unit FC layers and a 100-way head
//              (the paper's C100-CNN).
//   ResMini  — dense stem + residual blocks, 100-way head; a stand-in for
//              ResNet-152 that preserves the "largest model" role.

#ifndef FEDMIGR_NN_ZOO_H_
#define FEDMIGR_NN_ZOO_H_

#include <string>

#include "nn/sequential.h"
#include "util/rng.h"

namespace fedmigr::nn {

// Input geometry the synthetic datasets use for the two CNNs.
inline constexpr int kImageChannels = 3;
inline constexpr int kImageSize = 8;  // 8x8 synthetic "images"

// Flat feature dimension consumed by ResMini.
inline constexpr int kResFeatureDim = 64;

Sequential MakeC10Net(util::Rng* rng);
Sequential MakeC100Net(util::Rng* rng);
Sequential MakeResMini(util::Rng* rng, int num_classes = 100);

// MLP with ReLU hidden layers: dims = {in, h1, ..., out}. `softmax_output`
// appends a Softmax layer (DRL actor); otherwise the output is linear.
Sequential MakeMlp(const std::vector<int>& dims, bool softmax_output,
                   util::Rng* rng);

// Builds a model by zoo name: "c10" | "c100" | "resmini". CHECK-fails on an
// unknown name.
Sequential MakeModelByName(const std::string& name, util::Rng* rng);

}  // namespace fedmigr::nn

#endif  // FEDMIGR_NN_ZOO_H_
