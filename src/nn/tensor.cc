#include "nn/tensor.h"

#include <cmath>

#include "util/logging.h"

namespace fedmigr::nn {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int d : shape) {
    FEDMIGR_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumElements(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FEDMIGR_CHECK_EQ(static_cast<int64_t>(data_.size()), NumElements(shape_));
}

int Tensor::dim(int i) const {
  FEDMIGR_CHECK_GE(i, 0);
  FEDMIGR_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::At(int i, int j) {
  return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float Tensor::At(int i, int j) const {
  return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float& Tensor::At(int i, int j, int k, int l) {
  const size_t idx =
      ((static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k) * shape_[3] +
      l;
  return data_[idx];
}

float Tensor::At(int i, int j, int k, int l) const {
  const size_t idx =
      ((static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k) * shape_[3] +
      l;
  return data_[idx];
}

void Tensor::Reshape(Shape shape) {
  FEDMIGR_CHECK_EQ(NumElements(shape), size());
  shape_ = std::move(shape);
}

void Tensor::Fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::Add(const Tensor& other) {
  FEDMIGR_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  FEDMIGR_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Scale(float alpha) {
  for (auto& x : data_) x *= alpha;
}

double Tensor::Sum() const {
  double sum = 0.0;
  for (float x : data_) sum += x;
  return sum;
}

double Tensor::Norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return std::sqrt(sum);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Add(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Axpy(-1.0f, b);
  return out;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor out = a;
  out.Scale(alpha);
  return out;
}

double Dot(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  FEDMIGR_CHECK_EQ(a.size(), b.size());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace fedmigr::nn
