#include "opt/flmm.h"

#include <algorithm>

#include "opt/hungarian.h"
#include "util/logging.h"

namespace fedmigr::opt {

Matrix BuildMigrationScore(const std::vector<std::vector<double>>& divergence,
                           const net::Topology& topology, int64_t model_bytes,
                           double comm_weight) {
  const int k = topology.num_clients();
  FEDMIGR_CHECK_EQ(static_cast<int>(divergence.size()), k);

  // Normalize transfer times by the slowest pair so divergence (O(1)) and
  // the comm penalty share a scale.
  double max_time = 0.0;
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      max_time = std::max(max_time,
                          topology.TransferSeconds(i, j, model_bytes));
    }
  }
  if (max_time <= 0.0) max_time = 1.0;

  Matrix score(static_cast<size_t>(k), std::vector<double>(k, 0.0));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;  // staying put: zero gain, zero cost
      const double time =
          topology.TransferSeconds(i, j, model_bytes) / max_time;
      score[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          divergence[static_cast<size_t>(i)][static_cast<size_t>(j)] -
          comm_weight * time;
    }
  }
  return score;
}

FlmmPlan SolveFlmm(const std::vector<std::vector<double>>& divergence,
                   const net::Topology& topology, int64_t model_bytes,
                   const FlmmOptions& options) {
  const Matrix score = BuildMigrationScore(divergence, topology, model_bytes,
                                           options.comm_weight);
  const QpResult qp = SolveRowStochasticQp(score, options.qp);

  // Round: Hungarian on the negated "support-weighted" score, so rows prefer
  // destinations the relaxation already favoured.
  const size_t k = score.size();
  Matrix cost(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = -(score[i][j] * (0.5 + qp.solution[i][j]));
    }
  }
  FlmmPlan plan;
  plan.destination = SolveAssignment(cost);
  plan.fractional = qp.solution;
  plan.objective = qp.objective;
  plan.qp_iterations = qp.iterations;

  // A destination with negative score is worse than staying local; keep the
  // model at home in that case (the paper's "no migration in the extreme
  // case of very slow links").
  for (size_t i = 0; i < k; ++i) {
    const int j = plan.destination[i];
    if (score[i][static_cast<size_t>(j)] < 0.0) {
      plan.destination[i] = static_cast<int>(i);
    }
  }
  return plan;
}

}  // namespace fedmigr::opt
