#include "opt/simplex.h"

#include <algorithm>

#include "util/logging.h"

namespace fedmigr::opt {

void ProjectToSimplex(std::vector<double>* v) {
  FEDMIGR_CHECK(!v->empty());
  std::vector<double> sorted = *v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double theta = 0.0;
  int support = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    const double candidate =
        (cumulative - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      theta = candidate;
      support = static_cast<int>(i + 1);
    }
  }
  FEDMIGR_CHECK_GT(support, 0);
  for (auto& x : *v) x = std::max(0.0, x - theta);
}

std::vector<double> ProjectedToSimplex(std::vector<double> v) {
  ProjectToSimplex(&v);
  return v;
}

}  // namespace fedmigr::opt
