#include "opt/qp.h"

#include <cmath>

#include "opt/simplex.h"
#include "util/logging.h"

namespace fedmigr::opt {

namespace {

std::vector<double> ColumnSums(const Matrix& p) {
  const size_t k = p.size();
  std::vector<double> sums(k, 0.0);
  for (const auto& row : p) {
    for (size_t j = 0; j < k; ++j) sums[j] += row[j];
  }
  return sums;
}

}  // namespace

double RowStochasticQpObjective(const Matrix& score, const Matrix& p,
                                double load_weight) {
  double linear = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    for (size_t j = 0; j < p.size(); ++j) linear += score[i][j] * p[i][j];
  }
  double load = 0.0;
  for (double col : ColumnSums(p)) load += col * col;
  return linear - 0.5 * load_weight * load;
}

QpResult SolveRowStochasticQp(const Matrix& score, const QpOptions& options) {
  const size_t k = score.size();
  FEDMIGR_CHECK_GT(k, 0u);
  for (const auto& row : score) FEDMIGR_CHECK_EQ(row.size(), k);

  // Start from the uniform row-stochastic matrix.
  QpResult result;
  result.solution.assign(k, std::vector<double>(k, 1.0 / static_cast<double>(k)));

  for (int it = 0; it < options.max_iterations; ++it) {
    const std::vector<double> cols = ColumnSums(result.solution);
    double movement = 0.0;
    for (size_t i = 0; i < k; ++i) {
      std::vector<double> row = result.solution[i];
      // Gradient ascent on the objective: d/dP_ij = score_ij - w * col_j.
      for (size_t j = 0; j < k; ++j) {
        row[j] += options.step_size *
                  (score[i][j] - options.load_weight * cols[j]);
      }
      ProjectToSimplex(&row);
      for (size_t j = 0; j < k; ++j) {
        const double diff = row[j] - result.solution[i][j];
        movement += diff * diff;
      }
      result.solution[i] = std::move(row);
    }
    result.iterations = it + 1;
    if (std::sqrt(movement) < options.tolerance) break;
  }
  result.objective =
      RowStochasticQpObjective(score, result.solution, options.load_weight);
  return result;
}

}  // namespace fedmigr::opt
