// Euclidean projection onto the probability simplex
// { x : x_i >= 0, sum x_i = 1 } — the building block of the projected-
// gradient QP solver for the relaxed FLMM problem.

#ifndef FEDMIGR_OPT_SIMPLEX_H_
#define FEDMIGR_OPT_SIMPLEX_H_

#include <vector>

namespace fedmigr::opt {

// Projects `v` in place onto the probability simplex (Duchi et al. 2008,
// O(n log n) sort-based algorithm).
void ProjectToSimplex(std::vector<double>* v);

// Returns the projection without modifying the input.
std::vector<double> ProjectedToSimplex(std::vector<double> v);

}  // namespace fedmigr::opt

#endif  // FEDMIGR_OPT_SIMPLEX_H_
