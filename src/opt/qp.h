// Projected-gradient solver for QPs over row-stochastic matrices.
//
// This is the "S-COP" component of the paper: the integer FLMM program
// (Eq. 16) is relaxed so each row of the migration matrix P lives on the
// probability simplex, the relaxed objective is a convex quadratic, and the
// solver is plain projected gradient descent (our stand-in for CVX).
//
// Objective (maximization, internally negated):
//   sum_ij P_ij * score_ij  -  (load_weight / 2) * sum_j (col_j(P))^2
// The linear term rewards high-score destinations; the quadratic column-load
// term discourages piling every model onto one destination, which is what
// makes the relaxation round well to a one-to-one assignment.

#ifndef FEDMIGR_OPT_QP_H_
#define FEDMIGR_OPT_QP_H_

#include <vector>

namespace fedmigr::opt {

using Matrix = std::vector<std::vector<double>>;

struct QpOptions {
  int max_iterations = 200;
  double step_size = 0.05;
  // Stop when the iterate moves less than this (Frobenius norm).
  double tolerance = 1e-7;
  double load_weight = 1.0;
};

struct QpResult {
  Matrix solution;      // row-stochastic K x K
  double objective = 0.0;
  int iterations = 0;
};

// Maximizes the objective above over row-stochastic matrices.
QpResult SolveRowStochasticQp(const Matrix& score, const QpOptions& options);

// Objective value of a candidate (used by tests and the rounding step).
double RowStochasticQpObjective(const Matrix& score, const Matrix& p,
                                double load_weight);

}  // namespace fedmigr::opt

#endif  // FEDMIGR_OPT_QP_H_
