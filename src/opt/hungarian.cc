#include "opt/hungarian.h"

#include <limits>

#include "util/logging.h"

namespace fedmigr::opt {

std::vector<int> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  FEDMIGR_CHECK_GT(n, 0);
  for (const auto& row : cost) {
    FEDMIGR_CHECK_EQ(static_cast<int>(row.size()), n);
  }
  // Classic potentials formulation with 1-based padding (e-maxx style).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n + 1), 0.0);
  std::vector<double> v(static_cast<size_t>(n + 1), 0.0);
  std::vector<int> match(static_cast<size_t>(n + 1), 0);  // column -> row
  std::vector<int> way(static_cast<size_t>(n + 1), 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n + 1), kInf);
    std::vector<bool> used(static_cast<size_t>(n + 1), false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost[static_cast<size_t>(i0 - 1)]
                               [static_cast<size_t>(j - 1)] -
                           u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    assignment[static_cast<size_t>(match[static_cast<size_t>(j)] - 1)] = j - 1;
  }
  return assignment;
}

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment) {
  FEDMIGR_CHECK_EQ(cost.size(), assignment.size());
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    total += cost[i][static_cast<size_t>(assignment[i])];
  }
  return total;
}

}  // namespace fedmigr::opt
