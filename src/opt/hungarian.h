// Hungarian (Kuhn-Munkres) algorithm for the minimum-cost assignment
// problem, O(n^3). Used to round the fractional FLMM relaxation to a
// one-to-one migration assignment.

#ifndef FEDMIGR_OPT_HUNGARIAN_H_
#define FEDMIGR_OPT_HUNGARIAN_H_

#include <vector>

namespace fedmigr::opt {

// Solves min sum_i cost[i][assignment[i]] over permutations of an n x n cost
// matrix. Returns the assignment (row -> column).
std::vector<int> SolveAssignment(
    const std::vector<std::vector<double>>& cost);

// Total cost of an assignment under a cost matrix.
double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment);

}  // namespace fedmigr::opt

#endif  // FEDMIGR_OPT_HUNGARIAN_H_
