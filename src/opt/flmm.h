// Relaxed FLMM migration planner (the ρ-greedy exploration oracle and the
// Fig. 6 S-COP baseline).
//
// Builds a per-pair migration score from the data-divergence matrix D and
// the communication cost of each link, relaxes the integer program to a
// row-stochastic QP, solves by projected gradient, and rounds the fractional
// solution to a one-to-one destination assignment with the Hungarian
// algorithm.

#ifndef FEDMIGR_OPT_FLMM_H_
#define FEDMIGR_OPT_FLMM_H_

#include <vector>

#include "net/topology.h"
#include "opt/qp.h"

namespace fedmigr::opt {

struct FlmmOptions {
  // Weight of the communication-time penalty relative to divergence gain.
  double comm_weight = 0.5;
  // Self-migration (staying put) score; keeping a model local costs nothing
  // but gains nothing, so its score is 0 by construction.
  QpOptions qp;
};

// Migration score for sending client i's model to client j:
//   score_ij = D_ij - comm_weight * normalized_transfer_time(i, j).
// score_ii = 0. Transfer times are normalized by the slowest pair so the two
// terms are on comparable scales.
Matrix BuildMigrationScore(const std::vector<std::vector<double>>& divergence,
                           const net::Topology& topology, int64_t model_bytes,
                           double comm_weight);

struct FlmmPlan {
  std::vector<int> destination;  // destination[i] = j (j == i means stay)
  Matrix fractional;             // relaxed QP solution
  double objective = 0.0;
  int qp_iterations = 0;
};

// Full pipeline: score -> relaxed QP -> Hungarian rounding.
FlmmPlan SolveFlmm(const std::vector<std::vector<double>>& divergence,
                   const net::Topology& topology, int64_t model_bytes,
                   const FlmmOptions& options);

}  // namespace fedmigr::opt

#endif  // FEDMIGR_OPT_FLMM_H_
