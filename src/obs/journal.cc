#include "obs/journal.h"

#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/logging.h"

namespace fedmigr::obs {

namespace {

// "FJRN" read as a little-endian u32.
constexpr uint32_t kJournalMagic = 0x4E524A46u;
constexpr uint32_t kJournalVersion = 1;
// magic + version + payload_size before the payload, crc32 after it.
constexpr size_t kChunkHeaderSize = 4 + 4 + 8;
constexpr size_t kChunkOverhead = kChunkHeaderSize + 4;

// Chunk kinds (first payload byte).
constexpr uint8_t kChunkHeader = 0;
constexpr uint8_t kChunkEpoch = 1;
constexpr uint8_t kChunkSummary = 2;

// splitmix64: the same finalizer the cohort sampler uses for seed mixing.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// One event's contribution to the summary totals — shared by the recorder's
// running summary and the reader-side re-derivation, so the two can never
// drift apart.
void AccumulateSummaryEvent(const JournalEvent& event, JournalSummary* s) {
  switch (static_cast<JournalEventKind>(event.kind)) {
    case JournalEventKind::kRoundCommit:
      ++s->epochs_run;
      break;
    case JournalEventKind::kMigrationC2C:
      ++s->migrations_planned;
      ++s->migrations_completed;
      break;
    case JournalEventKind::kMigrationFallback:
      ++s->migrations_planned;
      ++s->migration_fallbacks;
      break;
    case JournalEventKind::kMigrationRolledBack:
      ++s->migrations_planned;
      ++s->migrations_rolled_back;
      break;
    case JournalEventKind::kQuorumCommit:
      ++s->quorum_commits;
      break;
    case JournalEventKind::kQuorumMiss:
      ++s->quorum_misses;
      break;
    case JournalEventKind::kClientCarriedOver:
      ++s->carryover_clients;
      break;
    case JournalEventKind::kChurnAbsence:
      ++s->churn_absences;
      break;
    case JournalEventKind::kClientDeparted:
      ++s->churn_departures;
      break;
    case JournalEventKind::kQuarantineTransition:
      if ((event.b & 0xFF) == kJournalStateQuarantined) ++s->quarantines;
      break;
    case JournalEventKind::kModelPublished:
      ++s->model_publishes;
      break;
    default:
      break;
  }
}

}  // namespace

// --- Wire serializers -----------------------------------------------------

void WriteJournalEvent(const JournalEvent& event, util::ByteWriter* writer) {
  writer->WriteU8(event.kind);
  writer->WriteI32(event.epoch);
  writer->WriteI32(event.a);
  writer->WriteI32(event.b);
  writer->WriteU64(event.u);
  writer->WriteU64(event.v);
  writer->WriteF64(event.x);
}

util::Status ReadJournalEvent(util::ByteReader* reader, JournalEvent* event) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU8(&event->kind));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&event->epoch));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&event->a));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&event->b));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&event->u));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&event->v));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&event->x));
  return util::Status::Ok();
}

void WriteJournalHeader(const JournalHeader& header,
                        util::ByteWriter* writer) {
  writer->WriteU64(header.run_seed);
  writer->WriteI64(header.num_clients);
  writer->WriteI64(header.cohort_size);
  writer->WriteF64(header.sample_rate);
  writer->WriteString(header.scheme);
}

util::Status ReadJournalHeader(util::ByteReader* reader,
                               JournalHeader* header) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&header->run_seed));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&header->num_clients));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&header->cohort_size));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&header->sample_rate));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadString(&header->scheme));
  return util::Status::Ok();
}

void WriteJournalSummary(const JournalSummary& summary,
                         util::ByteWriter* writer) {
  writer->WriteI64(summary.epochs_run);
  writer->WriteI64(summary.migrations_planned);
  writer->WriteI64(summary.migrations_completed);
  writer->WriteI64(summary.migration_fallbacks);
  writer->WriteI64(summary.migrations_rolled_back);
  writer->WriteI64(summary.quorum_commits);
  writer->WriteI64(summary.quorum_misses);
  writer->WriteI64(summary.carryover_clients);
  writer->WriteI64(summary.churn_absences);
  writer->WriteI64(summary.churn_departures);
  writer->WriteI64(summary.quarantines);
  writer->WriteI64(summary.model_publishes);
}

util::Status ReadJournalSummary(util::ByteReader* reader,
                                JournalSummary* summary) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->epochs_run));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->migrations_planned));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->migrations_completed));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->migration_fallbacks));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->migrations_rolled_back));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->quorum_commits));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->quorum_misses));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->carryover_clients));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->churn_absences));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->churn_departures));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->quarantines));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&summary->model_publishes));
  return util::Status::Ok();
}

std::vector<uint8_t> FrameJournalChunk(const std::vector<uint8_t>& payload) {
  util::ByteWriter writer;
  writer.WriteU32(kJournalMagic);
  writer.WriteU32(kJournalVersion);
  writer.WriteU64(payload.size());
  std::vector<uint8_t> framed = writer.TakeBytes();
  framed.insert(framed.end(), payload.begin(), payload.end());
  const uint32_t crc = util::Crc32(framed.data(), framed.size());
  const auto* p = reinterpret_cast<const uint8_t*>(&crc);
  framed.insert(framed.end(), p, p + sizeof(crc));
  return framed;
}

util::Result<std::vector<uint8_t>> UnframeJournalChunk(const uint8_t* data,
                                                       size_t size,
                                                       size_t* consumed) {
  *consumed = 0;
  if (size < kChunkOverhead) {
    return util::Status::DataLoss("journal chunk truncated below frame size");
  }
  util::ByteReader reader(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU32(&magic));
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU32(&version));
  FEDMIGR_RETURN_IF_ERROR(reader.ReadU64(&payload_size));
  if (magic != kJournalMagic) {
    return util::Status::DataLoss("journal chunk magic mismatch");
  }
  if (version != kJournalVersion) {
    return util::Status::InvalidArgument("unsupported journal version");
  }
  if (payload_size > size - kChunkOverhead) {
    return util::Status::DataLoss("journal chunk payload truncated");
  }
  const size_t checked = kChunkHeaderSize + static_cast<size_t>(payload_size);
  const uint32_t expected = util::Crc32(data, checked);
  uint32_t stored = 0;
  std::memcpy(&stored, data + checked, sizeof(stored));
  if (stored != expected) {
    return util::Status::DataLoss("journal chunk checksum mismatch");
  }
  *consumed = checked + sizeof(stored);
  return std::vector<uint8_t>(data + kChunkHeaderSize, data + checked);
}

// --- Recorder -------------------------------------------------------------

Journal::Journal(Options options) : options_(std::move(options)) {
  if (options_.sample_rate < 0.0) options_.sample_rate = 0.0;
  if (options_.sample_rate > 1.0) options_.sample_rate = 1.0;
}

Journal::~Journal() {
  if (file_.is_open()) {
    (void)file_.Close();  // best effort; Finish() is the durable path
  }
}

bool Journal::SampledClient(int client) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  // Top 32 bits of a splitmix64 hash of the client id against the rate:
  // pure in (client, rate), so stable across runs, threads and resume.
  const uint64_t h = Mix64(static_cast<uint64_t>(client)) >> 32;
  return static_cast<double>(h) <
         options_.sample_rate * 4294967296.0;  // 2^32
}

namespace {

// Scans framed bytes and returns the byte offset just past the last chunk
// worth keeping for a resume after `resume_epoch`: the header chunk plus
// every epoch chunk with epoch <= resume_epoch. Stops at the first torn or
// out-of-order frame. Also reports whether a header chunk survived.
uint64_t KeepOffsetForResume(const std::vector<uint8_t>& bytes,
                             int resume_epoch, bool* header_kept) {
  *header_kept = false;
  uint64_t keep = 0;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t consumed = 0;
    util::Result<std::vector<uint8_t>> payload = UnframeJournalChunk(
        bytes.data() + offset, bytes.size() - offset, &consumed);
    if (!payload.ok()) break;  // torn tail: truncate here
    util::ByteReader reader(*payload);
    uint8_t chunk_kind = 0;
    if (!reader.ReadU8(&chunk_kind).ok()) break;
    if (chunk_kind == kChunkHeader) {
      if (offset != 0) break;  // header only ever leads the file
      *header_kept = true;
      keep = offset + consumed;
    } else if (chunk_kind == kChunkEpoch) {
      int32_t epoch = 0;
      if (!reader.ReadI32(&epoch).ok()) break;
      if (epoch > resume_epoch) break;  // replayed on resume
      keep = offset + consumed;
    } else {
      break;  // summary (or unknown): always replayed
    }
    offset += consumed;
  }
  return keep;
}

}  // namespace

util::Status Journal::Attach(int resume_epoch) {
  FEDMIGR_CHECK(!attached_) << "journal attached twice";
  buffer_.clear();
  summary_ = JournalSummary();
  events_committed_ = 0;
  header_written_ = false;
  if (options_.path.empty()) {
    memory_.clear();
    attached_ = true;
    return util::Status::Ok();
  }
  std::vector<uint8_t> existing;
  if (util::FileExists(options_.path)) {
    util::Result<std::vector<uint8_t>> bytes =
        util::ReadFileBytes(options_.path);
    if (!bytes.ok()) return bytes.status();
    existing = std::move(*bytes);
  }
  bool header_kept = false;
  const uint64_t keep =
      resume_epoch > 0
          ? KeepOffsetForResume(existing, resume_epoch, &header_kept)
          : 0;
  if (keep > 0) {
    // Re-prime the running summary from the kept chunks so a resumed run
    // ends with the same summary bytes an uninterrupted one would have.
    existing.resize(static_cast<size_t>(keep));
    util::Result<JournalContents> kept = ParseJournal(existing);
    if (!kept.ok()) return kept.status();
    summary_ = SummarizeJournalEvents(kept->events);
    events_committed_ = static_cast<int64_t>(kept->events.size());
  }
  FEDMIGR_RETURN_IF_ERROR(file_.Open(options_.path));
  if (file_.size() > keep) {
    FEDMIGR_RETURN_IF_ERROR(file_.Truncate(keep));
  }
  header_written_ = header_kept;
  attached_ = true;
  return util::Status::Ok();
}

void Journal::Emit(const JournalEvent& event) {
  if (!attached_) return;
  AccumulateSummaryEvent(event, &summary_);
  buffer_.push_back(event);
}

void Journal::BeginRun(const JournalHeader& header) {
  if (!attached_ || header_written_) return;
  JournalHeader stamped = header;
  stamped.sample_rate = options_.sample_rate;
  util::ByteWriter payload;
  payload.WriteU8(kChunkHeader);
  WriteJournalHeader(stamped, &payload);
  FEDMIGR_CHECK(AppendChunk(payload.TakeBytes()).ok())
      << "journal header append failed";
  header_written_ = true;
}

void Journal::RoundBegin(int epoch, int active, int available,
                         int64_t lineage) {
  Emit({static_cast<uint8_t>(JournalEventKind::kRoundBegin), epoch, active,
        available, static_cast<uint64_t>(lineage), 0, 0.0});
}

void Journal::CohortSampled(int epoch, int cohort_size, int carryover) {
  Emit({static_cast<uint8_t>(JournalEventKind::kCohortSampled), epoch,
        cohort_size, carryover, 0, 0, 0.0});
}

void Journal::ClientDeparted(int epoch, int client) {
  Emit({static_cast<uint8_t>(JournalEventKind::kClientDeparted), epoch,
        client, 0, 0, 0, 0.0});
}

void Journal::ClientCarriedOver(int epoch, int client) {
  Emit({static_cast<uint8_t>(JournalEventKind::kClientCarriedOver), epoch,
        client, 0, 0, 0, 0.0});
}

void Journal::ChurnAbsence(int epoch, int client) {
  Emit({static_cast<uint8_t>(JournalEventKind::kChurnAbsence), epoch, client,
        0, 0, 0, 0.0});
}

void Journal::ModelDistributed(int epoch, int client, int64_t lineage) {
  if (!SampledClient(client)) return;
  Emit({static_cast<uint8_t>(JournalEventKind::kModelDistributed), epoch,
        client, 0, static_cast<uint64_t>(lineage), 0, 0.0});
}

void Journal::ClientParticipated(int epoch, int client, int lan,
                                 int64_t lineage, double loss) {
  if (!SampledClient(client)) return;
  Emit({static_cast<uint8_t>(JournalEventKind::kClientParticipated), epoch,
        client, lan, static_cast<uint64_t>(lineage), 0, loss});
}

void Journal::ClientUploaded(int epoch, int client, UploadStatus status,
                             int64_t lineage) {
  if (!SampledClient(client)) return;
  Emit({static_cast<uint8_t>(JournalEventKind::kClientUploaded), epoch,
        client, static_cast<int32_t>(status),
        static_cast<uint64_t>(lineage), 0, 0.0});
}

void Journal::ScreenVerdict(int epoch, int client, bool flagged) {
  if (!SampledClient(client)) return;
  Emit({static_cast<uint8_t>(JournalEventKind::kScreenVerdict), epoch,
        client, flagged ? 1 : 0, 0, 0, 0.0});
}

void Journal::QuarantineTransition(int epoch, int client, int from_state,
                                   int to_state) {
  Emit({static_cast<uint8_t>(JournalEventKind::kQuarantineTransition), epoch,
        client, (from_state << 8) | to_state, 0, 0, 0.0});
}

void Journal::QuorumCommit(int epoch, int arrivals, int required) {
  Emit({static_cast<uint8_t>(JournalEventKind::kQuorumCommit), epoch,
        arrivals, required, 0, 0, 0.0});
}

void Journal::QuorumMiss(int epoch, int arrivals, int required) {
  Emit({static_cast<uint8_t>(JournalEventKind::kQuorumMiss), epoch, arrivals,
        required, 0, 0, 0.0});
}

void Journal::ModelPublished(int epoch, int64_t lineage, int64_t parent) {
  Emit({static_cast<uint8_t>(JournalEventKind::kModelPublished), epoch, 0, 0,
        static_cast<uint64_t>(lineage), static_cast<uint64_t>(parent), 0.0});
}

void Journal::MigrationHop(int epoch, int src, int dst, MigrationRoute route,
                           int64_t lineage) {
  JournalEventKind kind = JournalEventKind::kMigrationC2C;
  if (route == MigrationRoute::kServerFallback) {
    kind = JournalEventKind::kMigrationFallback;
  } else if (route == MigrationRoute::kRolledBack) {
    kind = JournalEventKind::kMigrationRolledBack;
  }
  Emit({static_cast<uint8_t>(kind), epoch, src, dst,
        static_cast<uint64_t>(lineage), 0, 0.0});
}

void Journal::ChaosLanSealed(int epoch, int lan) {
  Emit({static_cast<uint8_t>(JournalEventKind::kChaosLanSealed), epoch, lan,
        0, 0, 0, 0.0});
}

void Journal::ChaosLanOpened(int epoch, int lan) {
  Emit({static_cast<uint8_t>(JournalEventKind::kChaosLanOpened), epoch, lan,
        0, 0, 0, 0.0});
}

void Journal::ChaosServerDown(int epoch) {
  Emit({static_cast<uint8_t>(JournalEventKind::kChaosServerDown), epoch, 0,
        0, 0, 0, 0.0});
}

void Journal::ChaosServerUp(int epoch) {
  Emit({static_cast<uint8_t>(JournalEventKind::kChaosServerUp), epoch, 0, 0,
        0, 0, 0.0});
}

void Journal::RoundCommitted(int epoch, int participating, bool published,
                             int64_t lineage, double train_loss) {
  Emit({static_cast<uint8_t>(JournalEventKind::kRoundCommit), epoch,
        participating, published ? 1 : 0, static_cast<uint64_t>(lineage), 0,
        train_loss});
}

util::Status Journal::AppendChunk(const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> framed = FrameJournalChunk(payload);
  if (options_.path.empty()) {
    memory_.insert(memory_.end(), framed.begin(), framed.end());
    return util::Status::Ok();
  }
  return file_.Append(framed);
}

util::Status Journal::CommitEpoch(int epoch) {
  if (!attached_) return util::Status::Ok();
  util::ByteWriter payload;
  payload.WriteU8(kChunkEpoch);
  payload.WriteI32(epoch);
  payload.WriteU32(static_cast<uint32_t>(buffer_.size()));
  for (const JournalEvent& event : buffer_) {
    FEDMIGR_CHECK_EQ(event.epoch, epoch)
        << "buffered journal event from another epoch";
    WriteJournalEvent(event, &payload);
  }
  events_committed_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  return AppendChunk(payload.TakeBytes());
}

util::Status Journal::EndRun() {
  if (!attached_) return util::Status::Ok();
  util::ByteWriter payload;
  payload.WriteU8(kChunkSummary);
  WriteJournalSummary(summary_, &payload);
  FEDMIGR_RETURN_IF_ERROR(AppendChunk(payload.TakeBytes()));
  return Finish();
}

util::Status Journal::Finish() {
  if (!attached_ || options_.path.empty()) return util::Status::Ok();
  return file_.Sync();
}

// --- Reader ---------------------------------------------------------------

util::Result<JournalContents> ParseJournal(
    const std::vector<uint8_t>& bytes) {
  JournalContents contents;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t consumed = 0;
    util::Result<std::vector<uint8_t>> payload = UnframeJournalChunk(
        bytes.data() + offset, bytes.size() - offset, &consumed);
    if (!payload.ok()) {
      contents.torn_tail_bytes = bytes.size() - offset;
      break;
    }
    util::ByteReader reader(*payload);
    uint8_t chunk_kind = 0;
    FEDMIGR_RETURN_IF_ERROR(reader.ReadU8(&chunk_kind));
    if (chunk_kind == kChunkHeader) {
      if (contents.has_header || offset != 0) {
        return util::Status::DataLoss("journal header chunk out of place");
      }
      FEDMIGR_RETURN_IF_ERROR(ReadJournalHeader(&reader, &contents.header));
      contents.has_header = true;
    } else if (chunk_kind == kChunkEpoch) {
      int32_t epoch = 0;
      uint32_t count = 0;
      FEDMIGR_RETURN_IF_ERROR(reader.ReadI32(&epoch));
      FEDMIGR_RETURN_IF_ERROR(reader.ReadU32(&count));
      if (!contents.committed_epochs.empty() &&
          epoch <= contents.committed_epochs.back()) {
        return util::Status::DataLoss("journal epochs not monotone");
      }
      contents.committed_epochs.push_back(epoch);
      for (uint32_t i = 0; i < count; ++i) {
        JournalEvent event;
        FEDMIGR_RETURN_IF_ERROR(ReadJournalEvent(&reader, &event));
        if (event.epoch != epoch) {
          return util::Status::DataLoss("journal event epoch mismatch");
        }
        contents.events.push_back(event);
      }
    } else if (chunk_kind == kChunkSummary) {
      if (contents.has_summary) {
        return util::Status::DataLoss("duplicate journal summary chunk");
      }
      FEDMIGR_RETURN_IF_ERROR(ReadJournalSummary(&reader, &contents.summary));
      contents.has_summary = true;
    } else {
      return util::Status::DataLoss("unknown journal chunk kind");
    }
    if (!reader.AtEnd()) {
      return util::Status::DataLoss("journal chunk has trailing bytes");
    }
    offset += consumed;
  }
  return contents;
}

util::Result<JournalContents> ReadJournalFile(const std::string& path) {
  util::Result<std::vector<uint8_t>> bytes = util::ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseJournal(*bytes);
}

JournalSummary SummarizeJournalEvents(
    const std::vector<JournalEvent>& events) {
  JournalSummary summary;
  for (const JournalEvent& event : events) {
    AccumulateSummaryEvent(event, &summary);
  }
  return summary;
}

}  // namespace fedmigr::obs
