// Global telemetry switch for the observability layer (DESIGN.md §11).
//
// Two gates stack:
//   compile time — the FEDMIGR_TELEMETRY macro (CMake option, default ON).
//     With it off, Telemetry::enabled() is a compile-time `false`, so every
//     instrumentation block guarded by it is dead-code-eliminated and the
//     binary carries no telemetry work at all.
//   run time — Telemetry::Disable() clears a relaxed atomic flag, reducing
//     every FEDMIGR_TRACE_SCOPE and guarded metric update to a single
//     predictable branch (no clock reads, no atomic RMWs).
//
// Determinism rule: nothing in src/obs may feed back into simulation state.
// Wall-clock reads live only behind obs interfaces (enforced by the
// fedmigr_lint `wallclock` rule); metrics and traces are observation-only,
// so runs are bit-identical with telemetry on, off, or compiled out.

#ifndef FEDMIGR_OBS_TELEMETRY_H_
#define FEDMIGR_OBS_TELEMETRY_H_

#include <atomic>

// Default ON so plain `#include`s (IDE parses, ad-hoc compiles) see the
// instrumented configuration; the CMake option defines it to 0 to compile
// telemetry out.
#ifndef FEDMIGR_TELEMETRY
#define FEDMIGR_TELEMETRY 1
#endif

namespace fedmigr::obs {

class Telemetry {
 public:
  // True when telemetry is compiled in and not runtime-disabled. Constant
  // false when compiled out, so `if (Telemetry::enabled()) { ... }` blocks
  // vanish entirely.
  static bool enabled() {
#if FEDMIGR_TELEMETRY
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  static void Enable() { SetEnabled(true); }
  static void Disable() { SetEnabled(false); }

  static constexpr bool compiled_in() { return FEDMIGR_TELEMETRY != 0; }

 private:
  static void SetEnabled(bool on) {
#if FEDMIGR_TELEMETRY
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

#if FEDMIGR_TELEMETRY
  static std::atomic<bool> enabled_;
#endif
};

}  // namespace fedmigr::obs

#endif  // FEDMIGR_OBS_TELEMETRY_H_
