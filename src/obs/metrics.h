// Lock-cheap metrics registry: named Counters, Gauges and Histograms that
// hot paths update with relaxed atomics and that snapshot deterministically
// to JSON/CSV (DESIGN.md §11).
//
// Naming convention: `subsystem/verb_noun`, e.g. "fl/local_update",
// "net/c2c_bytes", "rl/train_steps". Label sets render into the name as
// `name{key=value,...}` with keys sorted, so one metric family fans out
// into deterministic per-label series (see Registry::LabeledName).
//
// Concurrency contract: metric creation takes the registry mutex once per
// name (call sites cache the returned pointer, typically in a function-local
// static); every update afterwards is a relaxed atomic RMW on the metric
// itself, safe from any thread and TSan-clean. Pointers returned by the
// registry stay valid for the registry's lifetime.

#ifndef FEDMIGR_OBS_METRICS_H_
#define FEDMIGR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fedmigr::obs {

// Monotonically increasing integer (events, bytes, FLOPs).
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written double (loss, accuracy, queue depth).
class Gauge {
 public:
  void Set(double value) {
    bits_.store(Encode(value), std::memory_order_relaxed);
  }
  void Add(double delta);
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Encode(double value);
  static double Decode(uint64_t bits);

  std::atomic<uint64_t> bits_{0};  // IEEE-754 bits of 0.0
};

// Fixed exponential bucket layout: finite bucket i (0-based) covers
// (first_bound * growth^(i-1), first_bound * growth^i]; one final bucket
// catches everything above the last bound. Values <= first_bound land in
// bucket 0.
struct HistogramOptions {
  double first_bound = 1e-3;  // default layout: 1 µs granularity in ms units
  double growth = 2.0;
  int num_buckets = 32;  // finite buckets; ~35 min of range at the defaults
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(size_t bucket) const;
  size_t num_buckets() const { return counts_.size(); }  // finite + overflow

 private:
  std::vector<double> bounds_;  // ascending upper bounds, one per finite bucket
  std::vector<std::atomic<int64_t>> counts_;  // bounds_.size() + 1 (overflow)
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // IEEE-754 bits, CAS-accumulated
};

// Point-in-time copy of every registered metric, sorted by name. Snapshots
// of an idle registry are byte-identical, which is what makes them safe to
// diff in tests and embed in run results.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1, overflow last

    double mean() const;
    // p in [0, 100], estimated by linear interpolation inside the bucket
    // that contains the rank; 0 when empty.
    double Percentile(double p) const;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Lookup helpers; a missing name yields 0 / nullptr.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const HistogramSample* FindHistogram(const std::string& name) const;

  std::string ToJson() const;
  std::string ToCsv() const;
};

class Registry {
 public:
  // The process-wide registry every instrumentation site reports into.
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create by name. A name identifies exactly one metric kind:
  // asking for an existing name with a different kind is a programming
  // error (CHECK). Returned pointers remain valid for the registry's life.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  MetricsSnapshot Snapshot() const;

  // Publishes a snapshot through util::AtomicWriteFile.
  util::Status WriteJsonFile(const std::string& path) const;
  util::Status WriteCsvFile(const std::string& path) const;

  // "name{k1=v1,k2=v2}" with keys sorted — the canonical labeled-series
  // name, so the same label set always maps to the same metric.
  static std::string LabeledName(
      const std::string& name,
      std::initializer_list<std::pair<const char*, std::string>> labels);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fedmigr::obs

#endif  // FEDMIGR_OBS_METRICS_H_
