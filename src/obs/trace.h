// Scoped profiling and Chrome trace-event export (DESIGN.md §11).
//
// Two clock domains, kept on separate Chrome-trace "processes":
//   pid 1 — wall clock. `FEDMIGR_TRACE_SCOPE` RAII timers measure real host
//     time per thread; durations aggregate into registry histograms (ms)
//     and, while the recorder is running, append span events to the ring.
//   pid 2 — simulated time. The edge simulator reports spans in simulated
//     seconds via RecordSimSpan, one named track per logical timeline
//     (e.g. per FL round phase), so a Perfetto view lines up what the
//     simulation *modelled* against what the host *spent*.
//
// All wall-clock reads in the codebase funnel through MonotonicNowNs here
// (plus the timestamp in util/logging.cc) — the fedmigr_lint `wallclock`
// rule bans std::chrono clock reads everywhere else, which is what keeps
// host timing from ever leaking into simulation state.
//
// The recorder is a fixed-capacity ring guarded by a mutex: appends are a
// lock + push, and once full new events are counted as dropped rather than
// reallocating. It is off by default; Start() is explicit (benches wire it
// to --trace-out).

#ifndef FEDMIGR_OBS_TRACE_H_
#define FEDMIGR_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/status.h"

namespace fedmigr::obs {

// Nanoseconds on the host monotonic clock (arbitrary epoch). The single
// sanctioned steady_clock read site outside util/logging.cc.
int64_t MonotonicNowNs();

// Small real-time timer for bench reporting.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNowNs()) {}
  void Restart() { start_ns_ = MonotonicNowNs(); }
  double ElapsedMs() const {
    return static_cast<double>(MonotonicNowNs() - start_ns_) * 1e-6;
  }
  double ElapsedSeconds() const { return ElapsedMs() * 1e-3; }

 private:
  int64_t start_ns_;
};

// One exported event, timestamps in microseconds within the pid's domain.
struct TraceEvent {
  std::string name;
  int pid = 1;  // 1 = wall clock, 2 = simulated time
  int tid = 1;
  double start_us = 0.0;
  double end_us = 0.0;  // == start_us for instants
  bool instant = false;
};

class TraceRecorder {
 public:
  static TraceRecorder& Default();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Begins recording into a fresh ring of `capacity` events; wall-clock
  // timestamps are rebased to this call.
  void Start(size_t capacity = 65536);
  void Stop();
  bool recording() const {
    return recording_.load(std::memory_order_acquire);
  }
  void Clear();

  // Wall-clock span on the calling thread's track (pid 1).
  void RecordSpan(const std::string& name, int64_t start_ns, int64_t end_ns);
  // Simulated-time span in seconds on a named pid-2 track.
  void RecordSimSpan(const std::string& name, const std::string& track,
                     double start_s, double end_s);
  // Wall-clock point event on a dedicated instant track (pid 1, tid 0).
  void RecordInstant(const std::string& name);

  int64_t dropped() const;

  // Events in export order: grouped by (pid, tid), spans nested by the
  // B/E reconstruction described in ToChromeJson. Tests assert on this
  // instead of re-parsing JSON.
  std::vector<TraceEvent> ExportEvents() const;

  // Chrome trace-event JSON (object form, "traceEvents" array). Spans are
  // re-nested per track — sorted by (start asc, end desc), child ends
  // clamped to their parent — so emitted B/E pairs always match and each
  // track's timestamps are monotone. Load via Perfetto (ui.perfetto.dev)
  // or chrome://tracing.
  std::string ToChromeJson() const;
  util::Status WriteChromeJson(const std::string& path) const;

 private:
  struct StoredEvent {
    std::string name;
    int pid = 1;
    int tid = 1;
    double start_us = 0.0;
    double end_us = 0.0;
    bool instant = false;
  };

  void Append(StoredEvent event);
  int WallTidLocked(std::thread::id id);
  int SimTidLocked(const std::string& track);

  std::atomic<bool> recording_{false};
  mutable std::mutex mutex_;
  std::vector<StoredEvent> events_;
  size_t capacity_ = 0;
  int64_t dropped_ = 0;
  int64_t base_ns_ = 0;
  std::map<std::thread::id, int> wall_tids_;
  std::map<std::string, int> sim_tids_;
  std::vector<std::pair<int, std::string>> sim_track_names_;
};

// RAII wall-clock scope: observes elapsed ms into `histogram` and, when the
// default recorder is running, records a span. Both the construction-time
// clock read and all destruction work are skipped when telemetry is
// runtime-disabled.
class ScopedTrace {
 public:
  ScopedTrace(const char* name, Histogram* histogram)
      : name_(name), histogram_(histogram) {
    if (Telemetry::enabled()) start_ns_ = MonotonicNowNs();
  }
  ~ScopedTrace() {
    if (start_ns_ != 0) Finish();
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  void Finish();

  const char* name_;
  Histogram* histogram_;
  int64_t start_ns_ = 0;
};

// Registry histogram backing a FEDMIGR_TRACE_SCOPE site (ms, default
// exponential layout).
Histogram* ScopeHistogram(const char* name);

}  // namespace fedmigr::obs

#if FEDMIGR_TELEMETRY
#define FEDMIGR_TRACE_CONCAT_INNER(a, b) a##b
#define FEDMIGR_TRACE_CONCAT(a, b) FEDMIGR_TRACE_CONCAT_INNER(a, b)
// Times the enclosing scope under `name` (static histogram lookup happens
// once per site). Expands to a no-op statement when telemetry is compiled
// out.
#define FEDMIGR_TRACE_SCOPE(name)                                         \
  static ::fedmigr::obs::Histogram* FEDMIGR_TRACE_CONCAT(                 \
      fedmigr_trace_hist_, __LINE__) = ::fedmigr::obs::ScopeHistogram(name); \
  ::fedmigr::obs::ScopedTrace FEDMIGR_TRACE_CONCAT(fedmigr_trace_scope_,  \
                                                   __LINE__)(             \
      name, FEDMIGR_TRACE_CONCAT(fedmigr_trace_hist_, __LINE__))
#else
#define FEDMIGR_TRACE_SCOPE(name) \
  do {                            \
  } while (false)
#endif

#endif  // FEDMIGR_OBS_TRACE_H_
