#include "obs/resource.h"

#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace fedmigr::obs {

int64_t PeakRssBytes() {
  // VmHWM is reported in kB. Reading /proc is observation-only (the
  // raw-file-write lint bans writes, not reads).
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == "VmHWM:") {
      int64_t kb = 0;
      if (status >> kb) return kb * 1024;
      return 0;
    }
  }
  return 0;
}

void UpdateResourceGauges() {
  if (!Telemetry::enabled()) return;
  static Gauge* peak_rss = Registry::Default().GetGauge("proc/peak_rss_bytes");
  peak_rss->Set(static_cast<double>(PeakRssBytes()));
}

}  // namespace fedmigr::obs
