// Process resource observation: peak resident set size.
//
// The scalability acceptance gate ("1M clients under 4 GB") and the
// `proc/peak_rss_bytes` gauge both read the kernel's high-water mark
// (VmHWM in /proc/self/status). Read-only observation: like everything in
// src/obs it must never feed back into simulation state.

#ifndef FEDMIGR_OBS_RESOURCE_H_
#define FEDMIGR_OBS_RESOURCE_H_

#include <cstdint>

namespace fedmigr::obs {

// Peak resident set size of this process in bytes; 0 when the platform
// does not expose it (non-Linux).
int64_t PeakRssBytes();

// Refreshes the `proc/peak_rss_bytes` registry gauge. No-op when telemetry
// is disabled or compiled out.
void UpdateResourceGauges();

}  // namespace fedmigr::obs

#endif  // FEDMIGR_OBS_RESOURCE_H_
