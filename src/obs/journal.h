// Deterministic flight recorder: an append-only, CRC32-framed binary event
// journal of the semantic decisions a run makes — round lifecycle, cohort
// sampling, per-client participation/upload/screen verdicts, quarantine
// transitions, chaos window edges, quorum commits/misses and every
// migration hop as a causal lineage edge. Where the obs metrics registry
// (DESIGN.md §11) answers "how many", the journal answers "which one,
// when, and where did its model come from".
//
// Container format: a sequence of independently framed chunks,
//
//   [u32 magic "FJRN"][u32 version][u64 payload_size][payload][u32 crc32]
//
// little-endian, CRC over every preceding byte of the frame (the same
// discipline as the FSNP snapshot container, core/snapshot.h). The payload
// starts with a u8 chunk kind: one header chunk (run identity), one epoch
// chunk per committed epoch (the buffered events), and one summary chunk
// (counter totals) on clean completion.
//
// Determinism contract: events are emitted only from the serial sections
// of the trainer loop (never inside ParallelFor), buffered in program
// order, and flushed as one frame per committed epoch — so the journal is
// byte-identical across FEDMIGR_INTRA_OP_THREADS settings and inter-client
// pool widths, and feeds nothing back into simulation state.
//
// Crash consistency: chunks are appended through util::AppendFile; a kill
// at any instant tears at most the final frame. Attach(resume_epoch)
// validates the existing file frame by frame and truncates everything past
// the last epoch chunk whose epoch is <= resume_epoch (torn tails, frames
// from epochs the resumed run will replay, and any summary), so a killed
// run resumed from a snapshot (core/snapshot.h) replays to a byte-equal
// journal.
//
// Scale bound: records are fixed-size, client-level detail is emitted only
// for the materialized cohort, and Options::sample_rate thins the
// client-detail kinds further (reconciliation kinds — migrations, quorum,
// churn, quarantine — are never sampled, so totals stay exact).
//
// Lineage: ModelStore::Publish is the only mint site (serial, monotonic
// ids), so every CoW block carries the lineage id of the publish it was
// cloned from; migration hops move that id between clients and the journal
// records each hop as a DAG edge. tools/fedmigr_report renders the DAG and
// tools/check_journal.py re-derives every counter total from the events.

#ifndef FEDMIGR_OBS_JOURNAL_H_
#define FEDMIGR_OBS_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/file.h"
#include "util/serial.h"
#include "util/status.h"

namespace fedmigr::obs {

// Semantic event kinds. Values are part of the on-disk format — append
// only, never renumber.
enum class JournalEventKind : uint8_t {
  kRoundBegin = 1,            // a=active, b=available, u=aggregate lineage
  kCohortSampled = 2,         // a=cohort size, b=carryover count
  kClientDeparted = 3,        // a=client (churn: private state discarded)
  kClientCarriedOver = 4,     // a=client (upload carried to a later round)
  kChurnAbsence = 5,          // a=client (sampled member skipped one round)
  kModelDistributed = 6,      // a=client, u=lineage installed
  kClientParticipated = 7,    // a=client, b=lan, u=lineage, x=local loss
  kClientUploaded = 8,        // a=client, b=UploadStatus, u=lineage
  kScreenVerdict = 9,         // a=client, b=1 flagged / 0 clean
  kQuarantineTransition = 10, // a=client, b=(from<<8)|to reputation states
  kQuorumCommit = 11,         // a=arrivals, b=required
  kQuorumMiss = 12,           // a=arrivals, b=required
  kModelPublished = 13,       // u=new lineage, v=parent lineage
  kMigrationC2C = 14,         // a=src, b=dst, u=lineage (direct route)
  kMigrationFallback = 15,    // a=src, b=dst, u=lineage (server re-route)
  kMigrationRolledBack = 16,  // a=src, b=dst, u=lineage (source kept it)
  kChaosLanSealed = 17,       // a=lan
  kChaosLanOpened = 18,       // a=lan
  kChaosServerDown = 19,      //
  kChaosServerUp = 20,        //
  kRoundCommit = 21,          // a=participating, b=published, u=lineage,
                              // x=train loss
};

// Upload outcome recorded in kClientUploaded's `b` field.
enum class UploadStatus : int32_t {
  kArrived = 0,
  kDroppedStraggler = 1,
  kDroppedCorrupt = 2,
  kExcludedQuarantined = 3,
};

// Migration route of a lineage hop; maps 1:1 onto the three migration
// event kinds and the chaos ledger buckets.
enum class MigrationRoute : int32_t {
  kC2C = 0,
  kServerFallback = 1,
  kRolledBack = 2,
};

// Reputation-state numbering used in kQuarantineTransition's packed `b`
// field. Mirrors fl::ReputationState (robust.h); the value below is the
// one the summary's `quarantines` total counts transitions into.
inline constexpr int32_t kJournalStateQuarantined = 2;

// Fixed-size event record (37 bytes on the wire). Field meaning is
// kind-specific, documented on JournalEventKind.
struct JournalEvent {
  uint8_t kind = 0;
  int32_t epoch = 0;
  int32_t a = 0;
  int32_t b = 0;
  uint64_t u = 0;
  uint64_t v = 0;
  double x = 0.0;
};

// Run identity, written once as the first chunk.
struct JournalHeader {
  uint64_t run_seed = 0;
  int64_t num_clients = 0;
  int64_t cohort_size = 0;  // 0 = legacy full-participation mode
  double sample_rate = 1.0;
  std::string scheme;
};

// End-of-run counter totals, written on clean completion. The recorder
// accumulates them as events are emitted (and rebuilds them from the kept
// chunks on Attach), so every field re-derives exactly from the event
// stream; tools/check_journal.py verifies that, and bench_chaos reconciles
// the totals against the trainer's independent ChaosCounters.
struct JournalSummary {
  int64_t epochs_run = 0;              // #kRoundCommit
  int64_t migrations_planned = 0;      // sum of the three routes
  int64_t migrations_completed = 0;    // #kMigrationC2C
  int64_t migration_fallbacks = 0;     // #kMigrationFallback
  int64_t migrations_rolled_back = 0;  // #kMigrationRolledBack
  int64_t quorum_commits = 0;          // #kQuorumCommit
  int64_t quorum_misses = 0;           // #kQuorumMiss
  int64_t carryover_clients = 0;       // #kClientCarriedOver
  int64_t churn_absences = 0;          // #kChurnAbsence
  int64_t churn_departures = 0;        // #kClientDeparted
  int64_t quarantines = 0;             // #transitions into quarantined
  int64_t model_publishes = 0;         // #kModelPublished
};

// --- Wire serializers (audited by tools/fedmigr_schema) -------------------

void WriteJournalEvent(const JournalEvent& event, util::ByteWriter* writer);
util::Status ReadJournalEvent(util::ByteReader* reader, JournalEvent* event);

void WriteJournalHeader(const JournalHeader& header, util::ByteWriter* writer);
util::Status ReadJournalHeader(util::ByteReader* reader,
                               JournalHeader* header);

void WriteJournalSummary(const JournalSummary& summary,
                         util::ByteWriter* writer);
util::Status ReadJournalSummary(util::ByteReader* reader,
                                JournalSummary* summary);

// Wraps a chunk payload in the FJRN frame.
std::vector<uint8_t> FrameJournalChunk(const std::vector<uint8_t>& payload);

// Validates the frame at the start of `data` and returns its payload;
// `*consumed` receives the framed size. Truncation, bad magic/version and
// CRC mismatch come back as Status errors (never a crash).
util::Result<std::vector<uint8_t>> UnframeJournalChunk(const uint8_t* data,
                                                       size_t size,
                                                       size_t* consumed);

// --- Recorder -------------------------------------------------------------

class Journal {
 public:
  struct Options {
    // Journal file path; empty records into an in-memory buffer (tests).
    std::string path;
    // Probability a client outside the always-recorded kinds gets
    // client-detail events (kModelDistributed / kClientParticipated /
    // kClientUploaded / kScreenVerdict). 1.0 records everyone; the filter
    // is a pure hash of the client id, so it is deterministic and stable
    // across runs, thread counts and resume.
    double sample_rate = 1.0;
  };

  explicit Journal(Options options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Prepares the journal for a run that resumes after `resume_epoch`
  // completed epochs (0 = fresh start). File mode: validates the existing
  // file and truncates past the last epoch chunk with epoch <=
  // resume_epoch; a fresh start truncates to empty.
  util::Status Attach(int resume_epoch);
  bool attached() const { return attached_; }
  // True once a header chunk is on disk (survives resume truncation).
  bool header_written() const { return header_written_; }

  double sample_rate() const { return options_.sample_rate; }
  // Deterministic per-client sampling verdict for the client-detail kinds.
  bool SampledClient(int client) const;

  // --- semantic emitters (the only journal surface src/fl may call;
  // enforced by fedmigr_lint's journal-emit rule) ---
  void BeginRun(const JournalHeader& header);
  void RoundBegin(int epoch, int active, int available, int64_t lineage);
  void CohortSampled(int epoch, int cohort_size, int carryover);
  void ClientDeparted(int epoch, int client);
  void ClientCarriedOver(int epoch, int client);
  void ChurnAbsence(int epoch, int client);
  void ModelDistributed(int epoch, int client, int64_t lineage);
  void ClientParticipated(int epoch, int client, int lan, int64_t lineage,
                          double loss);
  void ClientUploaded(int epoch, int client, UploadStatus status,
                      int64_t lineage);
  void ScreenVerdict(int epoch, int client, bool flagged);
  void QuarantineTransition(int epoch, int client, int from_state,
                            int to_state);
  void QuorumCommit(int epoch, int arrivals, int required);
  void QuorumMiss(int epoch, int arrivals, int required);
  void ModelPublished(int epoch, int64_t lineage, int64_t parent);
  void MigrationHop(int epoch, int src, int dst, MigrationRoute route,
                    int64_t lineage);
  void ChaosLanSealed(int epoch, int lan);
  void ChaosLanOpened(int epoch, int lan);
  void ChaosServerDown(int epoch);
  void ChaosServerUp(int epoch);
  void RoundCommitted(int epoch, int participating, bool published,
                      int64_t lineage, double train_loss);

  // Frames the events buffered for `epoch` and appends the chunk. Called
  // once per epoch at the trainer's round commit; the buffer must hold
  // only events stamped with this epoch.
  util::Status CommitEpoch(int epoch);
  // Appends the running-summary chunk and makes the whole journal durable.
  util::Status EndRun();
  // Fsync without a summary (interrupt path).
  util::Status Finish();

  // Totals accumulated from every event emitted so far (including events
  // replayed from the kept chunks at Attach time).
  const JournalSummary& running_summary() const { return summary_; }

  // Events buffered for the current (uncommitted) epoch.
  size_t events_buffered() const { return buffer_.size(); }
  // Events committed to chunks so far (excludes header/summary).
  int64_t events_committed() const { return events_committed_; }

  // In-memory journal image; meaningful only when Options::path is empty.
  const std::vector<uint8_t>& memory_image() const { return memory_; }

 private:
  void Emit(const JournalEvent& event);
  util::Status AppendChunk(const std::vector<uint8_t>& payload);

  Options options_;
  bool attached_ = false;
  bool header_written_ = false;
  std::vector<JournalEvent> buffer_;
  JournalSummary summary_;
  int64_t events_committed_ = 0;
  util::AppendFile file_;
  std::vector<uint8_t> memory_;
};

// --- Reader ---------------------------------------------------------------

// Fully parsed journal. `events` preserves commit order; a torn tail after
// the last valid frame is reported via `torn_tail_bytes` rather than an
// error, matching the resume contract.
struct JournalContents {
  bool has_header = false;
  JournalHeader header;
  bool has_summary = false;
  JournalSummary summary;
  std::vector<int32_t> committed_epochs;
  std::vector<JournalEvent> events;
  uint64_t torn_tail_bytes = 0;
};

util::Result<JournalContents> ParseJournal(const std::vector<uint8_t>& bytes);
util::Result<JournalContents> ReadJournalFile(const std::string& path);

// Re-derives a JournalSummary from the event stream (the reconciliation
// half used by bench_chaos and the tests).
JournalSummary SummarizeJournalEvents(const std::vector<JournalEvent>& events);

}  // namespace fedmigr::obs

#endif  // FEDMIGR_OBS_JOURNAL_H_
