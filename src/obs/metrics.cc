#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/file.h"
#include "util/logging.h"

namespace fedmigr::obs {
namespace {

// Shortest round-trip decimal for a double; deterministic across runs
// (printf %.17g then trims, same scheme as the snapshot fingerprints).
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

util::Status WriteStringFile(const std::string& path,
                             const std::string& body) {
  std::vector<uint8_t> bytes(body.begin(), body.end());
  return util::AtomicWriteFile(path, bytes);
}

}  // namespace

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(observed, Encode(Decode(observed) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

uint64_t Gauge::Encode(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Histogram::Histogram(const HistogramOptions& options)
    : counts_(static_cast<size_t>(options.num_buckets) + 1) {
  FEDMIGR_CHECK(options.num_buckets > 0);
  FEDMIGR_CHECK(options.first_bound > 0.0);
  FEDMIGR_CHECK(options.growth > 1.0);
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  double bound = options.first_bound;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

void Histogram::Observe(double value) {
  // Upper-bound search: first bucket whose bound >= value; NaN and values
  // beyond the last bound fall into the overflow bucket.
  size_t bucket = bounds_.size();
  if (value == value) {  // lower_bound mis-sorts NaN into bucket 0
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    if (it != bounds_.end()) bucket = static_cast<size_t>(it - bounds_.begin());
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  double current = 0.0;
  uint64_t next = 0;
  do {
    std::memcpy(&current, &observed, sizeof(current));
    current += value;
    std::memcpy(&next, &current, sizeof(next));
  } while (!sum_bits_.compare_exchange_weak(observed, next,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed));
}

double Histogram::sum() const {
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

int64_t Histogram::bucket_count(size_t bucket) const {
  FEDMIGR_CHECK(bucket < counts_.size());
  return counts_[bucket].load(std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramSample::mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double MetricsSnapshot::HistogramSample::Percentile(double p) const {
  FEDMIGR_CHECK(p >= 0.0 && p <= 100.0);
  if (count <= 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      // Interpolate inside the bucket between its lower and upper bound.
      const double upper = i < bounds.size() ? bounds[i] : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double into =
          (rank - static_cast<double>(cumulative - counts[i])) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
    }
  }
  return bounds.back();
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(counters[i].name, &out);
    out += ": " + std::to_string(counters[i].value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(gauges[i].name, &out);
    out += ": " + FormatDouble(gauges[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(h.name, &out);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"mean\": " + FormatDouble(h.mean());
    out += ", \"p50\": " + FormatDouble(h.Percentile(50.0));
    out += ", \"p90\": " + FormatDouble(h.Percentile(90.0));
    out += ", \"p95\": " + FormatDouble(h.Percentile(95.0));
    out += ", \"p99\": " + FormatDouble(h.Percentile(99.0));
    out += ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  // One row per series: kind,name,value — histograms flatten into
  // count/sum/percentile rows so the file stays grep- and pandas-friendly.
  std::string out = "kind,name,value\n";
  for (const CounterSample& c : counters) {
    out += "counter," + c.name + "," + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : gauges) {
    out += "gauge," + g.name + "," + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    out += "histogram_count," + h.name + "," + std::to_string(h.count) + "\n";
    out += "histogram_sum," + h.name + "," + FormatDouble(h.sum) + "\n";
    out += "histogram_p50," + h.name + "," + FormatDouble(h.Percentile(50.0)) +
           "\n";
    out += "histogram_p90," + h.name + "," + FormatDouble(h.Percentile(90.0)) +
           "\n";
    out += "histogram_p95," + h.name + "," + FormatDouble(h.Percentile(95.0)) +
           "\n";
    out += "histogram_p99," + h.name + "," + FormatDouble(h.Percentile(99.0)) +
           "\n";
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDMIGR_CHECK(gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a gauge";
  FEDMIGR_CHECK(histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a histogram";
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDMIGR_CHECK(counters_.find(name) == counters_.end())
      << "metric '" << name << "' already registered as a counter";
  FEDMIGR_CHECK(histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a histogram";
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDMIGR_CHECK(counters_.find(name) == counters_.end())
      << "metric '" << name << "' already registered as a counter";
  FEDMIGR_CHECK(gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a gauge";
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    sample.bounds = histogram->bounds();
    sample.counts.resize(histogram->num_buckets());
    for (size_t b = 0; b < sample.counts.size(); ++b) {
      sample.counts[b] = histogram->bucket_count(b);
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  // std::map iteration is already name-sorted, so snapshots of the same
  // registry state serialize byte-identically.
  return snapshot;
}

util::Status Registry::WriteJsonFile(const std::string& path) const {
  return WriteStringFile(path, Snapshot().ToJson());
}

util::Status Registry::WriteCsvFile(const std::string& path) const {
  return WriteStringFile(path, Snapshot().ToCsv());
}

std::string Registry::LabeledName(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  std::vector<std::pair<std::string, std::string>> sorted;
  sorted.reserve(labels.size());
  for (const auto& [key, value] : labels) sorted.emplace_back(key, value);
  std::sort(sorted.begin(), sorted.end());
  std::string out = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=" + sorted[i].second;
  }
  out += "}";
  return out;
}

}  // namespace fedmigr::obs
