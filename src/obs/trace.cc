#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/file.h"

namespace fedmigr::obs {
namespace {

constexpr int kInstantTid = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatUs(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: see Registry
  return *recorder;
}

void TraceRecorder::Start(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  events_.reserve(capacity);
  capacity_ = capacity;
  dropped_ = 0;
  base_ns_ = MonotonicNowNs();
  wall_tids_.clear();
  sim_tids_.clear();
  sim_track_names_.clear();
  recording_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  recording_.store(false, std::memory_order_release);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void TraceRecorder::Append(StoredEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

int TraceRecorder::WallTidLocked(std::thread::id id) {
  auto [it, inserted] =
      wall_tids_.emplace(id, static_cast<int>(wall_tids_.size()) + 1);
  (void)inserted;
  return it->second;
}

int TraceRecorder::SimTidLocked(const std::string& track) {
  auto [it, inserted] =
      sim_tids_.emplace(track, static_cast<int>(sim_tids_.size()) + 1);
  if (inserted) sim_track_names_.emplace_back(it->second, track);
  return it->second;
}

void TraceRecorder::RecordSpan(const std::string& name, int64_t start_ns,
                               int64_t end_ns) {
  if (!recording()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  StoredEvent event;
  event.name = name;
  event.pid = 1;
  event.tid = WallTidLocked(std::this_thread::get_id());
  event.start_us = static_cast<double>(start_ns - base_ns_) * 1e-3;
  event.end_us = static_cast<double>(end_ns - base_ns_) * 1e-3;
  Append(std::move(event));
}

void TraceRecorder::RecordSimSpan(const std::string& name,
                                  const std::string& track, double start_s,
                                  double end_s) {
  if (!recording()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  StoredEvent event;
  event.name = name;
  event.pid = 2;
  event.tid = SimTidLocked(track);
  event.start_us = start_s * 1e6;
  event.end_us = end_s * 1e6;
  Append(std::move(event));
}

void TraceRecorder::RecordInstant(const std::string& name) {
  if (!recording()) return;
  const int64_t now_ns = MonotonicNowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  StoredEvent event;
  event.name = name;
  event.pid = 1;
  event.tid = kInstantTid;
  event.start_us = static_cast<double>(now_ns - base_ns_) * 1e-3;
  event.end_us = event.start_us;
  event.instant = true;
  Append(std::move(event));
}

int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::ExportEvents() const {
  std::vector<StoredEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  // Group by (pid, tid); within a track sort by (start asc, end desc) so a
  // span precedes the spans it encloses. Stable per-track order makes the
  // export deterministic for a given recorded set.
  std::stable_sort(events.begin(), events.end(),
                   [](const StoredEvent& a, const StoredEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.end_us > b.end_us;
                   });
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (StoredEvent& e : events) {
    TraceEvent exported;
    exported.name = std::move(e.name);
    exported.pid = e.pid;
    exported.tid = e.tid;
    exported.start_us = e.start_us;
    // Zero-length spans are legal; clamp inverted ones (clock quantization)
    // rather than emitting E-before-B.
    exported.end_us = std::max(e.start_us, e.end_us);
    exported.instant = e.instant;
    out.push_back(std::move(exported));
  }
  return out;
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceEvent> events = ExportEvents();
  std::vector<std::pair<int, std::string>> sim_tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sim_tracks = sim_track_names_;
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"wall clock\"}}");
  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,"
       "\"args\":{\"name\":\"simulated time\"}}");
  for (const auto& [tid, track] : sim_tracks) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":\"" + JsonEscape(track) +
         "\"}}");
  }

  // Per-track stack emission: every B gets a matching E, child ends are
  // clamped to their parent's end, and each track's timestamps come out
  // monotone by construction.
  struct Open {
    std::string name;
    int pid;
    int tid;
    double end_us;
  };
  std::vector<Open> stack;
  auto emit_begin = [&](const TraceEvent& e) {
    emit("{\"ph\":\"B\",\"name\":\"" + JsonEscape(e.name) +
         "\",\"pid\":" + std::to_string(e.pid) +
         ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":" +
         FormatUs(e.start_us) + "}");
  };
  auto emit_end = [&](const Open& open) {
    emit("{\"ph\":\"E\",\"pid\":" + std::to_string(open.pid) +
         ",\"tid\":" + std::to_string(open.tid) + ",\"ts\":" +
         FormatUs(open.end_us) + "}");
  };
  auto drain = [&]() {
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  };

  int current_pid = -1;
  int current_tid = -1;
  for (const TraceEvent& e : events) {
    if (e.pid != current_pid || e.tid != current_tid) {
      drain();
      current_pid = e.pid;
      current_tid = e.tid;
    }
    if (e.instant) {
      emit("{\"ph\":\"i\",\"name\":\"" + JsonEscape(e.name) +
           "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":" +
           FormatUs(e.start_us) + ",\"s\":\"t\"}");
      continue;
    }
    while (!stack.empty() && stack.back().end_us <= e.start_us) {
      emit_end(stack.back());
      stack.pop_back();
    }
    double end_us = e.end_us;
    if (!stack.empty()) end_us = std::min(end_us, stack.back().end_us);
    emit_begin(e);
    stack.push_back({e.name, e.pid, e.tid, end_us});
  }
  drain();

  out += "\n]}\n";
  return out;
}

util::Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  const std::string body = ToChromeJson();
  std::vector<uint8_t> bytes(body.begin(), body.end());
  return util::AtomicWriteFile(path, bytes);
}

void ScopedTrace::Finish() {
  const int64_t end_ns = MonotonicNowNs();
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(end_ns - start_ns_) * 1e-6);
  }
  TraceRecorder& recorder = TraceRecorder::Default();
  if (recorder.recording()) recorder.RecordSpan(name_, start_ns_, end_ns);
}

Histogram* ScopeHistogram(const char* name) {
  return Registry::Default().GetHistogram(name);
}

}  // namespace fedmigr::obs
