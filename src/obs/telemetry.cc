#include "obs/telemetry.h"

namespace fedmigr::obs {

#if FEDMIGR_TELEMETRY
std::atomic<bool> Telemetry::enabled_{true};
#endif

}  // namespace fedmigr::obs
